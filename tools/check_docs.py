#!/usr/bin/env python
"""Documentation health checks: intra-doc links and docstring coverage.

Two independent checks, both runnable as a script (CI's ``docs-build``
job) and importable from the test suite (``tests/test_docs.py``):

* :func:`check_links` -- every relative Markdown link in ``docs/`` and
  ``README.md`` must point at an existing file, and an ``#anchor``
  fragment must match a heading slug in the target file.
* :func:`check_docstrings` -- every public module / class / function /
  method of the public API surface (``repro.program``,
  ``repro.streaming``, ``repro.backends.base``, ``repro.optimize``)
  must carry a docstring.

Exit status is non-zero when either check finds problems, so the CI job
fails on broken links or an undocumented public name.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose links are checked.
DOC_FILES = ("README.md", "docs/architecture.md", "docs/tutorial.md",
             "docs/api.md", "docs/observability.md", "docs/service.md",
             "docs/performance.md", "docs/interchange.md")

#: Modules whose public surface must be fully docstringed.
PUBLIC_MODULES = (
    "src/repro/program.py",
    "src/repro/streaming.py",
    "src/repro/backends/base.py",
    "src/repro/backends/equiv.py",
    "src/repro/io/qasm_parser.py",
    "src/repro/optimize/__init__.py",
    "src/repro/optimize/passes.py",
    "src/repro/optimize/peephole.py",
    "src/repro/optimize/stream.py",
    "src/repro/obs/__init__.py",
    "src/repro/obs/core.py",
    "src/repro/obs/sinks.py",
    "src/repro/service/__init__.py",
    "src/repro/service/cache.py",
    "src/repro/service/client.py",
    "src/repro/service/faults.py",
    "src/repro/service/jobs.py",
    "src/repro/service/registry.py",
    "src/repro/service/server.py",
    "src/repro/service/workers.py",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style heading anchor: lowercase, punctuation out, dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: pathlib.Path) -> set[str]:
    return {_slugify(m.group(1)) for m in _HEADING.finditer(path.read_text())}


def check_links(repo: pathlib.Path = REPO) -> list[str]:
    """Return a list of broken-link descriptions (empty = healthy)."""
    problems = []
    for name in DOC_FILES:
        doc = repo / name
        if not doc.exists():
            problems.append(f"{name}: file missing")
            continue
        for match in _LINK.finditer(doc.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file anchor
                resolved = doc
            else:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{name}: broken link -> {target}")
                    continue
            if anchor and resolved.suffix == ".md":
                if anchor not in _anchors(resolved):
                    problems.append(
                        f"{name}: broken anchor -> {target}"
                    )
    return problems


def _missing_docstrings(tree: ast.Module, module_name: str) -> list[str]:
    missing = []
    if not ast.get_docstring(tree):
        missing.append(f"{module_name}: module docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_") and not ast.get_docstring(node):
                missing.append(f"{module_name}: def {node.name}")
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if not ast.get_docstring(node):
                missing.append(f"{module_name}: class {node.name}")
            for sub in node.body:
                if not isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if sub.name.startswith("_") and sub.name != "__init__":
                    continue
                if sub.name == "__init__":
                    continue  # documented on the class
                if any(
                    isinstance(dec, ast.Name) and dec.id == "property"
                    for dec in sub.decorator_list
                ) and ast.get_docstring(sub):
                    continue
                if not ast.get_docstring(sub):
                    missing.append(
                        f"{module_name}: {node.name}.{sub.name}"
                    )
    return missing


def check_docstrings(repo: pathlib.Path = REPO) -> list[str]:
    """Return undocumented public names (empty = full coverage)."""
    missing = []
    for name in PUBLIC_MODULES:
        path = repo / name
        tree = ast.parse(path.read_text())
        missing.extend(_missing_docstrings(tree, name))
    return missing


def check_baseline_freshness(repo: pathlib.Path = REPO) -> list[str]:
    """Return committed baselines the performance handbook omits.

    ``docs/performance.md`` is the reader's map of the repository's
    recorded performance claims, so a benchmark that commits a baseline
    JSON without a row in the handbook is documentation rot: the claim
    exists but nobody is told how to read it.  Every
    ``benchmarks/baselines/*.json`` (the full-size tree; the ``quick/``
    mirror tracks the same names) must be mentioned by filename.
    """
    handbook = repo / "docs" / "performance.md"
    if not handbook.exists():
        return ["docs/performance.md: file missing"]
    text = handbook.read_text()
    stale = []
    for path in sorted((repo / "benchmarks" / "baselines").glob("*.json")):
        if path.name not in text:
            stale.append(
                f"docs/performance.md: committed baseline "
                f"benchmarks/baselines/{path.name} is not documented"
            )
    return stale


def main() -> int:
    """Run all checks; print findings; non-zero exit on any problem."""
    link_problems = check_links()
    doc_problems = check_docstrings()
    baseline_problems = check_baseline_freshness()
    for problem in link_problems + doc_problems + baseline_problems:
        print("DOCS:", problem)
    if link_problems or doc_problems or baseline_problems:
        print(
            f"\n{len(link_problems)} broken link(s), "
            f"{len(doc_problems)} missing docstring(s), "
            f"{len(baseline_problems)} undocumented baseline(s)"
        )
        return 1
    print("docs healthy: links resolve, public API fully docstringed, "
          "all committed baselines documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
