#!/usr/bin/env python
"""Chaos smoke: hammer a fault-injected ``repro-serve``; nothing may fail.

CI's ``chaos`` job (and any operator drilling failure modes locally)
runs this script.  It boots two real server processes against one
shared disk cache:

1. **Clean phase** -- populates the disk cache with a handful of
   distinct circuits and records the byte-exact payloads of a batch of
   seeded run jobs.
2. **Injected phase** -- the same workload against
   ``--inject worker_exec:crash@0.2,disk_read:corrupt@0.1
   --inject-seed 7``: the deterministic schedule kills the worker
   mid-batch and corrupts disk-cache reads during warm-start.

The assertions are the service's whole fault-tolerance contract:

* **zero failed requests** -- every query in the injected phase
  returns normally (the supervisor respawns, requeues, quarantines);
* **byte-identity** -- every injected-phase payload equals its
  clean-phase counterpart;
* **evidence** -- ``worker.respawns >= 1``, ``worker.retries >= 1``,
  ``cache.quarantined >= 1`` and ``jobs.failed == 0`` in
  ``GET /v1/stats``;
* **clean drain** -- both servers exit 0 on SIGTERM.

Run it as ``python tools/chaos_smoke.py`` from the repo root.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.digest import canonical_json  # noqa: E402

_BANNER = re.compile(r"listening on http://[\d.]+:(\d+)")

#: The CI-mandated chaos schedule (see ISSUE/acceptance): seed 7 makes
#: the worker crash on its 5th exec and corrupts warm-start disk reads
#: at arrivals 5 and 6.
INJECT_SPEC = "worker_exec:crash@0.2,disk_read:corrupt@0.1"
INJECT_SEED = 7

#: Eight distinct digests so the injected phase performs enough disk
#: reads for ``disk_read:corrupt@0.1`` to fire during warm-start.
COUNT_SPECS = [
    {"program": "bwt", "params": {"n": n}, "action": "count",
     "optimize": optimize}
    for n in (2, 3, 4, 5) for optimize in (False, True)
]

#: Twelve identical seeded runs: enough worker_exec arrivals to crash
#: the worker at least once (seed 7 fires on arrival 4).
RUN_SPEC = {
    "program": "bwt", "params": {"n": 3}, "action": "run",
    "run": {"backend": "statevector", "shots": 32, "seed": 1234},
}
RUN_JOBS = 12


class ServerProcess:
    """One ``repro-serve`` subprocess on an ephemeral port."""

    def __init__(self, name: str, extra_args: list[str], log_dir: Path):
        self.name = name
        self.log_path = log_dir / f"chaos-{name}.log"
        self._log = open(self.log_path, "w", encoding="utf-8")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--port", "0", "--shards", "1", *extra_args],
            stdout=self._log, stderr=subprocess.STDOUT,
            cwd=REPO, env=env, text=True,
        )
        self.port = self._await_banner()

    def _await_banner(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"{self.name}: server died before binding "
                    f"(exit {self.proc.returncode}); see {self.log_path}"
                )
            match = _BANNER.search(self.log_path.read_text(encoding="utf-8"))
            if match:
                return int(match.group(1))
            time.sleep(0.05)
        raise RuntimeError(f"{self.name}: no listen banner within {timeout}s")

    def terminate(self) -> int:
        """SIGTERM (graceful drain) and wait; returns the exit code."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            raise RuntimeError(f"{self.name}: did not drain within 30s")
        finally:
            self._log.close()
        return code

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self._log.close()


def hammer(port: int) -> tuple[list[bytes], list[bytes], dict]:
    """The workload: every distinct circuit, then the seeded run batch.

    Any exception out of here is a failed client request -- exactly
    what the chaos contract forbids.
    """
    with ServiceClient("127.0.0.1", port, timeout=120) as svc:
        counts = [canonical_json(svc.query(**spec)).encode()
                  for spec in COUNT_SPECS]
        runs = [canonical_json(svc.query(**RUN_SPEC)).encode()
                for _ in range(RUN_JOBS)]
        stats = svc.stats()
    return counts, runs, stats


def main(argv: list[str] | None = None) -> int:
    """Run both phases; non-zero exit on any broken invariant."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log-dir", default=".", metavar="DIR",
                        help="where server logs land (default: cwd)")
    args = parser.parse_args(argv)
    log_dir = Path(args.log_dir)
    log_dir.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as cache_dir:
        print(f"chaos-smoke: phase 1 (clean) -- cache at {cache_dir}")
        clean = ServerProcess("clean", ["--cache-dir", cache_dir], log_dir)
        try:
            clean_counts, clean_runs, clean_stats = hammer(clean.port)
        except BaseException:
            clean.kill()
            raise
        code = clean.terminate()
        assert code == 0, f"clean server exited {code}"
        assert len(set(clean_runs)) == 1, "clean seeded runs disagree"
        persisted = clean_stats["cache"]["entries"]
        print(f"chaos-smoke: phase 1 OK -- {persisted} circuits cached, "
              f"{len(clean_runs)} seeded runs byte-identical")

        print(f"chaos-smoke: phase 2 (injected) -- "
              f"--inject {INJECT_SPEC} --inject-seed {INJECT_SEED}")
        injected = ServerProcess(
            "injected",
            ["--cache-dir", cache_dir,
             "--inject", INJECT_SPEC,
             "--inject-seed", str(INJECT_SEED),
             "--heartbeat", "1"],
            log_dir,
        )
        try:
            counts, runs, stats = hammer(injected.port)
        except BaseException:
            injected.kill()
            print(f"chaos-smoke: FAILED request in injected phase; "
                  f"see {injected.log_path}")
            raise
        code = injected.terminate()

        counters = stats["service"]["counters"]
        fired = stats.get("faults", {}).get("fired", {})
        problems = []
        if counts != clean_counts:
            problems.append("count payloads differ from the clean phase")
        if set(runs) != set(clean_runs):
            problems.append("run payloads differ from the clean phase")
        if counters.get("worker.respawns", 0) < 1:
            problems.append("no worker respawn recorded")
        if counters.get("worker.retries", 0) < 1:
            problems.append("no requeued job recorded")
        if counters.get("cache.quarantined", 0) < 1:
            problems.append("no corrupt disk entry quarantined")
        if counters.get("jobs.failed", 0) != 0:
            problems.append(f"jobs.failed = {counters['jobs.failed']}")
        if code != 0:
            problems.append(f"injected server exited {code}")

        print(f"chaos-smoke: injected phase counters: "
              f"respawns={counters.get('worker.respawns', 0)} "
              f"retries={counters.get('worker.retries', 0)} "
              f"crashes={counters.get('worker.crashes', 0)} "
              f"quarantined={counters.get('cache.quarantined', 0)} "
              f"failed={counters.get('jobs.failed', 0)} "
              f"fired={fired}")
        if problems:
            for problem in problems:
                print("chaos-smoke: FAIL:", problem)
            return 1
        print(f"chaos-smoke: OK -- {len(COUNT_SPECS) + RUN_JOBS} requests, "
              f"0 failures, byte-identical payloads through "
              f"{counters.get('worker.crashes', 0)} worker crash(es) and "
              f"{counters.get('cache.quarantined', 0)} quarantined entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
