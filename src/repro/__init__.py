"""repro: a Python reproduction of Quipper (PLDI 2013).

Quipper is a scalable, expressive, functional, higher-order quantum
programming language, embedded in Haskell.  This package re-creates it as a
Python-embedded language: the extended circuit model (qubit initialization,
assertive termination, measurement, classical wires, classically-controlled
gates), the generation/execution phase distinction with dynamic lifting,
block structure and whole-circuit operators, hierarchical boxed subcircuits
scaling to trillions of gates, extensible quantum data types, automatic
oracle generation from classical code, simulators, and the seven algorithm
implementations of the paper's evaluation (BWT, BF, CL, GSE, QLS, USV, TF).

Quickstart::

    from repro import build, qubit
    from repro.output import print_generic

    def mycirc(qc, a, b):
        qc.hadamard(a)
        qc.hadamard(b)
        qc.controlled_not(a, b)
        return a, b

    print_generic(mycirc, qubit, qubit)
"""

from .core import (
    BCircuit,
    Bit,
    Circ,
    Circuit,
    Qubit,
    QuipperError,
    Signed,
    bit,
    build,
    neg,
    qubit,
)
from .transform import (
    BINARY,
    TOFFOLI,
    aggregate_gate_count,
    decompose_generic,
    inline,
    reverse_bcircuit,
    total_gates,
    total_logical_gates,
)

__version__ = "1.0.0"

__all__ = [
    "Circ",
    "build",
    "qubit",
    "bit",
    "Qubit",
    "Bit",
    "Signed",
    "neg",
    "Circuit",
    "BCircuit",
    "QuipperError",
    "aggregate_gate_count",
    "total_gates",
    "total_logical_gates",
    "decompose_generic",
    "inline",
    "reverse_bcircuit",
    "TOFFOLI",
    "BINARY",
    "__version__",
]
