"""repro: a Python reproduction of Quipper (PLDI 2013).

Quipper is a scalable, expressive, functional, higher-order quantum
programming language, embedded in Haskell.  This package re-creates it as a
Python-embedded language: the extended circuit model (qubit initialization,
assertive termination, measurement, classical wires, classically-controlled
gates), the generation/execution phase distinction with dynamic lifting,
block structure and whole-circuit operators, hierarchical boxed subcircuits
scaling to trillions of gates, extensible quantum data types, automatic
oracle generation from classical code, simulators, and the seven algorithm
implementations of the paper's evaluation (BWT, BF, CL, GSE, QLS, USV, TF).

Quickstart::

    from repro import Program, qubit

    def mycirc(qc, a, b):
        qc.hadamard(a)
        qc.hadamard(b)
        qc.controlled_not(a, b)
        return a, b

    prog = Program.capture(mycirc, qubit, qubit)
    result = prog.run(shots=1024, seed=7)
    print(result.counts)            # e.g. {'00': 270, '01': 243, ...}

One definition is *the* program, consumed interchangeably by every
pipeline stage and consumer (:mod:`repro.program`)::

    prog.print()                          # ASCII rendering
    prog.count()                          # hierarchical gate count
    prog.transform("binary").depth()      # decompose (one fused pass), then estimate
    prog.run("resources").resources       # static cost report
    prog.dumps()                          # Quipper-ASCII interchange text

``prog.transform(r1, ..., rk)`` fuses the rule chain into a single
traversal of the box hierarchy -- the legacy ``transform_bcircuit`` cost
one full rewrite per rule.

The historical free functions (``build``, ``print_generic``,
``run_generic``, ``gatecount_generic``, ``transform_bcircuit``) remain as
thin shims over the same machinery.  Execution stays pluggable: every
consumer of a generated circuit -- dense statevector simulation,
stabilizer simulation, boolean evaluation, resource estimation -- is a
named backend behind :func:`~repro.backends.get_backend`.  Circuits
serialize to Quipper-ASCII text and back without inlining
(:func:`repro.io.dumps` / :func:`repro.io.loads`), and export to OpenQASM
2.0 (:func:`repro.io.bcircuit_to_qasm`).
"""

from .backends import (
    Backend,
    BackendError,
    RunResult,
    available_backends,
    get_backend,
    register_backend,
)
from .core import (
    BCircuit,
    Bit,
    Circ,
    Circuit,
    Qubit,
    QuipperError,
    Signed,
    bit,
    build,
    neg,
    qubit,
)
from .transform import (
    BINARY,
    TOFFOLI,
    aggregate_gate_count,
    decompose_generic,
    inline,
    reverse_bcircuit,
    total_gates,
    total_logical_gates,
    transform_bcircuit_fused,
)
from .optimize import (
    PeepholeOptimizer,
    PeepholePass,
    StreamOptimizer,
    optimize_bcircuit,
)
from . import obs
from .program import Program, main, register_capture, subroutine
from .streaming import GateStream

__version__ = "1.4.0"


def run_generic(
    fn,
    *shape_args,
    backend: str = "statevector",
    shots: int | None = None,
    in_values: dict[int, bool] | None = None,
    seed: int | None = None,
    **options,
) -> RunResult:
    """Generate the circuit of *fn* and execute it on a named backend.

    Deprecation shim: the fluent equivalent is
    ``Program.capture(fn, *shape_args).run(backend, shots=..., seed=...)``,
    which additionally caches the generated circuit for reuse by other
    consumers.  With ``shots`` the result carries a counts dictionary over
    the circuit's output wires; without, each backend returns its natural
    deterministic result (statevector, bits, or resources).

    This entry point covers *static* circuits.  Circuits that need
    dynamic lifting (measurement outcomes steering generation) cannot be
    built ahead of execution -- use :func:`repro.sim.run_generic`, which
    interleaves the two phases, for those.
    """
    return Program.capture(fn, *shape_args).run(
        backend, shots=shots, in_values=in_values, seed=seed, **options
    )


__all__ = [
    "Program",
    "GateStream",
    "main",
    "register_capture",
    "subroutine",
    "Circ",
    "build",
    "qubit",
    "bit",
    "Qubit",
    "Bit",
    "Signed",
    "neg",
    "Circuit",
    "BCircuit",
    "QuipperError",
    "Backend",
    "BackendError",
    "RunResult",
    "available_backends",
    "get_backend",
    "register_backend",
    "run_generic",
    "aggregate_gate_count",
    "total_gates",
    "total_logical_gates",
    "decompose_generic",
    "inline",
    "reverse_bcircuit",
    "transform_bcircuit_fused",
    "PeepholeOptimizer",
    "PeepholePass",
    "StreamOptimizer",
    "optimize_bcircuit",
    "TOFFOLI",
    "BINARY",
    "obs",
    "__version__",
]
