"""repro: a Python reproduction of Quipper (PLDI 2013).

Quipper is a scalable, expressive, functional, higher-order quantum
programming language, embedded in Haskell.  This package re-creates it as a
Python-embedded language: the extended circuit model (qubit initialization,
assertive termination, measurement, classical wires, classically-controlled
gates), the generation/execution phase distinction with dynamic lifting,
block structure and whole-circuit operators, hierarchical boxed subcircuits
scaling to trillions of gates, extensible quantum data types, automatic
oracle generation from classical code, simulators, and the seven algorithm
implementations of the paper's evaluation (BWT, BF, CL, GSE, QLS, USV, TF).

Quickstart::

    from repro import build, qubit, run_generic

    def mycirc(qc, a, b):
        qc.hadamard(a)
        qc.hadamard(b)
        qc.controlled_not(a, b)
        return a, b

    result = run_generic(mycirc, qubit, qubit, shots=1024, seed=7)
    print(result.counts)            # e.g. {'00': 270, '01': 243, ...}

Execution is pluggable: every consumer of a generated circuit -- dense
statevector simulation, stabilizer simulation, boolean evaluation,
resource estimation -- is a named backend behind
:func:`~repro.backends.get_backend`::

    from repro import build, get_backend, qubit

    bc, _ = build(mycirc, qubit, qubit)
    get_backend("statevector").run(bc, shots=1024)   # sampled counts
    get_backend("resources").run(bc).resources       # gate counts, depth

Circuits serialize to Quipper-ASCII text and back without inlining
(:func:`repro.io.dumps` / :func:`repro.io.loads`), and export to OpenQASM
2.0 (:func:`repro.io.bcircuit_to_qasm`).
"""

from .backends import (
    Backend,
    BackendError,
    RunResult,
    available_backends,
    get_backend,
    register_backend,
)
from .core import (
    BCircuit,
    Bit,
    Circ,
    Circuit,
    Qubit,
    QuipperError,
    Signed,
    bit,
    build,
    neg,
    qubit,
)
from .transform import (
    BINARY,
    TOFFOLI,
    aggregate_gate_count,
    decompose_generic,
    inline,
    reverse_bcircuit,
    total_gates,
    total_logical_gates,
)

__version__ = "1.1.0"


def run_generic(
    fn,
    *shape_args,
    backend: str = "statevector",
    shots: int | None = None,
    in_values: dict[int, bool] | None = None,
    seed: int | None = None,
    **options,
) -> RunResult:
    """Generate the circuit of *fn* and execute it on a named backend.

    The execution analogue of :func:`repro.output.print_generic`: the
    circuit is built once from the given shapes and handed to
    ``get_backend(backend, **options)``.  With ``shots`` the result
    carries a counts dictionary over the circuit's output wires; without,
    each backend returns its natural deterministic result (statevector,
    bits, or resources).

    This entry point covers *static* circuits.  Circuits that need
    dynamic lifting (measurement outcomes steering generation) cannot be
    built ahead of execution -- use :func:`repro.sim.run_generic`, which
    interleaves the two phases, for those.
    """
    bc, _ = build(fn, *shape_args)
    return get_backend(backend, **options).run(
        bc, shots=shots, in_values=in_values, seed=seed
    )


__all__ = [
    "Circ",
    "build",
    "qubit",
    "bit",
    "Qubit",
    "Bit",
    "Signed",
    "neg",
    "Circuit",
    "BCircuit",
    "QuipperError",
    "Backend",
    "BackendError",
    "RunResult",
    "available_backends",
    "get_backend",
    "register_backend",
    "run_generic",
    "aggregate_gate_count",
    "total_gates",
    "total_logical_gates",
    "decompose_generic",
    "inline",
    "reverse_bcircuit",
    "TOFFOLI",
    "BINARY",
    "__version__",
]
