"""Pluggable circuit execution backends.

Every consumer of a generated circuit -- the dense statevector simulator,
the stabilizer simulator, the boolean evaluator, the resource estimator --
is a :class:`Backend` registered under a short name::

    from repro import build, qubit
    from repro.backends import get_backend

    def bell(qc, a, b):
        qc.hadamard(a)
        qc.qnot(b, controls=a)
        return a, b

    bc, _ = build(bell, qubit, qubit)
    result = get_backend("statevector").run(bc, shots=1024, seed=7)
    print(result.counts)          # {'00': 515, '11': 509}

Built-in backends:

========== ============================= ==========================
name       engine                        capabilities
========== ============================= ==========================
statevector dense ndarray simulation     counts, statevector
clifford    CHP stabilizer tableau       counts
classical   boolean wire evaluation      counts, deterministic
resources   hierarchical count/depth     resources, deterministic
equiv       three-decider equivalence    deterministic
========== ============================= ==========================

The ``equiv`` backend is comparative: construct it with the circuit to
compare against (``get_backend("equiv", other=...)``) and ``run``
returns a structured verdict instead of counts -- see
:mod:`repro.backends.equiv`.
"""

from .base import Backend, BackendError, RunResult, marginal_counts
from .registry import available_backends, get_backend, register_backend

# Importing the adapter modules registers the built-in backends.
from . import classical as _classical  # noqa: F401
from . import clifford as _clifford  # noqa: F401
from . import equiv as _equiv  # noqa: F401
from . import resources as _resources  # noqa: F401
from . import statevector as _statevector  # noqa: F401
from .resources import format_resource_report

__all__ = [
    "Backend",
    "BackendError",
    "RunResult",
    "available_backends",
    "format_resource_report",
    "get_backend",
    "marginal_counts",
    "register_backend",
]
