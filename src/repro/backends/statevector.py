"""Dense statevector backend with batched and prefix-forked shot sampling.

Wraps :mod:`repro.sim.state` as the registry's ``"statevector"`` backend.
The hierarchy is inlined exactly once per circuit through
:func:`~repro.transform.inline.compile_flat` (memoized on the BCircuit),
and shot sampling has two fast paths:

* When the flattened circuit contains no *mid-circuit*
  ``Measure``/``Discard`` gate, the final state is prepared once and all
  shots are drawn from the joint output distribution with one multinomial
  draw -- the cost of 1024 shots is the cost of one simulation.  Trailing
  measurements commute with basis-state sampling and are stripped, so
  "run then measure everything" circuits batch too.
* Circuits with genuine mid-circuit measurement are stochastic, but their
  *deterministic prefix* (every gate before the first measurement) is not:
  it is simulated once and the state is *broadcast* into a batched
  statevector, so the stochastic suffix advances a whole batch of shots
  per kernel dispatch instead of replaying shot by shot.  Measurement
  randomness is pre-drawn shot-major, which keeps seeded counts
  bit-identical to the per-shot fork loop this replaced (and to full
  per-shot replays).  The batch size comes from the ``batch=`` backend
  option (``Program.run(..., batch=N)``), defaulting to a memory-bounded
  auto size.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import BCircuit
from ..core.gates import Discard, Gate, Init, Measure
from ..core.stream import StreamConsumer
from ..core.wires import QUANTUM
from ..obs import core as _obs
from ..sim.state import StateVector
from ..transform.inline import compile_flat, iter_flat_gates
from .base import Backend, BackendError, RunResult, outcome_key
from .registry import register_backend

#: Auto-sized fork batches target this many amplitudes in flight (one
#: MiB of complex128), sized from the *live* suffix width at the fork
#: point.  Batching multiplies throughput where per-dispatch overhead
#: dominates (a compact post-Term state replaying a stochastic suffix)
#: and is memory-bound where it does not (a full-width dense suffix), so
#: the auto size backs off to per-shot forking as the live state grows.
#: ``batch=`` overrides it in either direction.
_AUTO_BATCH_AMPLITUDES = 1 << 16


def _load_inputs(sim: StateVector, bc: BCircuit,
                 in_values: dict[int, bool]) -> None:
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            sim.add_qubit(wire, in_values.get(wire, False))
        else:
            sim.set_bit(wire, in_values.get(wire, False))


@register_backend
class StatevectorBackend(Backend):
    """Exact simulation: any circuit, exponential in qubit count."""

    name = "statevector"
    capabilities = frozenset({"counts", "statevector"})

    def __init__(self, max_width: int = 26, batch: int | None = None):
        self.max_width = max_width
        if batch is not None and batch < 1:
            raise BackendError(f"batch must be positive, got {batch}")
        self.batch = batch

    def supports(self, bc: BCircuit) -> bool:
        return bc.check() <= self.max_width

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        width = bc.check()
        if width > self.max_width:
            raise BackendError(
                f"circuit width {width} exceeds the statevector limit "
                f"({self.max_width}); use the resources backend to size it"
            )
        in_values = in_values or {}
        rng = np.random.default_rng(seed)
        if shots is None:
            # Single pass: stream the hierarchy lazily (no materialized
            # gate list, so arbitrarily deep/repeated hierarchies work).
            return self._run_state(bc, iter_flat_gates(bc), in_values, rng)
        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        # Sampling replays gates (per shot, or prefix + suffix), so it
        # consumes the compiled stream -- inlined once, memoized on bc.
        compiled = compile_flat(bc)
        gates = compiled.gates
        # Trailing measurements commute with basis-state sampling: drop
        # them and draw their wires from the joint output distribution
        # instead, so final-measurement circuits still take the one-
        # simulation fast path.
        tail = len(gates)
        while tail and isinstance(gates[tail - 1], Measure):
            tail -= 1
        measured = frozenset(g.wire for g in gates[tail:])
        if compiled.prefix_len < tail:
            if _obs.ENABLED:
                _obs.add("run.shots.forked", shots)
            counts, fork_batch = self._sample_forked(
                bc, gates, compiled.prefix_len, in_values, shots, rng
            )
            batched = False
            metadata = {
                "batched": batched, "width": width, "batch": fork_batch,
            }
        else:
            if _obs.ENABLED:
                _obs.add("run.shots.batched", shots)
            counts = self._sample_batched(
                bc, gates[:tail], in_values, shots, rng, measured
            )
            batched = True
            metadata = {"batched": batched, "width": width}
        return RunResult(
            backend=self.name,
            shots=shots,
            counts=counts,
            metadata=metadata,
        )

    def _fork_batch(self, shots: int, live_width: int) -> int:
        """How many shots one forked batch advances in lockstep.

        *live_width* is the suffix's peak qubit count -- the live state
        at the fork plus every suffix ``Init`` -- not the circuit's
        overall width: a 16-qubit circuit that uncomputes down to a
        4-qubit measured core batches thousands of shots per dispatch.
        """
        if self.batch is not None:
            return max(1, min(self.batch, shots))
        return max(1, min(shots, _AUTO_BATCH_AMPLITUDES >> live_width))

    # -- shots=None: expose the final state --------------------------------

    def _run_state(self, bc, gates, in_values, rng) -> RunResult:
        sim = StateVector(rng=rng)
        _load_inputs(sim, bc, in_values)
        for gate in gates:
            sim.execute(gate)
        wires = sorted(sim.axes, key=lambda w: sim.axes[w])
        return RunResult(
            backend=self.name,
            statevector=sim.state,
            statevector_wires=tuple(wires),
            bits=dict(sim.bits),
            metadata={"state": sim},
        )

    # -- measurement-free circuits: one simulation, one multinomial --------

    def _sample_batched(self, bc, gates: list[Gate], in_values,
                        shots: int, rng,
                        measured: frozenset[int] = frozenset(),
                        ) -> dict[str, int]:
        sim = StateVector(rng=rng)
        _load_inputs(sim, bc, in_values)
        for gate in gates:
            sim.execute(gate)
        return draw_counts(sim, bc.circuit.outputs, shots, rng, measured)

    # -- stochastic circuits: fork the state at the first measurement -------

    def _sample_forked(self, bc, gates: list[Gate], split: int,
                       in_values, shots: int, rng,
                       ) -> tuple[dict[str, int], int]:
        """Batched sampling with the deterministic prefix simulated once.

        ``gates[:split]`` contains no ``Measure``/``Discard`` and therefore
        consumes no randomness: its final state is shared by every shot.
        The state is broadcast into batches of up to *batch_size* members
        and the stochastic suffix advances each whole batch in lockstep,
        one kernel dispatch per gate.

        Seeded counts stay bit-identical to sequential per-shot forking:
        each batch pre-draws its measurement randomness *shot-major* with
        one ``rng.random((b, events))`` call -- which consumes the rng
        stream exactly as ``b`` sequential scalar simulations would --
        and the batched state then serves stochastic event j from column
        j.  ``events`` is static: one per suffix ``Measure``/``Discard``
        plus one per quantum output measured at readout.
        """
        base = StateVector(rng=rng)
        _load_inputs(base, bc, in_values)
        for gate in gates[:split]:
            base.execute(gate)
        suffix = gates[split:]
        outputs = bc.circuit.outputs
        live_width = base.num_qubits + sum(
            1 for g in suffix if isinstance(g, Init)
        )
        batch_size = self._fork_batch(shots, live_width)
        events = sum(
            1 for g in suffix if isinstance(g, (Measure, Discard))
        ) + sum(1 for _, t in outputs if t == QUANTUM)
        counts: dict[str, int] = {}
        done = 0
        while done < shots:
            b = min(batch_size, shots - done)
            fork = base.broadcast(b)
            if events:
                fork.preload_randoms(rng.random((b, events)))
            if _obs.ENABLED:
                _obs.add("sim.batch.forks")
                _obs.observe("sim.batch.occupancy", b)
            for gate in suffix:
                fork.execute(gate)
            columns = []
            for w, t in outputs:
                value = (
                    fork.measure_qubit(w) if t == QUANTUM else fork.bits[w]
                )
                column = np.asarray(value)
                if column.ndim == 0:
                    column = np.full(b, bool(column))
                columns.append(column.astype(bool))
            if columns:
                rows = np.stack(columns, axis=1)
                uniques, reps = np.unique(rows, axis=0, return_counts=True)
                for row, n in zip(uniques, reps):
                    key = outcome_key([bool(x) for x in row])
                    counts[key] = counts.get(key, 0) + int(n)
            else:
                key = outcome_key([])
                counts[key] = counts.get(key, 0) + b
            done += b
        return counts, batch_size


def draw_counts(sim: StateVector, outputs, shots: int, rng,
                measured: frozenset[int] = frozenset()) -> dict[str, int]:
    """Sample *shots* outcomes from a final state in one multinomial draw.

    *measured* wires were quantum until a stripped trailing ``Measure``;
    they are still qubit axes of the final state and get sampled.  Shared
    by the batched backend path and the streaming feed, so streamed and
    materialized sampling of measurement-free circuits are seed-exact.
    """
    qwires = [w for w, t in outputs if t == QUANTUM or w in measured]
    cbits = {
        w: sim.bits[w]
        for w, t in outputs
        if t != QUANTUM and w not in measured
    }
    if not qwires:
        key = outcome_key([cbits[w] for w, _ in outputs])
        return {key: shots}
    dist = sim.basis_probabilities(qwires)
    outcomes = list(dist)
    probs = np.array([dist[o] for o in outcomes])
    probs = probs / probs.sum()
    draws = rng.multinomial(shots, probs)
    counts: dict[str, int] = {}
    for outcome, n in zip(outcomes, draws):
        if n == 0:
            continue
        qvalue = dict(zip(qwires, outcome))
        key = outcome_key(
            [
                bool(qvalue[w]) if w in qvalue else cbits[w]
                for w, _ in outputs
            ]
        )
        counts[key] = counts.get(key, 0) + int(n)
    return counts


class StatevectorFeed(StreamConsumer):
    """Simulate a gate stream directly on the dense statevector kernels.

    The streaming analogue of the backend's ``shots=None`` path: every
    emitted gate is executed the moment it arrives (boxed calls expanded
    on the fly through the lazy inliner), so circuits are simulated while
    they are being *generated*, without a gate list or a BCircuit ever
    existing.  ``stochastic`` records whether any ``Measure``/``Discard``
    consumed randomness -- :meth:`repro.streaming.GateStream.run` uses it
    to decide between one-draw batched sampling and per-shot replay.
    """

    name = "statevector"

    def __init__(self, rng, in_values: dict[int, bool] | None = None,
                 max_width: int = 26):
        self.rng = rng
        self.in_values = in_values or {}
        self.max_width = max_width
        self.stochastic = False

    def begin(self, inputs, namespace) -> None:
        from ..transform.inline import StreamExpander

        self._expander = StreamExpander(namespace)
        self.sim = StateVector(rng=self.rng)
        quantum = [w for w, t in inputs if t == QUANTUM]
        if len(quantum) > self.max_width:
            raise BackendError(
                f"{len(quantum)} input qubits exceed the statevector "
                f"limit ({self.max_width}); use .resources() to size "
                "the circuit first"
            )
        for wire, wtype in inputs:
            if wtype == QUANTUM:
                self.sim.add_qubit(wire, self.in_values.get(wire, False))
            else:
                self.sim.set_bit(wire, self.in_values.get(wire, False))

    def gate(self, gate: Gate) -> None:
        from ..core.gates import Comment

        if isinstance(gate, Comment):
            return
        for flat in self._expander.expand(gate):
            self._exec(flat)

    def _exec(self, gate: Gate) -> None:
        from ..core.gates import Discard, Init

        if isinstance(gate, (Measure, Discard)):
            self.stochastic = True
        # Guard growth BEFORE allocating: one qubit past the cap would
        # double the state into gigabytes before any check could fire.
        if isinstance(gate, Init) and self.sim.num_qubits >= self.max_width:
            raise BackendError(
                f"stream width exceeded the statevector limit "
                f"({self.max_width} qubits); use .resources() to size "
                "the circuit first"
            )
        self.sim.execute(gate)

    def finish(self, end) -> RunResult:
        sim = self.sim
        wires = sorted(sim.axes, key=lambda w: sim.axes[w])
        self.outputs = end.outputs
        return RunResult(
            backend=self.name,
            statevector=sim.state,
            statevector_wires=tuple(wires),
            bits=dict(sim.bits),
            metadata={"state": sim, "stochastic": self.stochastic},
        )
