"""Equivalence-check backend: prove two circuits equal up to global phase.

Registers as ``backend="equiv"`` (see :meth:`repro.program.Program.
equivalent_to`): instead of sampling one circuit, it compares *two* and
returns a structured :class:`EquivVerdict` in
``RunResult.metadata["equiv"]``.  Three deciders run in escalation
order, cheapest first:

1. **clifford** -- when both circuits are measurement-free Clifford
   circuits over the same inputs, each is driven through the stabilizer
   tableau starting from the identity tableau.  The final tableau
   records the conjugation action on every ``X_i``/``Z_i`` generator,
   so tableau equality decides *unitary* equality up to global phase in
   polynomial time.  A tableau mismatch is a proof of distinctness; the
   statevector decider is then consulted for a concrete witness when
   the width allows.
2. **statevector** -- under the width cap, both circuits are simulated
   on every computational-basis input over the shared input wires
   (inputs only one side has -- e.g. exporter-allocated ancilla columns
   after a QASM round trip -- are forced to |0>, which is their defined
   value).  Final classical bits must agree exactly and final states up
   to one phase; for measurement-free pairs that phase must be *common
   across all basis inputs*, which separates true global phase from an
   observable relative phase.  A mismatch yields a ``distinct`` verdict
   with the witness basis input.
3. **normal-form** -- for circuits too wide to simulate, both sides are
   inlined, peephole-optimized to a fixpoint (:mod:`repro.optimize`),
   wire-canonicalized, and compared as canonical Quipper-ASCII text.
   Textual equality proves equivalence (every peephole rewrite is
   unitarity-preserving); inequality proves nothing, so the verdict
   degrades to ``unknown`` rather than ``distinct``.

The verdict records which decider settled the question and what it
cost.  ``distinct`` verdicts from the statevector decider carry a
witness: the basis-input assignment on which the two circuits
observably differ.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.circuit import BCircuit
from ..core.errors import AssertionFailedError, SimulationError
from ..core.gates import Comment, Discard, Measure, NamedGate
from ..core.wires import QUANTUM
from ..sim.clifford import CliffordState
from ..sim.state import StateVector
from ..transform import canonicalize_wires, inline
from .base import Backend, BackendError, RunResult
from .registry import register_backend


@dataclass
class EquivVerdict:
    """The structured outcome of an equivalence check.

    ``verdict`` is ``"equivalent"``, ``"distinct"``, or ``"unknown"``;
    ``decider`` names the decider that settled it (``"clifford"``,
    ``"statevector"``, ``"normal-form"``, or ``None`` when nothing
    could decide); ``witness`` carries the distinguishing basis input
    for ``distinct`` verdicts found by simulation; ``reason`` is a
    human-readable one-liner; ``cost`` records per-decider work
    counters and the total elapsed seconds.
    """

    verdict: str
    decider: str | None = None
    witness: dict[str, Any] | None = None
    reason: str = ""
    cost: dict[str, Any] = field(default_factory=dict)

    @property
    def is_equivalent(self) -> bool:
        """True only for a proven ``"equivalent"`` verdict."""
        return self.verdict == "equivalent"


def _prepare(bc: BCircuit) -> BCircuit:
    """Inline the hierarchy and canonicalize wire ids for comparison.

    Canonicalization renames inputs first (in input order), then every
    other wire in first-use order -- so two circuits that differ only
    in wire-id bookkeeping (a round-tripped import, an optimized copy)
    line up positionally.
    """
    return canonicalize_wires(inline(bc))


def _flat_gates(bc: BCircuit) -> list:
    return [g for g in bc.circuit.gates if not isinstance(g, Comment)]


def _quantum_inputs(bc: BCircuit) -> list[int]:
    return [w for w, t in bc.circuit.inputs if t == QUANTUM]


# ---------------------------------------------------------------------------
# Decider 1: Clifford tableau comparison
# ---------------------------------------------------------------------------


def _try_clifford(a: BCircuit, b: BCircuit, cost: dict) -> str | None:
    """Tableau comparison; ``"equivalent"``/``"distinct"``/None.

    Applicable only to measurement-free, allocation-free NamedGate
    streams over identical quantum inputs: then the simulation tableau,
    seeded with the identity generators, ends as the conjugation table
    of the whole unitary, and array equality decides equivalence up to
    global phase.
    """
    gates_a, gates_b = _flat_gates(a), _flat_gates(b)
    if a.circuit.inputs != b.circuit.inputs:
        return None
    if any(t != QUANTUM for _, t in a.circuit.inputs):
        return None
    streams = (gates_a, gates_b)
    if any(
        not isinstance(g, NamedGate) for gates in streams for g in gates
    ):
        return None
    wires = _quantum_inputs(a)
    tableaus = []
    for gates in streams:
        state = CliffordState(wires)
        try:
            for gate in gates:
                state.execute(gate)
        except SimulationError:
            return None  # non-Clifford gate: escalate
        tableaus.append(state.tableau)
    cost["clifford_gates"] = len(gates_a) + len(gates_b)
    ta, tb = tableaus
    same = (
        np.array_equal(ta.x, tb.x)
        and np.array_equal(ta.z, tb.z)
        and np.array_equal(ta.r, tb.r)
    )
    return "equivalent" if same else "distinct"


# ---------------------------------------------------------------------------
# Decider 2: statevector comparison over all basis inputs
# ---------------------------------------------------------------------------


def _lazify_inputs(bc: BCircuit, keep: list[int]) -> BCircuit:
    """Demote quantum inputs outside *keep* to just-in-time ``Init(|0>)``.

    A QASM round trip gives every historical wire id its own ``qreg``
    column, so the re-imported circuit can declare far more inputs than
    it ever holds live at once.  Forcing those extra inputs to |0> is
    their defined value; materializing each as an ``Init(False)``
    immediately before its first use (instead of loading them all up
    front) keeps the simulated width equal to the circuit's true peak
    liveness, which is what the width cap should measure.
    """
    keep_set = set(keep)
    pending = {
        w for w, t in bc.circuit.inputs
        if t == QUANTUM and w not in keep_set
    }
    if not pending:
        return bc
    from ..core.gates import Init

    gates = []
    for gate in bc.circuit.gates:
        if not isinstance(gate, Comment):
            for wire, _ in gate.wires_in():
                if wire in pending:
                    pending.discard(wire)
                    gates.append(Init(wire, False))
        gates.append(gate)
    for wire in sorted(pending):  # declared but never touched
        gates.append(Init(wire, False))
    inputs = tuple(
        (w, t) for w, t in bc.circuit.inputs
        if t != QUANTUM or w in keep_set
    )
    circuit = type(bc.circuit)(inputs, tuple(gates), bc.circuit.outputs)
    return BCircuit(circuit, bc.namespace)


def _final_state(bc: BCircuit, in_values: dict[int, bool],
                 seed: int) -> StateVector:
    """Simulate *bc* from a basis input; both sides share the seed so
    measurement draws align on equivalent circuits."""
    sim = StateVector(rng=np.random.default_rng(seed))
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            sim.add_qubit(wire, in_values.get(wire, False))
        else:
            sim.set_bit(wire, in_values.get(wire, False))
    for gate in bc.circuit.gates:
        if not isinstance(gate, Comment):
            sim.execute(gate)
    return sim


def _aligned_state(sim: StateVector) -> tuple[tuple[int, ...], np.ndarray]:
    """The live wire ids (sorted) and the state with axes in that order."""
    wires = sorted(sim.axes)
    array = np.asarray(sim.state)
    if wires:
        array = np.moveaxis(
            array, [sim.axes[w] for w in wires], range(len(wires))
        )
    return tuple(wires), array.ravel()


def _try_statevector(a: BCircuit, b: BCircuit, *, max_width: int,
                     atol: float, seed: int,
                     cost: dict) -> tuple[str, dict | None, str] | None:
    """Exhaustive basis-input comparison under the width cap.

    Returns ``(verdict, witness, reason)`` or ``None`` when the pair is
    too wide.  Sound and complete for unitary circuits: equality of the
    action on every basis state with one common phase *is* equality up
    to global phase.  For stochastic circuits (measure/discard) the
    comparison is per-trajectory under a shared seed.
    """
    in_a, in_b = _quantum_inputs(a), _quantum_inputs(b)
    shared = in_a if len(in_a) <= len(in_b) else in_b
    if len(shared) > max_width:
        return None
    a, b = _lazify_inputs(a, shared), _lazify_inputs(b, shared)
    if max(a.check(), b.check()) > max_width:
        return None
    stochastic = any(
        isinstance(g, (Measure, Discard))
        for bc in (a, b)
        for g in bc.circuit.gates
    )
    phases: list[tuple[dict, complex]] = []
    cost["basis_states"] = 2 ** len(shared)
    for bits in itertools.product((False, True), repeat=len(shared)):
        in_values = dict(zip(shared, bits))
        witness = {"in_values": {w: int(v) for w, v in in_values.items()}}
        failed = []
        sims = []
        for bc in (a, b):
            try:
                sims.append(_final_state(bc, in_values, seed))
            except AssertionFailedError:
                failed.append(bc)
        if len(failed) == 1:
            return ("distinct", witness,
                    "a termination assertion fails on one side only")
        if failed:
            continue  # both sides reject this input identically
        sim_a, sim_b = sims
        if sim_a.bits != sim_b.bits:
            return ("distinct", witness, "final classical bits differ")
        wires_a, state_a = _aligned_state(sim_a)
        wires_b, state_b = _aligned_state(sim_b)
        if wires_a != wires_b:
            return ("distinct", witness, "live output wires differ")
        if not wires_a:
            continue
        anchor = int(np.argmax(np.abs(state_a)))
        if abs(state_b[anchor]) < atol:
            return ("distinct", witness, "final states differ")
        phase = state_a[anchor] / state_b[anchor]
        if abs(abs(phase) - 1.0) > atol or not np.allclose(
            state_a, phase * state_b, atol=atol
        ):
            return ("distinct", witness, "final states differ")
        phases.append((witness, phase))
    if not stochastic and phases:
        reference = phases[0][1]
        for witness, phase in phases[1:]:
            if abs(phase - reference) > atol:
                return (
                    "distinct", witness,
                    "states agree only up to a relative (basis-"
                    "dependent) phase",
                )
    return ("equivalent", None, "all basis inputs agree up to one phase")


# ---------------------------------------------------------------------------
# Decider 3: normal-form comparison
# ---------------------------------------------------------------------------


def _try_normal_form(a: BCircuit, b: BCircuit,
                     cost: dict) -> str | None:
    """Optimize both sides to a peephole fixpoint and compare the text.

    Every pass in the default chain preserves the circuit's semantics,
    so equal canonical serializations prove equivalence at any width.
    Unequal text proves nothing (the rewrite system is not confluent
    for arbitrary circuits), so the caller must degrade to ``unknown``.
    """
    from ..io import dumps
    from ..optimize import DEFAULT_WINDOW, optimize_bcircuit, resolve_passes

    passes = resolve_passes(())
    normal = []
    for bc in (a, b):
        optimized = canonicalize_wires(
            optimize_bcircuit(bc, passes, window=DEFAULT_WINDOW)
        )
        normal.append(dumps(optimized))
    cost["normal_form_gates"] = len(a.circuit.gates) + len(b.circuit.gates)
    return "equivalent" if normal[0] == normal[1] else None


# ---------------------------------------------------------------------------
# The escalation driver and the backend
# ---------------------------------------------------------------------------


def decide_equivalence(a: BCircuit, b: BCircuit, *, max_width: int = 12,
                       atol: float = 1e-7,
                       seed: int | None = None) -> EquivVerdict:
    """Decide whether two circuits are equal up to global phase.

    Runs the three deciders in escalation order (Clifford tableau,
    statevector basis enumeration under *max_width*, peephole normal
    form) and returns the first settled :class:`EquivVerdict`.  *seed*
    fixes the shared measurement-draw stream for stochastic circuits.
    """
    start = time.perf_counter()
    cost: dict[str, Any] = {}
    a, b = _prepare(a), _prepare(b)

    def done(verdict, decider, witness=None, reason=""):
        cost["elapsed_s"] = round(time.perf_counter() - start, 6)
        return EquivVerdict(
            verdict=verdict, decider=decider, witness=witness,
            reason=reason, cost=cost,
        )

    clifford = _try_clifford(a, b, cost)
    if clifford == "equivalent":
        return done("equivalent", "clifford",
                    reason="stabilizer tableaus identical")
    if clifford == "distinct":
        # The tableau mismatch is already a proof; the statevector
        # decider is consulted only to attach a concrete witness.
        sv = _try_statevector(
            a, b, max_width=max_width, atol=atol, seed=seed or 0,
            cost=cost,
        )
        if sv is not None and sv[0] == "distinct":
            return done("distinct", "clifford", sv[1], sv[2])
        return done("distinct", "clifford",
                    reason="stabilizer tableaus differ")
    sv = _try_statevector(
        a, b, max_width=max_width, atol=atol, seed=seed or 0, cost=cost
    )
    if sv is not None:
        verdict, witness, reason = sv
        return done(verdict, "statevector", witness, reason)
    if _try_normal_form(a, b, cost) == "equivalent":
        return done("equivalent", "normal-form",
                    reason="identical peephole normal forms")
    return done(
        "unknown", None,
        reason="too wide to simulate and the normal forms differ; "
        "this proves nothing either way",
    )


@register_backend
class EquivBackend(Backend):
    """The ``equiv`` backend: run = compare against ``other``.

    Construct with ``get_backend("equiv", other=...)`` (or through
    :meth:`repro.program.Program.equivalent_to`); ``run(bc)`` then
    decides ``bc ~ other`` and returns the :class:`EquivVerdict` in
    ``metadata["equiv"]``.  Options: *other* (a Program or BCircuit,
    required), *max_width* (statevector decider cap, default 12),
    *atol* (amplitude tolerance, default 1e-7).
    """

    name = "equiv"
    capabilities = frozenset({"deterministic"})

    def __init__(self, other=None, max_width: int = 12,
                 atol: float = 1e-7):
        if other is None:
            raise BackendError(
                "the equiv backend needs a circuit to compare against: "
                'get_backend("equiv", other=...) or '
                "Program.equivalent_to(other)"
            )
        self.other = getattr(other, "bcircuit", other)
        if not isinstance(self.other, BCircuit):
            raise BackendError(
                f"other must be a Program or BCircuit, got {other!r}"
            )
        self.max_width = max_width
        self.atol = atol

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        """Decide ``bc ~ other``; the verdict rides in metadata.

        *shots* and *in_values* do not apply to equivalence checking
        and are rejected when given; *seed* fixes the shared
        measurement-draw stream used for stochastic circuits.
        """
        if shots is not None:
            raise BackendError("the equiv backend does not sample; "
                               "drop shots=")
        if in_values:
            raise BackendError(
                "the equiv backend enumerates basis inputs itself; "
                "drop in_values="
            )
        verdict = decide_equivalence(
            bc, self.other, max_width=self.max_width, atol=self.atol,
            seed=seed,
        )
        return RunResult(
            backend=self.name,
            metadata={"equiv": verdict, "verdict": verdict.verdict},
        )
