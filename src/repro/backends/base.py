"""The abstract execution backend and its structured result type.

The paper treats a generated circuit as a *representation* consumed by many
interpreters: "meaning is assigned to low-level quantum circuits" by
printing, counting, transforming, or simulating them (Sections 4.4.5, 5.3).
This module makes that explicit: every consumer is a :class:`Backend` that
takes a :class:`~repro.core.circuit.BCircuit` and returns a
:class:`RunResult`.  Backends are looked up by name through
:func:`repro.backends.get_backend`, so algorithms and CLIs can switch
execution targets (statevector, stabilizer, boolean, resource estimation)
without knowing anything about the engine behind the name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.circuit import BCircuit
from ..core.errors import QuipperError
from ..core.wires import QUANTUM


class BackendError(QuipperError):
    """A backend cannot run the requested circuit or options."""


@dataclass
class RunResult:
    """The structured outcome of one :meth:`Backend.run` call.

    Which fields are populated depends on the backend's capabilities:

    * ``counts`` -- sampled measurement outcomes, keyed by bitstring.  The
      k-th character of a key is the value of the k-th output wire of the
      circuit (``bc.circuit.outputs`` order), ``'0'`` or ``'1'``.
    * ``statevector`` -- the final state over the output qubits (only for
      ``shots=None`` runs of backends with the ``"statevector"``
      capability); ``statevector_wires`` gives the wire id of each axis.
    * ``bits`` -- final values of classical output wires (deterministic
      runs only).
    * ``resources`` -- static cost estimates (gate counts, depth, width).
    """

    backend: str
    shots: int | None = None
    counts: dict[str, int] | None = None
    statevector: np.ndarray | None = None
    statevector_wires: tuple[int, ...] = ()
    bits: dict[int, bool] | None = None
    resources: dict[str, Any] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def probabilities(self) -> dict[str, float]:
        """Sampled counts normalized to relative frequencies."""
        if not self.counts:
            raise BackendError(f"backend {self.backend!r} returned no counts")
        total = sum(self.counts.values())
        return {k: v / total for k, v in self.counts.items()}

    def most_frequent(self) -> str:
        """The modal outcome bitstring of a sampled run."""
        if not self.counts:
            raise BackendError(f"backend {self.backend!r} returned no counts")
        return max(self.counts, key=lambda k: (self.counts[k], k))


class Backend:
    """Abstract base class for circuit execution backends.

    Subclasses set ``name`` and ``capabilities`` and implement
    :meth:`run`.  ``capabilities`` is a frozenset drawn from ``"counts"``,
    ``"statevector"``, ``"resources"``, ``"deterministic"`` -- callers use
    it to pick a backend that can answer their question.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: What kinds of results this backend can produce.
    capabilities: frozenset[str] = frozenset()

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        """Execute *bc* and return a :class:`RunResult`.

        ``shots`` requests repeated measurement of the output wires;
        ``in_values`` maps input wire ids to initial basis values (default
        all False); ``seed`` makes sampling reproducible.
        """
        raise NotImplementedError

    def supports(self, bc: BCircuit) -> bool:
        """Cheap static admission check (default: accept everything)."""
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def output_wire_order(bc: BCircuit) -> tuple[tuple[int, str], ...]:
    """The (wire, type) outputs a counts bitstring is keyed over."""
    return tuple(bc.circuit.outputs)


def outcome_key(bits: list[bool]) -> str:
    """Render one sampled outcome as a counts-dictionary key."""
    return "".join("1" if b else "0" for b in bits)


def quantum_outputs(bc: BCircuit) -> list[int]:
    """Wire ids of the quantum output wires, in output order."""
    return [w for w, t in bc.circuit.outputs if t == QUANTUM]


def marginal_counts(result: RunResult, bc: BCircuit,
                    wires: list[int]) -> dict[int, int]:
    """Marginalize sampled counts onto a register of output wires.

    Each outcome is decoded over *wires* (most significant first, the
    register convention of :class:`~repro.datatypes.qdint.QDInt`) into an
    integer; counts of outcomes agreeing on those wires are summed.  This
    is how algorithms read one register out of a whole-circuit counts
    dictionary.
    """
    if not result.counts:
        raise BackendError(f"backend {result.backend!r} returned no counts")
    position = {w: k for k, (w, _) in enumerate(bc.circuit.outputs)}
    try:
        indices = [position[w] for w in wires]
    except KeyError as exc:
        raise BackendError(
            f"wire {exc.args[0]} is not a circuit output"
        ) from None
    out: dict[int, int] = {}
    for key, count in result.counts.items():
        value = 0
        for index in indices:
            value = (value << 1) | (key[index] == "1")
        out[value] = out.get(value, 0) + count
    return out
