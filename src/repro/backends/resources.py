"""Resource-estimation backend: gate counts, depth, and width as a target.

"Quipper: Concrete Resource Estimation in Quantum Algorithms" frames
resource estimation as just another way to *execute* a circuit: instead of
amplitudes, the run produces costs.  This backend wraps the hierarchical
gate counter (Section 5.4 of the PLDI paper -- exact counts at
trillion-gate scale without inlining) and the critical-path depth
machinery behind the same :class:`~repro.backends.Backend` interface as
the simulators, so a CLI can flip between sampling and costing a circuit
by changing one string.
"""

from __future__ import annotations

from ..core.circuit import BCircuit
from ..core.errors import QuipperError
from ..core.gates import BoxCall, Comment
from ..core.stream import StreamConsumer
from ..transform.count import (
    StreamingCounter,
    aggregate_gate_count,
    total_gates,
    total_logical_gates,
)
from ..transform.depth import StreamingDepth, circuit_depth, t_depth
from .base import Backend, RunResult
from .registry import register_backend


@register_backend
class ResourceBackend(Backend):
    """Static cost analysis; ``shots`` is accepted and ignored."""

    name = "resources"
    capabilities = frozenset({"resources", "deterministic"})

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        counts = aggregate_gate_count(bc)
        resources = {
            "gate_counts": dict(counts),
            "total_gates": total_gates(counts),
            "logical_gates": total_logical_gates(counts),
            "depth": circuit_depth(bc),
            "t_depth": t_depth(bc),
            "width": bc.check(),
            "inputs": bc.circuit.in_arity,
            "outputs": bc.circuit.out_arity,
            "subroutines": len(bc.namespace),
        }
        return RunResult(backend=self.name, shots=shots, resources=resources)


class StreamingResources(StreamConsumer):
    """The ``resources`` backend's cost report, computed over a stream.

    Fans each streamed gate out to the streaming counter, both depth
    consumers, and a width (liveness high-water mark) tracker, producing
    the exact dict of :class:`ResourceBackend` without the main circuit
    ever existing.  Boxed subroutine calls are costed symbolically --
    counts and depths from per-name memos, the transient width from
    :meth:`~repro.core.circuit.Subroutine.width` -- so repeated-subroutine
    streams of any logical size finish in O(subroutine size) memory.
    """

    def begin(self, inputs, namespace) -> None:
        self.namespace = namespace
        #: Names whose width caches have been re-validated this stream.
        self._width_fresh: set[str] = set()
        self._counter = StreamingCounter()
        self._depth = StreamingDepth()
        self._t_depth = StreamingDepth(t_only=True)
        self._counter.begin(inputs, namespace)
        self._depth.begin(inputs, namespace)
        self._t_depth.begin(inputs, namespace)
        self._live: dict[int, str] = dict(inputs)
        self._peak = len(self._live)

    def gate(self, gate) -> None:
        self._counter.gate(gate)
        self._depth.gate(gate)
        self._t_depth.gate(gate)
        if isinstance(gate, Comment):
            return
        live = self._live
        if isinstance(gate, BoxCall):
            transient = (
                len(live) - len(gate.in_wires) + self._sub_width(gate.name)
            )
            self._peak = max(self._peak, transient)
        outs = gate.wires_out()
        out_ids = {w for w, _ in outs}
        for wire, _ in gate.wires_in():
            if wire not in out_ids:
                live.pop(wire, None)
        for wire, wtype in outs:
            live[wire] = wtype
        self._peak = max(self._peak, len(live))

    def _sub_width(self, name: str) -> int:
        """A subroutine's width with stale-cache protection.

        ``Subroutine._width`` memos are only trustworthy for the
        namespace state they were computed against; a replayed (or
        rule-streamed) hierarchy may carry caches from before an
        in-place edit or from a pre-transform namespace.
        ``BCircuit.check`` handles this by invalidating *everything* up
        front -- impossible here, because a stream's namespace keeps
        growing.  Instead, the first time each subroutine is
        encountered, its whole transitive callee closure is invalidated
        before its width is computed; bodies are immutable for the rest
        of the stream, so the recomputed caches stay valid.
        """
        namespace = self.namespace
        sub = namespace.get(name)
        if sub is None:
            raise QuipperError(f"undefined subroutine {name!r}")
        if name not in self._width_fresh:
            stack, seen = [name], set()
            while stack:
                current = stack.pop()
                if current in seen or current in self._width_fresh:
                    continue
                seen.add(current)
                dep = namespace.get(current)
                if dep is None:
                    raise QuipperError(
                        f"undefined subroutine {current!r}"
                    )
                dep.invalidate_width()
                stack.extend(
                    g.name
                    for g in dep.circuit.gates
                    if isinstance(g, BoxCall)
                )
            self._width_fresh.update(seen)
        return sub.width(namespace)

    def finish(self, end) -> dict:
        counts = self._counter.finish(end)
        return {
            "gate_counts": dict(counts),
            "total_gates": total_gates(counts),
            "logical_gates": total_logical_gates(counts),
            "depth": self._depth.finish(end),
            "t_depth": self._t_depth.finish(end),
            "width": self._peak,
            "inputs": len(end.inputs),
            "outputs": len(end.outputs),
            "subroutines": len(end.namespace),
        }


def format_resource_report(result: RunResult) -> str:
    """Render a ResourceBackend result in the paper's gatecount style,
    extended with the depth and T-depth lines."""
    from ..output.gatecount import _fmt_key

    res = result.resources or {}
    lines = ["Aggregated gate count:"]
    lines.extend(
        f"{count}: {_fmt_key(name, pos, neg)}"
        for (name, pos, neg), count in sorted(res["gate_counts"].items())
    )
    lines.append(f"Total gates: {res['total_gates']}")
    lines.append(f"Inputs: {res['inputs']}")
    lines.append(f"Outputs: {res['outputs']}")
    lines.append(f"Qubits in circuit: {res['width']}")
    lines.append(f"Depth: {res['depth']}")
    lines.append(f"T-depth: {res['t_depth']}")
    return "\n".join(lines)
