"""Resource-estimation backend: gate counts, depth, and width as a target.

"Quipper: Concrete Resource Estimation in Quantum Algorithms" frames
resource estimation as just another way to *execute* a circuit: instead of
amplitudes, the run produces costs.  This backend wraps the hierarchical
gate counter (Section 5.4 of the PLDI paper -- exact counts at
trillion-gate scale without inlining) and the critical-path depth
machinery behind the same :class:`~repro.backends.Backend` interface as
the simulators, so a CLI can flip between sampling and costing a circuit
by changing one string.
"""

from __future__ import annotations

from ..core.circuit import BCircuit
from ..transform.count import (
    aggregate_gate_count,
    total_gates,
    total_logical_gates,
)
from ..transform.depth import circuit_depth, t_depth
from .base import Backend, RunResult
from .registry import register_backend


@register_backend
class ResourceBackend(Backend):
    """Static cost analysis; ``shots`` is accepted and ignored."""

    name = "resources"
    capabilities = frozenset({"resources", "deterministic"})

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        counts = aggregate_gate_count(bc)
        resources = {
            "gate_counts": dict(counts),
            "total_gates": total_gates(counts),
            "logical_gates": total_logical_gates(counts),
            "depth": circuit_depth(bc),
            "t_depth": t_depth(bc),
            "width": bc.check(),
            "inputs": bc.circuit.in_arity,
            "outputs": bc.circuit.out_arity,
            "subroutines": len(bc.namespace),
        }
        return RunResult(backend=self.name, shots=shots, resources=resources)


def format_resource_report(result: RunResult) -> str:
    """Render a ResourceBackend result in the paper's gatecount style,
    extended with the depth and T-depth lines."""
    from ..output.gatecount import _fmt_key

    res = result.resources or {}
    lines = ["Aggregated gate count:"]
    lines.extend(
        f"{count}: {_fmt_key(name, pos, neg)}"
        for (name, pos, neg), count in sorted(res["gate_counts"].items())
    )
    lines.append(f"Total gates: {res['total_gates']}")
    lines.append(f"Inputs: {res['inputs']}")
    lines.append(f"Outputs: {res['outputs']}")
    lines.append(f"Qubits in circuit: {res['width']}")
    lines.append(f"Depth: {res['depth']}")
    lines.append(f"T-depth: {res['t_depth']}")
    return "\n".join(lines)
