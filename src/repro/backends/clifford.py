"""Stabilizer backend: polynomial-time sampling of Clifford circuits.

Wraps :mod:`repro.sim.clifford` as the ``"clifford"`` backend.  The
hierarchical circuit is inlined *once*; each shot replays the flat gate
list on a fresh tableau, so sampling cost is shots x (polynomial tableau
update), independent of the inlining cost.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import BCircuit
from ..core.gates import Gate, Init
from ..core.stream import StreamConsumer
from ..core.wires import QUANTUM
from ..sim.clifford import CliffordState
from ..transform.inline import compile_flat
from .base import Backend, BackendError, RunResult, outcome_key
from .registry import register_backend


def _wire_plan(bc: BCircuit, gates: list[Gate]) -> list[int]:
    """Every qubit wire the tableau must pre-allocate, in first-use order."""
    wires: list[int] = []
    seen: set[int] = set()
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            wires.append(wire)
            seen.add(wire)
    for gate in gates:
        if isinstance(gate, Init) and gate.wire not in seen:
            wires.append(gate.wire)
            seen.add(gate.wire)
    return wires


@register_backend
class CliffordBackend(Backend):
    """CHP tableau simulation for Clifford circuits (H, S, CNOT, ...)."""

    name = "clifford"
    capabilities = frozenset({"counts"})

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        in_values = in_values or {}
        rng = np.random.default_rng(seed)
        # One inline per circuit: the compiled stream is memoized on the
        # BCircuit, so repeated runs and per-shot replays never re-walk
        # the box hierarchy.
        gates = compile_flat(bc).gates
        wires = _wire_plan(bc, gates)
        if shots is None:
            state = self._run_once(bc, gates, wires, in_values, rng)
            return RunResult(
                backend=self.name,
                bits=dict(state.bits),
                metadata={"state": state},
            )
        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        outputs = bc.circuit.outputs
        counts: dict[str, int] = {}
        for _ in range(shots):
            state = self._run_once(bc, gates, wires, in_values, rng)
            key = outcome_key(
                [
                    state.tableau.measure(state.index[w])
                    if t == QUANTUM
                    else state.bits[w]
                    for w, t in outputs
                ]
            )
            counts[key] = counts.get(key, 0) + 1
        return RunResult(backend=self.name, shots=shots, counts=counts)

    @staticmethod
    def _run_once(bc, gates, wires, in_values, rng) -> CliffordState:
        state = CliffordState(wires, rng=rng)
        for wire, wtype in bc.circuit.inputs:
            if wtype == QUANTUM:
                if in_values.get(wire, False):
                    state.tableau.x_gate(state.index[wire])
            else:
                state.bits[wire] = in_values.get(wire, False)
        for gate in gates:
            state.execute(gate)
        return state


class CliffordFeed(StreamConsumer):
    """Run a gate stream on a dynamically-growing stabilizer tableau.

    The batch backend pre-scans the flat gate list to size its tableau;
    a stream has no list to scan, so this feed uses
    :class:`~repro.sim.clifford.StreamingCliffordState`, which allocates
    a tableau column the first time each wire appears.  Boxed calls are
    expanded on the fly through the lazy inliner.
    """

    name = "clifford"

    def __init__(self, rng, in_values: dict[int, bool] | None = None):
        self.rng = rng
        self.in_values = in_values or {}

    def begin(self, inputs, namespace) -> None:
        from ..sim.clifford import StreamingCliffordState
        from ..transform.inline import StreamExpander

        self._expander = StreamExpander(namespace)
        self.state = StreamingCliffordState(rng=self.rng)
        for wire, wtype in inputs:
            if wtype == QUANTUM:
                self.state.ensure_wire(wire)
                if self.in_values.get(wire, False):
                    self.state.tableau.x_gate(self.state.index[wire])
            else:
                self.state.bits[wire] = self.in_values.get(wire, False)

    def gate(self, gate: Gate) -> None:
        from ..core.gates import Comment

        if isinstance(gate, Comment):
            return
        for flat in self._expander.expand(gate):
            self.state.execute(flat)

    def finish(self, end) -> RunResult:
        self.outputs = end.outputs
        return RunResult(
            backend=self.name,
            bits=dict(self.state.bits),
            metadata={"state": self.state},
        )
