"""Boolean-evaluation backend for classical/reversible circuits.

Wraps :mod:`repro.sim.classical` as the ``"classical"`` backend.  The
circuit is evaluated once -- outcomes are deterministic -- and a shots
request simply reports the single outcome with the full shot weight,
so the counts interface is uniform across backends.
"""

from __future__ import annotations

from ..core.circuit import BCircuit
from ..sim.classical import evaluate
from .base import Backend, BackendError, RunResult, outcome_key
from .registry import register_backend


@register_backend
class ClassicalBackend(Backend):
    """Deterministic evaluation of NOT/Toffoli/CGate circuits."""

    name = "classical"
    capabilities = frozenset({"counts", "deterministic"})

    def run(
        self,
        bc: BCircuit,
        *,
        shots: int | None = None,
        in_values: dict[int, bool] | None = None,
        seed: int | None = None,
    ) -> RunResult:
        if shots is not None and shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        out_values = evaluate(bc, in_values or {})
        key = outcome_key([out_values[w] for w, _ in bc.circuit.outputs])
        return RunResult(
            backend=self.name,
            shots=shots,
            counts={key: shots if shots else 1},
            bits=dict(out_values),
        )
