"""String-keyed backend registry and factory.

Mirrors the builder-over-backends pattern of mainstream quantum stacks: a
backend class registers under a short name once, and every consumer asks
the registry by name.  Registration is idempotent by name; re-registering
a name replaces the previous entry (useful for tests injecting fakes).
"""

from __future__ import annotations

from typing import Callable, Type

from .base import Backend, BackendError

_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(factory: Type[Backend] | Callable[..., Backend]):
    """Register a backend class (or factory) under its ``name``.

    Usable as a decorator::

        @register_backend
        class MyBackend(Backend):
            name = "mine"
    """
    name = getattr(factory, "name", "")
    if not name:
        raise BackendError(f"backend {factory!r} has no name to register")
    _REGISTRY[name] = factory
    return factory


def get_backend(name: str, **options) -> Backend:
    """Instantiate the backend registered under *name*.

    Keyword options are passed to the backend constructor.  Raises
    :class:`BackendError` with the list of known names when *name* is
    unknown.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {known}"
        )
    return factory(**options)


def available_backends() -> dict[str, frozenset[str]]:
    """Registered backend names mapped to their capability sets."""
    return {
        name: getattr(factory, "capabilities", frozenset())
        for name, factory in sorted(_REGISTRY.items())
    }
