"""OpenQASM 2.0 importer feeding the :class:`~repro.program.Program` pipeline.

Inverts :func:`repro.io.qasm.bcircuit_to_qasm` and accepts general
OpenQASM 2 programs against ``qelib1.inc``:

* every ``qreg`` qubit becomes a circuit *input* wire (QASM qubits are
  implicitly |0>-initialized, which is exactly how the equivalence
  backend pads missing inputs);
* the qelib1 gate set maps back onto the repro vocabulary through a
  fixed table (``x`` -> ``X``, ``sdg`` -> ``S`` inverted, ``rz`` ->
  ``Rz``, ``u1`` -> ``R(2pi/%)`` when the angle is bit-exactly
  ``+-2pi/2^p``, ``ccx`` -> doubly-controlled ``X``, ...), with
  ``u2``/``u3``/``U`` decomposed into ``Rz``/``Ry`` and an explicit
  global-phase gate so the operator is reproduced exactly, not just up
  to phase;
* ``measure`` becomes the extended-model :class:`~repro.core.gates.Measure`
  (the wire id is preserved and its type flips to classical), and
  ``if (c == v) ...`` becomes a classical :class:`~repro.core.gates.Control`;
* parameterless ``gate`` definitions become
  :class:`~repro.core.circuit.Subroutine` entries called through
  :class:`~repro.core.gates.BoxCall`; parametrized definitions are
  inlined at each call site with the angle expressions evaluated;
* the comment dialect written by the exporter (``// assert``,
  ``// discard``, ``// cinit``, ``// cterm``, ``// cdiscard``,
  ``// global phase``, and the ``opaque`` preamble) is read back into
  the extended-model gates it stands for, which makes
  export -> import -> export byte-stable; unrecognized ``//`` lines
  become :class:`~repro.core.gates.Comment` gates.

Angle expressions support the OpenQASM 2 grammar (``pi``, ``+ - * / ^``,
``sin``/``cos``/``tan``/``exp``/``ln``/``sqrt``); plain float literals
round-trip bit-exactly.  Constructs outside the dialect (``reset``,
conditioned measurement, conditions on multi-bit registers) raise
:class:`QasmParseError`.  See ``docs/interchange.md`` for the coverage
table.
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass, field

from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.errors import QuipperError
from ..core.gates import (
    BoxCall,
    CDiscard,
    CInit,
    Comment,
    Control,
    CTerm,
    Discard,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.wires import CLASSICAL, QUANTUM, Qubit
from .ascii_parser import _parse_number


class QasmParseError(QuipperError):
    """The text is not an OpenQASM 2 program this dialect can read."""


# ---------------------------------------------------------------------------
# Angle expressions
# ---------------------------------------------------------------------------

_FUNCTIONS = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "exp": math.exp, "ln": math.log, "sqrt": math.sqrt,
}

_ALLOWED_NODES = (
    ast.Expression, ast.BinOp, ast.UnaryOp, ast.Constant, ast.Name,
    ast.Call, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow,
    ast.USub, ast.UAdd, ast.Load,
)


def _eval_angle(expr: str, env: dict[str, float]) -> float:
    """Evaluate a QASM angle expression (``pi/2``, ``2*theta``, ...)."""
    text = expr.strip().replace("^", "**")
    if not text:
        raise QasmParseError("empty angle expression")
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise QasmParseError(f"bad angle expression {expr!r}") from exc
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise QasmParseError(
                f"unsupported construct in angle expression {expr!r}"
            )

    def run(node):
        if isinstance(node, ast.Expression):
            return run(node.body)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)):
                return float(node.value)
            raise QasmParseError(f"bad literal in {expr!r}")
        if isinstance(node, ast.Name):
            if node.id == "pi":
                return math.pi
            if node.id in env:
                return float(env[node.id])
            raise QasmParseError(f"unknown name {node.id!r} in {expr!r}")
        if isinstance(node, ast.UnaryOp):
            value = run(node.operand)
            return -value if isinstance(node.op, ast.USub) else value
        if isinstance(node, ast.BinOp):
            left, right = run(node.left), run(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            return left ** right
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.keywords:
                raise QasmParseError(f"bad function call in {expr!r}")
            fn = _FUNCTIONS.get(node.func.id)
            if fn is None or len(node.args) != 1:
                raise QasmParseError(f"bad function call in {expr!r}")
            return fn(run(node.args[0]))
        raise QasmParseError(f"unsupported angle expression {expr!r}")

    return run(tree)


def _pi_power(angle: float) -> tuple[float, bool] | None:
    """Match *angle* against ``+-2pi/2^p`` bit-exactly; ``(p, negated)``."""
    magnitude = abs(angle)
    for power in range(64):
        if 2.0 * math.pi / (2.0 ** power) == magnitude:
            return float(power), angle < 0
    return None


# ---------------------------------------------------------------------------
# Statement splitting
# ---------------------------------------------------------------------------


def _split_call(stmt: str) -> tuple[str, list[str], list[str]]:
    """Split ``name(p1, p2) a, b`` into (name, param exprs, arg tokens)."""
    match = re.match(r"^([A-Za-z_]\w*)\s*", stmt)
    if not match:
        raise QasmParseError(f"bad statement {stmt!r}")
    name = match.group(1)
    rest = stmt[match.end():].lstrip()
    params: list[str] = []
    if rest.startswith("("):
        depth, i = 0, 0
        for i, char in enumerate(rest):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    break
        else:
            raise QasmParseError(f"unbalanced parentheses in {stmt!r}")
        inner = rest[1:i]
        params = [p.strip() for p in inner.split(",")] if inner.strip() else []
        rest = rest[i + 1:].strip()
    args = [a.strip() for a in rest.split(",")] if rest else []
    if any(not a for a in args):
        raise QasmParseError(f"bad argument list in {stmt!r}")
    return name, params, args


@dataclass
class _Call:
    """One statement of a ``gate`` body, unresolved."""

    name: str
    params: list[str]
    args: list[str]


@dataclass
class _GateDef:
    """A parsed custom ``gate`` definition."""

    name: str
    params: tuple[str, ...]
    args: tuple[str, ...]
    body: list[_Call] = field(default_factory=list)


@dataclass
class _Creg:
    """A classical register: declared size and per-bit wire bindings."""

    size: int
    bits: dict[int, int] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Dialect comments (written by repro.io.qasm, read back here)
# ---------------------------------------------------------------------------

_TERM_C = re.compile(
    r"^assert (\w+)\[(\d+)\] == \|([01])> \(quipper termination\)$"
)
_DISCARD_C = re.compile(r"^discard (\w+)\[(\d+)\]$")
_CINIT_C = re.compile(r"^cinit (\w+) = 0$")
_CTERM_C = re.compile(
    r"^cterm (\w+) == ([01]) \(quipper classical termination\)$"
)
_CDISCARD_C = re.compile(r"^cdiscard (\w+)$")
_PHASE_C = re.compile(
    r"^global phase (omega|phase)(?:\(([^)]*)\))?(\*)? omitted$"
)
_OPAQUE_C = re.compile(r"^no qelib1 equivalent for '(.*)':$")

_QREG = re.compile(r"^qreg\s+(\w+)\s*\[\s*(\d+)\s*\]$")
_CREG = re.compile(r"^creg\s+(\w+)\s*\[\s*(\d+)\s*\]$")
_MEASURE = re.compile(r"^measure\s+(.+?)\s*->\s*(.+)$")
_IF = re.compile(r"^if\s*\(\s*(\w+)\s*==\s*(\d+)\s*\)\s*(.+)$")
_ARG = re.compile(r"^(\w+)(?:\[(\d+)\])?$")


class _Importer:
    """Single-pass OpenQASM 2 reader building the extended circuit model."""

    def __init__(self) -> None:
        self.qregs: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: dict[str, _Creg] = {}
        self.gates: list = []
        self.types: dict[int, str] = {}
        self.alive: list[int] = []  # insertion-ordered live wires
        self.gate_defs: dict[str, _GateDef] = {}
        self.opaques: dict[str, tuple[str, bool]] = {}
        self.namespace: dict[str, Subroutine] = {}
        self.pending_opaque: str | None = None
        self.saw_header = False
        self._next_fresh = 0

    # -- wires --------------------------------------------------------

    def _fresh_wire(self) -> int:
        wire = self._next_fresh
        self._next_fresh += 1
        return wire

    def _qubit_wire(self, token: str) -> int:
        match = _ARG.match(token)
        if not match or match.group(2) is None:
            raise QasmParseError(f"expected an indexed qubit, got {token!r}")
        name, index = match.group(1), int(match.group(2))
        if name not in self.qregs:
            raise QasmParseError(f"undeclared quantum register {name!r}")
        offset, size = self.qregs[name]
        if index >= size:
            raise QasmParseError(f"{token}: index out of range (size {size})")
        return offset + index

    def _kill(self, wire: int) -> None:
        if wire in self.alive:
            self.alive.remove(wire)

    def _touch_quantum(self, wire: int, sink, what: str) -> None:
        """Require *wire* to be a live qubit, resurrecting if needed.

        The exporter emits ``Init(False)`` silently, and the builder
        reuses wire ids after ``Term``/``Discard`` -- so a qubit column
        that was terminated and is then used again stands for a fresh
        |0> allocation on the same column.  (``Init(True)`` reuse is
        covered too: the exporter renders it as the silent init plus an
        ``x``.)
        """
        if wire in self.alive:
            if self.types.get(wire) != QUANTUM:
                raise QasmParseError(f"{what} touches classical wire {wire}")
            return
        sink.append(Init(wire, False))
        self.types[wire] = QUANTUM
        self.alive.append(wire)

    # -- comment dialect ----------------------------------------------

    def comment(self, text: str) -> None:
        """Dispatch one ``//`` comment line (dialect marker or prose)."""
        match = _OPAQUE_C.match(text)
        if match:
            self.pending_opaque = match.group(1)
            return
        match = _TERM_C.match(text)
        if match:
            wire = self._qubit_wire(f"{match.group(1)}[{match.group(2)}]")
            self.gates.append(Term(wire, match.group(3) == "1"))
            self._kill(wire)
            return
        match = _DISCARD_C.match(text)
        if match:
            wire = self._qubit_wire(f"{match.group(1)}[{match.group(2)}]")
            self.gates.append(Discard(wire))
            self._kill(wire)
            return
        match = _CINIT_C.match(text)
        if match:
            creg = self._creg(match.group(1))
            wire = self._fresh_wire()
            creg.bits[0] = wire
            self.gates.append(CInit(wire, False))
            self.types[wire] = CLASSICAL
            self.alive.append(wire)
            return
        match = _CTERM_C.match(text)
        if match:
            wire = self._bound_bit(match.group(1))
            self.gates.append(CTerm(wire, match.group(2) == "1"))
            self._kill(wire)
            return
        match = _CDISCARD_C.match(text)
        if match:
            wire = self._bound_bit(match.group(1))
            self.gates.append(CDiscard(wire))
            self._kill(wire)
            return
        match = _PHASE_C.match(text)
        if match:
            name, param, star = match.groups()
            value = _parse_number(param) if param is not None else None
            self.gates.append(
                NamedGate(name, (), param=value, inverted=star is not None)
            )
            return
        self.gates.append(Comment(text))

    def _creg(self, name: str) -> _Creg:
        if name not in self.cregs:
            raise QasmParseError(f"undeclared classical register {name!r}")
        return self.cregs[name]

    def _bound_bit(self, name: str) -> int:
        creg = self._creg(name)
        if creg.size != 1:
            raise QasmParseError(
                f"register {name!r} has {creg.size} bits; the dialect "
                "only tracks one-bit classical registers as wires"
            )
        if 0 not in creg.bits:
            raise QasmParseError(f"register {name!r} was never written")
        return creg.bits[0]

    # -- statements ---------------------------------------------------

    def statement(self, stmt: str) -> None:
        """Dispatch one ``;``-terminated statement."""
        if not self.saw_header:
            match = re.match(r"^OPENQASM\s+(\S+)$", stmt)
            if not match or not match.group(1).startswith("2"):
                raise QasmParseError(
                    "expected an 'OPENQASM 2.x;' header, got "
                    f"{stmt + ';'!r}"
                )
            self.saw_header = True
            return
        match = re.match(r'^include\s+"([^"]+)"$', stmt)
        if match:
            if match.group(1) != "qelib1.inc":
                raise QasmParseError(
                    f"unsupported include {match.group(1)!r} (only "
                    "qelib1.inc is built in)"
                )
            return
        match = _QREG.match(stmt)
        if match:
            name, size = match.group(1), int(match.group(2))
            if name in self.qregs or name in self.cregs:
                raise QasmParseError(f"duplicate register {name!r}")
            offset = self._next_fresh
            self.qregs[name] = (offset, size)
            for i in range(size):
                self.types[offset + i] = QUANTUM
                self.alive.append(offset + i)
            self._next_fresh += size
            return
        match = _CREG.match(stmt)
        if match:
            name, size = match.group(1), int(match.group(2))
            if name in self.qregs or name in self.cregs:
                raise QasmParseError(f"duplicate register {name!r}")
            self.cregs[name] = _Creg(size)
            return
        if stmt.startswith("opaque"):
            self._opaque_decl(stmt)
            return
        match = _MEASURE.match(stmt)
        if match:
            self._measure(match.group(1), match.group(2))
            return
        match = _IF.match(stmt)
        if match:
            self._conditional(*match.groups())
            return
        if stmt.startswith("barrier"):
            return
        if stmt.startswith("reset"):
            raise QasmParseError(
                "'reset' is outside the dialect (no extended-model "
                "equivalent that preserves the wire)"
            )
        self._apply(stmt, guard=None)

    def _opaque_decl(self, stmt: str) -> None:
        name, params, args = _split_call(stmt[len("opaque"):].strip())
        del params, args
        if self.pending_opaque is not None:
            display = self.pending_opaque
            self.pending_opaque = None
            inverted = display.endswith("*")
            self.opaques[name] = (display.rstrip("*"), inverted)
        else:
            base = name[3:] if name.startswith("op_") else name
            self.opaques[name] = (base, False)

    def _measure(self, src: str, dst: str) -> None:
        src_m, dst_m = _ARG.match(src), _ARG.match(dst)
        if not src_m or not dst_m:
            raise QasmParseError(f"bad measure operands {src!r} -> {dst!r}")
        if src_m.group(2) is None and dst_m.group(2) is None:
            # Whole-register broadcast: measure q -> c;
            if src_m.group(1) not in self.qregs:
                raise QasmParseError(
                    f"undeclared quantum register {src_m.group(1)!r}"
                )
            _, size = self.qregs[src_m.group(1)]
            creg = self._creg(dst_m.group(1))
            if creg.size != size:
                raise QasmParseError(
                    f"measure {src} -> {dst}: register sizes differ"
                )
            for i in range(size):
                self._measure_one(f"{src_m.group(1)}[{i}]",
                                  dst_m.group(1), i)
            return
        if src_m.group(2) is None or dst_m.group(2) is None:
            raise QasmParseError(f"bad measure operands {src!r} -> {dst!r}")
        self._measure_one(src, dst_m.group(1), int(dst_m.group(2)))

    def _measure_one(self, src: str, cname: str, bit: int) -> None:
        wire = self._qubit_wire(src)
        self._touch_quantum(wire, self.gates, f"measure {src}")
        creg = self._creg(cname)
        if bit >= creg.size:
            raise QasmParseError(f"{cname}[{bit}]: index out of range")
        self.gates.append(Measure(wire))
        self.types[wire] = CLASSICAL
        creg.bits[bit] = wire

    def _conditional(self, cname: str, value: str, inner: str) -> None:
        creg = self._creg(cname)
        if creg.size != 1:
            raise QasmParseError(
                f"if ({cname} == ...): conditions on multi-bit registers "
                "are outside the dialect"
            )
        if int(value) not in (0, 1):
            raise QasmParseError(
                f"if ({cname} == {value}): a one-bit register is 0 or 1"
            )
        if 0 not in creg.bits:
            # An unwritten creg reads 0: bind it to a fresh classical
            # wire initialized False so the guard simulates faithfully.
            wire = self._fresh_wire()
            creg.bits[0] = wire
            self.gates.append(CInit(wire, False))
            self.types[wire] = CLASSICAL
            self.alive.append(wire)
        inner = inner.strip()
        if inner.startswith("measure") or inner.startswith("if"):
            raise QasmParseError(
                f"conditioned {inner.split()[0]!r} is outside the dialect"
            )
        guard = Control(creg.bits[0], int(value) == 1, CLASSICAL)
        self._apply(inner, guard=guard)

    # -- gate applications --------------------------------------------

    def _apply(self, stmt: str, guard: Control | None) -> None:
        name, param_exprs, arg_tokens = _split_call(stmt)
        params = [_eval_angle(p, {}) for p in param_exprs]
        broadcast = [
            (token, _ARG.match(token)) for token in arg_tokens
        ]
        if any(m is None for _, m in broadcast):
            raise QasmParseError(f"bad operand in {stmt!r}")
        if broadcast and all(m.group(2) is None for _, m in broadcast):
            # Whole-register broadcast: h q;  cx a, b;
            sizes = set()
            for token, m in broadcast:
                if m.group(1) not in self.qregs:
                    raise QasmParseError(
                        f"undeclared quantum register {token!r}"
                    )
                sizes.add(self.qregs[m.group(1)][1])
            if len(sizes) != 1:
                raise QasmParseError(
                    f"broadcast over differently-sized registers in {stmt!r}"
                )
            for i in range(sizes.pop()):
                wires = [
                    self._qubit_wire(f"{m.group(1)}[{i}]")
                    for _, m in broadcast
                ]
                self._dispatch(name, params, wires, guard, self.gates)
            return
        wires = [self._qubit_wire(token) for token in arg_tokens]
        if len(set(wires)) != len(wires):
            raise QasmParseError(f"repeated qubit operand in {stmt!r}")
        self._dispatch(name, params, wires, guard, self.gates)

    def _dispatch(self, name, params, wires, guard, sink) -> None:
        """Resolve one application into extended-model gates on *sink*."""
        for wire in wires:
            self._touch_quantum(wire, sink, f"gate {name!r}")
        if name in self.gate_defs:
            self._apply_custom(self.gate_defs[name], params, wires, guard,
                               sink)
            return
        if name in self.opaques:
            base, inverted = self.opaques[name]
            extra = (guard,) if guard else ()
            sink.append(
                NamedGate(base, tuple(wires), extra, inverted=inverted)
            )
            return
        self._apply_builtin(name, params, wires, guard, sink)

    def _apply_custom(self, define, params, wires, guard, sink) -> None:
        if len(params) != len(define.params) or len(wires) != len(define.args):
            raise QasmParseError(
                f"gate {define.name!r} expects {len(define.params)} "
                f"params / {len(define.args)} qubits"
            )
        if not define.params and sink is self.gates:
            # Parameterless definitions stay hierarchical: one Subroutine,
            # called through BoxCall (mirrors Quipper's boxed subcircuits).
            endpoints = tuple((w, QUANTUM) for w in wires)
            sink.append(
                BoxCall(
                    name=define.name,
                    in_wires=endpoints,
                    out_wires=endpoints,
                    controls=(guard,) if guard else (),
                )
            )
            return
        # Parametrized definitions (or nested expansion inside another
        # body) inline with formals substituted.
        env = dict(zip(define.params, params))
        wire_map = dict(zip(define.args, wires))
        for call in define.body:
            values = [_eval_angle(p, env) for p in call.params]
            try:
                mapped = [wire_map[a] for a in call.args]
            except KeyError as exc:
                raise QasmParseError(
                    f"gate {define.name!r} uses undeclared qubit "
                    f"argument {exc.args[0]!r}"
                ) from None
            self._dispatch(call.name, values, mapped, guard, sink)

    def _apply_builtin(self, name, params, wires, guard, sink) -> None:
        extra = (guard,) if guard else ()

        def put(gname, targets, controls=(), inverted=False, param=None):
            sink.append(
                NamedGate(
                    gname, tuple(targets), tuple(controls) + extra,
                    inverted=inverted, param=param,
                )
            )

        def need(n_params, n_wires):
            if len(params) != n_params or len(wires) != n_wires:
                raise QasmParseError(
                    f"{name} expects {n_params} params / {n_wires} qubits"
                )

        def u1_like(angle, controls):
            power = _pi_power(angle)
            if power is not None:
                put("R(2pi/%)", wires[-1:], controls, inverted=power[1],
                    param=power[0])
            else:
                # diag(1, e^{i a}) on a wire is exactly a global phase
                # controlled on that wire (the exporter's encoding of
                # controlled phase gates, so this round-trips).
                put("phase", (), tuple(controls) + (Control(wires[-1]),),
                    param=angle)

        def u3_like(theta, phi, lam, controls):
            # U(theta, phi, lam) == phase((phi+lam)/2) Rz(phi) Ry(theta)
            # Rz(lam), exactly (not just up to phase).  The two angle
            # patterns the exporter itself emits fold back into single
            # vocabulary rotations.
            if phi == 0.0 and lam == 0.0:
                put("Ry", wires[-1:], controls, param=theta)
                return
            if phi == -math.pi / 2.0 and lam == math.pi / 2.0:
                # Rz(-pi/2) Ry(theta) Rz(pi/2) == Rx(theta).
                put("Rx", wires[-1:], controls, param=theta)
                return
            if lam != 0.0:
                put("Rz", wires[-1:], controls, param=lam)
            put("Ry", wires[-1:], controls, param=theta)
            if phi != 0.0:
                put("Rz", wires[-1:], controls, param=phi)
            if (phi + lam) / 2.0 != 0.0:
                put("phase", (), controls, param=(phi + lam) / 2.0)

        simple = {"x": "X", "y": "Y", "z": "Z", "h": "H", "s": "S",
                  "t": "T", "sdg": "S", "tdg": "T"}
        rotations = {"rx": "Rx", "ry": "Ry", "rz": "Rz"}
        controlled = {"cx": "X", "CX": "X", "cy": "Y", "cz": "Z",
                      "ch": "H"}
        if name in simple:
            need(0, 1)
            put(simple[name], wires, inverted=name in ("sdg", "tdg"))
        elif name == "id":
            need(0, 1)
        elif name in rotations:
            need(1, 1)
            put(rotations[name], wires, param=params[0])
        elif name == "u1":
            need(1, 1)
            u1_like(params[0], ())
        elif name == "u2":
            need(2, 1)
            u3_like(math.pi / 2.0, params[0], params[1], ())
        elif name in ("u3", "U", "u"):
            need(3, 1)
            u3_like(params[0], params[1], params[2], ())
        elif name in controlled:
            need(0, 2)
            put(controlled[name], wires[1:], (Control(wires[0]),))
        elif name == "ccx":
            need(0, 3)
            put("X", wires[2:], (Control(wires[0]), Control(wires[1])))
        elif name == "crz":
            need(1, 2)
            put("Rz", wires[1:], (Control(wires[0]),), param=params[0])
        elif name == "cu1":
            need(1, 2)
            u1_like(params[0], (Control(wires[0]),))
        elif name == "cu3":
            need(3, 2)
            u3_like(params[0], params[1], params[2], (Control(wires[0]),))
        elif name == "swap":
            need(0, 2)
            put("swap", wires)
        elif name == "cswap":
            need(0, 3)
            put("swap", wires[1:], (Control(wires[0]),))
        else:
            raise QasmParseError(f"unknown gate {name!r}")

    # -- gate definitions ---------------------------------------------

    def define_gate(self, header: str, body: str) -> None:
        """Process a ``gate name(params) args { body }`` definition."""
        name, params, args = _split_call(header)
        if (name in self.gate_defs or name in self.opaques
                or name in self.qregs or name in self.cregs):
            raise QasmParseError(f"duplicate definition of {name!r}")
        define = _GateDef(name, tuple(params), tuple(args))
        for raw in body.split(";"):
            stmt = raw.strip()
            if not stmt or stmt.startswith("barrier"):
                continue
            cname, cparams, cargs = _split_call(stmt)
            unknown = [a for a in cargs if a not in define.args]
            if unknown:
                raise QasmParseError(
                    f"gate {name!r} body uses undeclared qubits {unknown}"
                )
            define.body.append(_Call(cname, cparams, cargs))
        self.gate_defs[name] = define
        if not params:
            # Parameterless: build the Subroutine now so call sites can
            # stay hierarchical BoxCalls.
            formals = list(range(len(args)))
            gates: list = []
            env_def = _GateDef(name, (), tuple(args), define.body)
            saved_alive, saved_types = self.alive, dict(self.types)
            self.alive = list(formals)
            self.types = {w: QUANTUM for w in formals}
            try:
                self._apply_custom(env_def, [], formals, None, gates)
            finally:
                self.alive, self.types = saved_alive, saved_types
            endpoints = tuple((w, QUANTUM) for w in formals)
            self.namespace[name] = Subroutine(
                name=name,
                circuit=Circuit(inputs=endpoints, gates=gates,
                                outputs=endpoints),
                in_shape=tuple(Qubit(w) for w in formals),
                out_shape=tuple(Qubit(w) for w in formals),
            )

    # -- assembly -----------------------------------------------------

    def finish(self, check: bool) -> BCircuit:
        """Assemble the accumulated program into a checked circuit."""
        if not self.saw_header:
            raise QasmParseError("empty input (no OPENQASM header)")
        inputs = tuple(
            (offset + i, QUANTUM)
            for _, (offset, size) in sorted(
                self.qregs.items(), key=lambda item: item[1][0]
            )
            for i in range(size)
        )
        outputs = tuple(
            (wire, self.types[wire]) for wire in sorted(self.alive)
        )
        bc = BCircuit(
            Circuit(inputs=inputs, gates=self.gates, outputs=outputs),
            self.namespace,
        )
        if check:
            bc.check()
        return bc


_GATE_HEADER = re.compile(r"^gate\s+(.+)$", re.DOTALL)


def parse_qasm(text: str, check: bool = True) -> BCircuit:
    """Parse OpenQASM 2 text into a hierarchical extended-model circuit.

    With ``check`` (the default) the reconstructed circuit is validated
    with :meth:`~repro.core.circuit.BCircuit.check`, so malformed input
    is rejected rather than producing an inconsistent hierarchy.  Raises
    :class:`QasmParseError` for syntax errors and for constructs outside
    the supported dialect.
    """
    importer = _Importer()
    buffer = ""
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if not buffer and line.startswith("//"):
            importer.comment(line[2:].strip())
            continue
        if "//" in line and '"' not in line:
            line = line.split("//", 1)[0].strip()
            if not line:
                continue
        buffer = f"{buffer} {line}".strip() if buffer else line
        try:
            buffer = _drain(importer, buffer)
        except QasmParseError as exc:
            raise QasmParseError(f"line {lineno}: {exc}") from None
    if buffer:
        raise QasmParseError(f"unterminated statement {buffer!r}")
    return importer.finish(check)


def _drain(importer: _Importer, buffer: str) -> str:
    """Consume complete statements from *buffer*; return the remainder."""
    while buffer:
        if _GATE_HEADER.match(buffer):
            open_brace = buffer.find("{")
            if open_brace < 0:
                return buffer
            close_brace = buffer.find("}", open_brace)
            if close_brace < 0:
                return buffer
            header = buffer[len("gate"):open_brace].strip()
            body = buffer[open_brace + 1:close_brace]
            importer.define_gate(header, body)
            buffer = buffer[close_brace + 1:].strip()
            continue
        semi = buffer.find(";")
        if semi < 0:
            return buffer
        stmt = buffer[:semi].strip()
        buffer = buffer[semi + 1:].strip()
        if stmt:
            importer.statement(stmt)
    return buffer
