"""Circuit interchange: Quipper-ASCII round-trip and OpenQASM 2 export.

Hierarchical circuits can be persisted to text and reloaded *without
inlining*::

    from repro import build, qubit
    from repro.io import dumps, loads

    bc, _ = build(my_circuit, qubit, qubit)
    text = dumps(bc)          # Quipper-ASCII, boxed subroutines intact
    again = loads(text)
    assert again == bc

:func:`dumps` extends the plain :func:`repro.output.ascii.format_bcircuit`
text with one ``Shape:`` line per subroutine definition, recording the
boxed interface (the typed argument structure) so that the reloaded
namespace compares equal to the original -- the printer alone only records
the flat wire lists.  :func:`loads` accepts both flavours: text without
``Shape:`` lines (e.g. captured from ``print_generic``) still parses, its
subroutines just carry ``None`` shapes.

For interchange with the wider toolchain,
:func:`repro.io.bcircuit_to_qasm` emits flat OpenQASM 2.0 (see
:mod:`repro.io.qasm` for the mapping) and :func:`repro.io.parse_qasm`
reads OpenQASM 2.0 back into the extended circuit model (see
:mod:`repro.io.qasm_parser`).  Export inlines the box hierarchy away,
but the round trip is byte-stable -- exporting, importing, and
exporting again reproduces the first export exactly -- and the
``equiv`` backend (:mod:`repro.backends.equiv`) can prove the re-import
equivalent to the original.
"""

from __future__ import annotations

import os

from ..core.circuit import BCircuit
from ..output.ascii import format_circuit
from .ascii_parser import AsciiParseError, encode_shape, parse_bcircuit
from .qasm import QasmExportError, QasmStreamWriter, bcircuit_to_qasm
from .qasm_parser import QasmParseError, parse_qasm

__all__ = [
    "AsciiParseError",
    "QasmExportError",
    "QasmParseError",
    "QasmStreamWriter",
    "bcircuit_to_qasm",
    "dump",
    "dumps",
    "load",
    "loads",
    "parse_qasm",
]


def dumps(bc: BCircuit) -> str:
    """Serialize a hierarchical circuit to Quipper-ASCII text.

    The output is :func:`repro.output.ascii.format_bcircuit` plus a
    ``Shape:`` line per subroutine, and is accepted by :func:`loads` such
    that ``loads(dumps(bc)) == bc`` for any builder-produced circuit.
    """
    parts = [format_circuit(bc.circuit)]
    for name in bc.subroutine_names():
        sub = bc.namespace[name]
        parts.append(f'\nSubroutine: "{name}"')
        parts.append(
            f"Shape: {encode_shape(sub.in_shape)} -> "
            f"{encode_shape(sub.out_shape)}"
        )
        parts.append(format_circuit(sub.circuit))
    return "\n".join(parts) + "\n"


def loads(text: str, check: bool = True) -> BCircuit:
    """Parse Quipper-ASCII text back into a hierarchical circuit.

    Inverse of :func:`dumps`; also accepts the plain printer output
    (without ``Shape:`` lines).  With ``check`` (default) the result is
    validated by :meth:`~repro.core.circuit.BCircuit.check`.
    """
    return parse_bcircuit(text, check=check)


def dump(bc: BCircuit, path: str | os.PathLike) -> None:
    """Write :func:`dumps` output to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(bc))


def load(path: str | os.PathLike, check: bool = True) -> BCircuit:
    """Read a Quipper-ASCII file written by :func:`dump` (or captured
    from the printer) back into a hierarchical circuit."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), check=check)
