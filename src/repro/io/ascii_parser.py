"""Parser for the Quipper-ASCII circuit format.

Round-trips the text produced by :mod:`repro.output.ascii`: every gate
line, hierarchical ``Subroutine:`` definition blocks, and the optional
``Shape:`` lines that :func:`repro.io.dumps` adds so boxed subroutine
interfaces survive the trip.  Hierarchical circuits are reloaded *without
inlining* -- a parsed file with boxed subroutines has exactly the same
namespace structure as the circuit that was printed.

Wire types are reconstructed without tracking liveness: every gate line
determines its wire types syntactically (classical wires are marked with a
``c`` prefix in controls and comment labels), except box-call bindings,
whose types are resolved against the callee's printed interface in a
second pass.

Known lossiness of the *text* format (not of :func:`repro.io.dumps` +
:func:`repro.io.loads` on builder-produced circuits):

* a ``Comment`` whose text ends in ``*`` parses as an inverted comment;
* a ``Comment`` wire label containing ``", <digits>:"`` is ambiguous
  with the label-list separator and mis-splits;
* custom register shapes (``QDInt`` etc.) are serialized as their flat
  wire tuple, so a reloaded namespace carries equivalent but
  class-erased shape descriptors for those subroutines.
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass

from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.errors import QuipperError
from ..core.gates import (
    GATE_INFO,
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.qdata import _PARAM_TYPES
from ..core.wires import CLASSICAL, QUANTUM, Bit, Qubit


class AsciiParseError(QuipperError):
    """The text is not a well-formed Quipper-ASCII circuit."""


#: A numeric parameter: a float literal, or an exact pi-multiple such as
#: ``pi``, ``-pi/2`` or ``3pi/4`` (see ``format_pi_multiple`` in
#: :mod:`repro.core.gates`).
_NUM = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?|[-+]?\d*pi(?:/\d+)?"

_PI_FORM = re.compile(r"^(?P<num>[-+]?\d*)pi(?:/(?P<den>\d+))?$")

#: display_name() templates for parametrised names containing ``%``.
_PARAM_TEMPLATES = (
    (re.compile(rf"^exp\(-i({_NUM})ZZ\)$"), "exp(-i%ZZ)"),
    (re.compile(rf"^exp\(-i({_NUM})Z\)$"), "exp(-i%Z)"),
    (re.compile(rf"^R\(2pi/({_NUM})\)$"), "R(2pi/%)"),
)
_SUFFIX_PARAM = re.compile(rf"^([A-Za-z_]\w*)\(({_NUM})\)$")

_QGATE = re.compile(
    r'^QGate\["(?P<name>.*)"\]\((?P<targets>[^)]*)\)'
    r"(?: with controls=\[(?P<ctl>.*)\])?$"
)
_SIMPLE = re.compile(
    r"^(?P<kind>QInit|QTerm|CInit|CTerm)(?P<value>[01])\((?P<wire>\d+)\)$"
)
_ONEWIRE = re.compile(
    r"^(?P<kind>QDiscard|CDiscard|QMeas)\((?P<wire>\d+)\)$"
)
_CGATE = re.compile(
    r'^CGate(?P<star>\*)?\["(?P<name>\w+)"\]'
    r"\((?P<target>\d+); ?(?P<inputs>[^)]*)\)$"
)
_CNOT = re.compile(
    r"^CNot\((?P<wire>\d+)\)(?: with controls=\[(?P<ctl>.*)\])?$"
)
_COMMENT = re.compile(
    r'^Comment\["(?P<text>.*)"\](?: \[(?P<labels>.*)\])?$'
)
_BOX = re.compile(
    r'^Subroutine(?P<star>\*)?\["(?P<name>.*)"\](?: x(?P<reps>\d+))?'
    r"\((?P<ins>[^)]*)\)(?: -> \((?P<outs>[^)]*)\))?"
    r"(?: with controls=\[(?P<ctl>.*)\])?$"
)
_SECTION = re.compile(r'^Subroutine: "(?P<name>.*)"$')
_SHAPE = re.compile(r"^Shape: (?P<body>.*)$")


@dataclass
class _PendingBox:
    """A parsed box call whose wire types await the callee's interface."""

    name: str
    ins: list[int]
    outs: list[int] | None
    controls: tuple[Control, ...]
    inverted: bool
    repetitions: int


def _parse_number(text: str) -> float | int:
    pi_form = _PI_FORM.match(text)
    if pi_form:
        head = pi_form.group("num")
        num = int(head) if head not in ("", "+", "-") else (1 - 2 * (head == "-"))
        den = int(pi_form.group("den") or 1)
        # Same expression format_pi_multiple verified, so bit-exact.
        return num * math.pi / den
    try:
        return int(text)
    except ValueError:
        return float(text)


def _parse_gate_name(display: str) -> tuple[str, float | None, bool]:
    """Invert ``NamedGate.display_name()``: (name, param, inverted)."""
    inverted = display.endswith("*")
    if inverted:
        display = display[:-1]
    for pattern, name in _PARAM_TEMPLATES:
        match = pattern.match(display)
        if match:
            return name, _parse_number(match.group(1)), inverted
    match = _SUFFIX_PARAM.match(display)
    if match and match.group(1) in GATE_INFO:
        return match.group(1), _parse_number(match.group(2)), inverted
    return display, None, inverted


def _parse_controls(text: str | None) -> tuple[Control, ...]:
    if not text:
        return ()
    controls = []
    for part in text.split(","):
        part = part.strip()
        match = re.fullmatch(r"(?P<sign>[+-])(?P<c>c?)(?P<wire>\d+)", part)
        if match is None:
            raise AsciiParseError(f"bad control {part!r}")
        controls.append(
            Control(
                wire=int(match.group("wire")),
                positive=match.group("sign") == "+",
                wire_type=CLASSICAL if match.group("c") else QUANTUM,
            )
        )
    return tuple(controls)


def _parse_wire_list(text: str) -> list[int]:
    text = text.strip()
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def _parse_endpoint(text: str) -> tuple[tuple[int, str], ...]:
    text = text.strip()
    if text == "none":
        return ()
    wires = []
    for part in text.split(","):
        wire, _, kind = part.strip().partition(":")
        if kind not in ("Qubit", "Bit"):
            raise AsciiParseError(f"bad endpoint entry {part!r}")
        wires.append((int(wire), QUANTUM if kind == "Qubit" else CLASSICAL))
    return tuple(wires)


def _parse_gate_line(line: str) -> Gate | _PendingBox:
    match = _QGATE.match(line)
    if match:
        name, param, inverted = _parse_gate_name(match.group("name"))
        return NamedGate(
            name=name,
            targets=tuple(_parse_wire_list(match.group("targets"))),
            controls=_parse_controls(match.group("ctl")),
            inverted=inverted,
            param=param,
        )
    match = _SIMPLE.match(line)
    if match:
        kind = {"QInit": Init, "QTerm": Term, "CInit": CInit,
                "CTerm": CTerm}[match.group("kind")]
        return kind(int(match.group("wire")), match.group("value") == "1")
    match = _ONEWIRE.match(line)
    if match:
        kind = {"QDiscard": Discard, "CDiscard": CDiscard,
                "QMeas": Measure}[match.group("kind")]
        return kind(int(match.group("wire")))
    match = _CGATE.match(line)
    if match:
        return CGate(
            name=match.group("name"),
            target=int(match.group("target")),
            inputs=tuple(_parse_wire_list(match.group("inputs"))),
            uncompute=match.group("star") is not None,
        )
    match = _CNOT.match(line)
    if match:
        return CNot(
            wire=int(match.group("wire")),
            controls=_parse_controls(match.group("ctl")),
        )
    match = _COMMENT.match(line)
    if match:
        text = match.group("text")
        inverted = text.endswith("*")
        if inverted:
            text = text[:-1]
        labels = []
        if match.group("labels"):
            # Split only before a wire anchor so label text containing
            # ", " survives (residual ambiguity: a label that itself
            # contains ", <digits>:" -- see the module docstring).
            for part in re.split(r", (?=c?\d+:)", match.group("labels")):
                entry = re.fullmatch(
                    r"(?P<c>c?)(?P<wire>\d+):(?P<label>.*)", part
                )
                if entry is None:
                    raise AsciiParseError(f"bad comment label {part!r}")
                labels.append(
                    (
                        int(entry.group("wire")),
                        CLASSICAL if entry.group("c") else QUANTUM,
                        entry.group("label"),
                    )
                )
        return Comment(text=text, labels=tuple(labels), inverted=inverted)
    match = _BOX.match(line)
    if match:
        outs = match.group("outs")
        return _PendingBox(
            name=match.group("name"),
            ins=_parse_wire_list(match.group("ins")),
            outs=None if outs is None else _parse_wire_list(outs),
            controls=_parse_controls(match.group("ctl")),
            inverted=match.group("star") is not None,
            repetitions=int(match.group("reps") or 1),
        )
    raise AsciiParseError(f"unrecognized gate line {line!r}")


# ---------------------------------------------------------------------------
# Shape descriptors (the ``Shape:`` line emitted by repro.io.dumps)
# ---------------------------------------------------------------------------


def encode_shape(shape: object) -> str:
    """Serialize a shape descriptor (see :func:`decode_shape`)."""
    if shape is None:
        return "?"
    if isinstance(shape, Qubit):
        return f"q{shape.wire_id}"
    if isinstance(shape, Bit):
        return f"c{shape.wire_id}"
    if isinstance(shape, _PARAM_TYPES):
        return f"<{shape!r}>"
    if isinstance(shape, tuple):
        return "(" + ",".join(encode_shape(s) for s in shape) + ")"
    if isinstance(shape, list):
        return "[" + ",".join(encode_shape(s) for s in shape) + "]"
    if isinstance(shape, dict):
        return "{" + ",".join(
            f"{key!r}:{encode_shape(shape[key])}" for key in sorted(shape)
        ) + "}"
    if hasattr(shape, "qdata_leaves"):
        # Custom register types are class-erased to their wire tuple.
        return "!" + encode_shape(tuple(shape.qdata_leaves()))
    raise AsciiParseError(f"cannot encode shape component {shape!r}")


class _ShapeReader:
    """Recursive-descent reader for :func:`encode_shape` strings."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise AsciiParseError(
                f"bad shape syntax at {self.pos} in {self.text!r}: "
                f"expected {char!r}"
            )
        self.pos += 1

    def read(self):
        char = self.peek()
        if char == "?":
            self.pos += 1
            return None
        if char in "qc":
            self.pos += 1
            start = self.pos
            while self.peek().isdigit():
                self.pos += 1
            wire = int(self.text[start:self.pos])
            return Qubit(wire) if char == "q" else Bit(wire)
        if char == "<":
            return self._read_param()
        if char == "!":
            self.pos += 1
            return self.read()
        if char == "(":
            return tuple(self._read_group("(", ")"))
        if char == "[":
            return list(self._read_group("[", "]"))
        if char == "{":
            return self._read_dict()
        raise AsciiParseError(
            f"bad shape syntax at {self.pos} in {self.text!r}"
        )

    def _read_group(self, open_: str, close: str) -> list:
        self.expect(open_)
        items = []
        while self.peek() != close:
            items.append(self.read())
            if self.peek() == ",":
                self.pos += 1
        self.expect(close)
        return items

    def _read_dict(self) -> dict:
        self.expect("{")
        result = {}
        while self.peek() != "}":
            key = ast.literal_eval(self._scan_until(":"))
            self.expect(":")
            result[key] = self.read()
            if self.peek() == ",":
                self.pos += 1
        self.expect("}")
        return result

    def _read_param(self):
        self.expect("<")
        literal = self._scan_until(">")
        self.expect(">")
        try:
            return ast.literal_eval(literal)
        except (ValueError, SyntaxError) as exc:
            raise AsciiParseError(f"bad shape parameter {literal!r}") from exc

    def _scan_until(self, stop: str) -> str:
        """Consume up to (not including) *stop*, skipping quoted strings."""
        start = self.pos
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == stop:
                return self.text[start:self.pos]
            if char in "'\"":
                quote = char
                self.pos += 1
                while self.pos < len(self.text):
                    if self.text[self.pos] == "\\":
                        self.pos += 2
                        continue
                    if self.text[self.pos] == quote:
                        break
                    self.pos += 1
            self.pos += 1
        raise AsciiParseError(
            f"unterminated shape component in {self.text!r}"
        )


def decode_shape(text: str) -> object:
    reader = _ShapeReader(text)
    shape = reader.read()
    if reader.pos != len(text):
        raise AsciiParseError(f"trailing shape text {text[reader.pos:]!r}")
    return shape


def _split_shape_line(body: str) -> tuple[object, object]:
    reader = _ShapeReader(body)
    in_shape = reader.read()
    if body[reader.pos:reader.pos + 4] != " -> ":
        raise AsciiParseError(f"bad Shape line {body!r}")
    reader.pos += 4
    out_shape = reader.read()
    if reader.pos != len(body):
        raise AsciiParseError(f"trailing shape text {body[reader.pos:]!r}")
    return in_shape, out_shape


# ---------------------------------------------------------------------------
# Section assembly
# ---------------------------------------------------------------------------


@dataclass
class _Section:
    name: str | None  # None for the main circuit
    in_shape: object = None
    out_shape: object = None
    inputs: tuple = ()
    outputs: tuple = ()
    gates: list = None  # Gate | _PendingBox entries


def _split_sections(text: str) -> list[_Section]:
    sections: list[_Section] = []
    current = _Section(name=None, gates=[])
    saw_inputs = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        header = _SECTION.match(line)
        if header:
            sections.append(current)
            current = _Section(name=header.group("name"), gates=[])
            saw_inputs = False
            continue
        shape = _SHAPE.match(line)
        if shape:
            current.in_shape, current.out_shape = _split_shape_line(
                shape.group("body")
            )
            continue
        if line.startswith("Inputs: "):
            current.inputs = _parse_endpoint(line[len("Inputs: "):])
            saw_inputs = True
            continue
        if line.startswith("Outputs: "):
            current.outputs = _parse_endpoint(line[len("Outputs: "):])
            continue
        if not saw_inputs:
            raise AsciiParseError(f"gate line before Inputs: {line!r}")
        current.gates.append(_parse_gate_line(line))
    sections.append(current)
    if sections[0].name is not None:
        raise AsciiParseError("text does not start with a main circuit")
    return sections


def _resolve_box(pending: _PendingBox,
                 namespace: dict[str, Subroutine]) -> BoxCall:
    sub = namespace.get(pending.name)
    if sub is None:
        raise AsciiParseError(f"undefined subroutine {pending.name!r}")
    if pending.inverted:
        entry, exit_ = sub.circuit.outputs, sub.circuit.inputs
    else:
        entry, exit_ = sub.circuit.inputs, sub.circuit.outputs
    if len(pending.ins) != len(entry):
        raise AsciiParseError(
            f"box {pending.name!r} expects {len(entry)} wires, "
            f"got {len(pending.ins)}"
        )
    in_wires = tuple(
        (wire, wtype) for wire, (_, wtype) in zip(pending.ins, entry)
    )
    if pending.outs is None:
        # Legacy line without "-> (...)": derivable only when the callee's
        # output wires are a permutation of its input wires (endo calls).
        mapping = {sid: wire for (sid, _), wire in zip(entry, pending.ins)}
        try:
            out_wires = tuple((mapping[sid], t) for sid, t in exit_)
        except KeyError:
            raise AsciiParseError(
                f"box call {pending.name!r} lacks output wires and the "
                "callee is not endomorphic; re-export with repro.io.dumps"
            ) from None
    else:
        if len(pending.outs) != len(exit_):
            raise AsciiParseError(
                f"box {pending.name!r} returns {len(exit_)} wires, "
                f"got {len(pending.outs)}"
            )
        out_wires = tuple(
            (wire, wtype) for wire, (_, wtype) in zip(pending.outs, exit_)
        )
    return BoxCall(
        name=pending.name,
        in_wires=in_wires,
        out_wires=out_wires,
        controls=pending.controls,
        inverted=pending.inverted,
        repetitions=pending.repetitions,
    )


def parse_bcircuit(text: str, check: bool = True) -> BCircuit:
    """Parse Quipper-ASCII text back into a hierarchical circuit.

    With ``check`` (the default) the reconstructed circuit is validated
    with :meth:`~repro.core.circuit.BCircuit.check`, so malformed input is
    rejected rather than producing an inconsistent hierarchy.
    """
    sections = _split_sections(text)
    main = sections[0]
    namespace: dict[str, Subroutine] = {}
    for section in sections[1:]:
        if section.name in namespace:
            raise AsciiParseError(f"duplicate subroutine {section.name!r}")
        namespace[section.name] = Subroutine(
            name=section.name,
            circuit=Circuit(
                inputs=section.inputs,
                gates=section.gates,
                outputs=section.outputs,
            ),
            in_shape=section.in_shape,
            out_shape=section.out_shape,
        )
    # Second pass: resolve box-call wire types against callee interfaces.
    for gates in [main.gates] + [sub.circuit.gates for sub in namespace.values()]:
        gates[:] = [
            _resolve_box(g, namespace) if isinstance(g, _PendingBox) else g
            for g in gates
        ]
    bc = BCircuit(
        Circuit(inputs=main.inputs, gates=main.gates, outputs=main.outputs),
        namespace,
    )
    if check:
        bc.check()
    return bc
