"""OpenQASM 2.0 export of the extended circuit model.

Bridges Quipper circuits to the rest of the quantum toolchain: the
flattened circuit is emitted against ``qelib1.inc`` with one qubit per
wire ever used.  The extended-model gates map as follows:

* ``Init(False)`` is free (fresh QASM qubits start in |0>); ``Init(True)``
  emits an ``x``.
* ``Term``/``Discard`` have no QASM counterpart; the assertion is recorded
  as a comment (QASM cannot check it) and the qubit is simply left alone.
* ``Measure`` emits ``measure`` into a dedicated one-bit ``creg`` per
  classical wire, which is what lets classically-controlled gates become
  QASM ``if (c_n == v)`` statements (QASM 2 conditions whole registers,
  so one register per bit is the only faithful encoding).
* Parametrised rotations map to ``rx/ry/rz/u1``; ``exp(-i t Z)`` is
  ``rz(2t)`` and ``exp(-i t ZZ)`` is the standard ``cx / rz / cx``
  conjugation.
* Gates with no qelib1 equivalent (``W``, ``E``, ``omega``, ``V``, ...)
  are declared ``opaque`` once and referenced by sanitized name.

Negative controls are conjugated with ``x`` on the control wire.  Gates
QASM 2 genuinely cannot express (multiple classical controls, classical
logic ``CGate``/``CNot``) raise :class:`QasmExportError` -- decompose or
restructure the circuit first.

The comment lines the exporter writes are a stable dialect, not just
prose: the importer (:mod:`repro.io.qasm_parser`) reads ``// assert``,
``// discard``, ``// cinit``, ``// cterm``, ``// cdiscard``, and
``// global phase`` markers back into the extended-model gates they
stand for, which is what makes export -> import -> export byte-stable
(see ``docs/interchange.md`` for the dialect table).
"""

from __future__ import annotations

import math
import re

from ..core.circuit import BCircuit
from ..core.errors import QuipperError
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.stream import StreamConsumer
from ..core.wires import QUANTUM
from ..transform.inline import StreamExpander, iter_flat_gates


class QasmExportError(QuipperError):
    """The circuit uses a construct OpenQASM 2 cannot express."""


#: Zero-control gate translations: repro name -> qelib1 name.
_PLAIN = {
    "X": "x", "not": "x", "Y": "y", "Z": "z", "H": "h", "swap": "swap",
}
_PLAIN_DAGGERED = {"S": ("s", "sdg"), "T": ("t", "tdg")}
_ROTATIONS = {"Rx": "rx", "Ry": "ry", "Rz": "rz"}
#: Single-positive-control translations.
_CONTROLLED = {"X": "cx", "not": "cx", "Z": "cz", "Y": "cy", "H": "ch"}


class _QasmWriter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.qubit_index: dict[int, int] = {}
        self.cregs: dict[int, str] = {}
        self.opaques: dict[str, str] = {}

    def qubit(self, wire: int) -> str:
        if wire not in self.qubit_index:
            self.qubit_index[wire] = len(self.qubit_index)
        return f"q[{self.qubit_index[wire]}]"

    def creg(self, wire: int) -> str:
        if wire not in self.cregs:
            # Sequential naming (c0, c1, ... in allocation order) keeps
            # export -> import -> export byte-stable: the importer
            # re-allocates registers in the same first-use order.
            self.cregs[wire] = f"c{len(self.cregs)}"
        return self.cregs[wire]

    def opaque(self, name: str, arity: int) -> str:
        if name not in self.opaques:
            ident = re.sub(r"\W+", "_", name).strip("_") or "gate"
            ident = f"op_{ident}"
            # Distinct display names can sanitize to one ident ('V' and
            # 'V*' both give op_V); suffix until unique so the importer
            # can tell them apart.
            taken = set(self.opaques.values())
            while ident in taken:
                ident += "_"
            args = ", ".join(f"a{i}" for i in range(arity))
            self.emit(f"// no qelib1 equivalent for {name!r}:")
            self.emit(f"opaque {ident} {args};")
            self.opaques[name] = ident
        return self.opaques[name]

    def emit(self, line: str) -> None:
        self.lines.append(line)


def _fmt_angle(value: float) -> str:
    return repr(float(value))


def _split_controls(
    controls: tuple[Control, ...]
) -> tuple[list[Control], list[Control]]:
    quantum = [c for c in controls if c.wire_type == QUANTUM]
    classical = [c for c in controls if c.wire_type != QUANTUM]
    return quantum, classical


def _classical_guard(writer: _QasmWriter,
                     classical: list[Control]) -> str:
    if not classical:
        return ""
    if len(classical) > 1:
        raise QasmExportError(
            "OpenQASM 2 cannot condition one statement on several "
            "classical bits; restructure the circuit"
        )
    ctl = classical[0]
    return f"if ({writer.creg(ctl.wire)} == {int(ctl.positive)}) "


def _negate_controls(writer: _QasmWriter, quantum: list[Control],
                     guard: str) -> list[str]:
    flips = [
        f"{guard}x {writer.qubit(c.wire)};"
        for c in quantum
        if not c.positive
    ]
    return flips


def _emit_named(writer: _QasmWriter, gate: NamedGate) -> None:
    quantum, classical = _split_controls(gate.controls)
    guard = _classical_guard(writer, classical)
    flips = _negate_controls(writer, quantum, guard)
    for line in flips:
        writer.emit(line)
    try:
        _emit_named_core(writer, gate, quantum, guard)
    finally:
        for line in flips:
            writer.emit(line)


def _emit_named_core(writer: _QasmWriter, gate: NamedGate,
                     quantum: list[Control], guard: str) -> None:
    name = gate.name
    targets = [writer.qubit(t) for t in gate.targets]
    ctls = [writer.qubit(c.wire) for c in quantum]
    param = gate.param
    if (
        gate.inverted
        and param is not None
        and (name in _ROTATIONS or name in ("exp(-i%Z)", "exp(-i%ZZ)"))
    ):
        # The dagger of a rotation negates its angle.  The builder's
        # inverse() already folds this into param, but gates constructed
        # directly (or reloaded from text) can carry inverted=True.
        param = -param
    if not quantum:
        if name in _PLAIN:
            writer.emit(f"{guard}{_PLAIN[name]} {', '.join(targets)};")
            return
        if name in _PLAIN_DAGGERED:
            plain, dagger = _PLAIN_DAGGERED[name]
            writer.emit(
                f"{guard}{dagger if gate.inverted else plain} {targets[0]};"
            )
            return
        if name in _ROTATIONS:
            writer.emit(
                f"{guard}{_ROTATIONS[name]}({_fmt_angle(param)}) "
                f"{targets[0]};"
            )
            return
        if name == "exp(-i%Z)":
            writer.emit(
                f"{guard}rz({_fmt_angle(2.0 * param)}) {targets[0]};"
            )
            return
        if name == "exp(-i%ZZ)":
            a, b = targets
            writer.emit(f"{guard}cx {a}, {b};")
            writer.emit(f"{guard}rz({_fmt_angle(2.0 * param)}) {b};")
            writer.emit(f"{guard}cx {a}, {b};")
            return
        if name in ("R(2pi/%)", "rGate"):
            angle = 2.0 * math.pi / (2.0 ** float(gate.param))
            if gate.inverted:
                angle = -angle
            writer.emit(f"{guard}u1({_fmt_angle(angle)}) {targets[0]};")
            return
        if name in ("omega", "phase"):
            writer.emit(f"// global phase {gate.display_name()} omitted")
            return
        ident = writer.opaque(gate.display_name(), len(targets))
        writer.emit(f"{guard}{ident} {', '.join(targets)};")
        return
    if name in ("omega", "phase"):
        # A controlled global phase is a diagonal phase on the control
        # wires themselves: u1 for one control, cu1 for two.
        angle = math.pi / 4.0 if name == "omega" else param
        if gate.inverted:
            angle = -angle
        if len(quantum) == 1:
            writer.emit(f"{guard}u1({_fmt_angle(angle)}) {ctls[0]};")
            return
        if len(quantum) == 2:
            writer.emit(
                f"{guard}cu1({_fmt_angle(angle)}) {ctls[0]}, {ctls[1]};"
            )
            return
    if len(quantum) == 1:
        if name in _CONTROLLED:
            writer.emit(
                f"{guard}{_CONTROLLED[name]} {ctls[0]}, {targets[0]};"
            )
            return
        if name == "swap":
            a, b = targets
            writer.emit(f"{guard}cx {b}, {a};")
            writer.emit(f"{guard}ccx {ctls[0]}, {a}, {b};")
            writer.emit(f"{guard}cx {b}, {a};")
            return
        if name == "Rz":
            writer.emit(
                f"{guard}crz({_fmt_angle(param)}) {ctls[0]}, "
                f"{targets[0]};"
            )
            return
        if name in ("R(2pi/%)", "rGate"):
            angle = 2.0 * math.pi / (2.0 ** float(gate.param))
            if gate.inverted:
                angle = -angle
            writer.emit(
                f"{guard}cu1({_fmt_angle(angle)}) {ctls[0]}, {targets[0]};"
            )
            return
        if name == "V":
            # Controlled sqrt(X): conjugate a cu1(+-pi/2) by Hadamards
            # on the target (H . diag(1, +-i) . H = V / V-dagger).
            angle = -math.pi / 2.0 if gate.inverted else math.pi / 2.0
            writer.emit(f"{guard}h {targets[0]};")
            writer.emit(
                f"{guard}cu1({_fmt_angle(angle)}) {ctls[0]}, {targets[0]};"
            )
            writer.emit(f"{guard}h {targets[0]};")
            return
        if name == "exp(-i%Z)":
            # exp(-i t Z) == Rz(2t) exactly, so the controlled form is
            # crz(2t).
            writer.emit(
                f"{guard}crz({_fmt_angle(2.0 * param)}) {ctls[0]}, "
                f"{targets[0]};"
            )
            return
        if name == "Ry":
            # cu3(theta, 0, 0) is exactly controlled-Ry(theta).
            writer.emit(
                f"{guard}cu3({_fmt_angle(param)}, 0.0, 0.0) {ctls[0]}, "
                f"{targets[0]};"
            )
            return
        if name == "Rx":
            # Rx(theta) == Rz(-pi/2) Ry(theta) Rz(pi/2) exactly, which
            # is cu3(theta, -pi/2, pi/2).
            writer.emit(
                f"{guard}cu3({_fmt_angle(param)}, "
                f"{_fmt_angle(-math.pi / 2.0)}, "
                f"{_fmt_angle(math.pi / 2.0)}) {ctls[0]}, {targets[0]};"
            )
            return
    if len(quantum) == 2 and name in ("X", "not"):
        writer.emit(f"{guard}ccx {ctls[0]}, {ctls[1]}, {targets[0]};")
        return
    raise QasmExportError(
        f"no OpenQASM 2 encoding for {gate.display_name()!r} with "
        f"{len(quantum)} quantum controls; decompose_generic(TOFFOLI/"
        "BINARY, ...) first"
    )


def bcircuit_to_qasm(bc: BCircuit) -> str:
    """Export a hierarchical circuit as an OpenQASM 2.0 program.

    Boxed subroutines are inlined (QASM 2 ``gate`` bodies cannot contain
    measurement or ancilla management, so inlining is the only faithful
    encoding of the extended model).
    """
    writer = _QasmWriter()
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            writer.qubit(wire)
        else:
            raise QasmExportError(
                "OpenQASM 2 cannot accept classical input wires; bind "
                f"wire {wire} to a value first"
            )
    for gate in iter_flat_gates(bc):
        _emit_gate(writer, gate)
    header = ["OPENQASM 2.0;", 'include "qelib1.inc";']
    decls = [f"qreg q[{max(len(writer.qubit_index), 1)}];"]
    decls.extend(f"creg {name}[1];" for name in writer.cregs.values())
    return "\n".join(header + decls + writer.lines) + "\n"


class QasmStreamWriter(StreamConsumer):
    """Incremental OpenQASM 2.0 export of a gate stream.

    The QASM header must declare the quantum register and every classical
    register, which are only known once the last gate has flowed past --
    so the body is spooled to an anonymous temporary file (O(1) memory,
    O(circuit) disk) while declarations accumulate, and :meth:`finish`
    writes ``header + declarations`` to the destination and copies the
    body after them.  Boxed subroutine calls are expanded on the fly
    through the lazy inliner, with fresh internal wires drawn from a
    dedicated id range (:data:`STREAM_EXPANSION_BASE`) so they can never
    collide with wires the generating builder allocates later.
    """

    def __init__(self, fp):
        self.fp = fp

    def begin(self, inputs, namespace) -> None:
        import tempfile

        self._expander = StreamExpander(namespace)
        self._body = tempfile.TemporaryFile(
            "w+", encoding="utf-8", prefix="repro-qasm-"
        )
        body = self._body

        class _SpoolingWriter(_QasmWriter):
            def emit(self, line: str) -> None:
                body.write(line + "\n")

        self.writer = _SpoolingWriter()
        for wire, wtype in inputs:
            if wtype == QUANTUM:
                self.writer.qubit(wire)
            else:
                raise QasmExportError(
                    "OpenQASM 2 cannot accept classical input wires; "
                    f"bind wire {wire} to a value first"
                )

    def gate(self, gate) -> None:
        for flat in self._expander.expand(gate):
            _emit_gate(self.writer, flat)

    def finish(self, end):
        import shutil

        try:
            header = ["OPENQASM 2.0;", 'include "qelib1.inc";']
            decls = [f"qreg q[{max(len(self.writer.qubit_index), 1)}];"]
            decls.extend(
                f"creg {name}[1];" for name in self.writer.cregs.values()
            )
            self.fp.write("\n".join(header + decls) + "\n")
            self._body.seek(0)
            shutil.copyfileobj(self._body, self.fp)
        finally:
            self._body.close()
        return self.fp


def _emit_gate(writer: _QasmWriter, gate) -> None:
    if isinstance(gate, Comment):
        text = gate.text.replace("\n", " ")
        writer.emit(f"// {text}")
        return
    if isinstance(gate, NamedGate):
        _emit_named(writer, gate)
        return
    if isinstance(gate, Init):
        target = writer.qubit(gate.wire)
        if gate.value:
            writer.emit(f"x {target};")
        return
    if isinstance(gate, Term):
        writer.emit(
            f"// assert {writer.qubit(gate.wire)} == |{int(gate.value)}> "
            "(quipper termination)"
        )
        return
    if isinstance(gate, Discard):
        writer.emit(f"// discard {writer.qubit(gate.wire)}")
        return
    if isinstance(gate, Measure):
        qubit = writer.qubit(gate.wire)
        writer.emit(f"measure {qubit} -> {writer.creg(gate.wire)}[0];")
        return
    if isinstance(gate, CInit):
        if gate.value:
            # QASM 2 can only write a creg through measurement: prepare a
            # scratch qubit in |1> and measure it into the register.
            scratch = writer.qubit(-gate.wire - 1)  # ids are never negative
            writer.emit(f"x {scratch};")
            writer.emit(f"measure {scratch} -> {writer.creg(gate.wire)}[0];")
        else:
            # cregs start at 0, so the init itself is free -- but the
            # marker pins the allocation position so the importer can
            # rebuild the CInit (and the declaration order stays stable).
            writer.emit(f"// cinit {writer.creg(gate.wire)} = 0")
        return
    if isinstance(gate, CTerm):
        writer.emit(
            f"// cterm {writer.creg(gate.wire)} == {int(gate.value)} "
            "(quipper classical termination)"
        )
        return
    if isinstance(gate, CDiscard):
        writer.emit(f"// cdiscard {writer.creg(gate.wire)}")
        return
    if isinstance(gate, (CGate, CNot)):
        raise QasmExportError(
            f"OpenQASM 2 has no classical logic gates ({gate!r}); "
            "keep the computation quantum or post-process the counts"
        )
    if isinstance(gate, BoxCall):
        raise QasmExportError("BoxCall survived inlining (internal error)")
    raise QasmExportError(f"cannot export gate {gate!r}")
