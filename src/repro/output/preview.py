"""Column-art circuit rendering: draw small circuits like the paper's figures.

Renders a flat circuit as wire rows and gate columns::

    0 |0>--H--*--| Meas
    1 |0>-----X--| Meas

with ``*`` filled (positive) controls, ``o`` empty (negative) controls,
``X`` targets of NOTs, boxed names for other gates, ``|0>--`` for
initializations and ``--|0``  for assertive terminations -- the notation
of the paper's Section 4.2.1 diagrams.

Intended for small circuits (tutorials, tests, docs); use the gate-per-
line ASCII format of :mod:`repro.output.ascii` for anything large.
"""

from __future__ import annotations

from ..core.circuit import BCircuit, Circuit
from ..core.errors import QuipperError
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    CTerm,
    Discard,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.wires import QUANTUM

_WIRE_Q = "--"
_WIRE_C = "=="


class _Grid:
    """Rows of cell strings, one row per wire, padded column-wise."""

    def __init__(self) -> None:
        self.rows: dict[int, list[str]] = {}
        self.types: dict[int, str] = {}
        self.order: list[int] = []
        self.columns = 0

    def ensure_wire(self, wire: int, wtype: str) -> None:
        if wire not in self.rows:
            self.rows[wire] = [""] * self.columns
            self.types[wire] = wtype
            self.order.append(wire)

    def add_column(self, cells: dict[int, str]) -> None:
        for wire, cell in cells.items():
            self.rows[wire].append(cell)
        for wire in self.rows:
            if wire not in cells:
                self.rows[wire].append("")
        self.columns += 1

    def render(self) -> str:
        lines = []
        widths = [
            max(
                (len(self.rows[w][col]) for w in self.order
                 if col < len(self.rows[w])),
                default=0,
            )
            for col in range(self.columns)
        ]
        for wire in self.order:
            fill = _WIRE_Q if self.types.get(wire) == QUANTUM else _WIRE_C
            parts = [f"{wire:>3} "]
            for col, cell in enumerate(self.rows[wire]):
                pad = widths[col] - len(cell)
                if cell == "":
                    parts.append(fill[0] * (widths[col] + 2))
                else:
                    parts.append(
                        fill[0] + cell + fill[0] * (pad + 1)
                    )
            lines.append("".join(parts).rstrip("-=") or f"{wire:>3} ")
        return "\n".join(lines)


def _gate_cells(gate) -> dict[int, str] | None:
    if isinstance(gate, Comment):
        return None
    if isinstance(gate, NamedGate):
        name = gate.display_name()
        symbol = "X" if name in ("not", "X") else f"[{name}]"
        cells = {t: symbol for t in gate.targets}
        for ctl in gate.controls:
            cells[ctl.wire] = "*" if ctl.positive else "o"
        return cells
    if isinstance(gate, Init):
        return {gate.wire: f"|{int(gate.value)}>"}
    if isinstance(gate, Term):
        return {gate.wire: f"<{int(gate.value)}|"}
    if isinstance(gate, Discard):
        return {gate.wire: "/discard/"}
    if isinstance(gate, CInit):
        return {gate.wire: f"({int(gate.value)})"}
    if isinstance(gate, CTerm):
        return {gate.wire: f"({int(gate.value)}|"}
    if isinstance(gate, CDiscard):
        return {gate.wire: "/discard/"}
    if isinstance(gate, Measure):
        return {gate.wire: "[Meas]"}
    if isinstance(gate, CGate):
        star = "*" if gate.uncompute else ""
        cells = {gate.target: f"[{gate.name}{star}]"}
        for wire in gate.inputs:
            cells.setdefault(wire, "*")
        return cells
    if isinstance(gate, CNot):
        cells = {gate.wire: "X"}
        for ctl in gate.controls:
            cells[ctl.wire] = "*" if ctl.positive else "o"
        return cells
    if isinstance(gate, BoxCall):
        star = "*" if gate.inverted else ""
        reps = f"x{gate.repetitions}" if gate.repetitions != 1 else ""
        label = f"[{gate.name}{star}{reps}]"
        cells = {w: label for w, _ in gate.in_wires}
        for w, _ in gate.out_wires:
            cells.setdefault(w, label)
        for ctl in gate.controls:
            cells[ctl.wire] = "*" if ctl.positive else "o"
        return cells
    raise QuipperError(f"cannot preview gate {gate!r}")


def preview_circuit(circuit: Circuit, max_gates: int = 200) -> str:
    """Render a flat circuit as column art (small circuits only)."""
    if len(circuit.gates) > max_gates:
        raise QuipperError(
            f"circuit has {len(circuit.gates)} gates; preview is meant for "
            f"small circuits (max_gates={max_gates})"
        )
    grid = _Grid()
    for wire, wtype in circuit.inputs:
        grid.ensure_wire(wire, wtype)
    for gate in circuit.gates:
        cells = _gate_cells(gate)
        if cells is None:
            continue
        for wire, wtype in list(gate.wires_in()) + list(gate.wires_out()):
            grid.ensure_wire(wire, wtype)
        grid.add_column(cells)
    return grid.render()


def preview_bcircuit(bc: BCircuit, max_gates: int = 200) -> str:
    """Render a hierarchy: the main circuit, then each subroutine."""
    parts = [preview_circuit(bc.circuit, max_gates)]
    for name in bc.subroutine_names():
        parts.append(f'\nSubroutine "{name}":')
        parts.append(preview_circuit(bc.namespace[name].circuit, max_gates))
    return "\n".join(parts)


def preview_generic(fn, *shape_args, max_gates: int = 200) -> str:
    """Generate fn's circuit and render it as column art."""
    from ..core.builder import build

    bc, _ = build(fn, *shape_args)
    return preview_bcircuit(bc, max_gates)
