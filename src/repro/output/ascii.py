"""Text rendering of circuits, in the style of Quipper's ASCII output.

Quipper's text format prints one gate per line, e.g.::

    Inputs: 0:Qubit, 1:Qubit
    QGate["H"](0)
    QGate["not"](1) with controls=[+0]
    QGate["not"](2) with controls=[+0, -1]
    Outputs: 0:Qubit, 1:Qubit

Subroutine definitions are printed after the main circuit, mirroring the
paper's "boxed subcircuits ... with a separate definition on the side".
"""

from __future__ import annotations

from ..core.circuit import BCircuit, Circuit
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.stream import StreamConsumer
from ..core.wires import QUANTUM


def _fmt_controls(controls: tuple[Control, ...]) -> str:
    if not controls:
        return ""
    parts = []
    for ctl in controls:
        sign = "+" if ctl.positive else "-"
        mark = "" if ctl.wire_type == QUANTUM else "c"
        parts.append(f"{sign}{mark}{ctl.wire}")
    return f" with controls=[{', '.join(parts)}]"


def _fmt_endpoint(wires: tuple[tuple[int, str], ...]) -> str:
    if not wires:
        return "none"
    return ", ".join(
        f"{w}:{'Qubit' if t == QUANTUM else 'Bit'}" for w, t in wires
    )


def format_gate(gate: Gate) -> str:
    """Render a single gate as one line of text."""
    if isinstance(gate, NamedGate):
        name = gate.display_name()
        wires = ",".join(str(w) for w in gate.targets)
        return f'QGate["{name}"]({wires}){_fmt_controls(gate.controls)}'
    if isinstance(gate, Init):
        return f"QInit{int(gate.value)}({gate.wire})"
    if isinstance(gate, Term):
        return f"QTerm{int(gate.value)}({gate.wire})"
    if isinstance(gate, Discard):
        return f"QDiscard({gate.wire})"
    if isinstance(gate, CInit):
        return f"CInit{int(gate.value)}({gate.wire})"
    if isinstance(gate, CTerm):
        return f"CTerm{int(gate.value)}({gate.wire})"
    if isinstance(gate, CDiscard):
        return f"CDiscard({gate.wire})"
    if isinstance(gate, Measure):
        return f"QMeas({gate.wire})"
    if isinstance(gate, CGate):
        inputs = ",".join(str(w) for w in gate.inputs)
        star = "*" if gate.uncompute else ""
        return f'CGate{star}["{gate.name}"]({gate.target}; {inputs})'
    if isinstance(gate, CNot):
        return f"CNot({gate.wire}){_fmt_controls(gate.controls)}"
    if isinstance(gate, Comment):
        labels = ", ".join(
            f"{'' if t == QUANTUM else 'c'}{w}:{lab}"
            for w, t, lab in gate.labels
        )
        suffix = f" [{labels}]" if labels else ""
        star = "*" if gate.inverted else ""
        return f'Comment["{gate.text}{star}"]{suffix}'
    if isinstance(gate, BoxCall):
        star = "*" if gate.inverted else ""
        reps = f" x{gate.repetitions}" if gate.repetitions != 1 else ""
        ins = ",".join(str(w) for w, _ in gate.in_wires)
        outs = ",".join(str(w) for w, _ in gate.out_wires)
        return (
            f'Subroutine{star}["{gate.name}"]{reps}({ins}) -> ({outs})'
            f"{_fmt_controls(gate.controls)}"
        )
    raise TypeError(f"unknown gate kind {gate!r}")


def format_circuit(circuit: Circuit) -> str:
    """Render a flat circuit as multi-line text."""
    lines = [f"Inputs: {_fmt_endpoint(circuit.inputs)}"]
    lines.extend(format_gate(g) for g in circuit.gates)
    lines.append(f"Outputs: {_fmt_endpoint(circuit.outputs)}")
    return "\n".join(lines)


def format_bcircuit(bc: BCircuit) -> str:
    """Render a hierarchical circuit: main circuit then subroutines."""
    parts = [format_circuit(bc.circuit)]
    for name in bc.subroutine_names():
        sub = bc.namespace[name]
        parts.append(f"\nSubroutine: \"{name}\"")
        parts.append(format_circuit(sub.circuit))
    return "\n".join(parts)


class AsciiStreamWriter(StreamConsumer):
    """Write the ASCII rendering of a gate stream incrementally to *fp*.

    One line per gate, written the moment the gate is emitted, so the
    text of circuits too large to hold in memory lands on disk in O(1)
    memory.  The boxed subroutine definitions (small by construction) are
    appended after the main circuit, exactly like
    :func:`format_bcircuit`; with ``interchange`` a ``Shape:`` line is
    added per subroutine, matching :func:`repro.io.dumps` so the file
    round-trips through :func:`repro.io.loads`.
    """

    def __init__(self, fp, interchange: bool = False):
        self.fp = fp
        self.interchange = interchange

    def begin(self, inputs, namespace) -> None:
        self.namespace = namespace
        self.fp.write(f"Inputs: {_fmt_endpoint(inputs)}\n")

    def gate(self, gate: Gate) -> None:
        self.fp.write(format_gate(gate) + "\n")

    def finish(self, end):
        fp = self.fp
        fp.write(f"Outputs: {_fmt_endpoint(end.outputs)}\n")
        for name in sorted(self.namespace):
            sub = self.namespace[name]
            fp.write(f'\nSubroutine: "{name}"\n')
            if self.interchange:
                from ..io.ascii_parser import encode_shape

                fp.write(
                    f"Shape: {encode_shape(sub.in_shape)} -> "
                    f"{encode_shape(sub.out_shape)}\n"
                )
            fp.write(format_circuit(sub.circuit) + "\n")
        return fp


def print_generic(fn, *shape_args, file=None) -> BCircuit:
    """Generate the circuit of *fn* on the given shapes and print it.

    This is the text-format analogue of Quipper's ``print_generic``.
    Returns the generated circuit so callers can inspect it further.

    Deprecation shim: the fluent equivalent is
    ``Program.capture(fn, *shape_args).print(file=file)``.
    """
    from ..program import Program

    return Program.capture(fn, *shape_args).print(file=file)
