"""Circuit output: text rendering and gate-count reports.

Quipper's ``print_generic`` supports several formats (text, PostScript,
PDF, gate counts); this reproduction provides the text and gate-count
formats, which are the ones the paper's evaluation uses.
"""

from .ascii import format_bcircuit, format_circuit, print_generic
from .gatecount import format_gatecount, gatecount_generic, print_gatecount
from .preview import preview_bcircuit, preview_circuit, preview_generic

__all__ = [
    "format_bcircuit",
    "format_circuit",
    "print_generic",
    "format_gatecount",
    "gatecount_generic",
    "print_gatecount",
    "preview_circuit",
    "preview_bcircuit",
    "preview_generic",
]
