"""Gate-count reports in the paper's ``-f gatecount`` format (Section 5.3.1).

Example output for ``o4_POW17`` in the paper::

    Aggregated gate count:
    1636: "Init0"
    3484: "Not", controls 1
    288: "Not" controls 1+1
    2592: "Not", controls 2
    1632: "Term0"
    Total gates: 9632
    Inputs: 4
    Outputs: 8
    Qubits in circuit: 71
"""

from __future__ import annotations

from collections import Counter

from ..core.circuit import BCircuit
from ..transform.count import (
    aggregate_gate_count,
    subroutine_gate_counts,
    total_gates,
)


def _fmt_key(name: str, pos: int, neg: int) -> str:
    if pos == 0 and neg == 0:
        return f'"{name}"'
    if neg == 0:
        return f'"{name}", controls {pos}'
    return f'"{name}", controls {pos}+{neg}'


def format_gatecount(bc: BCircuit, per_subroutine: bool = False) -> str:
    """Render the aggregated gate count of a circuit hierarchy.

    With ``per_subroutine`` a count is printed for each boxed subcircuit
    first, then the aggregate, matching the paper's description of the
    ``-f gatecount`` command-line option.
    """
    lines: list[str] = []
    if per_subroutine:
        for name, counts in sorted(subroutine_gate_counts(bc).items()):
            lines.append(f'Subroutine "{name}" gate count:')
            lines.extend(_format_counts(counts))
            lines.append("")
    counts = aggregate_gate_count(bc)
    lines.append("Aggregated gate count:")
    lines.extend(_format_counts(counts))
    lines.append(f"Total gates: {total_gates(counts)}")
    width = bc.check()
    lines.append(f"Inputs: {bc.circuit.in_arity}")
    lines.append(f"Outputs: {bc.circuit.out_arity}")
    lines.append(f"Qubits in circuit: {width}")
    return "\n".join(lines)


def _format_counts(counts: Counter) -> list[str]:
    return [
        f"{count}: {_fmt_key(name, pos, neg)}"
        for (name, pos, neg), count in sorted(counts.items())
    ]


def gatecount_generic(fn, *shape_args) -> Counter:
    """Generate the circuit of *fn* and return its aggregated gate count.

    Deprecation shim: the fluent equivalent is
    ``Program.capture(fn, *shape_args).count()``.
    """
    from ..program import Program

    return Program.capture(fn, *shape_args).count()


def print_gatecount(fn, *shape_args, per_subroutine: bool = False) -> BCircuit:
    """Generate the circuit of *fn*, print its gate-count report.

    Deprecation shim: the fluent equivalent is
    ``print(Program.capture(fn, *shape_args).gatecount())``.
    """
    from ..program import Program

    program = Program.capture(fn, *shape_args)
    print(program.gatecount(per_subroutine=per_subroutine))
    return program.bcircuit
