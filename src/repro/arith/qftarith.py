"""QFT-based (Draper) addition -- the "Alternatives" implementation.

The paper's Triangle Finding code includes an ``Alternatives`` module with
"alternatives and/or generalization of certain algorithms" (Section 5.2);
Quipper's distribution ships a QFT adder among them.  The Draper adder
trades the ripple-carry ancillas for controlled phase rotations: add in the
Fourier basis, no scratch qubits at all.

Used by the ablation benchmark comparing ripple-carry vs QFT adder costs.
"""

from __future__ import annotations

from ..core.builder import Circ
from ..datatypes.register import Register
from ..lib.qft import qft_big_endian, qft_big_endian_inverse
from .adder import _require_same_length


def qft_add_in_place(qc: Circ, x: Register, y: Register) -> None:
    """y += x (mod ``2**l``) in the Fourier basis (Draper's adder).

    After ``QFT(y)``, qubit i of y holds the phase ``0.y_{i+1}..y_n``;
    adding x contributes, for each j >= i, a controlled R_{j-i+1} from
    x's bit j.  The inverse QFT returns to the computational basis.
    """
    n = _require_same_length(x, y)
    ys = list(y.wires)  # big-endian
    xs = list(x.wires)
    qft_big_endian(qc, ys)
    for i in range(n):
        for j in range(i, n):
            qc.rGate(j - i + 1, ys[i], controls=xs[j])
    qft_big_endian_inverse(qc, ys)


def qft_subtract_in_place(qc: Circ, x: Register, y: Register) -> None:
    """y -= x (mod ``2**l``): the inverse rotations in reverse order."""
    n = _require_same_length(x, y)
    ys = list(y.wires)
    xs = list(x.wires)
    qft_big_endian(qc, ys)
    for i in range(n - 1, -1, -1):
        for j in range(n - 1, i - 1, -1):
            qc.rGate(j - i + 1, ys[i], controls=xs[j], inverted=True)
    qft_big_endian_inverse(qc, ys)
