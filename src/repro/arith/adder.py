"""Ripple-carry adders in the style of Vedral-Barenco-Ekert (VBE).

Quipper's arithmetic library builds integer operations from ripple-carry
primitives with explicit carry ancillas; this is why the paper's gate
counts are dominated by controlled-NOTs with one or two controls plus
matching Init0/Term0 pairs ("about one third are qubit initializations and
terminations", Section 5.3.1).  We follow the same style.

All operations work on :class:`~repro.datatypes.register.Register`
subclasses (``QDInt``, ``QIntTF``, ``FPReal``); bit *i* denotes the wire of
weight ``2**i`` regardless of the register's MSB-first storage order.
"""

from __future__ import annotations

from ..core.builder import Circ
from ..core.errors import ShapeMismatchError
from ..core.wires import Qubit
from ..datatypes.register import Register


def _require_same_length(x: Register, y: Register) -> int:
    if len(x) != len(y):
        raise ShapeMismatchError(
            f"register length mismatch: {len(x)} vs {len(y)}"
        )
    return len(x)


def xor_register(qc: Circ, src: Register, dst: Register,
                 controls=None) -> None:
    """dst ^= src, bitwise (CNOT each pair, optionally controlled)."""
    n = _require_same_length(src, dst)
    for i in range(n):
        ctl = [src.bit(i)]
        if controls is not None:
            ctl.extend(controls if isinstance(controls, (list, tuple))
                       else [controls])
        qc.qnot(dst.bit(i), controls=ctl)


def copy_register(qc: Circ, src: Register, controls=None) -> Register:
    """Allocate a zeroed register of src's shape and xor src into it."""
    fresh = src.qdata_rebuild(
        [qc.qinit_qubit(False) for _ in range(len(src))]
    )
    xor_register(qc, src, fresh, controls=controls)
    return fresh


def _carry(qc: Circ, c: Qubit, a: Qubit, b: Qubit, c_next: Qubit) -> None:
    qc.qnot(c_next, controls=(a, b))
    qc.qnot(b, controls=a)
    qc.qnot(c_next, controls=(c, b))


def _uncarry(qc: Circ, c: Qubit, a: Qubit, b: Qubit, c_next: Qubit) -> None:
    qc.qnot(c_next, controls=(c, b))
    qc.qnot(b, controls=a)
    qc.qnot(c_next, controls=(a, b))


def _sum(qc: Circ, c: Qubit, a: Qubit, b: Qubit, controls=None) -> None:
    qc.qnot(b, controls=_with(controls, a))
    qc.qnot(b, controls=_with(controls, c))


def _with(controls, ctl):
    if controls is None:
        return [ctl]
    if isinstance(controls, (list, tuple)):
        return [ctl, *controls]
    return [ctl, controls]


def add_in_place(qc: Circ, x: Register, y: Register,
                 carry_out: Qubit | None = None, controls=None) -> None:
    """y += x (mod ``2**l``), the VBE ripple-carry adder.

    With *carry_out* the overflow bit is xored into the given qubit (making
    the operation an (l+1)-bit add).  With *controls*, the addition happens
    only when the controls are satisfied; only the sum gates are controlled
    -- the carry cascade is computed and uncomputed unconditionally, which
    is the standard cheap way to control an adder.

    Note: with both *controls* and *carry_out*, the carry_out write is also
    controlled, but the carry cascade itself is not; the carry value xored
    into carry_out is the true carry of x+y.
    """
    n = _require_same_length(x, y)
    with qc.ancilla_list(n) as c:
        for i in range(n - 1):
            _carry(qc, c[i], x.bit(i), y.bit(i), c[i + 1])
        if carry_out is not None:
            # CARRY(c[n-1], x[n-1], y[n-1], carry_out) followed by the
            # restoring CNOT; only the writes into carry_out are controlled.
            qc.qnot(
                carry_out,
                controls=_carry_out_controls(
                    controls, x.bit(n - 1), y.bit(n - 1)
                ),
            )
            qc.qnot(y.bit(n - 1), controls=x.bit(n - 1))
            qc.qnot(
                carry_out,
                controls=_carry_out_controls(
                    controls, c[n - 1], y.bit(n - 1)
                ),
            )
            qc.qnot(y.bit(n - 1), controls=x.bit(n - 1))
        _sum(qc, c[n - 1], x.bit(n - 1), y.bit(n - 1), controls=controls)
        for i in range(n - 2, -1, -1):
            _uncarry(qc, c[i], x.bit(i), y.bit(i), c[i + 1])
            _sum(qc, c[i], x.bit(i), y.bit(i), controls=controls)


def _carry_out_controls(controls, *wires):
    base = list(wires)
    if controls is None:
        return base
    if isinstance(controls, (list, tuple)):
        return base + list(controls)
    return base + [controls]


def subtract_in_place(qc: Circ, x: Register, y: Register,
                      controls=None) -> None:
    """y -= x (mod ``2**l``): the exact inverse gate sequence of the add.

    Every constituent of the VBE adder (CNOT, Toffoli) is self-inverse and
    the two gates of a SUM commute, so the inverse is the adder's blocks
    replayed in the mirrored order.
    """
    n = _require_same_length(x, y)
    with qc.ancilla_list(n) as c:
        for i in range(n - 1):
            _sum(qc, c[i], x.bit(i), y.bit(i), controls=controls)
            _carry(qc, c[i], x.bit(i), y.bit(i), c[i + 1])
        _sum(qc, c[n - 1], x.bit(n - 1), y.bit(n - 1), controls=controls)
        for i in range(n - 2, -1, -1):
            _uncarry(qc, c[i], x.bit(i), y.bit(i), c[i + 1])


def add_out_of_place(qc: Circ, x: Register, y: Register,
                     controls=None) -> Register:
    """Return a fresh register holding x + y (mod ``2**l``).

    The inputs are unchanged; sum structure is y copied then x added.
    """
    total = copy_register(qc, y, controls=None)
    add_in_place(qc, x, total, controls=controls)
    return total


def add_const_in_place(qc: Circ, value: int, y: Register,
                       controls=None) -> None:
    """y += value (mod ``2**l``), via a scoped constant ancilla register.

    The constant register is initialized, added, and assertively terminated
    -- the Quipper idiom for classical constants entering arithmetic.
    """
    n = len(y)
    pattern = [bool((value >> (n - 1 - i)) & 1) for i in range(n)]
    with qc.ancilla_init(pattern) as const_wires:
        const = y.qdata_rebuild(const_wires)
        add_in_place(qc, const, y, controls=controls)


def increment_in_place(qc: Circ, y: Register, controls=None) -> None:
    """y += 1 (mod ``2**l``)."""
    add_const_in_place(qc, 1, y, controls=controls)


def decrement_in_place(qc: Circ, y: Register, controls=None) -> None:
    """y -= 1 (mod ``2**l``)."""
    add_const_in_place(qc, (1 << len(y)) - 1, y, controls=controls)


def negate_in_place(qc: Circ, y: Register, controls=None) -> None:
    """y := -y (mod ``2**l``), i.e. two's complement: flip all bits, +1."""
    for i in range(len(y)):
        qc.qnot(y.bit(i), controls=controls)
    increment_in_place(qc, y, controls=controls)
