"""Shifts and rotations.

Doubling modulo ``2**l - 1`` is a pure cyclic rotation of the bit pattern,
so Quipper's ``double_TF`` emits *no gates at all* -- it just relabels which
wire carries which bit weight.  This is visible in the paper's Figure 3,
where the ``double_TF`` regions contain only ENTER/EXIT comments with the
wire labels cyclically permuted.  We reproduce exactly that.
"""

from __future__ import annotations

from ..core.builder import Circ
from ..datatypes.register import Register


def rotate_left_tf(qc: Circ, x: Register, comment: bool = False) -> Register:
    """Double x modulo ``2**l - 1``: a gate-free cyclic wire relabeling.

    Returns a new register handle over the same wires with each bit's
    weight doubled (bit i of the result is bit i-1 of x, wrapping).  With
    ``comment=True``, ENTER/EXIT comments with permuted labels are emitted,
    matching the paper's Figure 3 rendering of ``double_TF``.
    """
    if comment:
        qc.comment_with_label("ENTER: double_TF", x, "x")
    rotated = x.qdata_rebuild(x.wires[1:] + x.wires[:1])
    if comment:
        qc.comment_with_label("EXIT: double_TF", rotated, "x")
    return rotated


def rotate_right_tf(qc: Circ, x: Register, comment: bool = False) -> Register:
    """Halve x modulo ``2**l - 1`` (the inverse relabeling)."""
    if comment:
        qc.comment_with_label("ENTER: double_TF*", x, "x")
    rotated = x.qdata_rebuild(x.wires[-1:] + x.wires[:-1])
    if comment:
        qc.comment_with_label("EXIT: double_TF*", rotated, "x")
    return rotated


def shift_left_out_of_place(qc: Circ, x: Register, amount: int) -> Register:
    """Return a fresh register holding ``x << amount`` (mod ``2**l``).

    Out of place because the mod-``2**l`` shift drops high bits and is
    therefore not reversible in place.
    """
    n = len(x)
    fresh = x.qdata_rebuild([qc.qinit_qubit(False) for _ in range(n)])
    for i in range(n - amount):
        qc.qnot(fresh.bit(i + amount), controls=x.bit(i))
    return fresh
