"""Arithmetic modulo ``2**l - 1``: the Triangle Finding oracle's substrate.

Section 5.3.1 of the paper: "QIntTF denotes the type of quantum integers
used by the oracle, which happen to be l-bit integers with arithmetic taken
modulo 2^l - 1 (not 2^l)".  Addition modulo ``2**l - 1`` is ones'-
complement (end-around carry) addition: compute the ``(l+1)``-bit sum, then
fold the carry back into the low bit.  Both the all-zeros and the all-ones
patterns represent zero; all operations here are correct *modulo*
``2**l - 1`` on raw register values, which is the invariant the oracle
needs.

Everything follows the compute/copy/uncompute discipline of the paper's
Figure 3: a ladder of out-of-place operations, a copy of the final result,
and the mirrored uncomputation (``with_computed``).
"""

from __future__ import annotations

from ..core.builder import Circ, neg
from ..core.wires import Qubit
from ..datatypes.register import Register
from .adder import (
    add_const_in_place,
    add_in_place,
    copy_register,
    xor_register,
)
from .shift import rotate_left_tf


def add_tf(qc: Circ, x: Register, y: Register) -> Register:
    """Return a fresh register holding x + y (mod ``2**l - 1``).

    Inputs are unchanged.  The raw (l+1)-bit sum is computed into scratch,
    the end-around-carry fold ``low + carry`` is written to the result, and
    the scratch is uncomputed.  (The fold's own carry can never be 1: the
    maximum raw sum is ``2**(l+1) - 2``, whose low part and carry cannot
    both be maximal.)
    """

    def compute():
        total = copy_register(qc, y)
        carry = qc.qinit_qubit(False)
        add_in_place(qc, x, total, carry_out=carry)
        return total, carry

    def action(computed):
        total, carry = computed
        result = copy_register(qc, total)
        add_const_in_place(qc, 1, result, controls=carry)
        return result

    return qc.with_computed(compute, action)


def add_tf_select(qc: Circ, ctrl: Qubit, x: Register,
                  y: Register) -> Register:
    """Return a fresh register: ``y + x (mod 2**l - 1)`` if ctrl else ``y``.

    This is the semantics of the Triangle Finding oracle's
    ``o7_ADD_controlled`` as used in the ``o8_MUL`` shift-and-add ladder:
    the sum is computed unconditionally, and ctrl selects which value is
    copied into the fresh output register.
    """

    def compute():
        return add_tf(qc, x, y)

    def action(total):
        result = y.qdata_rebuild(
            [qc.qinit_qubit(False) for _ in range(len(y))]
        )
        xor_register(qc, total, result, controls=ctrl)
        xor_register(qc, y, result, controls=neg(ctrl))
        return result

    return qc.with_computed(compute, action)


def mul_tf(qc: Circ, x: Register, y: Register) -> Register:
    """Return a fresh register holding x * y (mod ``2**l - 1``).

    Shift-and-add: for each bit i of y, conditionally accumulate the
    i-fold doubling of x (a gate-free rotation, see
    :func:`~repro.arith.shift.rotate_left_tf`).  The ladder of partial sums
    is uncomputed after the final product is copied out -- exactly the
    ladder-and-mirror structure of the paper's Figure 3.
    """
    n = len(x)

    def compute():
        acc = y.qdata_rebuild(
            [qc.qinit_qubit(False) for _ in range(len(y))]
        )
        cur = x
        for i in range(n):
            acc = add_tf_select(qc, y.bit(i), cur, acc)
            cur = rotate_left_tf(qc, cur)
        return acc

    def action(acc):
        return copy_register(qc, acc)

    return qc.with_computed(compute, action)


def square_tf(qc: Circ, x: Register) -> Register:
    """Return a fresh register holding x**2 (mod ``2**l - 1``).

    A register cannot control additions onto itself (no-cloning), so the
    input is first copied to scratch, multiplied, and the copy uncomputed.
    """

    def compute():
        return copy_register(qc, x)

    def action(x_copy):
        return mul_tf(qc, x, x_copy)

    return qc.with_computed(compute, action)
