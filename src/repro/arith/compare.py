"""Comparators: equality and order tests into a fresh target qubit.

Built in the compute/copy/uncompute style (``with_computed``), so all
scratch space is returned clean; the equality test uses negative controls,
which is where the paper's ``"Not", controls a+b`` mixed-sign gate counts
come from.
"""

from __future__ import annotations

from ..core.builder import Circ, neg
from ..core.errors import ShapeMismatchError
from ..core.wires import Qubit
from ..datatypes.register import Register
from .adder import _require_same_length


def equals(qc: Circ, x: Register, y: Register, controls=None) -> Qubit:
    """Return a fresh qubit holding (x == y), inputs unchanged.

    Computes the bitwise XOR into scratch, applies an all-negative-controls
    NOT onto the result (XOR pattern all zero means equal), and uncomputes.
    """
    n = _require_same_length(x, y)
    result = qc.qinit_qubit(False)

    def compute():
        scratch = [qc.qinit_qubit(False) for _ in range(n)]
        for i in range(n):
            qc.qnot(scratch[i], controls=x.bit(i))
            qc.qnot(scratch[i], controls=y.bit(i))
        return scratch

    def action(scratch):
        ctl = [neg(s) for s in scratch]
        if controls is not None:
            ctl.extend(controls if isinstance(controls, (list, tuple))
                       else [controls])
        qc.qnot(result, controls=ctl)
        return result

    return qc.with_computed(compute, action)


def equals_const(qc: Circ, x: Register, value: int, controls=None) -> Qubit:
    """Return a fresh qubit holding (x == value) for a constant value."""
    n = len(x)
    result = qc.qinit_qubit(False)
    ctl = []
    for i in range(n):
        bit_set = bool((value >> i) & 1)
        ctl.append(x.bit(i) if bit_set else neg(x.bit(i)))
    if controls is not None:
        ctl.extend(controls if isinstance(controls, (list, tuple))
                   else [controls])
    qc.qnot(result, controls=ctl)
    return result


def less_than(qc: Circ, x: Register, y: Register, controls=None) -> Qubit:
    """Return a fresh qubit holding (x < y), unsigned; inputs unchanged.

    Uses the borrow identity: x < y iff the carry chain of (~x) + y
    overflows.  The majority cascade is computed into scratch ancillas and
    uncomputed around the single copy-out.
    """
    n = _require_same_length(x, y)
    result = qc.qinit_qubit(False)

    def compute():
        # Flip x so the carries of (~x + y) can be accumulated.
        for i in range(n):
            qc.qnot(x.bit(i))
        carries = [qc.qinit_qubit(False)]  # c_0 = 0
        for i in range(n):
            c_next = qc.qinit_qubit(False)
            _majority(qc, carries[i], x.bit(i), y.bit(i), c_next)
            carries.append(c_next)
        return carries

    def action(carries):
        ctl = [carries[n]]
        if controls is not None:
            ctl.extend(controls if isinstance(controls, (list, tuple))
                       else [controls])
        qc.qnot(result, controls=ctl)
        return result

    return qc.with_computed(compute, action)


def greater_than(qc: Circ, x: Register, y: Register, controls=None) -> Qubit:
    """Return a fresh qubit holding (x > y), unsigned; inputs unchanged."""
    return less_than(qc, y, x, controls=controls)


def _majority(qc: Circ, c: Qubit, a: Qubit, b: Qubit, target: Qubit) -> None:
    """target ^= majority(a, b, c), using three Toffoli gates."""
    qc.qnot(target, controls=(a, b))
    qc.qnot(target, controls=(a, c))
    qc.qnot(target, controls=(b, c))
