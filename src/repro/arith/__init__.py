"""Quantum integer and fixed-point arithmetic (the oracle substrate).

Ripple-carry adders (:mod:`~repro.arith.adder`), comparators
(:mod:`~repro.arith.compare`), shifts (:mod:`~repro.arith.shift`),
multiplication mod ``2**l`` (:mod:`~repro.arith.mul`), Triangle-Finding
arithmetic mod ``2**l - 1`` (:mod:`~repro.arith.modular`), and the QFT
adder alternative (:mod:`~repro.arith.qftarith`).
"""

from .adder import (
    add_const_in_place,
    add_in_place,
    add_out_of_place,
    copy_register,
    decrement_in_place,
    increment_in_place,
    negate_in_place,
    subtract_in_place,
    xor_register,
)
from .compare import equals, equals_const, greater_than, less_than
from .modular import add_tf, add_tf_select, mul_tf, square_tf
from .mul import (
    mul_const_out_of_place,
    mul_out_of_place,
    square_out_of_place,
)
from .qftarith import qft_add_in_place, qft_subtract_in_place
from .shift import rotate_left_tf, rotate_right_tf, shift_left_out_of_place

__all__ = [
    "add_in_place",
    "add_out_of_place",
    "add_const_in_place",
    "increment_in_place",
    "decrement_in_place",
    "negate_in_place",
    "subtract_in_place",
    "copy_register",
    "xor_register",
    "equals",
    "equals_const",
    "less_than",
    "greater_than",
    "add_tf",
    "add_tf_select",
    "mul_tf",
    "square_tf",
    "mul_out_of_place",
    "square_out_of_place",
    "mul_const_out_of_place",
    "qft_add_in_place",
    "qft_subtract_in_place",
    "rotate_left_tf",
    "rotate_right_tf",
    "shift_left_out_of_place",
]
