"""Multiplication modulo ``2**l`` (standard QDInt arithmetic).

Shift-and-add over sub-registers: partial product i adds the low ``l - i``
bits of y into bits ``i..l-1`` of the accumulator, controlled on bit i of
x.  Out of place (the product cannot reversibly overwrite an input).
"""

from __future__ import annotations

from ..core.builder import Circ
from ..datatypes.qdint import QDInt
from ..datatypes.register import Register
from .adder import _require_same_length, add_in_place


def _bit_slice(reg: Register, lo: int, hi: int) -> QDInt:
    """A register view of bits lo..hi-1 (little-endian positions)."""
    le = reg.bits_le()[lo:hi]
    return QDInt(list(reversed(le)))


def mul_out_of_place(qc: Circ, x: Register, y: Register,
                     controls=None) -> Register:
    """Return a fresh register holding x * y (mod ``2**l``)."""
    n = _require_same_length(x, y)
    product = x.qdata_rebuild([qc.qinit_qubit(False) for _ in range(n)])
    for i in range(n):
        ctl = [x.bit(i)]
        if controls is not None:
            ctl.extend(controls if isinstance(controls, (list, tuple))
                       else [controls])
        add_in_place(
            qc,
            _bit_slice(y, 0, n - i),
            _bit_slice(product, i, n),
            controls=ctl,
        )
    return product


def square_out_of_place(qc: Circ, x: Register) -> Register:
    """Return a fresh register holding x**2 (mod ``2**l``).

    Copies x to scratch first (a register cannot control additions onto a
    product indexed by its own bits while also being the addend).
    """
    n = len(x)

    def compute():
        fresh = x.qdata_rebuild([qc.qinit_qubit(False) for _ in range(n)])
        for i in range(n):
            qc.qnot(fresh.bit(i), controls=x.bit(i))
        return fresh

    def action(x_copy):
        return mul_out_of_place(qc, x, x_copy)

    return qc.with_computed(compute, action)


def mul_const_out_of_place(qc: Circ, value: int, y: Register) -> Register:
    """Return a fresh register holding value * y (mod ``2**l``)."""
    n = len(y)
    product = y.qdata_rebuild([qc.qinit_qubit(False) for _ in range(n)])
    for i in range(n):
        if (value >> i) & 1:
            add_in_place(qc, _bit_slice(y, 0, n - i),
                         _bit_slice(product, i, n))
    return product
