"""Extensible quantum data types (paper Section 4.5).

Each type is a *QShape triple* (parameter / quantum / classical):

=============  ============  ============
parameter      quantum       classical
=============  ============  ============
``bool``       ``Qubit``     ``Bit``
``IntM``       ``QDInt``     ``CInt``
``IntTF``      ``QIntTF``    ``CIntTF``
``FPRealM``    ``FPReal``    ``CFPReal``
=============  ============  ============
"""

from .fpreal import CFPReal, FPReal, FPRealM, fpreal_shape
from .qdint import CInt, IntM, QDInt, qdint_shape
from .qinttf import CIntTF, IntTF, QIntTF, qinttf_shape
from .register import Register, bools_msb_first, int_from_bools_msb

__all__ = [
    "Register",
    "IntM",
    "QDInt",
    "CInt",
    "qdint_shape",
    "IntTF",
    "QIntTF",
    "CIntTF",
    "qinttf_shape",
    "FPRealM",
    "FPReal",
    "CFPReal",
    "fpreal_shape",
    "bools_msb_first",
    "int_from_bools_msb",
]
