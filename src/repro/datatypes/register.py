"""Base machinery shared by the quantum register datatypes.

Each datatype of the paper's Section 4.5 comes as a *QShape triple*: a
parameter version (known at generation time), a quantum version (a register
of qubits), and a classical version (a register of bits)::

    instance QShape IntM QDInt CInt      -- the paper's example

A :class:`Register` is a wrapper around an ordered list of wires, with the
paper's convention that the *first* leaf is the most significant bit (this
is how Quipper's integer registers print: ``x[3], x[2], x[1], x[0]``).
"""

from __future__ import annotations

from ..core.errors import ShapeMismatchError
from ..core.qdata import QData
from ..core.wires import Bit, Qubit, Wire


class Register(QData):
    """An ordered, fixed-length register of wires (MSB first)."""

    def __init__(self, wires: list[Wire]):
        self.wires = list(wires)

    def __len__(self) -> int:
        return len(self.wires)

    @property
    def length(self) -> int:
        return len(self.wires)

    def qdata_leaves(self) -> list[Wire]:
        return list(self.wires)

    def qdata_rebuild(self, leaves: list[Wire]) -> "Register":
        if len(leaves) != len(self.wires):
            raise ShapeMismatchError(
                f"{type(self).__name__} rebuild with {len(leaves)} wires, "
                f"expected {len(self.wires)}"
            )
        return self._rebuild(leaves)

    def _rebuild(self, leaves: list[Wire]) -> "Register":
        return type(self)(leaves)

    def bit(self, index: int) -> Wire:
        """The wire of weight ``2**index`` (little-endian accessor)."""
        return self.wires[len(self.wires) - 1 - index]

    def bits_le(self) -> list[Wire]:
        """Wires in little-endian order (index 0 = least significant)."""
        return list(reversed(self.wires))

    def is_quantum(self) -> bool:
        return all(isinstance(w, Qubit) for w in self.wires)

    def is_classical(self) -> bool:
        return all(isinstance(w, Bit) for w in self.wires)

    def __repr__(self) -> str:
        ids = ",".join(str(w.wire_id) for w in self.wires)
        return f"{type(self).__name__}[{ids}]"


def bools_msb_first(value: int, length: int) -> list[bool]:
    """The two's-complement bit pattern of *value*, MSB first."""
    value %= 1 << length
    return [bool((value >> (length - 1 - i)) & 1) for i in range(length)]


def int_from_bools_msb(bools: list[bool]) -> int:
    """The unsigned integer encoded by an MSB-first bit pattern."""
    value = 0
    for b in bools:
        value = (value << 1) | int(b)
    return value
