"""Triangle Finding integers: arithmetic modulo ``2**l - 1``.

Section 5.3.1 of the paper: "QIntTF denotes the type of quantum integers
used by the oracle, which happen to be l-bit integers with arithmetic taken
modulo 2^l - 1 (not 2^l)".

Arithmetic modulo ``2**l - 1`` is ones'-complement style: the all-zeros and
all-ones registers both represent zero (the "double zero"), and addition
folds the carry-out back into the least significant bit (end-around carry).
The :meth:`IntTF.__eq__` comparison is modular, so the double zero compares
equal to zero.
"""

from __future__ import annotations

from ..core.errors import ShapeMismatchError
from ..core.qdata import qubit
from ..core.wires import Bit, Qubit, Wire
from .register import Register, bools_msb_first, int_from_bools_msb


class IntTF:
    """An integer parameter modulo ``2**length - 1``.

    The raw register value lives in ``[0, 2**length - 1]`` (inclusive!);
    both endpoints represent zero.
    """

    def __init__(self, value: int, length: int):
        if length <= 1:
            raise ValueError("IntTF length must be at least 2")
        self.length = length
        self.raw = value % ((1 << length) - 1) if value >= 0 else (
            value % ((1 << length) - 1)
        )

    @property
    def modulus(self) -> int:
        return (1 << self.length) - 1

    @property
    def value(self) -> int:
        """The canonical representative in [0, 2**l - 2]."""
        return self.raw % self.modulus

    def qinit_shape(self, qc) -> "QIntTF":
        qubits = [qc.qinit_qubit(b) for b in self.bools()]
        return QIntTF(qubits)

    def qshape_specimen(self) -> "QIntTF":
        return QIntTF([qubit] * self.length)

    def qshape_bools(self) -> list[bool]:
        return self.bools()

    def bools(self) -> list[bool]:
        return bools_msb_first(self.raw, self.length)

    def _coerce(self, other) -> "IntTF":
        if isinstance(other, IntTF):
            if other.length != self.length:
                raise ShapeMismatchError(
                    f"IntTF width mismatch: {self.length} vs {other.length}"
                )
            return other
        if isinstance(other, int):
            return IntTF(other, self.length)
        return NotImplemented

    def __add__(self, other):
        other = self._coerce(other)
        return IntTF(self.value + other.value, self.length)

    __radd__ = __add__

    def __mul__(self, other):
        other = self._coerce(other)
        return IntTF(self.value * other.value, self.length)

    __rmul__ = __mul__

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        """Modular equality: the double zero compares equal to zero."""
        if isinstance(other, IntTF):
            return self.length == other.length and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.length, self.value))

    def __repr__(self) -> str:
        return f"IntTF({self.raw}, length={self.length})"


class QIntTF(Register):
    """A quantum register holding an integer modulo ``2**l - 1``."""

    def _rebuild(self, leaves: list[Wire]) -> Register:
        if all(isinstance(w, Bit) for w in leaves):
            return CIntTF(leaves)
        return QIntTF(leaves)

    def from_bools(self, bools: list[bool]) -> IntTF:
        return IntTF(int_from_bools_msb(bools), len(bools))


class CIntTF(Register):
    """The classical-wire counterpart of :class:`QIntTF`."""

    def _rebuild(self, leaves: list[Wire]) -> Register:
        if all(isinstance(w, Qubit) for w in leaves):
            return QIntTF(leaves)
        return CIntTF(leaves)

    def from_bools(self, bools: list[bool]) -> IntTF:
        return IntTF(int_from_bools_msb(bools), len(bools))


def qinttf_shape(length: int) -> QIntTF:
    """A shape specimen for an l-bit Triangle Finding integer."""
    return QIntTF([qubit] * length)
