"""Fixed-point real numbers: the paper's ``FPReal`` type (Section 4.5).

"a real number library defining a type FPReal of fixed-size, fixed-point
real numbers."  A value is stored in two's complement over
``integer_bits + fraction_bits`` wires (MSB first); the represented real is
``raw_two's_complement / 2**fraction_bits``.

The paper's Linear Systems implementation "makes liberal use of arithmetic
and analytic functions, such as sin(x) and cos(x) ... the circuit created
for sin(x), over a 32+32 qubit fixed-point argument, uses 3273010 gates"
(Section 4.6.1) -- reproduced in :mod:`repro.algorithms.qls.oracle`.
"""

from __future__ import annotations

from ..core.errors import ShapeMismatchError
from ..core.qdata import qubit
from ..core.wires import Bit, Qubit, Wire
from .register import Register, bools_msb_first, int_from_bools_msb


class FPRealM:
    """A fixed-point real parameter with given integer/fraction widths."""

    def __init__(self, value: float, integer_bits: int, fraction_bits: int):
        self.integer_bits = integer_bits
        self.fraction_bits = fraction_bits
        total = integer_bits + fraction_bits
        if total <= 0:
            raise ValueError("FPRealM needs at least one bit")
        self.raw = round(value * (1 << fraction_bits)) % (1 << total)

    @property
    def length(self) -> int:
        return self.integer_bits + self.fraction_bits

    @property
    def value(self) -> float:
        """The represented real number (two's complement)."""
        raw = self.raw
        if raw >= 1 << (self.length - 1):
            raw -= 1 << self.length
        return raw / (1 << self.fraction_bits)

    def qinit_shape(self, qc) -> "FPReal":
        qubits = [qc.qinit_qubit(b) for b in self.bools()]
        return FPReal(qubits, self.integer_bits, self.fraction_bits)

    def qshape_specimen(self) -> "FPReal":
        return FPReal(
            [qubit] * self.length, self.integer_bits, self.fraction_bits
        )

    def qshape_bools(self) -> list[bool]:
        return self.bools()

    def bools(self) -> list[bool]:
        return bools_msb_first(self.raw, self.length)

    def __float__(self) -> float:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, FPRealM):
            return (
                self.integer_bits == other.integer_bits
                and self.fraction_bits == other.fraction_bits
                and self.raw == other.raw
            )
        if isinstance(other, (int, float)):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.integer_bits, self.fraction_bits, self.raw))

    def __repr__(self) -> str:
        return (
            f"FPRealM({self.value}, {self.integer_bits}+{self.fraction_bits})"
        )


class FPReal(Register):
    """A fixed-point quantum real register (MSB first, two's complement)."""

    def __init__(self, wires: list[Wire], integer_bits: int,
                 fraction_bits: int):
        super().__init__(wires)
        if len(wires) != integer_bits + fraction_bits:
            raise ShapeMismatchError(
                f"FPReal over {len(wires)} wires cannot have format "
                f"{integer_bits}+{fraction_bits}"
            )
        self.integer_bits = integer_bits
        self.fraction_bits = fraction_bits

    def _rebuild(self, leaves: list[Wire]) -> "FPReal":
        cls = CFPReal if all(isinstance(w, Bit) for w in leaves) else FPReal
        return cls(leaves, self.integer_bits, self.fraction_bits)

    def from_bools(self, bools: list[bool]) -> FPRealM:
        result = FPRealM(0.0, self.integer_bits, self.fraction_bits)
        result.raw = int_from_bools_msb(bools)
        return result


class CFPReal(FPReal):
    """The classical-wire counterpart of :class:`FPReal`."""


def fpreal_shape(integer_bits: int, fraction_bits: int) -> FPReal:
    """A shape specimen for a fixed-point real register."""
    return FPReal(
        [qubit] * (integer_bits + fraction_bits), integer_bits, fraction_bits
    )
