"""Fixed-size quantum integers: the paper's ``QDInt`` / ``IntM`` / ``CInt``.

"Quipper also comes with a number of libraries defining additional kinds of
quantum data.  For example, there is an arithmetic library that defines
QDInt, a type of fixed-size signed quantum integers" (Section 4.5).

* :class:`IntM` -- an integer *parameter* of fixed bit width (generation
  time; the Bool analogue).
* :class:`QDInt` -- a register of qubits holding an integer (two's
  complement; the Qubit analogue).
* :class:`CInt` -- the same over classical wires (the Bit analogue).
"""

from __future__ import annotations

from ..core.errors import ShapeMismatchError
from ..core.qdata import qubit
from ..core.wires import Bit, Qubit, Wire
from .register import Register, bools_msb_first, int_from_bools_msb


class IntM:
    """An integer parameter with a fixed bit width (two's complement).

    Arithmetic between IntM values of equal width wraps modulo ``2**length``
    -- exactly what the quantum arithmetic library computes on registers.
    """

    def __init__(self, value: int, length: int):
        if length <= 0:
            raise ValueError("IntM length must be positive")
        self.length = length
        self.value = value % (1 << length)

    # -- QShape hooks --------------------------------------------------------

    def qinit_shape(self, qc) -> "QDInt":
        """Initialize a quantum register holding this value (``qinit``)."""
        qubits = [qc.qinit_qubit(b) for b in self.bools()]
        return QDInt(qubits)

    def cinit_shape(self, qc) -> "CInt":
        bits = [qc.cinit_bit(b) for b in self.bools()]
        return CInt(bits)

    def qshape_specimen(self) -> "QDInt":
        return QDInt([qubit] * self.length)

    def qshape_bools(self) -> list[bool]:
        return self.bools()

    def bools(self) -> list[bool]:
        """The MSB-first bit pattern."""
        return bools_msb_first(self.value, self.length)

    # -- arithmetic and comparison -------------------------------------------

    @property
    def signed_value(self) -> int:
        """The value interpreted in two's complement."""
        if self.value >= 1 << (self.length - 1):
            return self.value - (1 << self.length)
        return self.value

    def _coerce(self, other) -> "IntM":
        if isinstance(other, IntM):
            if other.length != self.length:
                raise ShapeMismatchError(
                    f"IntM width mismatch: {self.length} vs {other.length}"
                )
            return other
        if isinstance(other, int):
            return IntM(other, self.length)
        return NotImplemented

    def __add__(self, other):
        other = self._coerce(other)
        return IntM(self.value + other.value, self.length)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        return IntM(self.value - other.value, self.length)

    def __mul__(self, other):
        other = self._coerce(other)
        return IntM(self.value * other.value, self.length)

    __rmul__ = __mul__

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, IntM):
            return self.length == other.length and self.value == other.value
        if isinstance(other, int):
            return self.value == other % (1 << self.length)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.length, self.value))

    def __repr__(self) -> str:
        return f"IntM({self.value}, length={self.length})"


class QDInt(Register):
    """A fixed-size quantum integer register (MSB-first wires)."""

    def _rebuild(self, leaves: list[Wire]) -> Register:
        if all(isinstance(w, Bit) for w in leaves):
            return CInt(leaves)
        return QDInt(leaves)

    def from_bools(self, bools: list[bool]) -> IntM:
        """Readout hook: bit pattern -> IntM (used by the simulators)."""
        return IntM(int_from_bools_msb(bools), len(bools))


class CInt(Register):
    """A fixed-size classical integer register (MSB-first wires)."""

    def _rebuild(self, leaves: list[Wire]) -> Register:
        if all(isinstance(w, Qubit) for w in leaves):
            return QDInt(leaves)
        return CInt(leaves)

    def from_bools(self, bools: list[bool]) -> IntM:
        return IntM(int_from_bools_msb(bools), len(bools))


def qdint_shape(length: int) -> QDInt:
    """A shape specimen for an l-bit quantum integer."""
    return QDInt([qubit] * length)
