"""Pipeline telemetry: tracing spans, metrics, and profile export.

The observability layer of the reproduction, wired permanently into
every stage seam (capture -> transform -> optimize -> compile -> run)
and compiled to no-ops while disabled::

    from repro import obs

    with obs.capture() as rec:
        program.transform("binary").optimize().run(shots=64, seed=1)
    print(obs.format_summary(rec))            # per-stage wall/RSS table
    obs.dump_chrome_trace(rec, "trace.json")  # chrome://tracing-loadable

The fluent surface is :meth:`repro.program.Program.run` (``trace=``) and
:meth:`repro.program.Program.report`, plus ``--trace`` / ``--profile`` /
``-v`` on every algorithm CLI (:mod:`repro.algorithms.runner`).  See
``docs/observability.md`` for the span taxonomy and sink formats.
"""

from .core import (
    Histogram,
    Recorder,
    SpanRecord,
    add,
    capture,
    current_recorder,
    observe,
    register_cache,
    span,
)
from .sinks import (
    chrome_trace_events,
    dump_chrome_trace,
    format_summary,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Histogram",
    "Recorder",
    "SpanRecord",
    "add",
    "capture",
    "chrome_trace_events",
    "current_recorder",
    "dump_chrome_trace",
    "format_summary",
    "observe",
    "register_cache",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]
