"""The telemetry recorder: tracing spans, counters, histograms, caches.

This module is the zero-dependency observability substrate of the whole
pipeline (capture -> transform -> optimize -> compile -> run).  Its one
hard design constraint is that **disabled is free**: every hot-seam
instrumentation site guards itself with the module-level :data:`ENABLED`
flag (``if core.ENABLED: core.add(...)``) -- one attribute load per gate,
no allocation, no call -- and :func:`span` returns a shared no-op
singleton, so the instrumentation is safe to leave wired in permanently
(guarded by ``benchmarks/test_obs_overhead.py``: <2% on the kernel
throughput mix even *enabled*).

Recording is scoped: ``with capture() as rec:`` flips :data:`ENABLED`,
installs *rec* as the active :class:`Recorder`, and restores both on
exit.  Three primitive instrument kinds land in the recorder:

* **Spans** (:func:`span`) -- nested wall-time intervals carrying
  attributes (gate counts, pass labels, shots) and a peak-RSS delta.
  The open-span stack lives in a :class:`contextvars.ContextVar`, so
  spans nest correctly across threads: the bounded-queue producer thread
  of :meth:`repro.streaming.GateStream.gates` runs in a copy of the
  consumer's context and its spans attribute to the consumer's open
  span.
* **Counters** (:func:`add`) -- monotone named totals: kernel-class
  dispatches, per-pass rewrite counts, memo hits/misses.
* **Histograms** (:func:`observe`) -- O(1) aggregates (count / total /
  min / max) of sampled values: stream queue depth, retention-buffer
  sizes.

LRU caches register once at import time (:func:`register_cache`); a
recorder snapshots their ``cache_info()`` on entry and turns the deltas
into ``cache.<name>.hits`` / ``.misses`` counters on exit, so cache
hit-rate tracking costs nothing per call.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: Global fast-path flag.  Hot seams check this (one module-attribute
#: load) before touching any telemetry machinery; it is flipped only by
#: :func:`capture` / :func:`enable`.
ENABLED = False

#: The active recorder (None while disabled).
_recorder: "Recorder | None" = None

#: The open-span stack of the current context (immutable tuple, so a
#: thread running in a copied context sees a consistent snapshot).
_stack: ContextVar[tuple] = ContextVar("repro_obs_stack", default=())

#: name -> lru-cached function whose hit/miss deltas each recorder
#: reports (see :func:`register_cache`).
_caches: dict[str, Callable] = {}


def _rss_kb() -> int:
    """Current peak RSS in KiB (0 where the resource module is absent)."""
    if _resource is None:  # pragma: no cover
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class SpanRecord:
    """One completed span: a named interval with context and attributes.

    ``path`` is the ``/``-joined chain of enclosing span names (the
    nesting as recorded on the contextvar stack), ``start_us``/``dur_us``
    are microseconds relative to the recorder's start, ``tid`` is the
    recording thread, and ``rss_kb`` is the peak-RSS growth observed
    across the span (0 when the platform cannot report it).
    """

    __slots__ = ("name", "path", "start_us", "dur_us", "tid", "attrs",
                 "rss_kb")

    def __init__(self, name: str, path: str, start_us: float, dur_us: float,
                 tid: int, attrs: dict, rss_kb: int):
        self.name = name
        self.path = path
        self.start_us = start_us
        self.dur_us = dur_us
        self.tid = tid
        self.attrs = attrs
        self.rss_kb = rss_kb

    def as_dict(self) -> dict:
        """The record as a plain dict (the JSONL export row)."""
        return {
            "name": self.name,
            "path": self.path,
            "start_us": round(self.start_us, 1),
            "dur_us": round(self.dur_us, 1),
            "tid": self.tid,
            "rss_kb": self.rss_kb,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"<SpanRecord {self.path!r} {self.dur_us / 1e3:.3f}ms>"


class Histogram:
    """An O(1) aggregate of observed values (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Fold one sample into the aggregate."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """The running mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """The aggregate as a plain dict (the JSONL export row)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
        }


class Recorder:
    """Everything one telemetry session accumulated.

    Produced by :func:`capture`; consumed by the sinks in
    :mod:`repro.obs.sinks` (summary table, JSONL, Chrome trace) and
    directly by tests and benchmarks (``rec.counters``, ``rec.spans``,
    ``rec.peak_memory``).
    """

    def __init__(self):
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.t0 = time.perf_counter()
        self.wall_time = 0.0
        #: tracemalloc high-water mark across the session, in bytes
        #: (None unless ``capture(memory=True)``).
        self.peak_memory: int | None = None
        self._cache_base: dict[str, tuple[int, int]] = {}

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        self.t0 = time.perf_counter()
        for name, fn in _caches.items():
            info = fn.cache_info()
            self._cache_base[name] = (info.hits, info.misses)

    def _stop(self) -> None:
        self.wall_time = time.perf_counter() - self.t0
        for name, fn in _caches.items():
            base_hits, base_misses = self._cache_base.get(name, (0, 0))
            info = fn.cache_info()
            hits = info.hits - base_hits
            misses = info.misses - base_misses
            if hits or misses:
                self.counters[f"cache.{name}.hits"] = (
                    self.counters.get(f"cache.{name}.hits", 0) + hits
                )
                self.counters[f"cache.{name}.misses"] = (
                    self.counters.get(f"cache.{name}.misses", 0) + misses
                )

    # -- derived metrics -----------------------------------------------------

    def cache_hit_rate(self) -> float | None:
        """Aggregate hit rate over every ``cache.*`` counter, or None."""
        hits = sum(
            v for k, v in self.counters.items()
            if k.startswith("cache.") and k.endswith(".hits")
        )
        misses = sum(
            v for k, v in self.counters.items()
            if k.startswith("cache.") and k.endswith(".misses")
        )
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def span_totals(self) -> dict[str, tuple[int, float, int]]:
        """Per-path aggregates: ``path -> (calls, total_us, rss_kb)``.

        Paths keep their first-recorded order, which reads as the
        pipeline's execution order in the summary table.
        """
        totals: dict[str, tuple[int, float, int]] = {}
        for record in self.spans:
            calls, dur, rss = totals.get(record.path, (0, 0.0, 0))
            totals[record.path] = (
                calls + 1, dur + record.dur_us, rss + record.rss_kb
            )
        return totals

    def __repr__(self) -> str:
        return (
            f"<Recorder {len(self.spans)} spans, "
            f"{len(self.counters)} counters>"
        )


class _NoopSpan:
    """The shared disabled-mode span: every operation is a no-op.

    A single module-level instance is returned by every disabled
    :func:`span` call, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        """Ignore attributes (disabled mode)."""
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One open span: a context manager recording on exit."""

    __slots__ = ("name", "attrs", "_path", "_start", "_rss", "_token")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self):
        stack = _stack.get()
        parent = stack[-1]._path if stack else ""
        self._path = f"{parent}/{self.name}" if parent else self.name
        self._token = _stack.set(stack + (self,))
        self._rss = _rss_kb()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        end = time.perf_counter()
        _stack.reset(self._token)
        rec = _recorder
        if rec is not None:
            rec.spans.append(SpanRecord(
                name=self.name,
                path=self._path,
                start_us=(self._start - rec.t0) * 1e6,
                dur_us=(end - self._start) * 1e6,
                tid=threading.get_ident(),
                attrs=self.attrs,
                rss_kb=max(0, _rss_kb() - self._rss),
            ))
        return False


# ---------------------------------------------------------------------------
# The instrumentation surface (what the hot seams call)
# ---------------------------------------------------------------------------


def span(name: str, **attrs):
    """Open a nested tracing span (``with span("optimize"): ...``).

    Returns the shared no-op singleton while telemetry is disabled, so
    uninstrumented runs pay one flag check and no allocation.  The
    returned handle's :meth:`~_Span.set` attaches attributes discovered
    mid-span (gate counts, rewrite totals).
    """
    if not ENABLED:
        return _NOOP_SPAN
    return _Span(name, attrs)


def add(name: str, n: int = 1) -> None:
    """Increment a named counter (callers guard with :data:`ENABLED`)."""
    rec = _recorder
    if rec is not None:
        rec.counters[name] = rec.counters.get(name, 0) + n


def observe(name: str, value: float) -> None:
    """Fold one sample into a named histogram aggregate."""
    rec = _recorder
    if rec is not None:
        hist = rec.histograms.get(name)
        if hist is None:
            hist = rec.histograms[name] = Histogram()
        hist.observe(value)


def register_cache(name: str, fn: Callable) -> None:
    """Register an ``lru_cache``-decorated function for hit/miss deltas.

    Registration is free at runtime: recorders snapshot ``cache_info()``
    on entry and diff it on exit, so per-call cache accounting costs the
    instrumented code nothing.
    """
    _caches[name] = fn


def current_recorder() -> Recorder | None:
    """The active recorder, or None while telemetry is disabled."""
    return _recorder


@contextmanager
def capture(memory: bool = False):
    """Enable telemetry for a ``with`` block; yields the :class:`Recorder`.

    Re-entrant: a nested capture installs its own recorder and restores
    the outer one on exit (spans and counters of the inner block land in
    the inner recorder only).  With *memory*, tracemalloc runs across the
    block and the session high-water mark lands in
    :attr:`Recorder.peak_memory` -- the replacement for ad-hoc
    ``tracemalloc.start()`` bracketing in memory-ceiling tests.
    """
    global ENABLED, _recorder
    import tracemalloc

    rec = Recorder()
    prev_enabled, prev_recorder = ENABLED, _recorder
    started_tracing = False
    if memory:
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            started_tracing = True
    ENABLED, _recorder = True, rec
    rec._start()
    try:
        yield rec
    finally:
        rec._stop()
        ENABLED, _recorder = prev_enabled, prev_recorder
        if memory:
            rec.peak_memory = tracemalloc.get_traced_memory()[1]
            if started_tracing:
                tracemalloc.stop()
