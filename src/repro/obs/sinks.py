"""Telemetry sinks: human summary, JSONL export, Chrome trace_event.

Three renderings of one :class:`~repro.obs.core.Recorder`:

* :func:`format_summary` -- the human table ``Program.report()`` and the
  CLIs' ``--profile`` print: per-span wall time and RSS growth in
  pipeline order, then counters and histogram aggregates.
* :func:`write_jsonl` -- one JSON object per line (``span`` / ``counter``
  / ``histogram`` / ``session`` rows), the machine-diffable export the
  benchmark profile fixture records next to the baselines.
* :func:`write_chrome_trace` -- the Chrome ``trace_event`` JSON object
  format, loadable in ``chrome://tracing`` or https://ui.perfetto.dev:
  spans become complete (``"ph": "X"``) events on their recording
  thread's track, counters and histograms ride along as the args of one
  instant event, so the whole session is inspectable on a timeline.
"""

from __future__ import annotations

import json

from .core import Recorder


def format_summary(rec: Recorder) -> str:
    """Render the recorder as a human-readable profile table."""
    lines = [
        f"telemetry: {len(rec.spans)} spans, wall {rec.wall_time:.4f}s"
    ]
    totals = rec.span_totals()
    if totals:
        width = max(len(path) for path in totals)
        lines.append(f"  {'span':<{width}}  {'calls':>6} {'wall(s)':>10} "
                     f"{'rss(KiB)':>9}")
        for path, (calls, dur_us, rss) in totals.items():
            lines.append(
                f"  {path:<{width}}  {calls:>6} {dur_us / 1e6:>10.4f} "
                f"{rss:>9}"
            )
    if rec.counters:
        lines.append("counters:")
        width = max(len(name) for name in rec.counters)
        for name in sorted(rec.counters):
            lines.append(f"  {name:<{width}}  {rec.counters[name]}")
    if rec.histograms:
        lines.append("histograms:")
        width = max(len(name) for name in rec.histograms)
        for name in sorted(rec.histograms):
            h = rec.histograms[name]
            lines.append(
                f"  {name:<{width}}  n={h.count} min={h.min} "
                f"mean={h.mean:.1f} max={h.max}"
            )
    rate = rec.cache_hit_rate()
    if rate is not None:
        lines.append(f"cache hit rate: {rate:.1%}")
    if rec.peak_memory is not None:
        lines.append(f"peak traced memory: {rec.peak_memory} B")
    return "\n".join(lines)


def write_jsonl(rec: Recorder, fp) -> None:
    """Write the session as JSON Lines (one object per row) to *fp*."""
    fp.write(json.dumps({
        "type": "session",
        "wall_s": round(rec.wall_time, 6),
        "spans": len(rec.spans),
        "peak_memory": rec.peak_memory,
    }) + "\n")
    for record in rec.spans:
        fp.write(json.dumps(dict({"type": "span"}, **record.as_dict()))
                 + "\n")
    for name in sorted(rec.counters):
        fp.write(json.dumps({
            "type": "counter", "name": name, "value": rec.counters[name],
        }) + "\n")
    for name in sorted(rec.histograms):
        fp.write(json.dumps(dict(
            {"type": "histogram", "name": name},
            **rec.histograms[name].as_dict(),
        )) + "\n")


def chrome_trace_events(rec: Recorder) -> list[dict]:
    """The recorder's Chrome ``trace_event`` list (see the module doc)."""
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": "repro pipeline"},
    }]
    for record in rec.spans:
        events.append({
            "name": record.path,
            "cat": record.name,
            "ph": "X",
            "ts": round(record.start_us, 1),
            "dur": round(record.dur_us, 1),
            "pid": 1,
            "tid": record.tid % 1_000_000,
            "args": dict(record.attrs, rss_kb=record.rss_kb),
        })
    metrics: dict[str, object] = dict(rec.counters)
    for name, hist in rec.histograms.items():
        metrics[name] = hist.as_dict()
    if metrics:
        events.append({
            "name": "telemetry.metrics",
            "ph": "I",
            "s": "g",
            "ts": round(rec.wall_time * 1e6, 1),
            "pid": 1,
            "tid": 0,
            "args": metrics,
        })
    return events


def write_chrome_trace(rec: Recorder, fp) -> None:
    """Write the session in Chrome ``trace_event`` JSON format to *fp*."""
    json.dump(
        {
            "traceEvents": chrome_trace_events(rec),
            "displayTimeUnit": "ms",
            "otherData": {"wall_s": round(rec.wall_time, 6)},
        },
        fp,
        indent=1,
    )
    fp.write("\n")


def dump_chrome_trace(rec: Recorder, path) -> None:
    """Write a Chrome trace to *path* (a string/Path or open handle)."""
    if hasattr(path, "write"):
        write_chrome_trace(rec, path)
        return
    with open(path, "w", encoding="utf-8") as fp:
        write_chrome_trace(rec, fp)


__all__ = [
    "chrome_trace_events",
    "dump_chrome_trace",
    "format_summary",
    "write_chrome_trace",
    "write_jsonl",
]
