"""USV CLI and end-to-end driver."""

from __future__ import annotations

import argparse

from ...program import Program
from ..runner import add_execution_arguments, emit, telemetry_session
from .lattice import (
    parity_kernel_matrix,
    planted_instance,
    shortest_vector,
)
from .usv import (
    coset_sampling_circuit,
    find_short_vector_parity,
    recover_short_vector,
)


def solve_usv(dimension: int = 3, seed: int = 0) -> dict:
    """Full pipeline: planted instance -> quantum rounds -> short vector.

    Returns a report dict with the planted and recovered data; the tests
    assert the recovered vector matches the classical exhaustive search.
    """
    basis, parity = planted_instance(dimension, seed)
    kernel = parity_kernel_matrix(parity, seed=seed)
    recovered_parity, rounds = find_short_vector_parity(kernel, seed=seed)
    vector = recover_short_vector(basis, recovered_parity)
    classical, norm = shortest_vector(basis, bound=2)
    return {
        "basis": basis,
        "planted_parity": parity,
        "recovered_parity": recovered_parity,
        "rounds": rounds,
        "vector": vector,
        "classical_vector": classical,
        "classical_norm": norm,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usv", description="Unique Shortest Vector"
    )
    parser.add_argument("--dimension", type=int, default=3)
    add_execution_arguments(
        parser, default_format="solve",
        formats=("solve", "ascii", "gatecount", "resources",
                 "quipper", "qasm", "run"),
    )
    args = parser.parse_args(argv)
    if args.seed is None:
        args.seed = 0

    if args.fmt != "solve":
        basis, parity = planted_instance(args.dimension, args.seed)
        kernel = parity_kernel_matrix(parity, seed=args.seed)
        program = Program.from_bcircuit(
            coset_sampling_circuit(kernel), name="usv-coset-sampling"
        )
        return emit(program, args)

    with telemetry_session(args):
        report = solve_usv(args.dimension, args.seed)
        print("basis:\n", report["basis"])
        print("planted parity:   ", report["planted_parity"])
        print("recovered parity: ", report["recovered_parity"],
              f"({report['rounds']} quantum rounds)")
        print("recovered vector: ", report["vector"])
        print("classical shortest:", report["classical_vector"],
              f"norm {report['classical_norm']:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
