"""The Unique Shortest Vector algorithm's quantum rounds.

Paper Section 3.5 places USV in its third class of algorithms: those
requiring "a more subtle interleaving of quantum and classical
operations, whereby only a subset of the qubits are measured, and the
quantum memory cannot be reset between each quantum circuit invocation.
... the circuit is constructed on-the-fly, where later pieces depend on
the value of former intermediate measurements."  That is *dynamic
lifting* (Section 4.3.1), and this module exercises it for real.

Per the substitution policy (DESIGN.md), Regev's dihedral-coset sampling
over Z_N is realized as hidden-shift coset sampling over GF(2)^n: the
planted short vector's coefficient parity s defines a two-to-one
labelling; each round prepares a superposition of coefficient vectors,
computes the labelling, measures *only the label register* (a partial
measurement), dynamically lifts the observed label to decide classically
whether the round is usable, transforms the surviving coset state
(|c> + |c+s>)/sqrt(2), and measures a vector orthogonal to s.  Classical
linear algebra across rounds recovers s, and with it the short vector.
"""

from __future__ import annotations

import numpy as np

from ...core.builder import Circ
from ...sim.qram_model import run_with_lifting
from .lattice import parity_kernel_matrix, solve_parity


def coset_sampling_round(qc: Circ, kernel_rows: np.ndarray):
    """One quantum round; returns (sample_bits, label_bools).

    The label register is measured mid-circuit and *dynamically lifted*;
    the coefficient register is left unmeasured (quantum memory persists)
    and is transformed and measured only after the classical controller
    has inspected the label -- the paper's on-the-fly construction.
    """
    rows, n = kernel_rows.shape
    coeff = [qc.qinit_qubit(False) for _ in range(n)]
    for q in coeff:
        qc.hadamard(q)
    # The two-to-one labelling: label_i = <kernel_row_i, c> (mod 2).
    label = []
    for i in range(rows):
        target = qc.qinit_qubit(False)
        for j in range(n):
            if kernel_rows[i, j]:
                qc.qnot(target, controls=coeff[j])
        label.append(target)
    # Partial measurement + dynamic lifting: only the label collapses.
    label_bits = qc.measure(label)
    label_values = qc.dynamic_lift(label_bits)
    # The classical controller now owns the label and generates the rest
    # of the circuit accordingly (here: the coset transform).
    for q in coeff:
        qc.hadamard(q)
    sample_bits = qc.measure(coeff)
    return sample_bits, label_values


def coset_sampling_circuit(kernel_rows: np.ndarray):
    """The static circuit of one round (no dynamic lifting).

    The classical controller in :func:`coset_sampling_round` inspects the
    lifted label but does not branch on it, so the generated gates are
    identical -- this builder exists so the round can be printed, costed,
    and sampled through the backend registry, which only takes circuits
    that exist ahead of execution.
    """
    from ...core.builder import build

    def round_circuit(qc: Circ):
        rows, n = kernel_rows.shape
        coeff = [qc.qinit_qubit(False) for _ in range(n)]
        for q in coeff:
            qc.hadamard(q)
        label = []
        for i in range(rows):
            target = qc.qinit_qubit(False)
            for j in range(n):
                if kernel_rows[i, j]:
                    qc.qnot(target, controls=coeff[j])
            label.append(target)
        label_bits = qc.measure(label)
        for q in coeff:
            qc.hadamard(q)
        sample_bits = qc.measure(coeff)
        return sample_bits, label_bits

    return build(round_circuit)[0]


def find_short_vector_parity(kernel_rows: np.ndarray, max_rounds: int = 64,
                             seed: int = 0) -> tuple[np.ndarray, int]:
    """Run rounds under the QRAM model until the parity is pinned down.

    Returns (parity vector, rounds used).  Each round's output vector is
    orthogonal to the hidden parity mod 2; rounds accumulate until the
    GF(2) system has corank 1.
    """
    rows, n = kernel_rows.shape
    samples: list[np.ndarray] = []
    for round_index in range(max_rounds):
        outcome = run_with_lifting(
            lambda qc: coset_sampling_round(qc, kernel_rows),
            seed=seed + round_index,
        )
        sample, _label = outcome
        vector = np.array([int(b) for b in sample], dtype=int)
        if vector.any():
            samples.append(vector)
        solved = solve_parity(samples, n)
        if solved is not None:
            return solved, round_index + 1
    raise RuntimeError("parity not recovered within the round budget")


def recover_short_vector(basis: np.ndarray, parity: np.ndarray,
                         bound: int = 1) -> np.ndarray | None:
    """Search the small coefficient box matching the parity class.

    With the parity known, the remaining search space shrinks from 3^n to
    the vectors whose coefficients match s mod 2 -- the classical
    post-processing step of the reduction.
    """
    import itertools

    n = len(parity)
    best = None
    best_norm = float("inf")
    for signs in itertools.product((-1, 0, 1), repeat=n):
        coeffs = np.array(signs, dtype=int)
        if not coeffs.any():
            continue
        if ((np.abs(coeffs) % 2) != parity).any():
            continue
        vector = coeffs @ basis
        norm = float(vector @ vector)
        if norm < best_norm:
            best_norm = norm
            best = vector
    return best
