"""Lattice substrate for the Unique Shortest Vector algorithm.

Regev's algorithm [17] chooses "the shortest vector among a given set":
given a lattice basis with a planted uniquely-shortest vector, find it.
This module provides the classical lattice machinery: planted-instance
generation, Gram matrices, exhaustive shortest-vector search (the
classical baseline the tests compare against), and the coefficient-parity
encoding the quantum rounds work over.
"""

from __future__ import annotations

import itertools
import random

import numpy as np


def planted_instance(dimension: int, seed: int,
                     spread: int = 6) -> tuple[np.ndarray, np.ndarray]:
    """A lattice basis with a planted uniquely-short vector.

    Returns (basis, coefficients): ``basis`` has the planted short vector
    reachable at the (small, odd) integer combination ``coefficients``.
    The remaining basis vectors are made long and skew so the planted
    vector is the unique shortest (up to sign).
    """
    rng = random.Random(seed)
    while True:
        coeffs = np.array(
            [rng.choice((-1, 1)) for _ in range(dimension)], dtype=int
        )
        basis = np.array(
            [
                [rng.randrange(-spread, spread + 1) for _ in range(dimension)]
                for _ in range(dimension)
            ],
            dtype=int,
        )
        basis = basis + np.eye(dimension, dtype=int) * (spread * 3)
        short = np.array(
            [rng.choice((-1, 0, 1)) for _ in range(dimension)], dtype=int
        )
        if not short.any():
            continue
        # Force coeffs . basis = short by adjusting the first basis row.
        residual = short - coeffs @ basis
        if coeffs[0] == 0:
            continue
        basis[0] += residual * coeffs[0]  # coeffs[0] is +-1
        if abs(np.linalg.det(basis.astype(float))) < 0.5:
            continue
        vec, _ = shortest_vector(basis, bound=2)
        if vec is not None and np.array_equal(np.abs(vec), np.abs(short)):
            return basis, coeffs % 2


def shortest_vector(basis: np.ndarray,
                    bound: int = 3) -> tuple[np.ndarray | None, float]:
    """Exhaustive shortest nonzero vector with coefficients in [-bound, bound].

    The classical baseline: exponential in the dimension, which is the
    point of the quantum algorithm.
    """
    dimension = basis.shape[0]
    best = None
    best_norm = float("inf")
    for coeffs in itertools.product(
        range(-bound, bound + 1), repeat=dimension
    ):
        if not any(coeffs):
            continue
        vector = np.asarray(coeffs) @ basis
        norm = float(np.dot(vector, vector))
        if norm < best_norm:
            best_norm = norm
            best = vector
    return best, best_norm ** 0.5


def gram_matrix(basis: np.ndarray) -> np.ndarray:
    """The Gram matrix B B^T (used by reduction heuristics)."""
    return basis @ basis.T


def parity_kernel_matrix(parity: np.ndarray,
                         seed: int = 0) -> np.ndarray:
    """A GF(2) matrix whose kernel is exactly {0, parity}.

    The quantum rounds sample vectors orthogonal (mod 2) to the planted
    coefficient parity; this matrix defines the two-to-one labelling
    function those rounds evaluate.  (n-1) independent rows orthogonal to
    ``parity`` are chosen.
    """
    rng = random.Random(seed)
    n = len(parity)
    rows: list[np.ndarray] = []
    while len(rows) < n - 1:
        candidate = np.array([rng.randrange(2) for _ in range(n)], dtype=int)
        if int(candidate @ parity) % 2 != 0:
            continue
        trial = np.array(rows + [candidate], dtype=int) % 2
        if _gf2_rank(trial) == len(rows) + 1:
            rows.append(candidate)
    return np.array(rows, dtype=int) % 2


def _gf2_rank(matrix: np.ndarray) -> int:
    m = matrix.copy() % 2
    rank = 0
    cols = m.shape[1]
    for col in range(cols):
        pivot = None
        for row in range(rank, m.shape[0]):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(m.shape[0]):
            if row != rank and m[row, col]:
                m[row] = (m[row] + m[rank]) % 2
        rank += 1
    return rank


def solve_parity(samples: list[np.ndarray], n: int) -> np.ndarray | None:
    """Recover the nonzero vector orthogonal to all samples (mod 2).

    Gaussian elimination over GF(2); returns None until the samples span
    an (n-1)-dimensional space.
    """
    if not samples:
        return None
    matrix = np.array(samples, dtype=int) % 2
    if _gf2_rank(matrix) < n - 1:
        return None
    # Find the kernel vector by trying all nonzero parities (n is small).
    for value in range(1, 1 << n):
        candidate = np.array(
            [(value >> i) & 1 for i in range(n)], dtype=int
        )
        if not ((matrix @ candidate) % 2).any():
            return candidate
    return None
