"""Unique Shortest Vector (Regev): dynamic-lifting coset sampling."""

from .lattice import (
    gram_matrix,
    parity_kernel_matrix,
    planted_instance,
    shortest_vector,
    solve_parity,
)
from .main import solve_usv
from .usv import (
    coset_sampling_round,
    find_short_vector_parity,
    recover_short_vector,
)

__all__ = [
    "planted_instance",
    "shortest_vector",
    "gram_matrix",
    "parity_kernel_matrix",
    "solve_parity",
    "coset_sampling_round",
    "find_short_vector_parity",
    "recover_short_vector",
    "solve_usv",
]
