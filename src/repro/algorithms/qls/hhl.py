"""The Quantum Linear Systems (HHL) algorithm [Harrow-Hassidim-Lloyd].

Solves A x = b by: preparing |b>, phase-estimating exp(iAt) to load the
eigenvalues into a register, rotating an ancilla by angles proportional to
1/lambda, uncomputing the phase estimation (``with_computed`` -- the whole
eigenvalue register is scratch!), and post-selecting the ancilla.  The
remaining system state is proportional to A^{-1} b.

The Hamiltonian-simulation substrate decomposes A numerically into Pauli
strings and Trotterizes; the controlled 1/lambda rotation enumerates the
eigenvalue register's basis values at generation time (they are circuit
*parameters*, Section 4.3.2).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ...core.builder import Circ, neg
from ...core.wires import Qubit
from ...lib.phase_estimation import phase_estimation
from ...lib.simulation import Hamiltonian, trotterized_evolution

_PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_decompose(matrix: np.ndarray) -> Hamiltonian:
    """Decompose a Hermitian matrix into Pauli strings (substrate).

    Projects onto the orthogonal Pauli basis: coeff = tr(P M) / 2^n.
    """
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    n = int(math.log2(dim))
    if 1 << n != dim:
        raise ValueError("matrix dimension must be a power of two")
    terms: Hamiltonian = []
    for letters in itertools.product("IXYZ", repeat=n):
        op = np.eye(1, dtype=complex)
        for letter in letters:
            op = np.kron(op, _PAULI[letter])
        coeff = np.trace(op.conj().T @ matrix) / dim
        if abs(coeff.imag) > 1e-12:
            raise ValueError("matrix is not Hermitian")
        if abs(coeff.real) > 1e-12:
            pauli = {
                q: letter
                for q, letter in enumerate(letters)
                if letter != "I"
            }
            terms.append((float(coeff.real), pauli))
    return terms


def prepare_state(qc: Circ, amplitudes: np.ndarray) -> list[Qubit]:
    """Prepare a real, non-negative-normalized state on fresh qubits.

    Recursive Ry-rotation tree (amplitudes must be real; signs are
    supported).  Substrate for loading |b>.
    """
    amplitudes = np.asarray(amplitudes, dtype=float)
    n = int(math.log2(len(amplitudes)))
    if 1 << n != len(amplitudes):
        raise ValueError("amplitude vector length must be a power of two")
    norm = math.sqrt(float(np.sum(amplitudes ** 2)))
    amplitudes = amplitudes / norm
    qubits = [qc.qinit_qubit(False) for _ in range(n)]
    _prepare_rec(qc, qubits, amplitudes, controls=[])
    return qubits


def _prepare_rec(qc: Circ, qubits: list[Qubit], amps: np.ndarray,
                 controls: list) -> None:
    if len(amps) == 1:
        return
    half = len(amps) // 2
    p0 = float(np.sum(amps[:half] ** 2))
    p1 = float(np.sum(amps[half:] ** 2))
    theta = 2.0 * math.atan2(math.sqrt(p1), math.sqrt(p0))
    qubit = qubits[0]
    qc.rotY(theta, qubit, controls=controls or None)
    if len(amps) > 2:
        lo = amps[:half] / (math.sqrt(p0) or 1.0)
        hi = amps[half:] / (math.sqrt(p1) or 1.0)
        _prepare_rec(qc, qubits[1:], lo, controls + [neg(qubit)])
        _prepare_rec(qc, qubits[1:], hi, controls + [qubit])


def hhl_circuit(qc: Circ, matrix: np.ndarray, b: np.ndarray,
                precision: int, t: float, c_const: float,
                trotter_steps: int = 1):
    """The HHL circuit; returns (system_qubits, success_ancilla).

    ``t`` should be chosen so each eigenvalue lambda maps near an integer
    k = lambda * t * 2^precision / (2 pi) < 2^precision.  ``c_const`` is
    the C in the amplitudes C/lambda (at most the smallest eigenvalue).
    """
    hamiltonian = pauli_decompose(matrix)
    system = prepare_state(qc, b)
    ancilla = qc.qinit_qubit(False)

    def controlled_power(qc2, target, power, control):
        # exp(+iAt): evolve with negated time (our convention is e^{-iHt}).
        trotterized_evolution(
            qc2, hamiltonian, -t * power, trotter_steps * power, target,
            control=control,
        )

    def compute():
        return phase_estimation(qc, controlled_power, system, precision)

    def rotate(eigen_register):
        size = 1 << precision
        for k in range(1, size):
            lam = 2.0 * math.pi * k / (t * size)
            ratio = c_const / lam
            if abs(ratio) > 1.0:
                ratio = math.copysign(1.0, ratio)
            theta = 2.0 * math.asin(ratio)
            controls = []
            for i in range(precision):
                wire = eigen_register.bit(i)
                controls.append(wire if (k >> i) & 1 else neg(wire))
            qc.rotY(theta, ancilla, controls=controls)
        return None

    qc.with_computed(compute, rotate)
    return system, ancilla


def classical_solution(matrix: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The normalized classical solution A^{-1} b (ground truth)."""
    x = np.linalg.solve(matrix, b)
    return x / np.linalg.norm(x)
