"""QLS demo and CLI: solve a small linear system, count the sin oracle."""

from __future__ import annotations

import argparse
import math

import numpy as np

from ...core.qdata import qdata_leaves
from ...datatypes.fpreal import fpreal_shape
from ...lifting.template import unpack
from ...program import Program
from ..runner import (
    add_execution_arguments,
    apply_optimize,
    emit,
    format_counts,
    telemetry_session,
)
from .hhl import classical_solution, hhl_circuit
from .oracle import make_sin_template

#: The demo system: eigenvalues 1 and 2 on the |+>/|-> basis.
DEMO_MATRIX = np.array([[1.5, 0.5], [0.5, 1.5]])
DEMO_B = np.array([1.0, 0.0])


def hhl_program(matrix=None, b=None, precision: int = 2,
                t: float = math.pi / 2, c_const: float = 1.0) -> Program:
    """The demo HHL circuit as a lazy, pipeline-ready Program."""
    matrix = DEMO_MATRIX if matrix is None else matrix
    b = DEMO_B if b is None else b
    return Program.capture(
        lambda qc: hhl_circuit(qc, matrix, b, precision, t, c_const),
        name="hhl",
    )


def solve_demo(matrix=None, b=None, precision: int = 2,
               t: float = math.pi / 2, c_const: float = 1.0,
               optimize: bool = False):
    """Run HHL by exact simulation; return (probabilities, classical).

    Post-selects the success ancilla analytically: the returned
    probabilities are those of measuring the system register given the
    ancilla came out 1, compared against |A^{-1}b|^2 element-wise.
    """
    matrix = DEMO_MATRIX if matrix is None else matrix
    b = DEMO_B if b is None else b
    program = apply_optimize(
        hhl_program(matrix, b, precision, t, c_const), optimize
    )
    sim = program.run().metadata["state"]
    system, ancilla = program.outputs
    system_wires = [q.wire_id for q in qdata_leaves(system)]
    probs = sim.basis_probabilities(system_wires + [ancilla.wire_id])
    dim = len(b)
    n = int(math.log2(dim))
    conditional = np.zeros(dim)
    for outcome, p in probs.items():
        if outcome[-1] != 1:  # ancilla must be 1
            continue
        index = 0
        for bit in outcome[:-1]:
            index = (index << 1) | bit
        conditional[index] += p
    total = conditional.sum()
    if total <= 0:
        raise RuntimeError("HHL post-selection never succeeds")
    conditional /= total
    expect = classical_solution(matrix, b) ** 2
    return conditional, expect


def sin_oracle_gatecount(integer_bits: int, fraction_bits: int,
                         terms: int = 7, optimize: bool = False) -> int:
    """Total gates of the lifted sin(x) oracle at the given precision.

    The paper's datapoint is 3,273,010 gates at 32+32 bits.
    """
    template = make_sin_template(terms=terms, share=False)
    circuit_fn = unpack(template)

    def circ(qc, x):
        return x, circuit_fn(qc, x)

    # Lifted oracle scratch wires stay live by design (share=False).
    program = Program.capture(
        circ, fpreal_shape(integer_bits, fraction_bits),
        name="sin-oracle", on_extra="ignore",
    )
    return apply_optimize(program, optimize).total_gates()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qls", description="Quantum Linear Systems (HHL)"
    )
    parser.add_argument("--precision", type=int, default=2)
    parser.add_argument("--sin-bits", type=int, default=None, nargs=2,
                        metavar=("INT", "FRAC"),
                        help="count the lifted sin oracle at this size")
    # The shared surface, with qls's legacy defaults: no -f means the
    # analytic demo, no --shots means analytic post-selection.
    add_execution_arguments(parser, default_format=None, default_shots=None)
    args = parser.parse_args(argv)

    if args.fmt:
        if args.shots is None:
            args.shots = 1024
        # `emit` applies -O itself via args.optimize.
        return emit(hhl_program(precision=args.precision), args)
    with telemetry_session(args):
        if args.sin_bits:
            ib, fb = args.sin_bits
            print(f"sin(x) oracle at {ib}+{fb} bits:",
                  sin_oracle_gatecount(ib, fb, optimize=args.optimize),
                  "gates")
            return 0
        if args.shots:
            program = apply_optimize(
                hhl_program(precision=args.precision), args.optimize
            )
            result = program.run(
                args.backend, shots=args.shots, seed=args.seed
            )
            print("system register + success ancilla (last bit):")
            print(format_counts(result.counts))
            return 0
        measured, expect = solve_demo(
            precision=args.precision, optimize=args.optimize
        )
        print("HHL solution probabilities:", np.round(measured, 4))
        print("classical |A^-1 b|^2:      ", np.round(expect, 4))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
