"""Quantum Linear Systems / HHL (Harrow-Hassidim-Lloyd)."""

from .hhl import (
    classical_solution,
    hhl_circuit,
    pauli_decompose,
    prepare_state,
)
from .main import DEMO_B, DEMO_MATRIX, sin_oracle_gatecount, solve_demo
from .oracle import (
    make_cos_template,
    make_reciprocal_template,
    make_sin_template,
)

__all__ = [
    "hhl_circuit",
    "pauli_decompose",
    "prepare_state",
    "classical_solution",
    "solve_demo",
    "sin_oracle_gatecount",
    "DEMO_MATRIX",
    "DEMO_B",
    "make_sin_template",
    "make_cos_template",
    "make_reciprocal_template",
]
