"""Lifted analytic oracles for the Quantum Linear Systems algorithm.

Paper Section 4.6.1: "our implementation of the Linear Systems algorithm
makes liberal use of arithmetic and analytic functions, such as sin(x) and
cos(x), which were implemented using the circuit lifting feature.  The
circuit created for sin(x), over a 32+32 qubit fixed-point argument, uses
3273010 gates."

The templates here compute Taylor polynomials over :class:`CFix`
fixed-point values; ``share=False`` reproduces Template Haskell's
no-common-subexpression behaviour (and its gate counts).
"""

from __future__ import annotations

from ...lifting.template import Template, build_circuit


def make_sin_template(terms: int = 7, share: bool = False) -> Template:
    """A lifted fixed-point sine: x - x^3/3! + x^5/5! - ...

    *terms* odd powers are used; each step multiplies by x^2 and by the
    factorial ratio constant, all in fixed point.
    """

    @build_circuit(share=share)
    def lifted_sin(x):
        x_squared = x * x
        term = x
        total = x
        k = 1
        for _ in range(terms - 1):
            k += 2
            term = term * x_squared * (-1.0 / ((k - 1) * k))
            total = total + term
        return total

    return lifted_sin


def make_cos_template(terms: int = 7, share: bool = False) -> Template:
    """A lifted fixed-point cosine: 1 - x^2/2! + x^4/4! - ..."""

    @build_circuit(share=share)
    def lifted_cos(x):
        x_squared = x * x
        term = 1.0 + (x_squared * 0.0)  # a CFix constant 1 of x's format
        total = term
        k = 0
        for _ in range(terms - 1):
            k += 2
            term = term * x_squared * (-1.0 / ((k - 1) * k))
            total = total + term
        return total

    return lifted_cos


def make_reciprocal_template(iterations: int = 4,
                             share: bool = False) -> Template:
    """A lifted fixed-point reciprocal via Newton-Raphson.

    Computes y ~ 1/x for x in [0.5, 2], starting from the chord estimate
    y0 = 2.5 - x (which satisfies |1 - x*y0| < 1 on the whole interval,
    so Newton's y <- y * (2 - x * y) converges).  This is the analytic
    piece HHL's controlled rotation needs (amplitudes proportional to
    1/lambda).
    """

    @build_circuit(share=share)
    def lifted_reciprocal(x):
        y = 2.5 - x
        for _ in range(iterations):
            y = y * (2.0 - x * y)
        return y

    return lifted_reciprocal
