"""Module entry point: ``python -m repro.algorithms.qls``."""

from .main import main

if __name__ == "__main__":
    raise SystemExit(main())
