"""The Triangle Finding oracle (paper Section 5.3.1).

"In our implementation, the oracle is a changeable part, but we have
implemented a particular pre-defined oracle ... This oracle injects G into
the space {0, 1, ..., 2^l - 1} of l-bit integers, and each oracle call
requires the extensive use of modular arithmetic."

The *orthodox* oracle follows that description: a node index u is injected
as the ``QIntTF`` value u+1, raised to the 17th power modulo ``2**l - 1``
(``o4_POW17``, the paper's worked example), and the edge predicate is the
parity of the bitwise AND of the two powered values -- symmetric and
non-factorizing, so the resulting pseudo-random graph exercises the walk.

The eight oracle subroutines (mirroring the paper's count):

=====================  ====================================================
``o1_ORACLE``          edge test: compute powers, combine, uncompute
``o2_ConvertNode``     inject an n-qubit node into an l-qubit QIntTF (+1)
``o3_TestEdge``        parity-of-AND combiner into the target qubit
``o4_POW17``           x -> x^17 via four squarings and a multiply (boxed)
``o5_SUB``             x - y mod 2^l-1 (complement and add)
``o6_NEG``             in-place negation mod 2^l-1 (bitwise complement)
``o7_ADD_controlled``  controlled out-of-place addition (boxed)
``o8_MUL``             multiplication mod 2^l-1 (boxed ladder, Figure 3)
=====================  ====================================================

A lookup-table ``simple_oracle`` over an explicit edge set is also
provided (Quipper's distribution likewise ships several oracles) -- it is
what the end-to-end walk tests use, with a planted triangle.
"""

from __future__ import annotations

from typing import Callable

from ...arith.adder import add_const_in_place, copy_register, xor_register
from ...arith.modular import add_tf, add_tf_select
from ...arith.shift import rotate_left_tf
from ...core.builder import Circ, neg
from ...core.wires import Qubit
from ...datatypes.qinttf import QIntTF


# ---------------------------------------------------------------------------
# o7 / o8: controlled addition and multiplication mod 2^l - 1
# ---------------------------------------------------------------------------


def o7_ADD_controlled(qc: Circ, ctrl: Qubit, x: QIntTF,
                      y: QIntTF) -> tuple[Qubit, QIntTF, QIntTF, QIntTF]:
    """Boxed controlled addition: s = y + (ctrl ? x : 0) mod ``2**l - 1``.

    Returns ``(ctrl, x, y, s)`` with inputs unchanged and s fresh.
    """

    def body(qc2, ctrl2, x2, y2):
        qc2.comment_with_label(
            "ENTER: o7_ADD_controlled", (ctrl2, x2, y2), ("ctrl", "x", "y")
        )
        total = add_tf_select(qc2, ctrl2, x2, y2)
        qc2.comment_with_label(
            "EXIT: o7_ADD_controlled",
            (ctrl2, x2, y2, total),
            ("ctrl", "x", "y", "s"),
        )
        return ctrl2, x2, y2, total

    return qc.box("o7", body, ctrl, x, y)


def o8_MUL(qc: Circ, x: QIntTF, y: QIntTF) -> tuple[QIntTF, QIntTF, QIntTF]:
    """Boxed multiplication mod ``2**l - 1`` (the paper's Figure 3).

    A ladder of controlled additions interleaved with the gate-free
    ``double_TF`` rotations, mirrored to uncompute the partial sums after
    the product is copied out.  Returns ``(x, y, x*y)``.
    """

    def body(qc2, x2, y2):
        qc2.comment_with_label("ENTER: o8_MUL", (x2, y2), ("x", "y"))
        n = len(x2)

        def compute():
            acc = QIntTF([qc2.qinit_qubit(False) for _ in range(n)])
            cur = x2
            for i in range(n):
                _, _, _, acc = o7_ADD_controlled(qc2, y2.bit(i), cur, acc)
                cur = rotate_left_tf(qc2, cur, comment=True)
            return acc

        def action(acc):
            return copy_register(qc2, acc)

        product = qc2.with_computed(compute, action)
        qc2.comment_with_label(
            "EXIT: o8_MUL", (x2, y2, product), ("x", "y", "p")
        )
        return x2, y2, product

    return qc.box("o8", body, x, y)


def square(qc: Circ, x: QIntTF) -> tuple[QIntTF, QIntTF]:
    """x -> (x, x^2) mod ``2**l - 1``, via a scratch copy and ``o8_MUL``."""

    def compute():
        return copy_register(qc, x)

    def action(x_copy):
        _, _, product = o8_MUL(qc, x, x_copy)
        return product

    return x, qc.with_computed(compute, action)


# ---------------------------------------------------------------------------
# o4: the seventeenth power (the paper's worked example, Figure 2)
# ---------------------------------------------------------------------------


def o4_POW17(qc: Circ, x: QIntTF) -> tuple[QIntTF, QIntTF]:
    """Boxed x -> (x, x^17) mod ``2**l - 1`` (paper Section 5.3.1).

    "It proceeds by first raising its input x to the 16th power by
    repeated use of a squaring subroutine, and then multiplies x and x16
    to get the desired result."  The Python code below is a line-for-line
    translation of the paper's Quipper code for ``o4_POW17``.
    """

    def body(qc2, x2):
        qc2.comment_with_label("ENTER: o4_POW17", x2, "x")

        def compute():
            _, x_2 = square(qc2, x2)
            _, x_4 = square(qc2, x_2)
            _, x_8 = square(qc2, x_4)
            _, x_16 = square(qc2, x_8)
            return x_16

        def action(x_16):
            _, _, x_17 = o8_MUL(qc2, x2, x_16)
            return x_17

        x17 = qc2.with_computed(compute, action)
        qc2.comment_with_label("EXIT: o4_POW17", (x2, x17), ("x", "x17"))
        return x2, x17

    return qc.box("o4", body, x)


# ---------------------------------------------------------------------------
# o5 / o6: subtraction and negation mod 2^l - 1
# ---------------------------------------------------------------------------


def o6_NEG(qc: Circ, x: QIntTF) -> QIntTF:
    """In-place negation mod ``2**l - 1``: the bitwise complement.

    ``x + ~x`` is the all-ones pattern, which represents zero, so the
    complement *is* the negation -- one of the charms of QIntTF.
    """
    for i in range(len(x)):
        qc.qnot(x.bit(i))
    return x


def o5_SUB(qc: Circ, x: QIntTF, y: QIntTF) -> tuple[QIntTF, QIntTF, QIntTF]:
    """Out-of-place subtraction: returns (x, y, x - y) mod ``2**l - 1``."""
    o6_NEG(qc, y)
    diff = add_tf(qc, x, y)
    o6_NEG(qc, y)
    return x, y, diff


# ---------------------------------------------------------------------------
# o2 / o3: node injection and the edge predicate combiner
# ---------------------------------------------------------------------------


def o2_ConvertNode(qc: Circ, node: list[Qubit], l: int) -> QIntTF:
    """Inject an n-qubit node register into a fresh l-qubit QIntTF.

    The value is node + 1 (zero is a fixed point of x^17, so the injection
    avoids it).  Requires l > n.
    """
    fresh = QIntTF([qc.qinit_qubit(False) for _ in range(l)])
    n = len(node)
    for i in range(n):
        # node is a big-endian qubit list; bit weight 2^(n-1-i).
        qc.qnot(fresh.bit(n - 1 - i), controls=node[i])
    add_const_in_place(qc, 1, fresh)
    return fresh


def o3_TestEdge(qc: Circ, a: QIntTF, b: QIntTF, target: Qubit) -> None:
    """target ^= parity(a AND b): symmetric, non-factorizing edge test."""
    for i in range(len(a)):
        qc.qnot(target, controls=(a.bit(i), b.bit(i)))


# ---------------------------------------------------------------------------
# o1: the complete edge oracle
# ---------------------------------------------------------------------------


def orthodox_oracle(l: int) -> Callable:
    """The arithmetic edge oracle at integer width *l*.

    Returns ``edge_oracle(qc, u, v, target)`` XOR-ing into *target* the
    predicate EDGE(u, v) = parity(POW17(u+1) AND POW17(v+1)) mod 2^l-1.
    All intermediate registers are computed and uncomputed around the
    combiner (``o1_ORACLE``'s compute/action/uncompute structure).
    """

    def edge_oracle(qc: Circ, u: list[Qubit], v: list[Qubit],
                    target: Qubit) -> None:
        def compute():
            x = o2_ConvertNode(qc, u, l)
            y = o2_ConvertNode(qc, v, l)
            _, x17 = o4_POW17(qc, x)
            _, y17 = o4_POW17(qc, y)
            return x17, y17

        def action(powers):
            x17, y17 = powers
            o3_TestEdge(qc, x17, y17, target)
            return None

        qc.with_computed(compute, action)

    return edge_oracle


def classical_edge(u: int, v: int, l: int) -> bool:
    """The classical value of the orthodox edge predicate (for testing)."""
    modulus = (1 << l) - 1
    a = pow((u + 1) % modulus, 17, modulus)
    b = pow((v + 1) % modulus, 17, modulus)
    return bin(a & b).count("1") % 2 == 1


def simple_oracle(edges: set[tuple[int, int]]) -> Callable:
    """A lookup-table oracle over an explicit undirected edge set.

    For each edge (a, b), a pair of multi-controlled NOTs (with the
    address patterns of a and b on u and v, in both orientations) toggles
    the target.  This is the oracle the end-to-end walk tests use, with a
    planted triangle.
    """

    def edge_oracle(qc: Circ, u: list[Qubit], v: list[Qubit],
                    target: Qubit) -> None:
        n = len(u)
        for a, b in sorted(edges):
            for first, second in ((a, b), (b, a)):
                controls = []
                for i in range(n):  # big-endian registers
                    bit = (first >> (n - 1 - i)) & 1
                    controls.append(u[i] if bit else neg(u[i]))
                for i in range(n):
                    bit = (second >> (n - 1 - i)) & 1
                    controls.append(v[i] if bit else neg(v[i]))
                qc.qnot(target, controls=controls)

    return edge_oracle
