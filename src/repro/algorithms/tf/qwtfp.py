"""The Triangle Finding quantum walk (paper Sections 5.1-5.3).

"The Triangle Finding algorithm works by performing a Grover-based quantum
walk on a larger graph H, called the Hamming graph associated to G ... The
nodes of the Hamming graph are tuples of nodes of G, such that two such
tuples are adjacent if they differ in exactly one coordinate."

Register conventions (matching the paper's ``a6_QWSH`` code):

* ``tt`` -- the Hamming tuple: a dict of 2^r node registers (n qubits each)
* ``i``  -- an r-bit index register selecting a tuple slot
* ``v``  -- a candidate node register (n qubits)
* ``ee`` -- the triangular edge-bit table: ``ee[j][k]`` for j > k holds
  EDGE(tt[j], tt[k])

The walk step ``a6_QWSH`` follows the paper's structure exactly: diffuse
(i, v); then a ``with_computed`` block whose *compute* phase fetches
``tt[i]`` into a scratch node ``ttd``, swaps the i-th edge row into a
scratch row ``eed``, updates, and stores -- and whose *action* swaps
``ttd`` with ``v``.  The mirrored uncomputation then rebuilds the edge
table for the *new* tuple: the mirror does the real work, which is why
"the use of operators like with_computed_fun helps to avoid unnecessary
and error-prone code repetitions" (Section 5.3.1).
"""

from __future__ import annotations

from ...core.builder import Circ
from ...core.wires import Qubit
from ...datatypes.qdint import QDInt
from ...lib.amplitude import diffuse, prepare_uniform
from ...lib.qram import _address_controls, qram_fetch, qram_store, qram_swap
from .definitions import QWTFPSpec, pair_index

# ---------------------------------------------------------------------------
# Register setup: a2 / a3 / a4
# ---------------------------------------------------------------------------


def a2_ZERO(qc: Circ, spec: QWTFPSpec):
    """Allocate all walk registers in |0..0>."""
    tt = {
        j: [qc.qinit_qubit(False) for _ in range(spec.n)]
        for j in range(spec.tuple_size)
    }
    i = QDInt([qc.qinit_qubit(False) for _ in range(spec.r)])
    v = [qc.qinit_qubit(False) for _ in range(spec.n)]
    ee = {
        j: {k: qc.qinit_qubit(False) for k in range(j)}
        for j in range(1, spec.tuple_size)
    }
    return tt, i, v, ee


def a3_INITIALIZE(qc: Circ, tt, i, v) -> None:
    """Uniform superposition over tuples, index and candidate node."""
    prepare_uniform(qc, tt)
    prepare_uniform(qc, i)
    prepare_uniform(qc, v)


def a4_InitializeEdges(qc: Circ, spec: QWTFPSpec, tt, ee) -> None:
    """Populate the edge table: ee[j][k] ^= EDGE(tt[j], tt[k])."""
    for j in range(1, spec.tuple_size):
        for k in range(j):
            _xor_edge(qc, spec, tt[j], tt[k], ee[j][k])


def _xor_edge(qc: Circ, spec: QWTFPSpec, u, v, target: Qubit,
              controls=None) -> None:
    """target ^= EDGE(u, v), as a boxed oracle invocation ("o1").

    The oracle result is computed into a scoped ancilla, xored into the
    target, and uncomputed.  Boxing the whole invocation keeps the stored
    circuit size per call site O(1) -- essential for the full-algorithm
    gate counts, where the walk makes millions of oracle calls.  Extra
    *controls* land on the box call and distribute over the body (valid
    because the body is a clean unitary block).
    """

    def body(qc2, u2, v2, target2):
        def compute():
            result = qc2.qinit_qubit(False)
            spec.edge_oracle(qc2, u2, v2, result)
            return result

        def action(result):
            qc2.qnot(target2, controls=result)
            return None

        qc2.with_computed(compute, action)
        return u2, v2, target2

    name = f"o1[l={spec.l}]"
    if controls is None:
        qc.box(name, body, u, v, target)
    else:
        with qc.controls(controls):
            qc.box(name, body, u, v, target)


def _merge(wire, controls):
    if controls is None:
        return [wire]
    if isinstance(controls, (list, tuple)):
        return [wire, *controls]
    return [wire, controls]


# ---------------------------------------------------------------------------
# a5: triangle detection (the Grover predicate)
# ---------------------------------------------------------------------------


def a5_TestTriangleEdges(qc: Circ, spec: QWTFPSpec, ee,
                         w: Qubit) -> None:
    """w ^= (parity of the number of triangles among the tuple's slots).

    Under the unique-triangle promise at most one triple is satisfied, so
    the parity equals existence.  One triply-controlled NOT per slot
    triple (paper's a5).
    """
    size = spec.tuple_size
    for j in range(2, size):
        for k in range(1, j):
            for m in range(k):
                qc.qnot(
                    w,
                    controls=(ee[j][k], ee[j][m], ee[k][m]),
                )


# ---------------------------------------------------------------------------
# a7 / a8 / a12 / a13 / a14: the walk-step components
# ---------------------------------------------------------------------------


def a7_DIFFUSE(qc: Circ, i: QDInt, v) -> tuple[QDInt, list]:
    """Grover diffusion of the (index, candidate-node) pair (boxed)."""

    def body(qc2, i2, v2):
        qc2.comment_with_label("ENTER: a7_DIFFUSE", (i2, v2), ("i", "v"))
        diffuse(qc2, (i2, v2))
        qc2.comment_with_label("EXIT: a7_DIFFUSE", (i2, v2), ("i", "v"))
        return i2, v2

    return qc.box("a7", body, i, v)


def a8_FetchT(qc: Circ, i: QDInt, tt, ttd) -> None:
    """ttd ^= tt[i] (quantum-indexed fetch of the addressed tuple slot)."""
    qram_fetch(qc, i, tt, ttd)


def a9_StoreT(qc: Circ, i: QDInt, tt, ttd) -> None:
    """tt[i] ^= ttd (quantum-indexed store)."""
    qram_store(qc, i, tt, ttd)


def a12_FetchStoreE(qc: Circ, spec: QWTFPSpec, i: QDInt, ee, eed) -> None:
    """Swap the edge row of slot i with the scratch row eed.

    For every slot j and every other slot k, the bit ee[{j,k}] is swapped
    with eed[k] under the control pattern (i == j).
    """
    for j in range(spec.tuple_size):
        controls = _address_controls(i, j)
        for k in range(spec.tuple_size):
            if k == j:
                continue
            a, b = pair_index(j, k)
            row_bit = ee[a][b]
            qc.qnot(row_bit, controls=_merge(eed[k], controls))
            qc.qnot(eed[k], controls=_merge(row_bit, controls))
            qc.qnot(row_bit, controls=_merge(eed[k], controls))


def a13_UPDATE(qc: Circ, spec: QWTFPSpec, tt, i: QDInt, ttd, eed) -> None:
    """eed[k] ^= EDGE(tt[k], ttd) for every slot k except the addressed one.

    The "except slot i" condition is not a product of single-qubit
    controls, so it is realized as an unconditional toggle followed by a
    counter-toggle controlled on (i == k) -- the two cancel exactly when
    k is the addressed slot.
    """
    for k in range(spec.tuple_size):
        _xor_edge(qc, spec, tt[k], ttd, eed[k])
        _xor_edge(qc, spec, tt[k], ttd, eed[k],
                  controls=_address_controls(i, k))


def a14_SWAP(qc: Circ, ttd, v) -> None:
    """Swap the fetched tuple slot with the candidate node (paper's a14)."""
    qc.comment_with_label("ENTER: a14_SWAP", (ttd, v), ("r", "q"))
    qc.swap(ttd, v)
    qc.comment_with_label("EXIT: a14_SWAP", (ttd, v), ("r", "q"))


# ---------------------------------------------------------------------------
# a6: the walk step (the paper's code sample)
# ---------------------------------------------------------------------------


def a6_QWSH(qc: Circ, spec: QWTFPSpec, tt, i: QDInt, v, ee,
            diffusion: bool = True):
    """One walk step on the Hamming graph (paper Section 5.3.2).

    Chooses a new (slot, node) pair by diffusion, then swaps the addressed
    tuple component with the candidate node and rebuilds the affected edge
    bits.  All scratch space (``ttd``, ``eed``) is scoped to the step.
    ``diffusion=False`` replaces the diffusion with nothing, which makes
    the step classically simulable (used by the tests).
    """
    qc.comment_with_label(
        "ENTER: a6_QWSH", (tt, i, v, ee), ("tt", "i", "v", "ee")
    )
    with qc.ancilla_list(spec.n) as ttd:
        with qc.ancilla_list(spec.tuple_size) as eed:
            if diffusion:
                a7_DIFFUSE(qc, i, v)

            def compute():
                a8_FetchT(qc, i, tt, ttd)
                a12_FetchStoreE(qc, spec, i, ee, eed)
                a13_UPDATE(qc, spec, tt, i, ttd, eed)
                a9_StoreT(qc, i, tt, ttd)
                return None

            def action(_):
                a14_SWAP(qc, ttd, v)
                return None

            qc.with_computed(compute, action)
    qc.comment_with_label(
        "EXIT: a6_QWSH", (tt, i, v, ee), ("tt", "i", "v", "ee")
    )
    return tt, i, v, ee


def boxed_walk_step(qc: Circ, spec: QWTFPSpec, tt, i, v, ee,
                    repetitions: int = 1):
    """The walk step as a repeated boxed subroutine ("a6").

    With ``repetitions=k`` the box is iterated in place, keeping the
    stored circuit size independent of k -- the mechanism behind the
    paper's 30-trillion-gate counts (Section 5.4).
    """

    def body(qc2, tt2, i2, v2, ee2):
        return a6_QWSH(qc2, spec, tt2, i2, v2, ee2)

    return qc.box("a6", body, tt, i, v, ee, repetitions=repetitions)


# ---------------------------------------------------------------------------
# a1: the top-level algorithm
# ---------------------------------------------------------------------------


def a1_QWTFP(qc: Circ, spec: QWTFPSpec, grover_iterations: int | None = None,
             walk_steps: int | None = None):
    """The complete Triangle Finding circuit.

    Initializes the Hamming-tuple registers in uniform superposition,
    computes the initial edge table, then alternates triangle-phase-flips
    with blocks of boxed walk steps (Grover-over-walk), and measures.
    Returns the measured (tuple, index, node) classical registers.
    """
    size = spec.tuple_size
    if grover_iterations is None:
        grover_iterations = max(1, int(round((spec.num_nodes) ** 0.5)))
    if walk_steps is None:
        walk_steps = size

    tt, i, v, ee = a2_ZERO(qc, spec)
    a3_INITIALIZE(qc, tt, i, v)
    a4_InitializeEdges(qc, spec, tt, ee)

    def phase_flip_body(qc2, ee2):
        # Phase flip on tuples containing the triangle (boxed: the triple
        # loop is cubic in the tuple size and is invoked every iteration).
        def compute():
            w = qc2.qinit_qubit(False)
            a5_TestTriangleEdges(qc2, spec, ee2, w)
            return w

        qc2.with_computed(compute, lambda w: qc2.gate_Z(w))
        return ee2

    for _ in range(grover_iterations):
        qc.box("a5", phase_flip_body, ee)
        tt, i, v, ee = boxed_walk_step(
            qc, spec, tt, i, v, ee, repetitions=walk_steps
        )

    result_tt = {j: qc.measure(tt[j]) for j in sorted(tt)}
    result_i = qc.measure(i)
    result_v = qc.measure(v)
    qc.qdiscard(ee)
    return result_tt, result_i, result_v
