"""Global definitions for the Triangle Finding algorithm (paper Section 5).

Mirrors the paper's ``Definitions`` module.  The algorithm is
"parameterized on integers l, n and r specifying respectively the length l
of the integers used by the oracle, the number 2^n of nodes of G and the
size 2^r of Hamming graph tuples" (Section 5.1), and "the oracle is a
changeable part" -- captured by :class:`QWTFPSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...core.qdata import qubit
from ...core.wires import Qubit
from ...datatypes.qdint import QDInt

#: A graph node register: n qubits encoding a node index (a ``QNode``).
QNode = list


def qnode_shape(n: int) -> list:
    """Shape specimen for an n-qubit node register."""
    return [qubit] * n


@dataclass
class QWTFPSpec:
    """The parameters and oracle of a Triangle Finding instance.

    ``edge_oracle(qc, u, v, target)`` must XOR the edge predicate of nodes
    u and v into *target*, leaving u and v unchanged.  This mirrors the
    paper's ``QWTFP_spec`` tuple ``(n, r, edgeOracle, qram)``.
    """

    n: int  # the graph has 2^n nodes
    r: int  # Hamming tuples have 2^r components
    l: int  # oracle integer width (QIntTF size)
    edge_oracle: Callable

    @property
    def num_nodes(self) -> int:
        return 1 << self.n

    @property
    def tuple_size(self) -> int:
        return 1 << self.r


def pair_index(j: int, k: int) -> tuple[int, int]:
    """Canonical (larger, smaller) ordering of an edge-table index.

    The edge table ``ee`` stores one qubit per unordered pair {j, k} of
    tuple slots, indexed ``ee[j][k]`` with j > k (the paper's
    ``IntMap (IntMap Qubit)`` with rows 1..2^r-1 of increasing length).
    """
    if j == k:
        raise ValueError("no edge bit for a slot with itself")
    return (j, k) if j > k else (k, j)


def make_edge_table(qc, tuple_size: int) -> dict[int, dict[int, Qubit]]:
    """Allocate the triangular edge-bit table, all |0>."""
    return {
        j: {k: qc.qinit_qubit(False) for k in range(j)}
        for j in range(1, tuple_size)
    }


def edge_table_shape(tuple_size: int) -> dict[int, dict[int, object]]:
    """Shape specimen of the edge-bit table."""
    return {
        j: {k: qubit for k in range(j)} for j in range(1, tuple_size)
    }
