"""Alternative implementations of TF subroutines (the paper's
``Alternatives`` module: "alternatives and/or generalization of certain
algorithms", Section 5.2).

The main alternative is QFT-based arithmetic: a Draper adder in place of
the ripple-carry adder inside the multiplier ladder.  The ablation
benchmark compares the gate counts and widths of the two styles.
"""

from __future__ import annotations

from ...arith.adder import copy_register
from ...arith.qftarith import qft_add_in_place
from ...arith.shift import rotate_left_tf
from ...core.builder import Circ
from ...core.wires import Qubit
from ...datatypes.qdint import QDInt
from ...datatypes.qinttf import QIntTF


def qft_add_select(qc: Circ, ctrl: Qubit, x: QIntTF, y: QIntTF) -> QIntTF:
    """QFT-adder analogue of ``add_tf_select`` (mod ``2**l``, not 2^l-1).

    The Draper adder works modulo ``2**l``; the alternative multiplier is
    therefore a plain QDInt-style multiplier.  Used for cost comparison,
    not as a drop-in oracle replacement.
    """
    from ...core.builder import neg

    def compute():
        total = copy_register(qc, y)
        qft_add_in_place(qc, x, total)
        return total

    def action(total):
        result = y.qdata_rebuild(
            [qc.qinit_qubit(False) for _ in range(len(y))]
        )
        for i in range(len(y)):
            qc.qnot(result.bit(i), controls=[total.bit(i), ctrl])
            qc.qnot(result.bit(i), controls=[y.bit(i), neg(ctrl)])
        return result

    return qc.with_computed(compute, action)


def qft_mul(qc: Circ, x: QDInt, y: QDInt) -> QDInt:
    """Shift-and-add multiplier built on the Draper adder (mod ``2**l``)."""
    n = len(x)

    def compute():
        acc = y.qdata_rebuild([qc.qinit_qubit(False) for _ in range(n)])
        cur = x
        for i in range(n):
            acc = qft_add_select(qc, y.bit(i), cur, acc)
            cur = rotate_left_tf(qc, cur)
        return acc

    def action(acc):
        return copy_register(qc, acc)

    return qc.with_computed(compute, action)
