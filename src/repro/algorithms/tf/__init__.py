"""Triangle Finding (paper Section 5): the flagship implementation.

Module layout mirrors the paper's Section 5.2: ``definitions``, ``qwtfp``
(the quantum walk), ``oracle``, ``main`` (command line interface),
``simulate`` (oracle test suite), ``alternatives``.
"""

from .definitions import QWTFPSpec, edge_table_shape, qnode_shape
from .oracle import (
    classical_edge,
    o2_ConvertNode,
    o3_TestEdge,
    o4_POW17,
    o5_SUB,
    o6_NEG,
    o7_ADD_controlled,
    o8_MUL,
    orthodox_oracle,
    simple_oracle,
    square,
)
from .qwtfp import (
    a1_QWTFP,
    a2_ZERO,
    a3_INITIALIZE,
    a4_InitializeEdges,
    a5_TestTriangleEdges,
    a6_QWSH,
    a7_DIFFUSE,
    boxed_walk_step,
)

__all__ = [
    "QWTFPSpec",
    "qnode_shape",
    "edge_table_shape",
    "orthodox_oracle",
    "simple_oracle",
    "classical_edge",
    "o2_ConvertNode",
    "o3_TestEdge",
    "o4_POW17",
    "o5_SUB",
    "o6_NEG",
    "o7_ADD_controlled",
    "o8_MUL",
    "square",
    "a1_QWTFP",
    "a2_ZERO",
    "a3_INITIALIZE",
    "a4_InitializeEdges",
    "a5_TestTriangleEdges",
    "a6_QWSH",
    "a7_DIFFUSE",
    "boxed_walk_step",
]
