"""A test suite for the Triangle Finding oracle (the paper's ``Simulate``).

"Simulate: a test suite for the oracle" (Section 5.2).  Every check runs
the generated circuits through the efficient classical simulator and
compares against ordinary Python arithmetic -- this is exactly how Quipper
programmers validate oracles before estimating resources at full size.
"""

from __future__ import annotations

import random

from ...datatypes.qinttf import IntTF
from ...sim.classical import run_classical_generic
from .oracle import (
    classical_edge,
    o2_ConvertNode,
    o4_POW17,
    o5_SUB,
    o8_MUL,
    orthodox_oracle,
    square,
)


def check_pow17(l: int, trials: int = 10, seed: int = 0) -> bool:
    """o4_POW17 computes x^17 mod 2^l - 1 on random operands."""
    rng = random.Random(seed)
    modulus = (1 << l) - 1

    def circuit(qc, x):
        return o4_POW17(qc, x)

    for _ in range(trials):
        a = rng.randrange(modulus)
        x, x17 = run_classical_generic(circuit, IntTF(a, l))
        if int(x) != a or int(x17) != pow(a, 17, modulus):
            return False
    return True


def check_mul(l: int, trials: int = 20, seed: int = 0) -> bool:
    """o8_MUL multiplies mod 2^l - 1 on random operands."""
    rng = random.Random(seed)
    modulus = (1 << l) - 1

    def circuit(qc, x, y):
        return o8_MUL(qc, x, y)

    for _ in range(trials):
        a, b = rng.randrange(modulus), rng.randrange(modulus)
        x, y, p = run_classical_generic(circuit, IntTF(a, l), IntTF(b, l))
        if int(x) != a or int(y) != b or int(p) != (a * b) % modulus:
            return False
    return True


def check_square(l: int, trials: int = 10, seed: int = 0) -> bool:
    rng = random.Random(seed)
    modulus = (1 << l) - 1

    def circuit(qc, x):
        return square(qc, x)

    for _ in range(trials):
        a = rng.randrange(modulus)
        x, sq = run_classical_generic(circuit, IntTF(a, l))
        if int(sq) != (a * a) % modulus:
            return False
    return True


def check_sub(l: int, trials: int = 10, seed: int = 0) -> bool:
    rng = random.Random(seed)
    modulus = (1 << l) - 1

    def circuit(qc, x, y):
        return o5_SUB(qc, x, y)

    for _ in range(trials):
        a, b = rng.randrange(modulus), rng.randrange(modulus)
        x, y, d = run_classical_generic(circuit, IntTF(a, l), IntTF(b, l))
        if int(d) != (a - b) % modulus or int(x) != a or int(y) != b:
            return False
    return True


def check_convert(l: int, n: int) -> bool:
    def circuit(qc, node):
        return node, o2_ConvertNode(qc, node, l)

    for value in range(1 << n):
        bits = [bool((value >> (n - 1 - i)) & 1) for i in range(n)]
        node, converted = run_classical_generic(circuit, bits)
        if int(converted) != (value + 1) % ((1 << l) - 1):
            return False
    return True


def check_edge_oracle(l: int, n: int, trials: int = 15, seed: int = 0) -> bool:
    """The full orthodox oracle agrees with its classical counterpart."""
    rng = random.Random(seed)
    oracle = orthodox_oracle(l)

    def circuit(qc, u, v, t):
        oracle(qc, u, v, t)
        return u, v, t

    for _ in range(trials):
        a = rng.randrange(1 << n)
        b = rng.randrange(1 << n)
        t0 = rng.random() < 0.5
        a_bits = [bool((a >> (n - 1 - i)) & 1) for i in range(n)]
        b_bits = [bool((b >> (n - 1 - i)) & 1) for i in range(n)]
        u, v, t = run_classical_generic(circuit, a_bits, b_bits, t0)
        if t != (t0 ^ classical_edge(a, b, l)):
            return False
        if u != a_bits or v != b_bits:
            return False
    return True


def run_all(l: int = 4, n: int = 3) -> dict[str, bool]:
    """Run the whole oracle test suite; returns pass/fail per check."""
    return {
        "pow17": check_pow17(l),
        "mul": check_mul(l),
        "square": check_square(l),
        "sub": check_sub(l),
        "convert": check_convert(l, n),
        "edge_oracle": check_edge_oracle(l, n),
    }
