"""Command-line interface for the Triangle Finding algorithm.

Mirrors the paper's ``tf`` executable (Section 5.2): "Its command line
interface allows the user, for example, to plug in different oracles, show
different parts of the circuit, select a gate base, select different
output formats, and select parameter values for l, n and r."

Usage examples (paper Section 5.3.1 / 5.4; the paper's ``-O`` "oracle
only" shorthand is spelled ``--oracle-only`` here, since the shared CLI
surface reserves ``-O`` for the peephole optimizer)::

    python -m repro.algorithms.tf.main -s pow17 -l 4 -n 3 -r 2
    python -m repro.algorithms.tf.main -f gatecount --oracle-only -o orthodox -l 31 -n 15 -r 9
    python -m repro.algorithms.tf.main -f gatecount -o orthodox -l 31 -n 15 -r 6
"""

from __future__ import annotations

import argparse

from ...core.qdata import qubit
from ...datatypes.qinttf import qinttf_shape
from ...program import Program
from ..runner import (
    add_execution_arguments,
    add_gate_base_argument,
    apply_gate_base,
    emit,
)
from .definitions import QWTFPSpec, qnode_shape
from .oracle import o4_POW17, o8_MUL, orthodox_oracle, simple_oracle
from .qwtfp import a1_QWTFP, a6_QWSH

_SUBROUTINES = ("pow17", "mul", "qwsh", "oracle", "full")


def part_program(part: str, l: int, n: int, r: int, oracle_name: str,
                 grover_iterations=None, walk_steps=None) -> Program:
    """One part of the algorithm as a lazy, pipeline-ready Program."""
    if part == "pow17":
        return Program.capture(
            lambda qc, x: o4_POW17(qc, x), qinttf_shape(l), name="pow17"
        )
    if part == "mul":
        return Program.capture(
            lambda qc, x, y: o8_MUL(qc, x, y),
            qinttf_shape(l),
            qinttf_shape(l),
            name="mul",
        )
    oracle = _oracle(oracle_name, l)
    spec = QWTFPSpec(n=n, r=r, l=l, edge_oracle=oracle)
    if part == "oracle":
        def oracle_circuit(qc, u, v, t):
            oracle(qc, u, v, t)
            return u, v, t

        return Program.capture(
            oracle_circuit, qnode_shape(n), qnode_shape(n), qubit,
            name="oracle",
        )
    if part == "qwsh":
        from .definitions import edge_table_shape
        from ...datatypes.qdint import qdint_shape

        def step(qc, tt, i, v, ee):
            return a6_QWSH(qc, spec, tt, i, v, ee)

        tt_shape = {j: qnode_shape(n) for j in range(spec.tuple_size)}
        return Program.capture(
            step, tt_shape, qdint_shape(r), qnode_shape(n),
            edge_table_shape(spec.tuple_size), name="qwsh",
        )
    if part == "full":
        return Program.capture(
            lambda qc: a1_QWTFP(
                qc, spec, grover_iterations=grover_iterations,
                walk_steps=walk_steps,
            ),
            name="qwtfp",
        )
    raise ValueError(f"unknown part {part!r}; choose from {_SUBROUTINES}")


def build_part(part: str, l: int, n: int, r: int, oracle_name: str,
               grover_iterations=None, walk_steps=None):
    """Generate the circuit for one part of the algorithm (legacy shim)."""
    return part_program(
        part, l, n, r, oracle_name,
        grover_iterations=grover_iterations, walk_steps=walk_steps,
    ).bcircuit


def _oracle(name: str, l: int):
    if name == "orthodox":
        return orthodox_oracle(l)
    if name == "simple":
        # A fixed small graph with a planted triangle {0, 1, 2}.
        return simple_oracle({(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)})
    raise ValueError(f"unknown oracle {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tf", description="Triangle Finding circuit generator"
    )
    parser.add_argument("-l", type=int, default=4,
                        help="oracle integer bit width")
    parser.add_argument("-n", type=int, default=3,
                        help="the graph has 2^n nodes")
    parser.add_argument("-r", type=int, default=2,
                        help="Hamming tuples have 2^r entries")
    parser.add_argument("-s", dest="part", default="full",
                        choices=_SUBROUTINES,
                        help="which part of the circuit to show")
    parser.add_argument("-o", dest="oracle", default="orthodox",
                        choices=("orthodox", "simple"))
    parser.add_argument("--oracle-only", dest="oracle_only",
                        action="store_true", help="shorthand for -s oracle "
                        "(the paper's -O; -O here is the optimizer)")
    add_execution_arguments(parser, default_format="ascii")
    add_gate_base_argument(parser)
    parser.add_argument("--grover-iterations", type=int, default=None)
    parser.add_argument("--walk-steps", type=int, default=None)
    args = parser.parse_args(argv)

    part = "oracle" if args.oracle_only else args.part
    program = part_program(
        part, args.l, args.n, args.r, args.oracle,
        grover_iterations=args.grover_iterations,
        walk_steps=args.walk_steps,
    )
    return emit(apply_gate_base(program, args.gate_base), args)


if __name__ == "__main__":
    raise SystemExit(main())
