"""Module entry point: ``python -m repro.algorithms.tf``."""

from .main import main

if __name__ == "__main__":
    raise SystemExit(main())
