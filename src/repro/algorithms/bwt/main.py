"""The Binary Welded Tree algorithm: timestep, main circuit, CLI.

Paper Figure 1 shows the *diffusion step*: for each qubit pair (a_i, b_i)
a W gate enters the symmetric/antisymmetric basis, a cascade of controlled
NOTs (positive on a_i, negative on b_i) accumulates into an ancilla, the
evolution ``exp(-iZt)`` fires on the ancilla under an empty-dot control on
the validity flag r, and everything uncomputes -- "a diffusion step from
the Binary Welded Tree algorithm".

The full algorithm prepares the ENTRANCE label, runs ``s`` timesteps of
the simulated continuous-time walk (one oracle + diffusion + oracle^-1
per colour per step), and measures the node register, hoping to find the
EXIT label (Section 3.5: "the validity of a potential solution cannot be
efficiently verified, and a statistical argument is used").
"""

from __future__ import annotations

import argparse

from ...core.builder import Circ, build, neg
from ...core.wires import Qubit
from ...program import Program
from ..runner import (
    add_execution_arguments,
    add_gate_base_argument,
    apply_gate_base,
    emit,
)
from .graph import entrance_label, register_size
from .orthodox import bwt_oracle
from .template import bwt_oracle_template


def timestep(qc: Circ, a: list[Qubit], b: list[Qubit], r: Qubit,
             t: float) -> None:
    """The Figure 1 diffusion gadget over node registers a and b."""
    with qc.ancilla() as h:
        def change():
            for x, y in zip(a, b):
                qc.gate_W(x, y)
            for x, y in zip(a, b):
                qc.qnot(h, controls=(x, neg(y)))
            return None

        def evolve(_):
            qc.expZt(t, h, controls=neg(r))
            return None

        qc.with_computed(change, evolve)


def _oracle_fn(kind: str):
    if kind == "orthodox":
        return bwt_oracle
    if kind == "template":
        return bwt_oracle_template
    raise ValueError(f"unknown oracle kind {kind!r}")


def qrwbwt(qc: Circ, n: int, s: int, t: float,
           oracle_kind: str = "orthodox"):
    """The full BWT walk circuit; returns the measured node register.

    One timestep applies, for each of the four edge colours, the oracle,
    the Figure 1 diffusion, and the oracle's inverse (uncomputation) --
    the standard simulation of the welded tree's adjacency Hamiltonian
    split by colour.
    """
    oracle = _oracle_fn(oracle_kind)
    m = register_size(n)
    entrance = entrance_label(n)
    a = [
        qc.qinit_qubit(bool((entrance >> (m - 1 - i)) & 1))
        for i in range(m)
    ]
    for _ in range(s):
        for color in range(4):
            with qc.ancilla_list(m) as b:
                with qc.ancilla() as r:
                    def compute():
                        oracle(qc, a, b, r, color, n)
                        return None

                    def act(_):
                        timestep(qc, a, b, r, t)
                        return None

                    qc.with_computed(compute, act)
    return qc.measure(a)


def bwt_program(n: int, s: int, t: float,
                oracle_kind: str = "orthodox") -> Program:
    """The complete BWT walk as a lazy, pipeline-ready Program."""
    return Program.capture(
        lambda qc: qrwbwt(qc, n, s, t, oracle_kind),
        name=f"bwt(n={n},s={s})",
    )


def bwt_circuit(n: int, s: int, t: float, oracle_kind: str = "orthodox"):
    """Generate the complete BWT circuit as a BCircuit (legacy shim)."""
    return bwt_program(n, s, t, oracle_kind).bcircuit


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bwt", description="Binary Welded Tree circuit generator"
    )
    parser.add_argument("-n", type=int, default=4, help="tree height")
    parser.add_argument("-s", type=int, default=1, help="time steps")
    parser.add_argument("-t", type=float, default=0.1,
                        help="evolution time per step")
    parser.add_argument("-o", dest="oracle", default="orthodox",
                        choices=("orthodox", "template"))
    add_gate_base_argument(parser, default="toffoli")
    add_execution_arguments(parser, default_format="gatecount")
    args = parser.parse_args(argv)

    program = apply_gate_base(
        bwt_program(args.n, args.s, args.t, args.oracle), args.gate_base
    )
    return emit(program, args)


if __name__ == "__main__":
    raise SystemExit(main())
