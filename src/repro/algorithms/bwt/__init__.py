"""Binary Welded Tree (paper Sections 3, 6 and Figure 1)."""

from .graph import (
    all_nodes,
    check_graph,
    entrance_label,
    exit_label,
    neighbor,
    pack_label,
    register_size,
    unpack_label,
)
from .main import bwt_circuit, bwt_program, qrwbwt, timestep
from .orthodox import bwt_oracle
from .template import bwt_oracle_template, make_neighbor_template

__all__ = [
    "neighbor",
    "entrance_label",
    "exit_label",
    "register_size",
    "pack_label",
    "unpack_label",
    "all_nodes",
    "check_graph",
    "bwt_oracle",
    "bwt_oracle_template",
    "make_neighbor_template",
    "timestep",
    "qrwbwt",
    "bwt_circuit",
    "bwt_program",
]
