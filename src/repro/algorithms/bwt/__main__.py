"""Module entry point: ``python -m repro.algorithms.bwt``."""

from .main import main

if __name__ == "__main__":
    raise SystemExit(main())
