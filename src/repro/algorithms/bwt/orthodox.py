"""The hand-coded ("orthodox") BWT oracle.

This is the reproduction of Quipper's hand-written oracle for the Binary
Welded Tree algorithm (paper Section 6: 'we implemented identical versions
of the Binary Welded Tree algorithm ... using a hand-coded oracle').

Given a node register ``a``, a zeroed output register ``b`` and a zeroed
flag ``r``, the oracle for colour c writes the colour-c neighbour's label
into ``b`` and sets ``r`` when the edge is *absent* (so the Figure 1
timestep can gate its evolution on an empty dot, exactly as drawn).

Structure: the three edge cases (child, parent, weld) are recognized by
*flag* qubits computed once from the depth patterns of the heap position
(this is the hand-optimization Quipper programmers apply, and the reason
the orthodox oracle beats both QCL and the lifted oracle in gate count);
the label copies are then cheap Toffolis off the flags; the flags are
uncomputed by ``with_computed``.
"""

from __future__ import annotations

from ...arith.adder import add_const_in_place
from ...core.builder import Circ, neg
from ...core.wires import Qubit
from ...datatypes.qdint import QDInt
from .graph import WELD_OFFSETS

# Node register layout: index 0 is the side bit; indices 1..n+1 hold the
# heap position big-endian (p_n first).  ``_pos`` returns the wire of heap
# bit weight 2**j.


def _side(node: list[Qubit]) -> Qubit:
    return node[0]


def _pos(node: list[Qubit], j: int, n: int) -> Qubit:
    return node[1 + (n - j)]


def _depth_pattern(a: list[Qubit], d: int, n: int) -> list:
    """Controls asserting depth(p) == d: leading 1 exactly at bit d."""
    controls = [neg(_pos(a, j, n)) for j in range(n, d, -1)]
    controls.append(_pos(a, d, n))
    return controls


def bwt_oracle(qc: Circ, a: list[Qubit], b: list[Qubit], r: Qubit,
               color: int, n: int) -> None:
    """Write the colour-c neighbour of *a* into *b*; set *r* if absent.

    ``b`` and ``r`` must be zeroed.  ``a`` is unchanged.  The flag logic
    is computed and uncomputed around the copies (``with_computed``).
    """
    hi, lo = color >> 1, color & 1

    def compute():
        child = qc.qinit_qubit(False)
        parent = qc.qinit_qubit(False)
        weld = qc.qinit_qubit(False)
        # Child edges: at matching-parity depths below the leaves.
        for d in range(0, n):
            if d % 2 == hi:
                qc.qnot(child, controls=_depth_pattern(a, d, n))
        # Parent edges: colour = 2*((d-1) % 2) + (p & 1).
        for d in range(1, n + 1):
            if (d - 1) % 2 == hi:
                pattern = _depth_pattern(a, d, n)
                low_bit = _pos(a, 0, n)
                if d != 0:
                    pattern.append(low_bit if lo else neg(low_bit))
                qc.qnot(parent, controls=pattern)
        # Weld edges: at the leaves, on the remaining colour parity.
        if n % 2 == hi:
            qc.qnot(weld, controls=_depth_pattern(a, n, n))
        return child, parent, weld

    def action(flags):
        child, parent, weld = flags
        # -- child: b = (side, 2p + lo) --------------------------------
        for j in range(0, n):
            qc.qnot(_pos(b, j + 1, n), controls=(child, _pos(a, j, n)))
        if lo:
            qc.qnot(_pos(b, 0, n), controls=child)
        qc.qnot(_side(b), controls=(child, _side(a)))
        # -- parent: b = (side, p >> 1) --------------------------------
        for j in range(1, n + 1):
            qc.qnot(_pos(b, j - 1, n), controls=(parent, _pos(a, j, n)))
        qc.qnot(_side(b), controls=(parent, _side(a)))
        # -- weld: b = (1 - side, 2^n + (idx +- g)) --------------------
        for j in range(0, n):
            qc.qnot(_pos(b, j, n), controls=(weld, _pos(a, j, n)))
        qc.qnot(_pos(b, n, n), controls=weld)  # the leaf-block marker bit
        qc.qnot(_side(b), controls=(weld, _side(a)))
        qc.qnot(_side(b), controls=weld)  # flip: the weld crosses sides
        g = WELD_OFFSETS[lo]
        if g % (1 << n) != 0:
            idx = QDInt([_pos(b, j, n) for j in range(n - 1, -1, -1)])
            add_const_in_place(qc, g, idx, controls=[weld, neg(_side(a))])
            add_const_in_place(
                qc, (1 << n) - g, idx, controls=[weld, _side(a)]
            )
        # -- validity: r = 1 when no edge matched ----------------------
        qc.qnot(r)
        qc.qnot(r, controls=child)
        qc.qnot(r, controls=parent)
        qc.qnot(r, controls=weld)
        return None

    qc.with_computed(compute, action)
