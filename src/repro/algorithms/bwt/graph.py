"""The welded-tree graph: classical substrate for the BWT algorithm.

The Binary Welded Tree problem (Childs et al. [4]): two complete binary
trees of height n whose leaves are joined ("welded") by a cycle formed
from two perfect matchings.  A quantum walk started at the ENTRANCE (one
root) traverses to the EXIT (the other root) exponentially faster than any
classical algorithm that can only query the graph's edge-colour oracle.

Labelling (concrete, hand-implementable with reversible arithmetic):

* A node register has ``m = n + 2`` bits: one *side* bit (which tree) and
  ``n + 1`` bits of heap position p (the root is p=1; the children of p
  are 2p and 2p+1; p=0 is no node).
* Depth(p) = position of the leading 1 bit; leaves are at depth n.
* Edge colours (four, per the algorithm's specification): the edge from a
  depth-d node p to its child 2p+b has colour ``2*(d % 2) + b``; the weld
  edges at the leaves use the remaining parity pair ``2*(n % 2) + b``.
* Weld matchings: leaf index ``idx = p - 2**n``; matching b joins side-0
  leaf idx with side-1 leaf ``(idx + g_b) mod 2**n`` where g_0 = 0 and
  g_1 = 1 -- the union of the two matchings is a single cycle through all
  the leaves, as the problem requires.

The functions here are pure Python; they feed the hand-coded ("orthodox")
oracle's tests, the lifted ("template") oracle, and the end-to-end walk
checks.
"""

from __future__ import annotations

WELD_OFFSETS = (0, 1)  # g_0, g_1


def register_size(n: int) -> int:
    """Node register width: side bit + (n+1)-bit heap position."""
    return n + 2


def depth(p: int) -> int:
    """Depth of heap position p (the position of its leading 1 bit)."""
    if p <= 0:
        raise ValueError("p=0 is not a node")
    return p.bit_length() - 1


def entrance_label(n: int) -> int:
    """The ENTRANCE node: side 0, heap position 1."""
    return 1


def exit_label(n: int) -> int:
    """The EXIT node: side 1, heap position 1."""
    return (1 << (n + 1)) | 1


def unpack_label(a: int, n: int) -> tuple[int, int]:
    """Split a label into (side, heap position)."""
    side = (a >> (n + 1)) & 1
    p = a & ((1 << (n + 1)) - 1)
    return side, p


def pack_label(side: int, p: int, n: int) -> int:
    return (side << (n + 1)) | p


def neighbor(a: int, color: int, n: int) -> int | None:
    """The colour-c neighbour of node a, or None if there is none.

    This is the classical specification of the oracle function v_c.
    Self-inverse: ``neighbor(neighbor(a, c), c) == a`` whenever defined.
    """
    side, p = unpack_label(a, n)
    if p == 0:
        return None
    d = depth(p)
    hi, b = color >> 1, color & 1
    # Child edge: depth parity matches and we are not at a leaf.
    if d < n and hi == d % 2:
        return pack_label(side, 2 * p + b, n)
    # Parent edge: the edge to our parent has colour 2*((d-1)%2) + (p&1).
    if d > 0 and d <= n and color == 2 * ((d - 1) % 2) + (p & 1):
        return pack_label(side, p >> 1, n)
    # Weld edges at the leaves.
    if d == n and hi == n % 2:
        idx = p - (1 << n)
        g = WELD_OFFSETS[b]
        if side == 0:
            new_idx = (idx + g) % (1 << n)
        else:
            new_idx = (idx - g) % (1 << n)
        return pack_label(1 - side, (1 << n) + new_idx, n)
    return None


def all_nodes(n: int) -> list[int]:
    """Every valid node label."""
    return [
        pack_label(side, p, n)
        for side in (0, 1)
        for p in range(1, 1 << (n + 1))
    ]


def check_graph(n: int) -> None:
    """Sanity-check the graph: 3-regular-ish, colour-consistent, welded.

    Raises AssertionError on any structural violation (used in tests).
    """
    for a in all_nodes(n):
        for c in range(4):
            b = neighbor(a, c, n)
            if b is not None:
                back = neighbor(b, c, n)
                assert back == a, (a, c, b, back)
    # Roots have exactly two neighbours; all others exactly three.
    for a in all_nodes(n):
        _, p = unpack_label(a, n)
        degree = sum(neighbor(a, c, n) is not None for c in range(4))
        assert degree == (2 if p == 1 else 3), (a, degree)
