"""Hex boards: the classical substrate of the Boolean Formula algorithm.

The paper's BF implementation "computes a winning strategy for the game of
Hex" (Section 1), and its headline oracle "determines the winner for a
given final position in the game of Hex.  It uses a flood-fill algorithm"
(Section 4.6.1).

A Hex board has R rows by C columns of hexagonal cells; each cell is
adjacent to up to six neighbours.  Blue owns the left and right edges and
wins if blue stones connect them; in a *final* position (board full)
exactly one player has a winning chain, so "blue wins" is a well-defined
boolean function of the position.
"""

from __future__ import annotations


def cell_index(row: int, col: int, cols: int) -> int:
    return row * cols + col


def neighbors(row: int, col: int, rows: int, cols: int) -> list[tuple[int, int]]:
    """The (up to six) hex-grid neighbours of a cell."""
    candidates = [
        (row, col - 1), (row, col + 1),
        (row - 1, col), (row + 1, col),
        (row - 1, col + 1), (row + 1, col - 1),
    ]
    return [
        (r, c) for (r, c) in candidates if 0 <= r < rows and 0 <= c < cols
    ]


def blue_wins(board: list[bool], rows: int, cols: int) -> bool:
    """Classical flood fill: does blue connect left to right?

    *board* lists cells row-major; True means a blue stone.  This is the
    specification the lifted oracle is tested against.
    """
    reach = set()
    frontier = [
        (r, 0) for r in range(rows) if board[cell_index(r, 0, cols)]
    ]
    reach.update(frontier)
    while frontier:
        row, col = frontier.pop()
        for (r, c) in neighbors(row, col, rows, cols):
            if (r, c) not in reach and board[cell_index(r, c, cols)]:
                reach.add((r, c))
                frontier.append((r, c))
    return any((r, cols - 1) in reach for r in range(rows))


def random_final_position(rows: int, cols: int, seed: int) -> list[bool]:
    """A random full board (half blue, half red, row-major booleans)."""
    import random

    rng = random.Random(seed)
    cells = rows * cols
    blues = cells // 2 + (cells % 2)
    board = [True] * blues + [False] * (cells - blues)
    rng.shuffle(board)
    return board
