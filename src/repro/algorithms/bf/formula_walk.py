"""NAND-formula evaluation and the winning-move search.

The BF algorithm of Ambainis et al. [2] evaluates "any AND-OR formula of
size n in time n^(1/2 + o(1))" by phase estimation on a quantum walk over
the formula tree.  The full Szegedy-walk machinery is substituted here
(documented in DESIGN.md) by the equivalent *endgame* formulation the
paper's own implementation targets -- "computes a winning strategy for the
game of Hex" -- realized as amplitude amplification over the lifted
position-evaluation oracle: search the empty cells' assignments for one
that makes blue win, i.e. find blue's winning move set.

The balanced NAND-tree formula itself is provided both classically and as
a lifted oracle (NAND trees are how game trees are encoded in [2]).
"""

from __future__ import annotations

import math

from ...core.builder import Circ
from ...lib.amplitude import (
    grover_iteration,
    phase_oracle_from_bit_oracle,
    prepare_uniform,
)
from ...lifting.cbool import all_of
from ...lifting.template import Template, build_circuit, unpack
from .flood_fill import make_hex_winner_template
from .hex_board import blue_wins, cell_index


def nand_formula_value(leaves: list[bool], fanin: int = 2) -> bool:
    """Classical balanced NAND-tree evaluation (leaf count a power of fanin)."""
    layer = list(leaves)
    while len(layer) > 1:
        layer = [
            not all(layer[i:i + fanin])
            for i in range(0, len(layer), fanin)
        ]
    return layer[0]


def make_nand_formula_template(depth: int, share: bool = False) -> Template:
    """The lifted balanced binary NAND formula on 2**depth leaves."""

    @build_circuit(share=share)
    def formula(leaves):
        layer = list(leaves)
        while len(layer) > 1:
            layer = [
                ~all_of(layer[i:i + 2]) for i in range(0, len(layer), 2)
            ]
        return layer[0]

    return formula


def winning_move_search(qc: Circ, rows: int, cols: int,
                        partial_board: list[bool | None],
                        iterations: int | None = None):
    """Grover search for an assignment of the empty cells that wins.

    ``partial_board`` holds True/False for placed stones and None for
    empty cells; the search space is the assignments of the None cells.
    Returns the register of empty-cell qubits (measure to read the move).
    """
    empties = [i for i, v in enumerate(partial_board) if v is None]
    if not empties:
        raise ValueError("no empty cells to search over")
    winner_template = make_hex_winner_template(rows, cols)
    winner_circuit = unpack(winner_template)

    def bit_oracle(qc2, data):
        # Assemble the full board: placed stones are generation-time
        # parameters, empty cells are the searched qubits.
        board = []
        slot = 0
        for value in partial_board:
            if value is None:
                board.append(data[slot])
                slot += 1
            else:
                board.append(value)
        return winner_circuit(qc2, board)

    search = [qc.qinit_qubit(False) for _ in range(len(empties))]
    prepare_uniform(qc, search)
    if iterations is None:
        # ~ (pi/4) sqrt(N / M): assume a single winning assignment family.
        iterations = max(1, int(round(math.pi / 4 *
                                      math.sqrt(2 ** len(empties)))))
    for _ in range(iterations):
        grover_iteration(
            qc, search,
            lambda q, d: phase_oracle_from_bit_oracle(q, bit_oracle, d),
        )
    return search, empties


def count_winning_assignments(rows: int, cols: int,
                              partial_board: list[bool | None]) -> int:
    """Classical exhaustive count (ground truth for the search tests)."""
    empties = [i for i, v in enumerate(partial_board) if v is None]
    wins = 0
    for mask in range(1 << len(empties)):
        board = list(partial_board)
        for bit, index in enumerate(empties):
            board[index] = bool((mask >> bit) & 1)
        if blue_wins(board, rows, cols):
            wins += 1
    return wins
