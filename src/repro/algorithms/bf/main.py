"""Boolean Formula CLI: oracle gate counts and the winning-move demo."""

from __future__ import annotations

import argparse

from ...core.qdata import qubit
from ...lifting.template import unpack
from ...program import Program
from ..runner import add_execution_arguments, emit, telemetry_session
from .flood_fill import make_hex_winner_template
from .hex_board import blue_wins, random_final_position


def hex_oracle_program(rows: int, cols: int, share: bool = False) -> Program:
    """The lifted Hex-winner oracle for an R x C board, as a Program."""
    template = make_hex_winner_template(rows, cols, share=share)
    circuit_fn = unpack(template)

    def circ(qc, board):
        return board, circuit_fn(qc, board)

    # The unshared template leaves its scratch wires live on purpose; they
    # are part of the oracle's output, so silence the dangling-wire report.
    return Program.capture(
        circ, [qubit] * (rows * cols),
        name=f"hex-oracle({rows}x{cols})", on_extra="ignore",
    )


def hex_oracle_circuit(rows: int, cols: int, share: bool = False):
    """The Hex oracle as a bare BCircuit (legacy shim)."""
    return hex_oracle_program(rows, cols, share=share).bcircuit


def hex_oracle_gatecount(rows: int, cols: int, share: bool = False) -> int:
    """Total gates of the Hex flood-fill oracle (paper: 2.8M at spec size)."""
    return hex_oracle_program(rows, cols, share=share).total_gates()


def check_oracle(rows: int, cols: int, seed: int,
                 share: bool = False) -> tuple[list[bool], bool, bool]:
    """Evaluate the oracle circuit on a random final position.

    The generated circuit is reversible boolean logic, so the
    ``"classical"`` backend evaluates it exactly; the result is compared
    against the classical reference :func:`blue_wins`.  Returns
    ``(board, oracle_says, reference)``.
    """
    board = random_final_position(rows, cols, seed)
    program = hex_oracle_program(rows, cols, share=share)
    bc = program.bcircuit
    in_values = {
        wire: value
        for (wire, _), value in zip(bc.circuit.inputs, board)
    }
    result = program.run("classical", in_values=in_values)
    # The oracle's answer wire is the last circuit output (after the
    # pass-through board register).
    answer_wire = bc.circuit.outputs[-1][0]
    return board, result.bits[answer_wire], blue_wins(board, rows, cols)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bf", description="Boolean Formula / Hex oracle"
    )
    parser.add_argument("--rows", type=int, default=3)
    parser.add_argument("--cols", type=int, default=3)
    parser.add_argument("--share", action="store_true",
                        help="enable common-subexpression sharing")
    parser.add_argument("--check", type=int, metavar="SEED", default=None,
                        help="evaluate a random final position on the "
                        "classical backend and compare with the reference")
    add_execution_arguments(parser, default_format="gatecount")
    args = parser.parse_args(argv)

    if args.check is not None:
        with telemetry_session(args):
            board, oracle_says, reference = check_oracle(
                args.rows, args.cols, args.check, share=args.share
            )
            print("board:", "".join("B" if b else "R" for b in board))
            print("oracle says blue wins:", oracle_says)
            print("reference blue wins:  ", reference)
        return 0 if oracle_says == reference else 1
    program = hex_oracle_program(args.rows, args.cols, share=args.share)
    return emit(program, args)


if __name__ == "__main__":
    raise SystemExit(main())
