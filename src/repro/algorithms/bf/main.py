"""Boolean Formula CLI: oracle gate counts and the winning-move demo."""

from __future__ import annotations

import argparse

from ...core.builder import build
from ...core.qdata import qubit
from ...lifting.template import unpack
from ...output.gatecount import format_gatecount
from ...transform import aggregate_gate_count, total_gates
from .flood_fill import make_hex_winner_template
from .hex_board import blue_wins, random_final_position


def hex_oracle_circuit(rows: int, cols: int, share: bool = False):
    """Build the lifted Hex-winner oracle circuit for an R x C board."""
    template = make_hex_winner_template(rows, cols, share=share)
    circuit_fn = unpack(template)

    def circ(qc, board):
        return board, circuit_fn(qc, board)

    return build(circ, [qubit] * (rows * cols))[0]


def hex_oracle_gatecount(rows: int, cols: int, share: bool = False) -> int:
    """Total gates of the Hex flood-fill oracle (paper: 2.8M at spec size)."""
    return total_gates(
        aggregate_gate_count(hex_oracle_circuit(rows, cols, share=share))
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bf", description="Boolean Formula / Hex oracle"
    )
    parser.add_argument("--rows", type=int, default=3)
    parser.add_argument("--cols", type=int, default=3)
    parser.add_argument("--share", action="store_true",
                        help="enable common-subexpression sharing")
    parser.add_argument("--check", type=int, metavar="SEED", default=None,
                        help="evaluate a random final position classically")
    args = parser.parse_args(argv)

    if args.check is not None:
        board = random_final_position(args.rows, args.cols, args.check)
        print("board:", "".join("B" if b else "R" for b in board))
        print("blue wins:", blue_wins(board, args.rows, args.cols))
        return 0
    bc = hex_oracle_circuit(args.rows, args.cols, share=args.share)
    print(format_gatecount(bc))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
