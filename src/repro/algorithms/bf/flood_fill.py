"""The lifted Hex-winner oracle (paper Section 4.6.1).

"our implementation of the Boolean Formula algorithm uses an oracle that
determines the winner for a given final position in the game of Hex.  It
uses a flood-fill algorithm, which we implemented as a functional program
and converted to a circuit using the circuit lifting operation.  The
resulting oracle consists of 2.8 million gates."

The functional flood fill: start from the blue cells of the left column
and expand the reachable set once per iteration; after rows*cols
iterations the set is stable (a chain can involve every cell).  Each
iteration is pure boolean combinational logic, so the whole function lifts
directly with ``build_circuit``.
"""

from __future__ import annotations

from ...lifting.cbool import any_of, bool_and, bool_or
from ...lifting.template import Template, build_circuit
from .hex_board import cell_index, neighbors


def make_hex_winner_template(rows: int, cols: int, iterations: int | None = None,
                             share: bool = False) -> Template:
    """The "blue wins" oracle for an R x C board, ready to lift.

    ``iterations`` defaults to the worst case (every cell).  With
    ``share=False`` (the default, matching Template Haskell) each
    iteration re-materializes the whole reachability register, which is
    what blows the gate count into the paper's millions at full board
    sizes.
    """
    if iterations is None:
        iterations = rows * cols

    @build_circuit(share=share)
    def hex_winner(board):
        # reach[i]: blue-reachable from the left edge in <= k steps.
        reach = [
            bool_and(board[cell_index(r, c, cols)], c == 0)
            for r in range(rows)
            for c in range(cols)
        ]
        for _ in range(iterations):
            new_reach = []
            for r in range(rows):
                for c in range(cols):
                    i = cell_index(r, c, cols)
                    nearby = any_of(
                        reach[cell_index(nr, nc, cols)]
                        for (nr, nc) in neighbors(r, c, rows, cols)
                    )
                    new_reach.append(
                        bool_and(board[i], bool_or(reach[i], nearby))
                    )
            reach = new_reach
        return any_of(
            reach[cell_index(r, cols - 1, cols)] for r in range(rows)
        )

    return hex_winner
