"""Boolean Formula / Hex (Ambainis et al.)."""

from .flood_fill import make_hex_winner_template
from .formula_walk import (
    count_winning_assignments,
    make_nand_formula_template,
    nand_formula_value,
    winning_move_search,
)
from .hex_board import blue_wins, neighbors, random_final_position
from .main import hex_oracle_circuit, hex_oracle_gatecount

__all__ = [
    "make_hex_winner_template",
    "hex_oracle_circuit",
    "hex_oracle_gatecount",
    "blue_wins",
    "neighbors",
    "random_final_position",
    "nand_formula_value",
    "make_nand_formula_template",
    "winning_move_search",
    "count_winning_assignments",
]
