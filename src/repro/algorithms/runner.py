"""Shared CLI plumbing: one circuit, many execution targets.

The paper's ``tf`` executable lets the user "select different output
formats" from one circuit generator (Section 5.2).  This module gives all
seven algorithm CLIs that surface uniformly, routed through the backend
registry: an ``-f/--format`` choice covering the printers (``ascii``,
``gatecount``), the interchange formats (``quipper``, ``qasm``), the
``resources`` backend report, and ``run`` -- shot-based sampling on a
named simulation backend (``--backend``, ``--shots``, ``--seed``).
"""

from __future__ import annotations

import argparse

from ..backends import format_resource_report, get_backend
from ..core.circuit import BCircuit
from ..io import bcircuit_to_qasm, dumps
from ..output.ascii import format_bcircuit
from ..output.gatecount import format_gatecount

#: All formats `emit` understands.
FORMATS = ("ascii", "gatecount", "resources", "quipper", "qasm", "run")


def add_execution_arguments(
    parser: argparse.ArgumentParser,
    default_format: str = "gatecount",
    formats: tuple[str, ...] = FORMATS,
) -> None:
    """Add the uniform ``-f``/``--backend``/``--shots``/``--seed`` flags."""
    parser.add_argument(
        "-f", "--format", dest="fmt", default=default_format,
        choices=formats, help="output format / execution mode",
    )
    parser.add_argument(
        "--backend", default="statevector",
        help="backend name for -f run (see repro.backends)",
    )
    parser.add_argument(
        "--shots", type=int, default=1024,
        help="samples to draw with -f run",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed for -f run",
    )


def format_counts(counts: dict[str, int]) -> str:
    """Render a counts dictionary, most frequent outcome first."""
    total = sum(counts.values())
    lines = [f"{total} shots:"]
    for key in sorted(counts, key=lambda k: (-counts[k], k)):
        lines.append(f"  {key}  {counts[key]:6d}  ({counts[key] / total:.3f})")
    return "\n".join(lines)


def emit(bc: BCircuit, args: argparse.Namespace) -> int:
    """Render or execute *bc* according to the parsed uniform flags."""
    if args.fmt == "ascii":
        print(format_bcircuit(bc))
    elif args.fmt == "gatecount":
        print(format_gatecount(bc))
    elif args.fmt == "resources":
        print(format_resource_report(get_backend("resources").run(bc)))
    elif args.fmt == "quipper":
        print(dumps(bc), end="")
    elif args.fmt == "qasm":
        print(bcircuit_to_qasm(bc), end="")
    elif args.fmt == "run":
        result = get_backend(args.backend).run(
            bc, shots=args.shots, seed=args.seed
        )
        if result.counts is None:
            print(
                f"backend {args.backend!r} does not produce counts; "
                "use -f resources for cost reports",
            )
            return 2
        print(format_counts(result.counts))
    else:
        raise ValueError(f"unknown format {args.fmt!r}")
    return 0
