"""Shared CLI plumbing: one Program, many execution targets.

The paper's ``tf`` executable lets the user "select different output
formats" from one circuit generator (Section 5.2).  This module gives all
seven algorithm CLIs that surface uniformly, routed through the fluent
:class:`~repro.program.Program` pipeline: an ``-f/--format`` choice
covering the printers (``ascii``, ``gatecount``), the interchange formats
(``quipper``, ``qasm``), the ``resources`` backend report, and ``run`` --
shot-based sampling on a named simulation backend (``--backend``,
``--shots``, ``--seed``).  The optional shared ``-g/--gate-base`` flag
maps onto ``program.transform(...)``, so a decomposition plus a count is
one fused traversal, not two rewrites.
"""

from __future__ import annotations

import argparse

from ..backends import format_resource_report
from ..core.circuit import BCircuit
from ..program import Program

#: All formats `emit` understands.
FORMATS = ("ascii", "gatecount", "resources", "quipper", "qasm", "run")


def add_execution_arguments(
    parser: argparse.ArgumentParser,
    default_format: str | None = "gatecount",
    formats: tuple[str, ...] = FORMATS,
    default_shots: int | None = 1024,
) -> None:
    """Add the uniform ``-f``/``--backend``/``--shots``/``--seed`` flags.

    A CLI with a non-circuit default action (qls's analytic demo)
    passes ``default_format=None`` / ``default_shots=None`` and treats
    an absent ``-f`` as its legacy behavior.
    """
    parser.add_argument(
        "-f", "--format", dest="fmt", default=default_format,
        choices=formats, help="output format / execution mode",
    )
    parser.add_argument(
        "--backend", default="statevector",
        help="backend name for -f run (see repro.backends)",
    )
    parser.add_argument(
        "--shots", type=int, default=default_shots,
        help="samples to draw with -f run",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed for -f run",
    )
    parser.add_argument(
        "-O", "--optimize", dest="optimize", action="store_true",
        help="peephole-optimize the circuit before output/execution "
             "(after any -g decomposition; see repro.optimize)",
    )


def add_gate_base_argument(
    parser: argparse.ArgumentParser, default: str | None = None
) -> None:
    """Add the shared ``-g/--gate-base`` decomposition flag."""
    parser.add_argument(
        "-g", dest="gate_base", default=default,
        choices=("none", "toffoli", "binary"),
        help="decompose into a gate base first (fused transformer pass)",
    )


def apply_gate_base(program: Program, gate_base: str | None) -> Program:
    """Chain the selected gate-base decomposition onto *program*."""
    if gate_base in (None, "none"):
        return program
    return program.transform(gate_base)


def apply_optimize(program: Program, optimize: bool) -> Program:
    """Chain the peephole optimizer onto *program* when ``-O`` was given."""
    return program.optimize() if optimize else program


def format_counts(counts: dict[str, int]) -> str:
    """Render a counts dictionary, most frequent outcome first."""
    total = sum(counts.values())
    lines = [f"{total} shots:"]
    for key in sorted(counts, key=lambda k: (-counts[k], k)):
        lines.append(f"  {key}  {counts[key]:6d}  ({counts[key] / total:.3f})")
    return "\n".join(lines)


def emit(program: Program | BCircuit, args: argparse.Namespace) -> int:
    """Render or execute a Program according to the parsed uniform flags.

    Accepts a bare :class:`~repro.core.circuit.BCircuit` for backward
    compatibility and wraps it on the spot.
    """
    if isinstance(program, BCircuit):
        program = Program.from_bcircuit(program)
    program = apply_optimize(program, getattr(args, "optimize", False))
    if args.fmt == "ascii":
        print(program.ascii())
    elif args.fmt == "gatecount":
        print(program.gatecount())
    elif args.fmt == "resources":
        print(format_resource_report(program.run(backend="resources")))
    elif args.fmt == "quipper":
        print(program.dumps(), end="")
    elif args.fmt == "qasm":
        print(program.qasm(), end="")
    elif args.fmt == "run":
        result = program.run(
            backend=args.backend, shots=args.shots, seed=args.seed
        )
        if result.counts is None:
            print(
                f"backend {args.backend!r} does not produce counts; "
                "use -f resources for cost reports",
            )
            return 2
        print(format_counts(result.counts))
    else:
        raise ValueError(f"unknown format {args.fmt!r}")
    return 0
