"""Shared CLI plumbing: one Program, many execution targets.

The paper's ``tf`` executable lets the user "select different output
formats" from one circuit generator (Section 5.2).  This module gives all
seven algorithm CLIs that surface uniformly, routed through the fluent
:class:`~repro.program.Program` pipeline: an ``-f/--format`` choice
covering the printers (``ascii``, ``gatecount``), the interchange formats
(``quipper``, ``qasm``), the ``resources`` backend report, and ``run`` --
shot-based sampling on a named simulation backend (``--backend``,
``--shots``, ``--seed``).  The optional shared ``-g/--gate-base`` flag
maps onto ``program.transform(...)``, so a decomposition plus a count is
one fused traversal, not two rewrites.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from ..backends import format_resource_report
from ..core.circuit import BCircuit
from ..core.errors import QuipperError
from ..program import Program

#: All formats `emit` understands.
FORMATS = ("ascii", "gatecount", "resources", "quipper", "qasm", "run")


def add_execution_arguments(
    parser: argparse.ArgumentParser,
    default_format: str | None = "gatecount",
    formats: tuple[str, ...] = FORMATS,
    default_shots: int | None = 1024,
) -> None:
    """Add the uniform ``-f``/``--backend``/``--shots``/``--seed`` flags.

    A CLI with a non-circuit default action (qls's analytic demo)
    passes ``default_format=None`` / ``default_shots=None`` and treats
    an absent ``-f`` as its legacy behavior.
    """
    parser.add_argument(
        "-f", "--format", dest="fmt", default=default_format,
        choices=formats, help="output format / execution mode",
    )
    parser.add_argument(
        "--backend", default="statevector",
        help="backend name for -f run (see repro.backends)",
    )
    parser.add_argument(
        "--shots", type=int, default=default_shots,
        help="samples to draw with -f run",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed for -f run",
    )
    parser.add_argument(
        "-O", "--optimize", dest="optimize", action="store_true",
        help="peephole-optimize the circuit before output/execution "
             "(after any -g decomposition; see repro.optimize)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record pipeline telemetry and write it to FILE in Chrome "
             "trace_event JSON (load in chrome://tracing / ui.perfetto.dev)",
    )
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="FILE",
        help="record pipeline telemetry; print the profile table to "
             "stderr, or write machine-readable JSONL to FILE",
    )
    parser.add_argument(
        "-i", "--input", metavar="FILE", default=None,
        help="load the circuit from FILE instead of generating it: "
             ".qasm files parse as OpenQASM 2, anything else as "
             "Quipper-ASCII interchange text",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print a one-line run summary "
             "(gates/depth/wall/cache_hit) to stderr",
    )


def add_gate_base_argument(
    parser: argparse.ArgumentParser, default: str | None = None
) -> None:
    """Add the shared ``-g/--gate-base`` decomposition flag."""
    parser.add_argument(
        "-g", dest="gate_base", default=default,
        choices=("none", "toffoli", "binary"),
        help="decompose into a gate base first (fused transformer pass)",
    )


def apply_gate_base(program: Program, gate_base: str | None) -> Program:
    """Chain the selected gate-base decomposition onto *program*."""
    if gate_base in (None, "none"):
        return program
    return program.transform(gate_base)


def apply_optimize(program: Program, optimize: bool) -> Program:
    """Chain the peephole optimizer onto *program* when ``-O`` was given."""
    return program.optimize() if optimize else program


def summary_line(rec, program: Program | None = None) -> str:
    """The one-line per-run summary ``-v`` prints to stderr."""
    gates: object = "-"
    depth: object = "-"
    if program is not None:
        try:
            gates = program.total_gates()
            depth = program.depth()
        except Exception:
            pass  # non-circuit flows still get wall/cache numbers
    rate = rec.cache_hit_rate()
    hit = "-" if rate is None else f"{rate:.1%}"
    return (f"gates={gates} depth={depth} "
            f"wall={rec.wall_time:.3f}s cache_hit={hit}")


@contextlib.contextmanager
def telemetry_session(args: argparse.Namespace,
                      program: Program | None = None):
    """Capture telemetry for one CLI action per ``--trace/--profile/-v``.

    Yields the active :class:`~repro.obs.Recorder`, or ``None`` when no
    telemetry flag was given (recording stays disabled: the gate hot
    path keeps its no-op guards).  On exit the requested sinks fire:
    ``--trace FILE`` writes a Chrome trace, ``--profile`` prints the
    human table to stderr (``--profile FILE`` writes JSONL instead),
    and ``-v`` prints the one-line :func:`summary_line`.
    """
    trace = getattr(args, "trace", None)
    profile = getattr(args, "profile", None)
    verbose = getattr(args, "verbose", False)
    if trace is None and profile is None and not verbose:
        yield None
        return
    from .. import obs

    with obs.capture() as rec:
        yield rec
    if trace is not None:
        obs.dump_chrome_trace(rec, trace)
    if profile is not None:
        if profile == "-":
            print(obs.format_summary(rec), file=sys.stderr)
        else:
            with open(profile, "w", encoding="utf-8") as fp:
                obs.write_jsonl(rec, fp)
    if verbose:
        print(summary_line(rec, program), file=sys.stderr)


def load_program(path: str) -> Program:
    """Load a circuit file as a Program, dispatching on the extension.

    ``.qasm`` parses as OpenQASM 2 (:meth:`Program.from_qasm`); anything
    else is read as Quipper-ASCII interchange text
    (:meth:`Program.loads`).  Parsing stays lazy either way.
    """
    if path.endswith(".qasm"):
        return Program.from_qasm(path, name=path)

    def make():
        from ..io import loads as _loads

        with open(path, "r", encoding="utf-8") as handle:
            return _loads(handle.read()), None

    return Program(make, name=path, stage="parse")


def format_counts(counts: dict[str, int]) -> str:
    """Render a counts dictionary, most frequent outcome first."""
    total = sum(counts.values())
    lines = [f"{total} shots:"]
    for key in sorted(counts, key=lambda k: (-counts[k], k)):
        lines.append(f"  {key}  {counts[key]:6d}  ({counts[key] / total:.3f})")
    return "\n".join(lines)


def emit(program: Program | BCircuit, args: argparse.Namespace) -> int:
    """Render or execute a Program according to the parsed uniform flags.

    Accepts a bare :class:`~repro.core.circuit.BCircuit` for backward
    compatibility and wraps it on the spot.  When ``-i/--input FILE``
    was given the generated program is replaced by the file's circuit
    (see :func:`load_program`), so a ``.qasm`` export feeds the exact
    same pipeline -- ``-g``, ``-O``, every format -- as a generated
    circuit.  Telemetry flags (``--trace`` / ``--profile`` / ``-v``)
    capture the whole action -- generation, transformation, and
    execution all happen lazily inside the session, so the profile
    covers the full pipeline.
    """
    if isinstance(program, BCircuit):
        program = Program.from_bcircuit(program)
    if getattr(args, "input", None):
        # The generated program was never built (generation is lazy), so
        # swapping in the file costs nothing; -g was chained before emit
        # by the CLI, so re-chain it onto the loaded circuit here.
        program = apply_gate_base(
            load_program(args.input), getattr(args, "gate_base", None)
        )
    program = apply_optimize(program, getattr(args, "optimize", False))
    try:
        with telemetry_session(args, program):
            return _emit(program, args)
    except BrokenPipeError:  # e.g. `... -f ascii | head`
        return 0
    except (QuipperError, ValueError, ArithmeticError, IndexError,
            KeyError) as exc:
        # Circuit generation is lazy, so invalid size/parameter arguments
        # only surface here, mid-emit.  A CLI should answer bad input
        # with a one-line diagnostic and exit status 2 (the argparse
        # convention), not a traceback.
        prog = sys.argv[0].rsplit("/", 1)[-1] or "repro"
        message = str(exc) or type(exc).__name__
        print(f"{prog}: error: {message}", file=sys.stderr)
        return 2


def _emit(program: Program, args: argparse.Namespace) -> int:
    if args.fmt == "ascii":
        print(program.ascii())
    elif args.fmt == "gatecount":
        print(program.gatecount())
    elif args.fmt == "resources":
        print(format_resource_report(program.run(backend="resources")))
    elif args.fmt == "quipper":
        print(program.dumps(), end="")
    elif args.fmt == "qasm":
        print(program.qasm(), end="")
    elif args.fmt == "run":
        result = program.run(
            backend=args.backend, shots=args.shots, seed=args.seed
        )
        if result.counts is None:
            print(
                f"backend {args.backend!r} does not produce counts; "
                "use -f resources for cost reports",
            )
            return 2
        print(format_counts(result.counts))
    else:
        raise ValueError(f"unknown format {args.fmt!r}")
    return 0
