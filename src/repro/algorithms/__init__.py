"""The seven algorithm implementations of the paper's evaluation.

"We put Quipper to the test by implementing seven non-trivial quantum
algorithms from the literature" (Section 1):

* :mod:`~repro.algorithms.bwt` -- Binary Welded Tree [Childs et al.]
* :mod:`~repro.algorithms.bf`  -- Boolean Formula / Hex [Ambainis et al.]
* :mod:`~repro.algorithms.cl`  -- Class Number [Hallgren]
* :mod:`~repro.algorithms.gse` -- Ground State Estimation [Whitfield et al.]
* :mod:`~repro.algorithms.qls` -- Quantum Linear Systems [Harrow et al.]
* :mod:`~repro.algorithms.usv` -- Unique Shortest Vector [Regev]
* :mod:`~repro.algorithms.tf`  -- Triangle Finding [Magniez et al.]
"""
