"""Class Number (Hallgren): regulator estimation by period finding."""

from .regulator import (
    estimate_regulator,
    make_mod_template,
    mod_oracle_enumerated,
    period_finding_circuit,
    recover_period,
)

# Import the classical number theory *after* the .regulator submodule so
# the ``regulator`` function wins the package-attribute name collision.
from .number_field import (  # noqa: E402
    continued_fraction_sqrt,
    convergents_from_fraction,
    ideal_distances,
    is_squarefree,
    pell_fundamental_solution,
    regulator,
)

__all__ = [
    "regulator",
    "pell_fundamental_solution",
    "continued_fraction_sqrt",
    "convergents_from_fraction",
    "ideal_distances",
    "is_squarefree",
    "estimate_regulator",
    "period_finding_circuit",
    "mod_oracle_enumerated",
    "make_mod_template",
    "recover_period",
]
