"""Real quadratic number fields: the Class Number algorithm's substrate.

The paper's CL algorithm (Hallgren [8]) approximates "the class group of a
real quadratic number field"; its quantum core is period estimation of a
pseudo-periodic function whose period is the field's *regulator*
R = ln(eps), the logarithm of the fundamental unit eps = x + y*sqrt(D).

This module supplies the classical number theory: the continued-fraction
expansion of sqrt(D), the fundamental solution of Pell's equation
x^2 - D y^2 = +-1 (whence the regulator), and reduced-ideal distance
helpers -- everything the quantum part is checked against.
"""

from __future__ import annotations

import math
from fractions import Fraction


def is_squarefree(d: int) -> bool:
    if d < 2:
        return False
    k = 2
    while k * k <= d:
        if d % (k * k) == 0:
            return False
        k += 1
    return True


def continued_fraction_sqrt(d: int, limit: int = 10_000) -> list[int]:
    """The periodic continued fraction [a0; a1, a2, ...] of sqrt(D).

    Returns one full period (starting with a0 = floor(sqrt(D))); the
    expansion of a quadratic irrational is eventually periodic with the
    period starting immediately after a0.
    """
    a0 = math.isqrt(d)
    if a0 * a0 == d:
        raise ValueError("D must not be a perfect square")
    terms = [a0]
    m, denom, a = 0, 1, a0
    for _ in range(limit):
        m = denom * a - m
        denom = (d - m * m) // denom
        a = (a0 + m) // denom
        terms.append(a)
        if a == 2 * a0:  # the period of sqrt(D) ends with 2*a0
            return terms
    raise RuntimeError("continued fraction period not found")


def pell_fundamental_solution(d: int) -> tuple[int, int]:
    """The fundamental solution (x, y) of x^2 - D y^2 = +-1.

    Computed from the continued-fraction convergents of sqrt(D); this is
    the classical (exponential-output) computation the quantum algorithm
    beats, since x and y can have exponentially many digits.
    """
    terms = continued_fraction_sqrt(d)
    # Convergents over one period give the fundamental +-1 solution.
    num_prev, num = 1, terms[0]
    den_prev, den = 0, 1
    for a in terms[1:-1]:
        num, num_prev = a * num + num_prev, num
        den, den_prev = a * den + den_prev, den
    return num, den


def regulator(d: int) -> float:
    """The regulator R = ln(x + y sqrt(D)) of Q(sqrt(D)).

    Uses the fundamental solution of Pell's equation; if it solves
    x^2 - Dy^2 = -1, the fundamental unit has norm -1 and the given
    (x, y) already generate the unit group.
    """
    x, y = pell_fundamental_solution(d)
    return math.log(x + y * math.sqrt(d))


def ideal_distances(d: int, count: int) -> list[float]:
    """Distances of the first reduced principal ideals along the cycle.

    Hallgren's function maps x to the reduced ideal of largest distance
    <= x; the distances delta_i = ln((m_i + sqrt(D)) / denom-ish) advance
    along the continued-fraction recurrence and wrap modulo the
    regulator.  Used to build the pseudo-periodic oracle grid.
    """
    a0 = math.isqrt(d)
    m, denom = 0, 1
    distance = 0.0
    out = [0.0]
    for _ in range(count - 1):
        a = (a0 + m) // denom
        m_next = denom * a - m
        denom_next = (d - m_next * m_next) // denom
        # One reduction step advances the distance by ln|(m+sqrt D)/denom'|.
        distance += math.log((m_next + math.sqrt(d)) / abs(denom_next))
        out.append(distance)
        m, denom = m_next, denom_next
    return out


def convergents_from_fraction(numerator: int,
                              denominator: int) -> list[Fraction]:
    """All continued-fraction convergents of numerator/denominator.

    The classical post-processing of period finding: the measured value
    k ~ j * 2^m / S is fed to this to recover the period S.
    """
    a, b = numerator, denominator
    coefficients = []
    while b:
        coefficients.append(a // b)
        a, b = b, a % b
    convergents: list[Fraction] = []
    num_prev, num = 1, coefficients[0]
    den_prev, den = 0, 1
    convergents.append(Fraction(num, den))
    for coeff in coefficients[1:]:
        num, num_prev = coeff * num + num_prev, num
        den, den_prev = coeff * den + den_prev, den
        convergents.append(Fraction(num, den))
    return convergents
