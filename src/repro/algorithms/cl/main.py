"""Class Number CLI: classical vs quantum regulator estimation."""

from __future__ import annotations

import argparse

from ...program import Program
from ..runner import add_execution_arguments, emit, telemetry_session
from .number_field import (
    continued_fraction_sqrt,
    is_squarefree,
    pell_fundamental_solution,
    regulator,
)
from .regulator import estimate_regulator, period_finding_circuit


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cl", description="Class Number: regulator estimation"
    )
    parser.add_argument("-d", type=int, default=13,
                        help="squarefree discriminant D")
    parser.add_argument("--width", type=int, default=6,
                        help="period-finding register width")
    parser.add_argument("--samples", type=int, default=12)
    add_execution_arguments(
        parser, default_format="estimate",
        formats=("estimate", "ascii", "gatecount", "resources",
                 "quipper", "qasm", "run"),
    )
    args = parser.parse_args(argv)

    if not is_squarefree(args.d):
        parser.error(f"D={args.d} is not squarefree")
    if args.fmt != "estimate":
        # The default grid spacing of estimate_regulator (R/5) puts five
        # grid cells in one period, whatever the discriminant.
        program = Program.capture(
            lambda qc: period_finding_circuit(qc, 5, args.width),
            name=f"cl(width={args.width})",
        )
        return emit(program, args)
    with telemetry_session(args):
        x, y = pell_fundamental_solution(args.d)
        print(f"Q(sqrt({args.d})): continued fraction",
              continued_fraction_sqrt(args.d))
        print(f"fundamental Pell solution: x={x}, y={y}")
        exact = regulator(args.d)
        print(f"classical regulator: {exact:.6f}")
        estimate = estimate_regulator(
            args.d, width=args.width, samples=args.samples
        )
        print(f"quantum estimate:    {estimate:.6f}"
              f"  (relative error {abs(estimate - exact) / exact:.3%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
