"""Ground State Estimation (Whitfield-Biamonte-Aspuru-Guzik)."""

from .hamiltonian import (
    H2_HAMILTONIAN,
    exact_ground_energy,
    exact_ground_state,
    hamiltonian_matrix,
    jordan_wigner_quadratic,
)
from .main import energy_from_phase, estimate_ground_energy, gse_circuit

__all__ = [
    "H2_HAMILTONIAN",
    "exact_ground_energy",
    "exact_ground_state",
    "hamiltonian_matrix",
    "jordan_wigner_quadratic",
    "gse_circuit",
    "energy_from_phase",
    "estimate_ground_energy",
]
