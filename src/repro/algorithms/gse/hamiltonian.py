"""Molecular Hamiltonians for Ground State Estimation.

The paper's GSE algorithm (Whitfield, Biamonte, Aspuru-Guzik [23])
computes "the ground state energy level of a particular molecule" by phase
estimation of the time evolution under a second-quantized electronic
Hamiltonian mapped to qubits.

This module provides the substrate: a Jordan-Wigner transformation for
quadratic fermionic Hamiltonians, the standard two-qubit reduced H2
(molecular hydrogen) Hamiltonian at equilibrium bond length, and exact
diagonalization helpers the tests compare against.
"""

from __future__ import annotations

import numpy as np

from ...lib.simulation import Hamiltonian

#: The minimal-basis H2 Hamiltonian at R = 0.7414 Angstrom, reduced to two
#: qubits (coefficients in Hartree; O'Malley et al., PRX 6, 031007).
H2_HAMILTONIAN: Hamiltonian = [
    (-0.4804, {}),
    (+0.3435, {0: "Z"}),
    (-0.4347, {1: "Z"}),
    (+0.5716, {0: "Z", 1: "Z"}),
    (+0.0910, {0: "X", 1: "X"}),
    (+0.0910, {0: "Y", 1: "Y"}),
]

_PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def hamiltonian_matrix(hamiltonian: Hamiltonian, n_qubits: int) -> np.ndarray:
    """The dense matrix of a Pauli-string Hamiltonian.

    Qubit 0 is the most significant tensor factor, matching the
    simulator's axis convention.
    """
    dim = 1 << n_qubits
    total = np.zeros((dim, dim), dtype=complex)
    for coeff, pauli in hamiltonian:
        term = np.eye(1, dtype=complex)
        for q in range(n_qubits):
            term = np.kron(term, _PAULI[pauli.get(q, "I")])
        total += coeff * term
    return total


def exact_ground_energy(hamiltonian: Hamiltonian, n_qubits: int) -> float:
    """The exact lowest eigenvalue (the answer GSE should estimate)."""
    return float(
        np.linalg.eigvalsh(hamiltonian_matrix(hamiltonian, n_qubits))[0]
    )


def exact_ground_state(hamiltonian: Hamiltonian,
                       n_qubits: int) -> np.ndarray:
    """The exact ground-state vector."""
    values, vectors = np.linalg.eigh(
        hamiltonian_matrix(hamiltonian, n_qubits)
    )
    return vectors[:, 0]


def jordan_wigner_quadratic(
    hopping: np.ndarray,
) -> Hamiltonian:
    """Jordan-Wigner transform of a quadratic fermionic Hamiltonian.

    Input: a real symmetric matrix h with H = sum_{pq} h_pq a_p^dag a_q.
    Output: the qubit Hamiltonian as Pauli strings, using

        a_p^dag a_p           -> (I - Z_p) / 2
        a_p^dag a_q + h.c.    -> (X_p Z.. X_q + Y_p Z.. Y_q) / 2   (p < q)

    with the Z-string on the qubits strictly between p and q.
    """
    h = np.asarray(hopping, dtype=float)
    if h.shape[0] != h.shape[1] or not np.allclose(h, h.T):
        raise ValueError("hopping matrix must be square and symmetric")
    n = h.shape[0]
    terms: Hamiltonian = []
    identity_coeff = 0.0
    for p in range(n):
        if h[p, p] != 0.0:
            identity_coeff += h[p, p] / 2
            terms.append((-h[p, p] / 2, {p: "Z"}))
    if identity_coeff:
        terms.insert(0, (identity_coeff, {}))
    for p in range(n):
        for q in range(p + 1, n):
            if h[p, q] == 0.0:
                continue
            string = {k: "Z" for k in range(p + 1, q)}
            terms.append((h[p, q] / 2, {**string, p: "X", q: "X"}))
            terms.append((h[p, q] / 2, {**string, p: "Y", q: "Y"}))
    return terms
