"""Ground State Estimation: phase estimation of Trotterized evolution.

The circuit prepares a reference state with good ground-state overlap
(the Hartree-Fock determinant), phase-estimates ``U = exp(-iHt)`` using
Trotterized, controlled Pauli exponentials, and converts the measured
phase back to an energy.  ``t`` is chosen so the spectrum fits in one
phase period (no aliasing).
"""

from __future__ import annotations

import argparse
import math

from ...backends import marginal_counts
from ...core.builder import Circ
from ...core.qdata import qdata_leaves
from ...lib.phase_estimation import phase_estimation
from ...lib.simulation import Hamiltonian, trotterized_evolution
from ...program import Program
from ..runner import add_execution_arguments, emit, telemetry_session
from .hamiltonian import H2_HAMILTONIAN, exact_ground_energy


def gse_circuit(qc: Circ, hamiltonian: Hamiltonian, n_qubits: int,
                precision: int, t: float, trotter_steps: int,
                reference_state: int):
    """The GSE circuit; returns the phase-estimate register.

    ``reference_state`` is the computational-basis determinant used as
    the initial state (its ground-state overlap sets the success
    probability, as in the GSE literature).
    """
    qubits = [
        qc.qinit_qubit(bool((reference_state >> (n_qubits - 1 - i)) & 1))
        for i in range(n_qubits)
    ]

    def controlled_power(qc2, target, power, control):
        # The Trotter step count scales with the power so the step *size*
        # (and hence the Trotter error) stays constant across the ladder.
        trotterized_evolution(
            qc2, hamiltonian, t * power, trotter_steps * power, target,
            control=control,
        )

    estimate = phase_estimation(qc, controlled_power, qubits, precision)
    return estimate, qubits


def gse_program(precision: int, t: float, trotter_steps: int,
                reference_state: int = 0b10) -> Program:
    """The H2 GSE circuit as a lazy, pipeline-ready Program."""
    return Program.capture(
        lambda qc: gse_circuit(
            qc, H2_HAMILTONIAN, 2, precision, t, trotter_steps,
            reference_state,
        ),
        name=f"gse(precision={precision})",
    )


def energy_from_phase(phase_int: int, precision: int, t: float) -> float:
    """Convert a measured phase register value back to an energy.

    U = exp(-iHt) has eigenphase theta = -E t / (2 pi) mod 1; phases above
    1/2 represent negative multiples (two's-complement-style wrap).
    """
    theta = phase_int / (1 << precision)
    if theta > 0.5:
        theta -= 1.0
    return -2.0 * math.pi * theta / t


def estimate_ground_energy(precision: int = 6, t: float = 0.8,
                           trotter_steps: int = 4, seed: int = 0,
                           samples: int = 11) -> float:
    """Run GSE for H2 end to end; returns the median energy estimate.

    The circuit is built once and sampled ``samples`` times through the
    ``"statevector"`` backend (measurement-free, so all shots come from
    one simulation); the phase register is decoded out of each counts
    outcome and the median energy returned.
    """
    program = gse_program(precision, t, trotter_steps)
    estimate, _ = program.outputs
    result = program.run(shots=samples, seed=seed)
    estimate_wires = [q.wire_id for q in qdata_leaves(estimate)]  # MSB first
    outcomes = []
    counts = marginal_counts(result, program.bcircuit, estimate_wires)
    for value, count in counts.items():
        outcomes.extend([energy_from_phase(value, precision, t)] * count)
    outcomes.sort()
    return outcomes[len(outcomes) // 2]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gse", description="Ground State Estimation for H2"
    )
    parser.add_argument("--precision", type=int, default=6)
    parser.add_argument("--trotter-steps", type=int, default=4)
    parser.add_argument("--time", type=float, default=0.8)
    parser.add_argument("--gatecount", action="store_true",
                        help="shorthand for -f gatecount")
    add_execution_arguments(
        parser, default_format="estimate",
        formats=("estimate", "ascii", "gatecount", "resources",
                 "quipper", "qasm", "run"),
    )
    args = parser.parse_args(argv)

    if args.gatecount:
        args.fmt = "gatecount"
    if args.fmt != "estimate":
        return emit(
            gse_program(args.precision, args.time, args.trotter_steps),
            args,
        )
    with telemetry_session(args):
        energy = estimate_ground_energy(
            args.precision, args.time, args.trotter_steps
        )
        exact = exact_ground_energy(H2_HAMILTONIAN, 2)
        print(f"estimated ground energy: {energy:+.4f} Hartree")
        print(f"exact ground energy:     {exact:+.4f} Hartree")
        print(f"error:                   {abs(energy - exact):.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
