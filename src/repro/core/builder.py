"""The circuit builder: Python's stand-in for Quipper's ``Circ`` monad.

Quipper code lives in a monad ``Circ`` that threads a circuit-under-
construction through the program (Section 4.4.1).  In this reproduction the
same role is played by an explicit :class:`Circ` builder object, passed as
the first argument of circuit-producing functions by convention::

    def mycirc(qc, a, b):
        qc.hadamard(a)
        qc.hadamard(b)
        qc.controlled_not(a, b)
        return a, b

Block structure (Section 4.4.2) is expressed with context managers::

    with qc.controls(c):
        mycirc(qc, a, b)

    with qc.ancilla() as x:
        qc.qnot(x, controls=(a, b))

and the higher-order operators ``with_computed``, ``box``, ``reverse_endo``
etc. are builder methods.

The builder performs the run-time checks that Quipper defers to run time in
the absence of linear types (Section 4.1): using a dead wire, duplicating a
wire within one gate, or type-mismatched wires all raise immediately.
"""

from __future__ import annotations

import math
import warnings
from contextlib import contextmanager
from typing import Callable, Iterable

from .circuit import BCircuit, Circuit, Subroutine
from .errors import (
    BoxError,
    CloningError,
    DanglingWiresError,
    DanglingWiresWarning,
    DeadWireError,
    DynamicLiftingError,
    QuipperError,
    ScopeError,
    ShapeMismatchError,
    WireTypeError,
)
from .gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
    map_gate_wires,
    with_extra_controls,
)
from .qdata import (
    qdata_leaves,
    qdata_rebuild,
    shape_signature,
)
from .wires import CLASSICAL, QUANTUM, Bit, Qubit, Wire


class Signed:
    """A wire with a sign, for use as a negative or positive control."""

    __slots__ = ("wire", "positive")

    def __init__(self, wire: Wire, positive: bool = True):
        self.wire = wire
        self.positive = positive


def neg(wire: Wire) -> Signed:
    """Mark a wire as a *negative* control (the paper's empty dots)."""
    return Signed(wire, positive=False)


def _normalize_controls(controls) -> tuple[Control, ...]:
    """Accept a wire, a Signed wire, or an iterable of either."""
    if controls is None:
        return ()
    if isinstance(controls, (Wire, Signed)):
        controls = [controls]
    result = []
    for ctl in controls:
        if isinstance(ctl, Signed):
            wire, positive = ctl.wire, ctl.positive
        elif isinstance(ctl, Wire):
            wire, positive = ctl, True
        else:
            raise WireTypeError(f"not a valid control: {ctl!r}")
        result.append(Control(wire.wire_id, positive, wire.wire_type))
    return tuple(result)


class Circ:
    """A circuit under construction.

    Not usually instantiated directly: use :func:`build` (or the run
    functions in :mod:`repro.sim` and :mod:`repro.output`) to drive a
    circuit-producing function.
    """

    def __init__(self, namespace: dict[str, Subroutine] | None = None):
        self._next_wire = 0
        self._live: dict[int, str] = {}
        self.gates: list[Gate] = []
        self.namespace: dict[str, Subroutine] = (
            namespace if namespace is not None else {}
        )
        self._control_stack: list[tuple[Control, ...]] = []
        self._inputs: tuple[tuple[int, str], ...] = ()
        self._max_live = 0
        #: Optional hook enabling dynamic lifting (set by the QRAM executor).
        self.lifting_handler: Callable[["Circ", Bit], bool] | None = None

    # -- wire management ----------------------------------------------------

    def _fresh_id(self) -> int:
        wid = self._next_wire
        self._next_wire += 1
        return wid

    def _birth(self, wtype: str) -> int:
        wid = self._fresh_id()
        self._live[wid] = wtype
        self._max_live = max(self._max_live, len(self._live))
        return wid

    def fresh_like(self, shape):
        """Allocate input wires matching a shape specimen (no Init gates).

        Used for the free inputs of a circuit; the allocated wires are
        recorded as circuit inputs by :func:`build`.
        """
        leaves = qdata_leaves(shape)
        fresh: list[Wire] = []
        for leaf in leaves:
            wid = self._birth(leaf.wire_type)
            fresh.append(Qubit(wid) if leaf.wire_type == QUANTUM else Bit(wid))
        return qdata_rebuild(shape, fresh)

    def snapshot_inputs(self) -> None:
        """Declare all currently-live wires as the circuit's inputs."""
        self._inputs = tuple(sorted(self._live.items()))

    def live_wires(self) -> tuple[tuple[int, str], ...]:
        return tuple(sorted(self._live.items()))

    # -- gate emission ------------------------------------------------------

    def _check_ins(self, gate: Gate) -> None:
        seen: set[int] = set()
        for wire, wtype in gate.wires_in():
            if wire in seen and wtype == QUANTUM:
                # No-cloning applies to qubits; classical wires (e.g. the
                # inputs of a CGate) may be fanned out freely.
                raise CloningError(f"wire {wire} used twice in {gate}")
            seen.add(wire)
            if wire not in self._live:
                raise DeadWireError(f"gate {gate} uses dead wire {wire}")
            if self._live[wire] != wtype:
                raise WireTypeError(
                    f"gate {gate} expects type {wtype} on wire {wire}, "
                    f"found {self._live[wire]}"
                )

    def _track(self, gate: Gate) -> None:
        """Validate a gate against the live-wire map and apply its effects.

        This is the bookkeeping half of :meth:`_emit_raw`: the fused
        transformer pipeline (:mod:`repro.transform.pipeline`) uses it to
        thread liveness through a stage without re-emitting the gate.
        """
        self._check_ins(gate)
        ins = gate.wires_in()
        outs = gate.wires_out()
        out_ids = {w for w, _ in outs}
        in_ids = {w for w, _ in ins}
        if isinstance(gate, BoxCall):
            sub = self.namespace.get(gate.name)
            if sub is None:
                raise BoxError(f"undefined subroutine {gate.name!r}")
            transient = len(self._live) - len(gate.in_wires) + sub.width(
                self.namespace
            )
            self._max_live = max(self._max_live, transient)
        for wire, _ in ins:
            if wire not in out_ids:
                del self._live[wire]
        for wire, wtype in outs:
            if wire not in in_ids and wire in self._live:
                raise CloningError(f"gate {gate} re-creates live wire {wire}")
            self._live[wire] = wtype
        self._max_live = max(self._max_live, len(self._live))

    def _emit_raw(self, gate: Gate) -> None:
        """Emit a gate verbatim (no block controls added)."""
        self._track(gate)
        self.gates.append(gate)

    def _emit(self, gate: Gate) -> None:
        """Emit a gate, attaching the controls of enclosing blocks."""
        extra = tuple(c for ctls in self._control_stack for c in ctls)
        if extra:
            if isinstance(gate, (Measure, Discard, CDiscard)):
                raise ScopeError(
                    f"{type(gate).__name__} is not controllable and cannot "
                    "appear inside a with_controls block"
                )
            gate = with_extra_controls(gate, extra)
        self._emit_raw(gate)

    # -- initialization / termination / measurement -------------------------

    def qinit_qubit(self, value: bool = False) -> Qubit:
        """Allocate one fresh qubit initialized to |value> (``0 |-``)."""
        wid = self._fresh_id()
        gate = Init(wid, bool(value))
        self._live[wid] = QUANTUM
        self._max_live = max(self._max_live, len(self._live))
        self.gates.append(gate)
        return Qubit(wid)

    def qinit(self, value):
        """Shape-generic initialization: Bool-structure -> Qubit-structure.

        Mirrors the paper's ``qinit :: QShape b q c => b -> Circ q``.
        Accepts a bool, nested tuples/lists/dicts of bools, or any object
        with a ``qinit_shape(qc)`` method (e.g. ``IntM`` parameter values).
        """
        if isinstance(value, bool):
            return self.qinit_qubit(value)
        if isinstance(value, tuple):
            return tuple(self.qinit(v) for v in value)
        if isinstance(value, list):
            return [self.qinit(v) for v in value]
        if isinstance(value, dict):
            return {k: self.qinit(value[k]) for k in sorted(value)}
        if hasattr(value, "qinit_shape"):
            return value.qinit_shape(self)
        raise ShapeMismatchError(f"cannot qinit from {value!r}")

    def qterm(self, data, assertion=False) -> None:
        """Assertively terminate quantum data (``-| 0``).

        *assertion* is a bool or a bool-structure matching *data*; each
        qubit is asserted to be in the corresponding basis state.
        """
        leaves = qdata_leaves(data)
        values = self._assertion_values(assertion, len(leaves))
        for leaf, value in zip(leaves, values):
            if not isinstance(leaf, Qubit):
                raise WireTypeError("qterm applied to a classical wire")
            self._emit_raw(Term(leaf.wire_id, value))

    @staticmethod
    def _assertion_values(assertion, count: int) -> list[bool]:
        if isinstance(assertion, bool):
            return [assertion] * count
        values = [bool(v) for v in _iter_bools(assertion)]
        if len(values) != count:
            raise ShapeMismatchError(
                f"assertion shape has {len(values)} leaves, data has {count}"
            )
        return values

    def qdiscard(self, data) -> None:
        """Discard quantum data without asserting its state."""
        for leaf in qdata_leaves(data):
            self._emit_raw(Discard(leaf.wire_id))

    def cinit_bit(self, value: bool = False) -> Bit:
        wid = self._fresh_id()
        self._live[wid] = CLASSICAL
        self._max_live = max(self._max_live, len(self._live))
        self.gates.append(CInit(wid, bool(value)))
        return Bit(wid)

    def cinit(self, value):
        """Shape-generic classical initialization (Bool -> Bit)."""
        if isinstance(value, bool):
            return self.cinit_bit(value)
        if isinstance(value, tuple):
            return tuple(self.cinit(v) for v in value)
        if isinstance(value, list):
            return [self.cinit(v) for v in value]
        if isinstance(value, dict):
            return {k: self.cinit(value[k]) for k in sorted(value)}
        raise ShapeMismatchError(f"cannot cinit from {value!r}")

    def cterm(self, data, assertion=False) -> None:
        leaves = qdata_leaves(data)
        values = self._assertion_values(assertion, len(leaves))
        for leaf, value in zip(leaves, values):
            self._emit_raw(CTerm(leaf.wire_id, value))

    def cdiscard(self, data) -> None:
        for leaf in qdata_leaves(data):
            self._emit_raw(CDiscard(leaf.wire_id))

    def measure(self, data):
        """Measure quantum data, producing an identically-shaped Bit structure.

        Mirrors ``measure :: QShape b q c => q -> Circ c``.
        """
        leaves = qdata_leaves(data)
        bits: list[Bit] = []
        for leaf in leaves:
            if not isinstance(leaf, Qubit):
                raise WireTypeError("measure applied to a classical wire")
            self._emit(Measure(leaf.wire_id))
            bits.append(Bit(leaf.wire_id))
        return qdata_rebuild(data, bits)

    def dynamic_lift(self, data):
        """Convert Bit(s) back into Bool(s) -- the paper's dynamic lifting.

        Requires an execution context (see
        :mod:`repro.sim.qram_model`); in a pure generation context this
        raises :class:`~repro.core.errors.DynamicLiftingError`, because the
        value of a circuit-execution-time wire is simply not available.
        """
        if self.lifting_handler is None:
            raise DynamicLiftingError(
                "dynamic_lift requires a QRAM execution context "
                "(see repro.sim.qram_model.run_with_lifting)"
            )
        leaves = qdata_leaves(data)
        values: list[bool] = []
        for leaf in leaves:
            if not isinstance(leaf, Bit):
                raise WireTypeError("dynamic_lift applies to classical wires")
            values.append(bool(self.lifting_handler(self, leaf)))
        return qdata_rebuild(data, values)

    # -- named gates ---------------------------------------------------------

    def named_gate(self, name, *targets, controls=None, param=None,
                   inverted=False):
        """Apply a named unitary gate to one or more qubits."""
        for target in targets:
            if not isinstance(target, Qubit):
                raise WireTypeError(f"{name} gate target must be a Qubit")
        self._emit(
            NamedGate(
                name,
                tuple(t.wire_id for t in targets),
                _normalize_controls(controls),
                inverted=inverted,
                param=param,
            )
        )
        return targets[0] if len(targets) == 1 else targets

    def hadamard(self, q: Qubit, controls=None) -> Qubit:
        """Apply a Hadamard gate."""
        return self.named_gate("H", q, controls=controls)

    def map_hadamard(self, data):
        """Apply Hadamard to every qubit in a structure (``mapUnary``)."""
        for leaf in qdata_leaves(data):
            self.hadamard(leaf)
        return data

    def qnot(self, q: Qubit, controls=None) -> Qubit:
        """Apply a NOT (Pauli X), optionally controlled."""
        return self.named_gate("not", q, controls=controls)

    def cnot_bit(self, b: Bit, controls=None) -> Bit:
        """In-place classical NOT on a Bit, optionally controlled."""
        self._emit(CNot(b.wire_id, _normalize_controls(controls)))
        return b

    def controlled_not(self, target, control):
        """CNOT each corresponding pair of qubits in two structures.

        Mirrors ``controlled_not :: QCData q => q -> q -> Circ (q, q)``:
        the first structure is the target, the second the control.
        """
        t_leaves = qdata_leaves(target)
        c_leaves = qdata_leaves(control)
        if len(t_leaves) != len(c_leaves):
            raise ShapeMismatchError(
                "controlled_not applied to differently-shaped data: "
                f"{len(t_leaves)} vs {len(c_leaves)} leaves"
            )
        for t, c in zip(t_leaves, c_leaves):
            self.qnot(t, controls=c)
        return target, control

    def gate_X(self, q, controls=None):
        return self.named_gate("X", q, controls=controls)

    def gate_Y(self, q, controls=None):
        return self.named_gate("Y", q, controls=controls)

    def gate_Z(self, q, controls=None):
        return self.named_gate("Z", q, controls=controls)

    def gate_S(self, q, controls=None, inverted=False):
        return self.named_gate("S", q, controls=controls, inverted=inverted)

    def gate_T(self, q, controls=None, inverted=False):
        return self.named_gate("T", q, controls=controls, inverted=inverted)

    def gate_V(self, q, controls=None, inverted=False):
        """The square root of NOT (appears in binary decompositions)."""
        return self.named_gate("V", q, controls=controls, inverted=inverted)

    def gate_W(self, a, b, controls=None):
        """The two-qubit W gate of the BWT algorithm (Figure 1).

        W is the self-inverse basis change that maps |01> and |10> to their
        symmetric/antisymmetric combinations, fixing |00> and |11>.
        """
        return self.named_gate("W", a, b, controls=controls)

    def expZt(self, t: float, q, controls=None):
        """The gate exp(-iZt) (Figure 1's ``e^{-iZt}``)."""
        return self.named_gate("exp(-i%Z)", q, controls=controls, param=t)

    def rGate(self, n: int, q, controls=None, inverted=False):
        """The phase-shift gate R_n = diag(1, exp(2 pi i / 2^n)) (QFT)."""
        return self.named_gate(
            "R(2pi/%)", q, controls=controls, param=float(n), inverted=inverted
        )

    def phase(self, angle: float):
        """A global phase e^{i*angle} (relevant only under controls)."""
        self._emit(NamedGate("phase", (), (), param=angle))

    def rotZ(self, theta: float, q, controls=None):
        """Rotation exp(-i theta Z / 2)."""
        return self.named_gate("Rz", q, controls=controls, param=theta)

    def rotX(self, theta: float, q, controls=None):
        return self.named_gate("Rx", q, controls=controls, param=theta)

    def rotY(self, theta: float, q, controls=None):
        return self.named_gate("Ry", q, controls=controls, param=theta)

    def swap(self, a, b):
        """Swap corresponding qubits of two equal-shaped structures."""
        a_leaves = qdata_leaves(a)
        b_leaves = qdata_leaves(b)
        if len(a_leaves) != len(b_leaves):
            raise ShapeMismatchError("swap applied to differently-shaped data")
        for x, y in zip(a_leaves, b_leaves):
            self.named_gate("swap", x, y)
        return a, b

    # -- classical logic gates ------------------------------------------------

    def cgate(self, name: str, inputs: Iterable[Bit]) -> Bit:
        """Compute a named boolean function of Bits into a fresh Bit."""
        input_ids = tuple(b.wire_id for b in inputs)
        wid = self._fresh_id()
        gate = CGate(name, wid, input_ids)
        self._check_ins(gate)
        self._live[wid] = CLASSICAL
        self._max_live = max(self._max_live, len(self._live))
        self.gates.append(gate)
        return Bit(wid)

    def cgate_xor(self, *inputs: Bit) -> Bit:
        return self.cgate("xor", inputs)

    def cgate_and(self, *inputs: Bit) -> Bit:
        return self.cgate("and", inputs)

    def cgate_or(self, *inputs: Bit) -> Bit:
        return self.cgate("or", inputs)

    def cgate_not(self, b: Bit) -> Bit:
        return self.cgate("not", (b,))

    # -- comments -------------------------------------------------------------

    def comment(self, text: str) -> None:
        """Insert a comment into the circuit."""
        self._emit_raw(Comment(text))

    def comment_with_label(self, text: str, data, labels) -> None:
        """Insert a comment labelling the wires of *data* (Section 5.3.1).

        *labels* is a string (applied to the whole structure, with indices
        appended for multi-wire data) or a tuple of strings labelling the
        components of a tuple *data* component-wise.
        """
        entries: list[tuple[int, str, str]] = []
        if isinstance(labels, str):
            _label_leaves(data, labels, entries)
        else:
            if not isinstance(data, tuple) or len(data) != len(labels):
                raise ShapeMismatchError(
                    "labels tuple must match a data tuple of equal length"
                )
            for part, label in zip(data, labels):
                _label_leaves(part, label, entries)
        self._emit_raw(Comment(text, tuple(entries)))

    # -- block structure --------------------------------------------------

    @contextmanager
    def controls(self, controls):
        """Control every gate in the block (``with_controls``)."""
        self._control_stack.append(_normalize_controls(controls))
        try:
            yield
        finally:
            self._control_stack.pop()

    @contextmanager
    def ancilla(self):
        """Provide an ancilla qubit, |0> at entry, asserted |0> at exit."""
        q = self.qinit_qubit(False)
        try:
            yield q
        finally:
            self._emit_raw(Term(q.wire_id, False))

    @contextmanager
    def ancilla_init(self, value):
        """Provide shaped ancillas initialized from a bool structure.

        The block must return them to their initial state; termination
        asserts the initial values (``with_ancilla_init``).
        """
        data = self.qinit(value)
        try:
            yield data
        finally:
            leaves = qdata_leaves(data)
            values = list(_iter_bools(value))
            for leaf, val in zip(leaves, values):
                self._emit_raw(Term(leaf.wire_id, val))

    @contextmanager
    def ancilla_list(self, n: int):
        """Provide a list of *n* ancilla qubits, all scoped to the block."""
        qs = [self.qinit_qubit(False) for _ in range(n)]
        try:
            yield qs
        finally:
            for q in reversed(qs):
                self._emit_raw(Term(q.wire_id, False))

    def with_computed(self, compute: Callable[[], object],
                      action: Callable[[object], object]):
        """Compute, act, uncompute (the paper's ``with_computed_fun``).

        Runs *compute* (recording its gates), passes its result to *action*,
        then emits the inverse of the recorded gates, automatically
        uncomputing all intermediate results (Section 5.3.1).  The wires
        produced by *compute* must not be altered by *action*.
        """
        start = len(self.gates)
        mid = compute()
        end = len(self.gates)
        result = action(mid)
        for gate in reversed(self.gates[start:end]):
            self._emit_raw(gate.inverse())
        return result

    def with_basis_change(self, change: Callable[[], None],
                          action: Callable[[], object]):
        """Perform *action* conjugated by the basis change *change*."""
        return self.with_computed(change, lambda _: action())

    # -- whole-circuit operators -------------------------------------------

    def subcircuit(self, fn: Callable, *shape_args) -> tuple[Circuit, object, object]:
        """Trace *fn* over fresh wires into a standalone Circuit.

        Returns ``(circuit, input_structure, output_structure)`` where the
        structures hold the traced wires.  The traced circuit shares this
        builder's namespace (nested boxes land in the same namespace).
        """
        scratch = Circ(namespace=self.namespace)
        args = [scratch.fresh_like(a) for a in shape_args]
        scratch.snapshot_inputs()
        outs = fn(scratch, *args)
        out_struct = outs if outs is not None else tuple(
            Qubit(w) if t == QUANTUM else Bit(w)
            for w, t in scratch.live_wires()
        )
        out_leaves = qdata_leaves(out_struct)
        live = dict(scratch.live_wires())
        if {leaf.wire_id for leaf in out_leaves} != set(live):
            raise ScopeError(
                "traced function must return all its live wires: "
                f"returned {sorted(l.wire_id for l in out_leaves)}, "
                f"live {sorted(live)}"
            )
        circuit = Circuit(
            inputs=scratch._inputs,
            gates=scratch.gates,
            outputs=tuple((l.wire_id, l.wire_type) for l in out_leaves),
        )
        args_struct = tuple(args) if len(args) != 1 else args[0]
        return circuit, args_struct, out_struct

    def append_circuit(self, circuit: Circuit, binding: dict[int, int]):
        """Splice a stored circuit into this builder.

        *binding* maps the circuit's input wire ids to live wire ids of this
        builder.  Wires created inside the circuit are allocated fresh here.
        Returns the mapping extended to all wires of the circuit.
        """
        mapping = dict(binding)

        def remap(wid: int) -> int:
            if wid not in mapping:
                mapping[wid] = self._fresh_id()
            return mapping[wid]

        for gate in circuit.gates:
            self._emit(map_gate_wires(gate, remap))
        return mapping

    def reverse_endo(self, fn: Callable, *args):
        """Apply the inverse of *fn*, for *fn* with equal in/out shapes.

        ``qc.reverse_endo(mycirc, a, b)`` emits the inverse of the circuit
        that ``mycirc(qc, a, b)`` would emit (the paper's ``reverse_simple``
        applied to an endomorphic circuit function).
        """
        circuit, in_struct, out_struct = self.subcircuit(fn, *args)
        caller_out = args[0] if len(args) == 1 else tuple(args)
        return self._emit_reversed(circuit, out_struct, caller_out, in_struct)

    def reverse_simple(self, fn: Callable, shape_args: tuple, outputs):
        """Apply the inverse of *fn* to *outputs*.

        *shape_args* is a tuple of shape specimens for fn's inputs;
        *outputs* is data matching fn's output shape.  Returns data matching
        fn's input shape (the paper's general ``reverse_simple``).
        """
        circuit, in_struct, out_struct = self.subcircuit(fn, *shape_args)
        return self._emit_reversed(circuit, out_struct, outputs, in_struct)

    def _emit_reversed(self, circuit: Circuit, out_struct, caller_out,
                       in_struct):
        """Emit circuit's inverse, binding its outputs to caller wires.

        Returns the circuit's *inputs* rebuilt over caller wires -- these
        are the wires live after the inverse circuit has run.
        """
        trace_out_leaves = qdata_leaves(out_struct)
        caller_leaves = qdata_leaves(caller_out)
        if len(trace_out_leaves) != len(caller_leaves):
            raise ShapeMismatchError(
                "reverse: output shape does not match supplied data: "
                f"{len(trace_out_leaves)} vs {len(caller_leaves)} wires"
            )
        mapping = {
            t.wire_id: c.wire_id
            for t, c in zip(trace_out_leaves, caller_leaves)
        }

        def remap(wid: int) -> int:
            if wid not in mapping:
                mapping[wid] = self._fresh_id()
            return mapping[wid]

        for gate in reversed(circuit.gates):
            self._emit(map_gate_wires(gate.inverse(), remap))
        in_leaves = qdata_leaves(in_struct)
        rebuilt = [
            Qubit(mapping[leaf.wire_id])
            if leaf.wire_type == QUANTUM
            else Bit(mapping[leaf.wire_id])
            for leaf in in_leaves
        ]
        return qdata_rebuild(in_struct, rebuilt)

    # -- boxed subcircuits ----------------------------------------------------

    def box(self, name: str, fn: Callable, *args, repetitions: int = 1):
        """Invoke *fn* on *args* as a boxed subcircuit (Section 4.4.4).

        The first call with a given name and argument shape generates the
        subcircuit; subsequent calls emit a single ``BoxCall`` gate
        referencing it.  With ``repetitions=k`` the subroutine is iterated
        k times in place (fn must have equal input and output shape), and
        hierarchical gate counting multiplies accordingly.
        """
        signature = shape_signature(args)
        key = self._box_key(name, signature)
        if key not in self.namespace:
            circuit, in_struct, out_struct = self.subcircuit(fn, *args)
            self.namespace[key] = Subroutine(
                name=key,
                circuit=circuit,
                in_shape=in_struct,
                out_shape=out_struct,
            )
            self.namespace[key]._signature = signature  # type: ignore[attr-defined]
        sub = self.namespace[key]
        return self._call_box(sub, args, repetitions=repetitions)

    def _box_key(self, name: str, signature: str) -> str:
        key = name
        suffix = 1
        while key in self.namespace:
            existing = getattr(self.namespace[key], "_signature", None)
            if existing == signature:
                return key
            suffix += 1
            key = f"{name}#{suffix}"
        return key

    def _call_box(self, sub: Subroutine, args, repetitions: int = 1):
        caller_leaves = qdata_leaves(args)
        sub_in = sub.circuit.inputs
        if len(caller_leaves) != len(sub_in):
            raise BoxError(
                f"subroutine {sub.name!r} expects {len(sub_in)} wires, "
                f"got {len(caller_leaves)}"
            )
        binding = {
            sid: leaf.wire_id for (sid, _), leaf in zip(sub_in, caller_leaves)
        }
        if repetitions != 1 and sub.circuit.inputs != sub.circuit.outputs:
            raise BoxError(
                f"repeated box {sub.name!r} requires identical input and "
                "output wires (an in-place subroutine)"
            )
        out_wires: list[tuple[int, str]] = []
        out_handles: list[Wire] = []
        for sid, stype in sub.circuit.outputs:
            if sid in binding:
                wid = binding[sid]
            else:
                wid = self._fresh_id()
            out_wires.append((wid, stype))
            out_handles.append(Qubit(wid) if stype == QUANTUM else Bit(wid))
        self._emit(
            BoxCall(
                name=sub.name,
                in_wires=tuple(
                    (leaf.wire_id, leaf.wire_type) for leaf in caller_leaves
                ),
                out_wires=tuple(out_wires),
                repetitions=repetitions,
            )
        )
        return qdata_rebuild(sub.out_shape, out_handles)

    def nbox(self, name: str, repetitions: int, fn: Callable, *args):
        """Box *fn* and iterate it ``repetitions`` times in place."""
        return self.box(name, fn, *args, repetitions=repetitions)

    # -- finishing ---------------------------------------------------------

    def finish(self, outputs=None, on_extra: str = "warn",
               _stacklevel: int = 2) -> tuple[BCircuit, object]:
        """Close the builder, producing a checked BCircuit.

        *outputs* is the structured data to expose as circuit outputs; any
        live wires not contained in it are appended in wire-id order,
        repackaging the result as ``(outputs, extra)``.  Because that
        silently changes the declared output shape, *on_extra* selects how
        leftover wires are reported:

        * ``"warn"`` (default) -- append them, but emit a structured
          :class:`~repro.core.errors.DanglingWiresWarning` carrying the
          appended ``(wire_id, wire_type)`` pairs;
        * ``"error"`` -- raise :class:`~repro.core.errors.DanglingWiresError`
          instead of repackaging;
        * ``"ignore"`` -- the historical silent repackaging.
        """
        out_struct = self._resolve_outputs(
            outputs, on_extra=on_extra, _stacklevel=_stacklevel + 1
        )
        leaves = qdata_leaves(out_struct)
        circuit = Circuit(
            inputs=self._inputs,
            gates=self.gates,
            outputs=tuple((l.wire_id, l.wire_type) for l in leaves),
        )
        return BCircuit(circuit, self.namespace), out_struct

    def _resolve_outputs(self, outputs, on_extra: str = "warn",
                         _stacklevel: int = 2):
        """Resolve the declared outputs against the live wires.

        The output-shape half of :meth:`finish`, shared with the streaming
        builder (:mod:`repro.core.stream`), which resolves outputs without
        materializing a circuit.  Returns the final output structure,
        applying the *on_extra* policy to live wires beyond *outputs*.
        """
        if on_extra not in ("warn", "error", "ignore"):
            raise ValueError(f"unknown on_extra mode {on_extra!r}")
        if outputs is None:
            out_struct: object = tuple(
                Qubit(w) if t == QUANTUM else Bit(w)
                for w, t in self.live_wires()
            )
        else:
            out_leaves = {leaf.wire_id for leaf in qdata_leaves(outputs)}
            extra = tuple(
                Qubit(w) if t == QUANTUM else Bit(w)
                for w, t in self.live_wires()
                if w not in out_leaves
            )
            if extra:
                extra_wires = tuple(
                    (w.wire_id, w.wire_type) for w in extra
                )
                message = (
                    f"{len(extra)} live wire(s) beyond the declared "
                    f"outputs were appended, changing the output shape "
                    f"to (outputs, extra): wires "
                    f"{[w for w, _ in extra_wires]}"
                )
                if on_extra == "error":
                    raise DanglingWiresError(message, extra_wires)
                if on_extra == "warn":
                    warnings.warn(
                        DanglingWiresWarning(message, extra_wires),
                        stacklevel=_stacklevel,
                    )
            out_struct = outputs if not extra else (outputs, extra)
        return out_struct


def _iter_bools(value):
    """Iterate the bools of a nested bool structure, in leaf order."""
    if isinstance(value, bool):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from _iter_bools(item)
    elif isinstance(value, dict):
        for key in sorted(value):
            yield from _iter_bools(value[key])
    else:
        raise ShapeMismatchError(f"not a bool structure: {value!r}")


def _label_leaves(data, label: str, entries: list[tuple[int, str, str]]) -> None:
    leaves = qdata_leaves(data)
    if len(leaves) == 1:
        entries.append((leaves[0].wire_id, leaves[0].wire_type, label))
    else:
        for index, leaf in enumerate(leaves):
            entries.append(
                (leaf.wire_id, leaf.wire_type, f"{label}[{index}]")
            )


def build(fn: Callable, *shape_args, on_extra: str = "warn") -> tuple[BCircuit, object]:
    """Generate the circuit of *fn* applied to inputs of the given shapes.

    This is the generation-time entry point shared by ``print_generic``,
    ``run_generic`` and the gate counters: it allocates free input wires
    matching the shape specimens, runs ``fn(qc, *inputs)``, and packages the
    result as a checked :class:`~repro.core.circuit.BCircuit`.  *on_extra*
    selects how live wires beyond the returned outputs are reported (see
    :meth:`Circ.finish`).

    Returns ``(bcircuit, output_structure)``.

    The fluent equivalent is :meth:`repro.program.Program.capture`, which
    wraps the same generation step in a lazily-built, cacheable pipeline
    object.
    """
    qc = Circ()
    args = [qc.fresh_like(shape) for shape in shape_args]
    qc.snapshot_inputs()
    outs = fn(qc, *args)
    # _stacklevel=3 attributes a dangling-wire warning to build's caller.
    return qc.finish(outs, on_extra=on_extra, _stacklevel=3)


__all__ = [
    "Circ",
    "Signed",
    "neg",
    "build",
]
