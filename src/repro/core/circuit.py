"""Circuits, boxed subroutines, and hierarchical circuit containers.

A :class:`Circuit` is a straight-line sequence of gates with typed input and
output wires.  A :class:`BCircuit` pairs a main circuit with a *namespace* of
named :class:`Subroutine` definitions -- the paper's hierarchical "boxed
subcircuits" (Section 4.4.4).  A subroutine is generated once and may be
invoked many times (possibly inverted, controlled, or repeated), which is
what lets the library represent and gate-count circuits with trillions of
gates without materializing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CloningError, DeadWireError, QuipperError, WireTypeError
from .gates import BoxCall, Gate
from .wires import QUANTUM


@dataclass
class Circuit:
    """A gate sequence with typed endpoints.

    ``inputs`` and ``outputs`` are tuples of ``(wire_id, wire_type)`` pairs.
    The input wires are live before the first gate; the output wires are
    exactly the wires live after the last gate.
    """

    inputs: tuple[tuple[int, str], ...] = ()
    gates: list[Gate] = field(default_factory=list)
    outputs: tuple[tuple[int, str], ...] = ()

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def in_arity(self) -> int:
        return len(self.inputs)

    @property
    def out_arity(self) -> int:
        return len(self.outputs)

    def check(self, namespace: dict[str, "Subroutine"] | None = None) -> int:
        """Validate wire discipline and return the circuit width.

        Checks that every gate reads only live wires of the right type, that
        no gate uses the same wire twice (no-cloning), and that the declared
        outputs match the wires that are live at the end.  The returned width
        is the high-water mark of simultaneously live wires, counting the
        transient internal wires of boxed subroutine calls.
        """
        namespace = namespace or {}
        live: dict[int, str] = dict(self.inputs)
        if len(live) != len(self.inputs):
            raise CloningError("duplicate wire in circuit inputs")
        peak = len(live)
        for gate in self.gates:
            ins = gate.wires_in()
            seen: set[int] = set()
            for wire, wtype in ins:
                if wire in seen and wtype == QUANTUM:
                    # No-cloning applies to qubits only; classical wires
                    # may be used several times within one gate.
                    raise CloningError(f"wire {wire} used twice in {gate}")
                seen.add(wire)
                if wire not in live:
                    raise DeadWireError(f"gate {gate} uses dead wire {wire}")
                if live[wire] != wtype:
                    raise WireTypeError(
                        f"gate {gate} expects {wtype} on wire {wire}, "
                        f"found {live[wire]}"
                    )
            outs = gate.wires_out()
            out_ids = {w for w, _ in outs}
            if len(out_ids) != len(outs):
                raise CloningError(f"duplicate output wire in {gate}")
            # Transient width of a subroutine call.
            if isinstance(gate, BoxCall):
                sub = namespace.get(gate.name)
                if sub is None:
                    raise QuipperError(f"undefined subroutine {gate.name!r}")
                transient = len(live) - len(gate.in_wires) + sub.width(namespace)
                peak = max(peak, transient)
            in_ids = {w for w, _ in ins}
            for wire, _ in ins:
                if wire not in out_ids:
                    del live[wire]
            for wire, wtype in outs:
                if wire not in in_ids and wire in live:
                    raise CloningError(f"gate {gate} re-creates live wire {wire}")
                live[wire] = wtype
            peak = max(peak, len(live))
        if dict(self.outputs) != live or len(self.outputs) != len(live):
            raise QuipperError(
                f"circuit outputs {sorted(dict(self.outputs))} do not match "
                f"live wires {sorted(live)} at end of circuit"
            )
        return peak


@dataclass
class Subroutine:
    """A named boxed subcircuit together with its interface shapes.

    ``in_shape`` / ``out_shape`` are shape descriptors (see
    :mod:`repro.core.qdata`) recording how the flat wire lists map back to
    structured quantum data at call sites.
    """

    name: str
    circuit: Circuit
    in_shape: object = None
    out_shape: object = None
    #: Memoized body width.  Excluded from equality: two subroutines with
    #: the same circuit are the same subroutine whether or not one has had
    #: its width computed.  The cache is only trustworthy for a fixed
    #: namespace; :meth:`BCircuit.check` invalidates it before validating,
    #: so a stale width cannot survive a namespace mutation.
    _width: int | None = field(default=None, compare=False, repr=False)

    def width(self, namespace: dict[str, "Subroutine"]) -> int:
        """Width of the subroutine body (memoized; see :attr:`_width`)."""
        if self._width is None:
            self._width = self.circuit.check(namespace)
        return self._width

    def invalidate_width(self) -> None:
        """Drop the memoized width (call after mutating the namespace)."""
        self._width = None


@dataclass
class BCircuit:
    """A main circuit plus the namespace of subroutines it may invoke."""

    circuit: Circuit
    namespace: dict[str, Subroutine] = field(default_factory=dict)

    def check(self) -> int:
        """Validate the whole hierarchy; return the main circuit's width.

        Memoized subroutine widths are invalidated first, so a width cached
        against an earlier version of the namespace can never leak into the
        result of a later check.
        """
        for sub in self.namespace.values():
            sub.invalidate_width()
        for sub in self.namespace.values():
            sub.width(self.namespace)
        return self.circuit.check(self.namespace)

    def subroutine_names(self) -> list[str]:
        return sorted(self.namespace)

    def __len__(self) -> int:
        """Number of gates stored (NOT the inlined gate count)."""
        return len(self.circuit.gates) + sum(
            len(s.circuit.gates) for s in self.namespace.values()
        )
