"""Wires: the run-time identities of qubits and classical bits.

The paper distinguishes three basic types (Section 4.3.2):

* ``Bool``  -- a parameter, known at circuit *generation* time.  In this
  reproduction a ``Bool`` is just a Python ``bool``.
* ``Bit``   -- a classical wire in a circuit, known at *execution* time.
* ``Qubit`` -- a quantum wire in a circuit.

``Qubit`` and ``Bit`` objects are handles onto integer wire ids allocated
by a :class:`~repro.core.builder.Circ` builder.  They are hashable and
compare by identity of the underlying wire id, so they can be stored in
sets and dicts (Quipper similarly treats wires as abstract identifiers).
"""

from __future__ import annotations

QUANTUM = "Q"
CLASSICAL = "C"


class Wire:
    """Base class for circuit wires.  Not instantiated directly."""

    __slots__ = ("wire_id",)

    #: Either :data:`QUANTUM` or :data:`CLASSICAL`; set by subclasses.
    wire_type = ""

    def __init__(self, wire_id: int):
        self.wire_id = wire_id

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.wire_id})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Wire)
            and self.wire_type == other.wire_type
            and self.wire_id == other.wire_id
        )

    def __hash__(self) -> int:
        return hash((self.wire_type, self.wire_id))


class Qubit(Wire):
    """A quantum wire in a circuit (an *input* in the paper's terminology)."""

    __slots__ = ()
    wire_type = QUANTUM


class Bit(Wire):
    """A classical wire in a circuit (e.g. a measurement result)."""

    __slots__ = ()
    wire_type = CLASSICAL


def is_qubit(value: object) -> bool:
    """Return True if *value* is a quantum wire."""
    return isinstance(value, Qubit)


def is_bit(value: object) -> bool:
    """Return True if *value* is a classical wire."""
    return isinstance(value, Bit)
