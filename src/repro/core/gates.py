"""Gate-level intermediate representation of Quipper's extended circuit model.

The paper's circuit model (Section 4.2) goes beyond unitary circuits: it has
explicit qubit initialization and *assertive termination*, measurements,
classical wires and gates, and classically-controlled quantum gates.  It is
also hierarchical (Section 4.4.4): a circuit may invoke named boxed
subcircuits, which is what lets Quipper represent circuits of trillions of
gates.

Every gate stores raw integer wire ids (see :mod:`repro.core.wires`); the
mapping from ids to live wires is maintained by the builder and checked by
:func:`repro.core.circuit.Circuit.check`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import NamedTuple

from .errors import IrreversibleError
from .wires import CLASSICAL, QUANTUM


class Control(NamedTuple):
    """A control on a gate.

    ``positive`` selects between a filled dot (control on |1>) and an empty
    dot (control on |0>).  ``wire_type`` is :data:`~repro.core.wires.QUANTUM`
    or :data:`~repro.core.wires.CLASSICAL`; the latter gives the paper's
    classically-controlled quantum gates.
    """

    wire: int
    positive: bool = True
    wire_type: str = QUANTUM


@dataclass(frozen=True)
class Gate:
    """Abstract base class for gates; use the concrete subclasses."""

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        """Wires (id, type) that must be live before this gate."""
        raise NotImplementedError

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        """Wires (id, type) that are live after this gate."""
        raise NotImplementedError

    def inverse(self) -> "Gate":
        """The inverse gate; raises IrreversibleError if not reversible."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Named unitary gates
# ---------------------------------------------------------------------------

#: Metadata for the built-in gate vocabulary: name -> (arity, self_inverse).
#: Parametrised gates (``rot`` True) invert by negating their parameter.
#: ``diagonal`` marks gates whose matrix is diagonal in the computational
#: basis (they commute with each other and with any control on the same
#: wire -- the commutation facts the peephole optimizer relies on).
#: ``period`` / ``phase_period`` give, for additive rotation gates, the
#: exact parameter period of the matrix and the (smaller) period up to
#: global phase; e.g. ``Rz(t + 2pi) = -Rz(t)`` so Rz has period 4pi and
#: phase period 2pi.  Unknown names are allowed (user-defined named
#: gates, treated as opaque).
GATE_INFO: dict[str, dict] = {
    "X": {"arity": 1, "self_inverse": True},
    "not": {"arity": 1, "self_inverse": True},
    "Y": {"arity": 1, "self_inverse": True},
    "Z": {"arity": 1, "self_inverse": True, "diagonal": True},
    "H": {"arity": 1, "self_inverse": True},
    "S": {"arity": 1, "self_inverse": False, "diagonal": True},
    "T": {"arity": 1, "self_inverse": False, "diagonal": True},
    "V": {"arity": 1, "self_inverse": False},  # sqrt of X
    "E": {"arity": 1, "self_inverse": False},
    "omega": {"arity": 1, "self_inverse": False, "diagonal": True},
    "swap": {"arity": 2, "self_inverse": True},
    "W": {"arity": 2, "self_inverse": True},  # BWT basis-change gate
    "iX": {"arity": 1, "self_inverse": False},
    # Parametrised gates: parameter is an angle/time; inverse negates it.
    "exp(-i%Z)": {"arity": 1, "self_inverse": False, "rot": True,
                  "diagonal": True,
                  "period": 2 * math.pi, "phase_period": math.pi},
    "exp(-i%ZZ)": {"arity": 2, "self_inverse": False, "rot": True,
                   "diagonal": True,
                   "period": 2 * math.pi, "phase_period": math.pi},
    "R(2pi/%)": {"arity": 1, "self_inverse": False, "rot": False,
                 "diagonal": True},
    "rGate": {"arity": 1, "self_inverse": False, "rot": False,
              "diagonal": True},
    "Rx": {"arity": 1, "self_inverse": False, "rot": True,
           "period": 4 * math.pi, "phase_period": 2 * math.pi},
    "Ry": {"arity": 1, "self_inverse": False, "rot": True,
           "period": 4 * math.pi, "phase_period": 2 * math.pi},
    "Rz": {"arity": 1, "self_inverse": False, "rot": True,
           "diagonal": True,
           "period": 4 * math.pi, "phase_period": 2 * math.pi},
    "phase": {"arity": 0, "self_inverse": False, "rot": True,
              "diagonal": True,
              "period": 2 * math.pi, "phase_period": 2 * math.pi},
}


def gate_arity(name: str) -> int | None:
    """Arity of a built-in gate name, or None if unknown/user-defined."""
    info = GATE_INFO.get(name)
    return None if info is None else info["arity"]


def is_diagonal_name(name: str) -> bool:
    """Whether the named gate's matrix is diagonal (conservative: False
    for unknown/user-defined names)."""
    info = GATE_INFO.get(name)
    return bool(info and info.get("diagonal"))


def rotation_periods(name: str) -> tuple[float, float] | None:
    """``(period, phase_period)`` of an additive rotation gate, or None.

    ``period`` is the exact matrix period of the parameter;
    ``phase_period`` the period up to an unobservable global phase (only
    usable for *uncontrolled* gates, where global phase cannot become
    relative).
    """
    info = GATE_INFO.get(name)
    if not info or not info.get("rot") or "period" not in info:
        return None
    return (info["period"], info["phase_period"])


def acts_diagonally_on(gate: Gate, wire: int) -> bool:
    """Whether *gate* acts diagonally (in the computational basis) on *wire*.

    A control is always diagonal on its wire (it is a basis projector);
    a target wire is diagonal exactly when the gate's matrix is.  Two
    gates that are each diagonal on every wire they share commute -- the
    fact the peephole optimizer's commutation scan is built on.  The
    answer is conservative: ``False`` whenever diagonality is unknown.
    """
    for ctl in control_wires(gate):
        if ctl.wire == wire:
            return True
    if isinstance(gate, NamedGate):
        return wire in gate.targets and is_diagonal_name(gate.name)
    if isinstance(gate, CGate):
        # A classical gate reads its inputs (diagonal) but creates or
        # consumes its target wire.
        return wire in gate.inputs and wire != gate.target
    return False


@dataclass(frozen=True)
class NamedGate(Gate):
    """A named (pseudo-)unitary gate applied to quantum target wires.

    ``inverted`` marks the adjoint of a non-self-inverse gate (printed with
    a ``*`` suffix, as in the paper's figures).  ``param`` carries the
    rotation angle / time step for parametrised gates such as ``exp(-i%Z)``.
    """

    name: str
    targets: tuple[int, ...]
    controls: tuple[Control, ...] = ()
    inverted: bool = False
    param: float | None = None

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return tuple((t, QUANTUM) for t in self.targets) + tuple(
            (c.wire, c.wire_type) for c in self.controls
        )

    wires_out = wires_in

    def inverse(self) -> "NamedGate":
        info = GATE_INFO.get(self.name)
        if info is not None and info["self_inverse"]:
            return self
        if info is not None and info.get("rot") and self.param is not None:
            return replace(self, param=-self.param)
        return replace(self, inverted=not self.inverted)

    def display_name(self) -> str:
        """Name annotated with parameter and dagger, for printing/counting."""
        name = self.name
        if self.param is not None and "%" in name:
            name = name.replace("%", _fmt_param(self.param))
        elif self.param is not None:
            name = f"{name}({_fmt_param(self.param)})"
        if self.inverted:
            name += "*"
        return name

    def __repr__(self) -> str:
        parts = [f"targets={self.targets!r}"]
        if self.controls:
            parts.append(f"controls={self.controls!r}")
        return f"NamedGate[{self.display_name()!r}]({', '.join(parts)})"


def format_pi_multiple(value: float) -> str | None:
    """*value* as an exact small rational multiple of pi, or None.

    Returns strings like ``"pi"``, ``"-pi/2"``, ``"3pi/4"``, ``"2pi"``.
    Exactness is bit-exact: the string is only produced when evaluating
    ``num * math.pi / den`` (the arithmetic the Quipper-ASCII parser
    performs) reproduces *value*, so rotation parameters round-trip
    through :mod:`repro.io.ascii_parser` without drift.
    """
    if value == 0 or not math.isfinite(value):
        return None
    for den in (1, 2, 3, 4, 5, 6, 8, 12, 16, 32, 64):
        num = round(value * den / math.pi)
        if num == 0 or abs(num) > 1024:
            continue
        if num * math.pi / den == value:
            # Reduce the fraction only when the reduced form evaluates
            # to the same float: 15*pi/12 differs from 5*pi/4 by one
            # ulp, and the parser must reproduce *value* bit-exactly.
            shrink = math.gcd(abs(num), den)
            if (num // shrink) * math.pi / (den // shrink) == value:
                num //= shrink
                den //= shrink
            head = {1: "pi", -1: "-pi"}.get(num, f"{num}pi")
            return head if den == 1 else f"{head}/{den}"
    return None


def _fmt_param(value: float) -> str:
    if value == int(value):
        return str(int(value))
    as_pi = format_pi_multiple(value)
    if as_pi is not None:
        # Exact multiples of pi print in units of pi: Rz(pi/2), not
        # Rz(1.5707963267948966).  The ASCII parser evaluates the same
        # expression, so the float round-trips bit-exactly.
        return as_pi
    # repr() is the shortest string that round-trips the float exactly,
    # which the Quipper-ASCII parser (repro.io) relies on.
    return repr(value)


# ---------------------------------------------------------------------------
# Initialization, termination, measurement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Init(Gate):
    """Allocate a fresh qubit in state |value> (the paper's ``0 |-``)."""

    wire: int
    value: bool = False

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ()

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, QUANTUM),)

    def inverse(self) -> "Term":
        return Term(self.wire, self.value)


@dataclass(frozen=True)
class Term(Gate):
    """Assertively terminate a qubit, asserting it is in state |value>.

    This is the paper's ``-| 0`` gate (Section 4.2.2).  The assertion is the
    programmer's responsibility; simulators check it and raise
    :class:`~repro.core.errors.AssertionFailedError` when violated.
    """

    wire: int
    value: bool = False

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, QUANTUM),)

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ()

    def inverse(self) -> "Init":
        return Init(self.wire, self.value)


@dataclass(frozen=True)
class Discard(Gate):
    """Drop a qubit without asserting its state (yields a mixed state)."""

    wire: int

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, QUANTUM),)

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ()

    def inverse(self) -> Gate:
        raise IrreversibleError("cannot reverse a Discard gate")


@dataclass(frozen=True)
class CInit(Gate):
    """Allocate a fresh classical wire holding *value*."""

    wire: int
    value: bool = False

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ()

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, CLASSICAL),)

    def inverse(self) -> "CTerm":
        return CTerm(self.wire, self.value)


@dataclass(frozen=True)
class CTerm(Gate):
    """Assertively terminate a classical wire asserted to equal *value*."""

    wire: int
    value: bool = False

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, CLASSICAL),)

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ()

    def inverse(self) -> "CInit":
        return CInit(self.wire, self.value)


@dataclass(frozen=True)
class CDiscard(Gate):
    """Drop a classical wire."""

    wire: int

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, CLASSICAL),)

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ()

    def inverse(self) -> Gate:
        raise IrreversibleError("cannot reverse a CDiscard gate")


@dataclass(frozen=True)
class Measure(Gate):
    """Measure a qubit in the computational basis, turning it into a Bit.

    The wire id is preserved; only its type changes from quantum to
    classical (this mirrors Quipper, where ``measure`` consumes a Qubit and
    produces a Bit occupying the same circuit wire).
    """

    wire: int

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, QUANTUM),)

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, CLASSICAL),)

    def inverse(self) -> Gate:
        raise IrreversibleError("cannot reverse a Measure gate")


# ---------------------------------------------------------------------------
# Classical logic gates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CGate(Gate):
    """A classical logic gate writing f(inputs) into a fresh classical wire.

    When ``uncompute`` is True the gate instead *consumes* the target wire,
    asserting it equals f(inputs) -- this makes CGates reversible, which is
    what allows Quipper to reverse circuits containing classical logic.
    Supported names: ``"and"``, ``"or"``, ``"xor"``, ``"not"``, ``"eq"``.
    """

    name: str
    target: int
    inputs: tuple[int, ...]
    uncompute: bool = False

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        wires = tuple((w, CLASSICAL) for w in self.inputs)
        if self.uncompute:
            wires = ((self.target, CLASSICAL),) + wires
        return wires

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        wires = tuple((w, CLASSICAL) for w in self.inputs)
        if not self.uncompute:
            wires = ((self.target, CLASSICAL),) + wires
        return wires

    def inverse(self) -> "CGate":
        return replace(self, uncompute=not self.uncompute)


@dataclass(frozen=True)
class CNot(Gate):
    """In-place classical NOT of a classical wire, possibly controlled."""

    wire: int
    controls: tuple[Control, ...] = ()

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return ((self.wire, CLASSICAL),) + tuple(
            (c.wire, c.wire_type) for c in self.controls
        )

    wires_out = wires_in

    def inverse(self) -> "CNot":
        return self


# ---------------------------------------------------------------------------
# Comments and subroutine calls
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comment(Gate):
    """A no-op annotation, optionally labelling wires (Section 5.3.1)."""

    text: str
    labels: tuple[tuple[int, str, str], ...] = ()  # (wire, wire_type, label)
    inverted: bool = False

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return tuple((w, t) for (w, t, _) in self.labels)

    wires_out = wires_in

    def inverse(self) -> "Comment":
        return replace(self, inverted=not self.inverted)


@dataclass(frozen=True)
class BoxCall(Gate):
    """Invocation of a boxed subcircuit (Section 4.4.4).

    ``in_wires`` bind the subroutine's typed inputs; ``out_wires`` receive
    its typed outputs.  ``repetitions`` iterates the subroutine in place
    (requires input and output shapes to agree); hierarchical gate counting
    multiplies through it, which is what makes counting circuits of
    trillions of gates tractable (Section 5.4).
    """

    name: str
    in_wires: tuple[tuple[int, str], ...]
    out_wires: tuple[tuple[int, str], ...]
    controls: tuple[Control, ...] = ()
    inverted: bool = False
    repetitions: int = 1

    def wires_in(self) -> tuple[tuple[int, str], ...]:
        return self.in_wires + tuple((c.wire, c.wire_type) for c in self.controls)

    def wires_out(self) -> tuple[tuple[int, str], ...]:
        return self.out_wires + tuple((c.wire, c.wire_type) for c in self.controls)

    def inverse(self) -> "BoxCall":
        return replace(
            self,
            in_wires=self.out_wires,
            out_wires=self.in_wires,
            inverted=not self.inverted,
        )


def control_wires(gate: Gate) -> tuple[Control, ...]:
    """The controls of a gate, or () for uncontrollable gate kinds."""
    return getattr(gate, "controls", ())


def map_gate_wires(gate: Gate, fn) -> Gate:
    """Return a copy of *gate* with every wire id replaced by ``fn(id)``.

    Used when instantiating a stored circuit into a new context (subroutine
    inlining, reversal of traced functions, transformers).
    """
    if isinstance(gate, NamedGate):
        return replace(
            gate,
            targets=tuple(fn(w) for w in gate.targets),
            controls=tuple(c._replace(wire=fn(c.wire)) for c in gate.controls),
        )
    if isinstance(gate, (Init, Term, Discard, CInit, CTerm, CDiscard, Measure)):
        return replace(gate, wire=fn(gate.wire))
    if isinstance(gate, CGate):
        return replace(
            gate, target=fn(gate.target), inputs=tuple(fn(w) for w in gate.inputs)
        )
    if isinstance(gate, CNot):
        return replace(
            gate,
            wire=fn(gate.wire),
            controls=tuple(c._replace(wire=fn(c.wire)) for c in gate.controls),
        )
    if isinstance(gate, Comment):
        return replace(
            gate, labels=tuple((fn(w), t, s) for (w, t, s) in gate.labels)
        )
    if isinstance(gate, BoxCall):
        return replace(
            gate,
            in_wires=tuple((fn(w), t) for (w, t) in gate.in_wires),
            out_wires=tuple((fn(w), t) for (w, t) in gate.out_wires),
            controls=tuple(c._replace(wire=fn(c.wire)) for c in gate.controls),
        )
    raise TypeError(f"unknown gate kind: {gate!r}")


def with_extra_controls(gate: Gate, extra: tuple[Control, ...]) -> Gate:
    """Attach additional controls to a gate, where meaningful.

    Init/Term/Comment gates are "nocontrol" in Quipper's terminology: an
    ancilla starts in |0> regardless of any enclosing control context, so
    block controls pass over them unchanged.
    """
    if not extra:
        return gate
    if isinstance(gate, (NamedGate, CNot, BoxCall)):
        existing = {c.wire for c in gate.controls}
        new = tuple(c for c in extra if c.wire not in existing)
        return replace(gate, controls=gate.controls + new)
    return gate
