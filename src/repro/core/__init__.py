"""Core of the Quipper reproduction: wires, gates, circuits, and the builder.

The public names re-exported here are the day-to-day vocabulary of the
library; see :mod:`repro.core.builder` for the programming model.
"""

from .builder import Circ, Signed, build, neg
from .circuit import BCircuit, Circuit, Subroutine
from .errors import (
    AssertionFailedError,
    BoxError,
    CloningError,
    DeadWireError,
    DynamicLiftingError,
    IrreversibleError,
    LiftingError,
    QuipperError,
    ScopeError,
    ShapeMismatchError,
    SimulationError,
    WireTypeError,
)
from .gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from .qdata import (
    QData,
    bit,
    qdata_leaves,
    qdata_rebuild,
    qubit,
    same_shape,
    shape_signature,
)
from .wires import Bit, Qubit, Wire

__all__ = [
    "Circ",
    "Signed",
    "build",
    "neg",
    "BCircuit",
    "Circuit",
    "Subroutine",
    "Qubit",
    "Bit",
    "Wire",
    "qubit",
    "bit",
    "QData",
    "qdata_leaves",
    "qdata_rebuild",
    "same_shape",
    "shape_signature",
    "Gate",
    "NamedGate",
    "Init",
    "Term",
    "Discard",
    "CInit",
    "CTerm",
    "CDiscard",
    "Measure",
    "CGate",
    "CNot",
    "Comment",
    "BoxCall",
    "Control",
    "QuipperError",
    "CloningError",
    "DeadWireError",
    "WireTypeError",
    "ShapeMismatchError",
    "ScopeError",
    "IrreversibleError",
    "AssertionFailedError",
    "DynamicLiftingError",
    "BoxError",
    "SimulationError",
    "LiftingError",
]
