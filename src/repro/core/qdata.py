"""Shape-generic quantum data (the paper's ``QCData`` / ``QShape``).

Quipper uses Haskell type classes to make operations like ``qinit``,
``measure`` and ``controlled_not`` work on arbitrary nested structures of
qubits and bits (Section 4.5).  This module provides the Python equivalent:
structural recursion over

* :class:`~repro.core.wires.Qubit` / :class:`~repro.core.wires.Bit` leaves,
* tuples and lists,
* dicts with orderable keys (the paper's ``IntMap``),
* custom register types implementing the :class:`QData` protocol
  (``QDInt``, ``QIntTF``, ``FPReal``, ...),
* embedded parameters (``bool``, ``int``, ``float``, ``str``, ``None``),
  which carry no wires -- this is the paper's "shape of the data"
  (Section 4.3.2).

A *shape specimen* is a piece of qdata whose wire ids are irrelevant; the
module-level singletons :data:`qubit` and :data:`bit` serve as leaves for
building specimens, e.g. ``(qubit, [qubit] * 4)``.
"""

from __future__ import annotations

from typing import Iterator

from .errors import ShapeMismatchError
from .wires import Bit, Qubit, Wire

#: Shape specimen leaves.
qubit = Qubit(-1)
bit = Bit(-1)

_PARAM_TYPES = (bool, int, float, str, complex, type(None))


class QData:
    """Protocol base class for custom quantum register types.

    Subclasses must implement :meth:`qdata_leaves` (the ordered wires the
    register occupies) and :meth:`qdata_rebuild` (construct an equal-shaped
    register over new wires, preserving all parameter components).
    Subclassing is optional -- any object with these two methods is
    accepted -- but inheriting documents intent.
    """

    def qdata_leaves(self) -> list[Wire]:
        raise NotImplementedError

    def qdata_rebuild(self, leaves: list[Wire]) -> "QData":
        raise NotImplementedError


def _is_custom(data: object) -> bool:
    return hasattr(data, "qdata_leaves") and hasattr(data, "qdata_rebuild")


def qdata_leaves(data: object) -> list[Wire]:
    """Flatten *data* into its ordered list of wire leaves."""
    out: list[Wire] = []
    _collect(data, out)
    return out


def _collect(data: object, out: list[Wire]) -> None:
    if isinstance(data, Wire):
        out.append(data)
    elif isinstance(data, _PARAM_TYPES):
        pass
    elif isinstance(data, (tuple, list)):
        for item in data:
            _collect(item, out)
    elif isinstance(data, dict):
        for key in sorted(data):
            _collect(data[key], out)
    elif _is_custom(data):
        out.extend(data.qdata_leaves())
    else:
        raise ShapeMismatchError(f"not quantum data: {data!r}")


def qdata_rebuild(shape: object, leaves: Iterator[Wire] | list[Wire]):
    """Rebuild a structure shaped like *shape* from an iterable of wires.

    Parameters embedded in the shape are copied through unchanged; each wire
    leaf position consumes one wire from *leaves*.
    """
    it = iter(leaves)
    result = _rebuild(shape, it)
    rest = list(it)
    if rest:
        raise ShapeMismatchError(f"{len(rest)} unconsumed wires in rebuild")
    return result


def _rebuild(shape: object, it: Iterator[Wire]):
    if isinstance(shape, Wire):
        try:
            return next(it)
        except StopIteration:
            raise ShapeMismatchError("ran out of wires in rebuild") from None
    if isinstance(shape, _PARAM_TYPES):
        return shape
    if isinstance(shape, tuple):
        return tuple(_rebuild(s, it) for s in shape)
    if isinstance(shape, list):
        return [_rebuild(s, it) for s in shape]
    if isinstance(shape, dict):
        return {key: _rebuild(shape[key], it) for key in sorted(shape)}
    if _is_custom(shape):
        n = len(shape.qdata_leaves())
        taken = []
        for _ in range(n):
            try:
                taken.append(next(it))
            except StopIteration:
                raise ShapeMismatchError("ran out of wires in rebuild") from None
        return shape.qdata_rebuild(taken)
    raise ShapeMismatchError(f"not a quantum data shape: {shape!r}")


def shape_signature(data: object) -> str:
    """A string signature of the shape of *data* (for box-call keying).

    Two pieces of qdata with the same signature have the same wire count,
    leaf types and parameter components, so a boxed subroutine generated for
    one is valid for the other (Quipper keys subroutines the same way).
    """
    parts: list[str] = []
    _signature(data, parts)
    return "".join(parts)


def _signature(data: object, parts: list[str]) -> None:
    if isinstance(data, Qubit):
        parts.append("Q")
    elif isinstance(data, Bit):
        parts.append("C")
    elif isinstance(data, _PARAM_TYPES):
        parts.append(f"<{data!r}>")
    elif isinstance(data, tuple):
        parts.append("(")
        for item in data:
            _signature(item, parts)
        parts.append(")")
    elif isinstance(data, list):
        parts.append("[")
        for item in data:
            _signature(item, parts)
        parts.append("]")
    elif isinstance(data, dict):
        parts.append("{")
        for key in sorted(data):
            parts.append(f"{key}:")
            _signature(data[key], parts)
        parts.append("}")
    elif _is_custom(data):
        parts.append(type(data).__name__)
        parts.append("[")
        for leaf in data.qdata_leaves():
            _signature(leaf, parts)
        parts.append("]")
    else:
        raise ShapeMismatchError(f"not quantum data: {data!r}")


def same_shape(a: object, b: object) -> bool:
    """True if *a* and *b* have identical shape (including parameters)."""
    try:
        return shape_signature(a) == shape_signature(b)
    except ShapeMismatchError:
        return False
