"""Exception hierarchy for the Quipper reproduction.

Quipper performs a number of run-time checks that a linear/dependent type
system would perform statically (paper, Section 4.1).  Each check failure
maps to a distinct exception class so that tests can assert on the precise
failure mode.
"""

from __future__ import annotations


class QuipperError(Exception):
    """Base class for all errors raised by the library."""


class CloningError(QuipperError):
    """A wire was used twice in a single gate, violating no-cloning."""


class DeadWireError(QuipperError):
    """A gate was applied to a wire that is not currently live."""


class WireTypeError(QuipperError):
    """A quantum operation was applied to a classical wire or vice versa."""


class ShapeMismatchError(QuipperError):
    """Two pieces of quantum data had incompatible shapes."""


class ScopeError(QuipperError):
    """An ancilla escaped its scope, or a block was closed incorrectly."""


class IrreversibleError(QuipperError):
    """An attempt was made to reverse an irreversible circuit."""


class AssertionFailedError(QuipperError):
    """A qubit asserted to be |0> (or |1>) at termination was not."""


class DynamicLiftingError(QuipperError):
    """Dynamic lifting was requested in a context that cannot supply it."""


class BoxError(QuipperError):
    """A boxed subcircuit was defined or invoked inconsistently."""


class DanglingWiresError(QuipperError):
    """Live wires were left over at ``finish`` beyond the declared outputs.

    Raised only in ``on_extra="error"`` mode; carries the offending wires
    as ``(wire_id, wire_type)`` pairs in :attr:`wires`.
    """

    def __init__(self, message: str, wires: tuple = ()):
        super().__init__(message)
        self.wires = wires


class DanglingWiresWarning(UserWarning):
    """Live wires left over at ``finish`` were appended to the outputs.

    The structured counterpart of the historical silent repackaging of
    leftover wires as ``(outputs, extra)``: the warning object carries the
    appended wires as ``(wire_id, wire_type)`` pairs in :attr:`wires`.
    """

    def __init__(self, message: str, wires: tuple = ()):
        super().__init__(message)
        self.wires = wires


class SimulationError(QuipperError):
    """The simulator was given a circuit it cannot execute."""


class LiftingError(QuipperError):
    """The circuit-lifting (build_circuit) machinery was misused."""
