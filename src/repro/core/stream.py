"""Streaming circuit emission: generate gates without materializing them.

The paper's headline scalability result is that Quipper *represents*
circuits of trillions of gates without ever building them: boxed
subcircuits are generated once, and everything else is a stream.  The
materializing path of this reproduction (:func:`repro.core.builder.build`)
stores every top-level gate in a list before any consumer sees it, which
caps circuit size at RAM.  This module removes the cap: a
:class:`StreamingCirc` is a :class:`~repro.core.builder.Circ` whose gate
"list" is a sink -- every emitted gate is pushed to a consumer the moment
the builder function emits it, then dropped.  Memory stays O(live wires +
boxed subroutine bodies) no matter how many gates flow past.

The consumer side is the small :class:`StreamConsumer` protocol::

    consumer.begin(inputs, namespace)   # before the first gate
    consumer.gate(g)                    # once per emitted gate, in order
    consumer.finish(end)                # -> the consumer's result

Boxed subroutines are still materialized (they are generated once and are
small by construction); a ``BoxCall`` flows through the stream as a single
gate, which is what lets streaming counters cost repeated subroutine
calls symbolically (count-per-call x calls) instead of re-streaming them.

The user-facing surface is :meth:`repro.program.Program.stream`, which
wraps :func:`stream_build` (regenerate-per-consumer, never materialize)
and :func:`replay_bcircuit` (stream an already-built hierarchy) behind
one fluent handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..obs import core as _obs
from .builder import Circ
from .circuit import BCircuit, Subroutine
from .errors import QuipperError
from .gates import Gate
from .qdata import qdata_leaves


class StreamConsumer:
    """Base class for push-based consumers of a gate stream.

    Subclasses override any subset of the three hooks.  ``begin`` receives
    the circuit's typed input wires and the *live* namespace dictionary --
    for a generating stream the namespace grows as ``box`` definitions are
    encountered, but every ``BoxCall`` gate arrives strictly after its
    subroutine is defined, so lookups at :meth:`gate` time always succeed.
    ``finish`` receives a :class:`StreamEnd` and returns the consumer's
    result (a count, a report dict, a written file handle, ...).
    """

    def begin(self, inputs: tuple[tuple[int, str], ...],
              namespace: dict[str, Subroutine]) -> None:
        pass

    def gate(self, gate: Gate) -> None:
        pass

    def finish(self, end: "StreamEnd"):
        return None


@dataclass
class StreamEnd:
    """What a consumer learns only once the stream is exhausted."""

    inputs: tuple[tuple[int, str], ...]
    outputs: tuple[tuple[int, str], ...]
    namespace: dict[str, Subroutine]
    #: The structured output data returned by the generator function
    #: (``None`` for replayed circuits, which only know flat wire lists).
    out_struct: object = None
    #: Top-level gates emitted (NOT the inlined count).
    emitted: int = 0


class _StreamGates:
    """The gate "list" of a streaming builder: a sink, not a store.

    Appended gates are forwarded to the consumer and dropped.  Retention
    marks support :meth:`StreamingCirc.with_computed`, which must replay
    (inverted) the gates of its compute block: between ``push_mark`` and
    ``pop_mark`` the appended gates are additionally buffered, so memory
    is bounded by the largest enclosing compute block, not the circuit.
    """

    __slots__ = ("sink", "_emitted", "_buffer", "_base", "_marks")

    def __init__(self, sink: Callable[[Gate], None]):
        self.sink = sink
        self._emitted = 0
        self._buffer: list[Gate] = []
        self._base = 0
        self._marks: list[int] = []

    def append(self, gate: Gate) -> None:
        self._emitted += 1
        if self._marks:
            self._buffer.append(gate)
        self.sink(gate)

    def __len__(self) -> int:
        return self._emitted

    def __getitem__(self, index):
        # Transformer rules peek at the gate they just emitted.
        if index == -1 and (self._marks and self._buffer):
            return self._buffer[-1]
        raise QuipperError(
            "a streaming builder does not retain emitted gates; only the "
            "compute block of with_computed is buffered"
        )

    def push_mark(self) -> None:
        if _obs.ENABLED:
            _obs.add("stream.retention.marks")
        if not self._marks:
            self._base = self._emitted
        self._marks.append(self._emitted)

    def pop_mark(self) -> list[Gate]:
        start = self._marks.pop()
        recorded = self._buffer[start - self._base:]
        if _obs.ENABLED:
            _obs.observe("stream.retention.buffered", len(recorded))
        if not self._marks:
            self._buffer.clear()
        return recorded


class StreamingCirc(Circ):
    """A circuit builder that pushes every gate to a consumer and drops it.

    Behaves exactly like :class:`~repro.core.builder.Circ` -- same
    liveness checks, same block structure, same boxing (subroutine bodies
    are still traced into the namespace by ordinary materializing scratch
    builders) -- except that the top-level gate stream is never stored.
    """

    def __init__(self, sink: Callable[[Gate], None],
                 namespace: dict[str, Subroutine] | None = None):
        super().__init__(namespace=namespace)
        self.gates = _StreamGates(sink)

    def with_computed(self, compute: Callable[[], object],
                      action: Callable[[object], object]):
        """Compute, act, uncompute -- buffering only the compute block.

        The semantics match :meth:`Circ.with_computed`; the only
        difference is bookkeeping: a streaming builder cannot slice its
        (unstored) gate history, so the compute block's gates are
        buffered between retention marks and replayed inverted.
        """
        self.gates.push_mark()
        mid = compute()
        recorded = self.gates.pop_mark()
        result = action(mid)
        for gate in reversed(recorded):
            self._emit_raw(gate.inverse())
        return result

    def finish(self, outputs=None, on_extra: str = "warn",
               _stacklevel: int = 2):
        raise QuipperError(
            "a StreamingCirc cannot materialize a BCircuit; its gates "
            "were already streamed to the consumer"
        )


def stream_build(fn: Callable, shapes: tuple, consumer: StreamConsumer,
                 on_extra: str = "warn"):
    """Run *fn* over fresh wires, streaming every gate to *consumer*.

    The streaming analogue of :func:`repro.core.builder.build`: the same
    generation step, but no circuit object is ever constructed -- memory
    stays bounded however many gates *fn* emits.  Returns whatever
    ``consumer.finish`` returns.
    """
    qc = StreamingCirc(consumer.gate)
    args = [qc.fresh_like(shape) for shape in shapes]
    qc.snapshot_inputs()
    consumer.begin(qc._inputs, qc.namespace)
    outs = fn(qc, *args)
    out_struct = qc._resolve_outputs(outs, on_extra=on_extra, _stacklevel=3)
    outputs = tuple(
        (leaf.wire_id, leaf.wire_type) for leaf in qdata_leaves(out_struct)
    )
    return consumer.finish(StreamEnd(
        inputs=qc._inputs,
        outputs=outputs,
        namespace=qc.namespace,
        out_struct=out_struct,
        emitted=len(qc.gates),
    ))


def replay_bcircuit(bc: BCircuit, consumer: StreamConsumer,
                    out_struct: object = None):
    """Stream an already-built hierarchy's top-level gates to *consumer*.

    Gives every circuit -- loaded, transformed, or built -- the same
    consumer surface as a generating stream.  Returns whatever
    ``consumer.finish`` returns.
    """
    consumer.begin(bc.circuit.inputs, bc.namespace)
    for gate in bc.circuit.gates:
        consumer.gate(gate)
    return consumer.finish(StreamEnd(
        inputs=bc.circuit.inputs,
        outputs=bc.circuit.outputs,
        namespace=bc.namespace,
        out_struct=out_struct,
        emitted=len(bc.circuit.gates),
    ))


__all__ = [
    "StreamConsumer",
    "StreamEnd",
    "StreamingCirc",
    "replay_bcircuit",
    "stream_build",
]
