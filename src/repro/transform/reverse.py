"""Circuit-level reversal.

Per Section 4.2.2 of the paper, circuits containing qubit initializations and
assertive terminations are unitary on the subspace where the assertions hold,
so Quipper reverses them "without complaint": Init becomes Term and vice
versa.  Circuits containing measurements or non-assertive discards are not
reversible and raise :class:`~repro.core.errors.IrreversibleError`.
"""

from __future__ import annotations

from ..core.circuit import BCircuit, Circuit


def reverse_circuit(circuit: Circuit) -> Circuit:
    """The inverse of a circuit: gates inverted, in reverse order."""
    return Circuit(
        inputs=circuit.outputs,
        gates=[gate.inverse() for gate in reversed(circuit.gates)],
        outputs=circuit.inputs,
    )


def reverse_bcircuit(bc: BCircuit) -> BCircuit:
    """Reverse the main circuit of a hierarchy.

    Subroutine definitions are shared unchanged: a reversed ``BoxCall``
    simply carries an ``inverted`` flag (this is how reversing stays O(size
    of the representation), not O(size of the inlined circuit)).
    """
    return BCircuit(reverse_circuit(bc.circuit), bc.namespace)
