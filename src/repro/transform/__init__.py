"""Whole-circuit operators: reversal, transformation, decomposition, counting.

These implement the paper's Section 4.4.3 operators (``reverse_simple``,
``decompose_generic``) and the gate-counting machinery behind Section 5.4's
trillion-gate counts.
"""

from .depth import StreamingDepth, circuit_depth, t_depth
from .count import (
    GateCountKey,
    StreamingCounter,
    aggregate_gate_count,
    count_circuit_flat,
    total_gates,
    total_logical_gates,
)
from .inline import CompiledCircuit, compile_flat, inline
from .reverse import reverse_bcircuit, reverse_circuit
from .toffoli import decompose_toffoli
from .binary import decompose_binary
from .transformer import transform_bcircuit
from .pipeline import (
    StreamTransformer,
    canonicalize_wires,
    fixpoint_rule,
    to_binary,
    to_toffoli,
    transform_bcircuit_fused,
)

TOFFOLI = "toffoli"
BINARY = "binary"


def decompose_generic(base: str, bc):
    """Decompose a circuit hierarchy into the given gate base.

    ``base`` is :data:`TOFFOLI` (gates with at most two controls on NOT,
    one control elsewhere) or :data:`BINARY` (at most two wires per gate,
    using the V / V* construction of Nielsen-Chuang Section 4.3, as in the
    paper's ``timestep2`` example).
    """
    if base == TOFFOLI:
        return decompose_toffoli(bc)
    if base == BINARY:
        return decompose_binary(decompose_toffoli(bc))
    raise ValueError(f"unknown gate base {base!r}")


__all__ = [
    "GateCountKey",
    "StreamingCounter",
    "StreamingDepth",
    "StreamTransformer",
    "aggregate_gate_count",
    "count_circuit_flat",
    "total_gates",
    "total_logical_gates",
    "circuit_depth",
    "t_depth",
    "inline",
    "compile_flat",
    "CompiledCircuit",
    "reverse_bcircuit",
    "reverse_circuit",
    "decompose_generic",
    "decompose_toffoli",
    "decompose_binary",
    "transform_bcircuit",
    "transform_bcircuit_fused",
    "canonicalize_wires",
    "fixpoint_rule",
    "to_toffoli",
    "to_binary",
    "TOFFOLI",
    "BINARY",
]
