"""The generic circuit transformer framework (``transform_generic``).

A *transformer* is a rule that receives each gate of a circuit together
with a builder positioned at that gate, and either emits replacement gates
or passes the gate through.  Transformers are applied recursively through
the box hierarchy: every subroutine body is transformed once, and box calls
are preserved, so transforming a trillion-gate circuit costs only the size
of its *representation* (Section 4.4: "circuit transformations, e.g.
replacing one elementary gate set by another").
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.builder import Circ
from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.gates import Gate
from .inline import _max_wire_id

#: A transformer rule: ``rule(qc, gate) -> handled``.  It may emit any
#: number of gates into ``qc``; returning False (or None) passes the
#: original gate through unchanged.
Rule = Callable[[Circ, Gate], Optional[bool]]


def _rewrite_circuit(
    circuit: Circuit, rule: Rule, namespace: dict[str, Subroutine]
) -> Circuit:
    qc = Circ(namespace=namespace)
    qc._live = dict(circuit.inputs)
    qc._next_wire = _max_wire_id(circuit) + 1
    qc._max_live = len(qc._live)
    for gate in circuit.gates:
        handled = rule(qc, gate)
        if not handled:
            qc._emit_raw(gate)
    return Circuit(
        inputs=circuit.inputs, gates=qc.gates, outputs=circuit.outputs
    )


def _legacy_transform_bcircuit(bc: BCircuit, rule: Rule) -> BCircuit:
    """The pre-pipeline transformer: one full hierarchy rewrite per rule.

    Kept as the reference semantics for the fused pipeline's equivalence
    tests and as the sequential baseline of the fused-vs-sequential
    benchmark.  Rewrites *every* subroutine body and allocates a fresh
    namespace even when the rule touches nothing.
    """
    new_namespace: dict[str, Subroutine] = {}
    for name, sub in bc.namespace.items():
        new_sub = Subroutine(
            name=sub.name,
            circuit=None,  # filled below; callees may be referenced first
            in_shape=sub.in_shape,
            out_shape=sub.out_shape,
        )
        # Seed a provisional width so that builder bookkeeping works while
        # callee bodies are still being rewritten; recomputed on check().
        new_sub._width = sub.width(bc.namespace)
        new_sub._signature = getattr(sub, "_signature", None)
        new_namespace[name] = new_sub
    for name, sub in bc.namespace.items():
        new_namespace[name].circuit = _rewrite_circuit(
            sub.circuit, rule, new_namespace
        )
    main = _rewrite_circuit(bc.circuit, rule, new_namespace)
    for new_sub in new_namespace.values():
        new_sub._width = None
    return BCircuit(main, new_namespace)


def transform_bcircuit(bc: BCircuit, rule: Rule) -> BCircuit:
    """Apply a transformer rule to a whole circuit hierarchy.

    Every subroutine body and the main circuit are rewritten gate by gate.
    The rule may allocate ancillas and emit multiple gates per input gate;
    wire ids of the original circuit are preserved, and new wires are
    allocated above the existing range.

    A subroutine body that the rule leaves untouched is detected (the
    rewritten gate stream compares equal to the original) and the original
    :class:`~repro.core.circuit.Subroutine` is reused, cached width and
    all, instead of allocating a fresh namespace entry.

    This is the single-rule case of the fused pipeline
    (:func:`repro.transform.pipeline.transform_bcircuit_fused`); to apply
    several rules, fuse them into one traversal rather than calling this
    k times.
    """
    from .pipeline import transform_bcircuit_fused

    return transform_bcircuit_fused(bc, rule)
