"""Circuit depth: critical-path resource estimation.

Gate counts (Section 5.4) measure total work; *depth* measures the
critical path -- the number of time steps when independent gates run in
parallel.  Like the gate counter, the depth computation works on the
hierarchical representation: a boxed subroutine's depth is computed once
and a call occupies all its bound wires for that many steps (repetitions
multiply, since iterations of an in-place subroutine are sequential).

This is conservative for box calls (a call synchronizes all its wires,
so parallelism *across* a subroutine boundary is not exploited), which is
the standard trade for hierarchy-preserving estimation.
"""

from __future__ import annotations

from ..core.circuit import BCircuit, Circuit
from ..core.errors import QuipperError
from ..core.gates import BoxCall, Comment, Gate, NamedGate
from ..core.stream import StreamConsumer


def _gate_span(gate: Gate, namespace, memo) -> tuple[list[int], int]:
    """The wires a gate occupies and the number of steps it takes."""
    if isinstance(gate, BoxCall):
        steps = _sub_depth(gate.name, namespace, memo) * gate.repetitions
        wires = [w for w, _ in gate.in_wires]
        wires += [w for w, _ in gate.out_wires if (w, "_") and w not in wires]
        wires += [c.wire for c in gate.controls]
        return wires, max(steps, 1)
    ins = [w for w, _ in gate.wires_in()]
    outs = [w for w, _ in gate.wires_out() if w not in ins]
    return ins + outs, 1


def _sub_depth(name: str, namespace, memo) -> int:
    if name not in memo:
        sub = namespace.get(name)
        if sub is None:
            raise QuipperError(f"undefined subroutine {name!r}")
        memo[name] = None  # cycle guard
        memo[name] = _circuit_depth(sub.circuit, namespace, memo)
    if memo[name] is None:
        raise QuipperError(f"recursive subroutine {name!r}")
    return memo[name]


def _circuit_depth(circuit: Circuit, namespace, memo) -> int:
    frontier: dict[int, int] = {w: 0 for w, _ in circuit.inputs}
    total = 0
    for gate in circuit.gates:
        if isinstance(gate, Comment):
            continue
        wires, steps = _gate_span(gate, namespace, memo)
        start = max((frontier.get(w, 0) for w in wires), default=0)
        finish = start + steps
        for wire in wires:
            frontier[wire] = finish
        total = max(total, finish)
    return total


def circuit_depth(bc: BCircuit) -> int:
    """The critical-path depth of a hierarchical circuit.

    Comments cost nothing; every other gate costs one step on the wires
    it touches; a boxed call costs its body's depth (times repetitions)
    on its bound wires.  Exact big-integer arithmetic throughout, so the
    depth of trillion-gate circuits is as cheap to compute as their count.
    """
    memo: dict[str, int | None] = {}
    return _circuit_depth(bc.circuit, bc.namespace, memo)


def _t_gate_span(gate: Gate, namespace, memo) -> tuple[list[int], int]:
    """The wires a gate occupies and its T-step cost (T-depth model)."""
    if isinstance(gate, BoxCall):
        steps = _sub_t_depth(gate.name, namespace, memo) * gate.repetitions
        wires = [w for w, _ in gate.in_wires]
        wires += [c.wire for c in gate.controls]
        return wires, steps
    is_t = isinstance(gate, NamedGate) and gate.name == "T"
    wires = [w for w, _ in gate.wires_in()]
    wires += [w for w, _ in gate.wires_out() if w not in wires]
    return wires, 1 if is_t else 0


def _sub_t_depth(name: str, namespace, memo) -> int:
    if name not in memo:
        sub = namespace.get(name)
        if sub is None:
            raise QuipperError(f"undefined subroutine {name!r}")
        memo[name] = None  # cycle guard
        memo[name] = _circuit_t_depth(sub.circuit, namespace, memo)
    if memo[name] is None:
        raise QuipperError(f"recursive subroutine {name!r}")
    return memo[name]


def _circuit_t_depth(circuit: Circuit, namespace, memo) -> int:
    frontier: dict[int, int] = {w: 0 for w, _ in circuit.inputs}
    total = 0
    for gate in circuit.gates:
        if isinstance(gate, Comment):
            continue
        wires, steps = _t_gate_span(gate, namespace, memo)
        start = max((frontier.get(w, 0) for w in wires), default=0)
        finish = start + steps
        for wire in wires:
            frontier[wire] = finish
        total = max(total, finish)
    return total


def t_depth(bc: BCircuit) -> int:
    """Depth counting only T/T* gates (fault-tolerance cost model).

    Clifford gates are treated as free (depth 0); each T or T* costs one
    step.  Useful after a decomposition into a Clifford+T-ish base.
    """
    memo: dict[str, int | None] = {}
    return _circuit_t_depth(bc.circuit, bc.namespace, memo)


class StreamingDepth(StreamConsumer):
    """Critical-path depth consumer for a gate stream.

    Produces exactly :func:`circuit_depth` (or :func:`t_depth` with
    ``t_only``) without the main circuit existing.  A boxed call costs its
    memoized body depth on its bound wires, so repeated-subroutine streams
    stay symbolic.  Wires that die (their gate consumes but does not
    re-emit them) are pruned from the frontier: since the builder never
    reuses a wire id, a dead wire's finish time can only matter through
    the running maximum, which has already absorbed it.  Memory is
    therefore O(live width), not O(wires ever used).
    """

    def __init__(self, t_only: bool = False):
        self._span = _t_gate_span if t_only else _gate_span

    def begin(self, inputs, namespace) -> None:
        self.namespace = namespace
        self._memo: dict[str, int | None] = {}
        self.frontier: dict[int, int] = {w: 0 for w, _ in inputs}
        self.total = 0

    def gate(self, gate: Gate) -> None:
        if isinstance(gate, Comment):
            return
        wires, steps = self._span(gate, self.namespace, self._memo)
        frontier = self.frontier
        start = max((frontier.get(w, 0) for w in wires), default=0)
        finish = start + steps
        for wire in wires:
            frontier[wire] = finish
        self.total = max(self.total, finish)
        out_ids = {w for w, _ in gate.wires_out()}
        for wire, _ in gate.wires_in():
            if wire not in out_ids:
                frontier.pop(wire, None)

    def finish(self, end) -> int:
        return self.total
