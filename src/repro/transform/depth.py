"""Circuit depth: critical-path resource estimation.

Gate counts (Section 5.4) measure total work; *depth* measures the
critical path -- the number of time steps when independent gates run in
parallel.  Like the gate counter, the depth computation works on the
hierarchical representation: a boxed subroutine's depth is computed once
and a call occupies all its bound wires for that many steps (repetitions
multiply, since iterations of an in-place subroutine are sequential).

This is conservative for box calls (a call synchronizes all its wires,
so parallelism *across* a subroutine boundary is not exploited), which is
the standard trade for hierarchy-preserving estimation.
"""

from __future__ import annotations

from ..core.circuit import BCircuit, Circuit
from ..core.errors import QuipperError
from ..core.gates import BoxCall, Comment, Gate


def _gate_span(gate: Gate, namespace, memo) -> tuple[list[int], int]:
    """The wires a gate occupies and the number of steps it takes."""
    if isinstance(gate, BoxCall):
        steps = _sub_depth(gate.name, namespace, memo) * gate.repetitions
        wires = [w for w, _ in gate.in_wires]
        wires += [w for w, _ in gate.out_wires if (w, "_") and w not in wires]
        wires += [c.wire for c in gate.controls]
        return wires, max(steps, 1)
    ins = [w for w, _ in gate.wires_in()]
    outs = [w for w, _ in gate.wires_out() if w not in ins]
    return ins + outs, 1


def _sub_depth(name: str, namespace, memo) -> int:
    if name not in memo:
        sub = namespace.get(name)
        if sub is None:
            raise QuipperError(f"undefined subroutine {name!r}")
        memo[name] = None  # cycle guard
        memo[name] = _circuit_depth(sub.circuit, namespace, memo)
    if memo[name] is None:
        raise QuipperError(f"recursive subroutine {name!r}")
    return memo[name]


def _circuit_depth(circuit: Circuit, namespace, memo) -> int:
    frontier: dict[int, int] = {w: 0 for w, _ in circuit.inputs}
    total = 0
    for gate in circuit.gates:
        if isinstance(gate, Comment):
            continue
        wires, steps = _gate_span(gate, namespace, memo)
        start = max((frontier.get(w, 0) for w in wires), default=0)
        finish = start + steps
        for wire in wires:
            frontier[wire] = finish
        total = max(total, finish)
    return total


def circuit_depth(bc: BCircuit) -> int:
    """The critical-path depth of a hierarchical circuit.

    Comments cost nothing; every other gate costs one step on the wires
    it touches; a boxed call costs its body's depth (times repetitions)
    on its bound wires.  Exact big-integer arithmetic throughout, so the
    depth of trillion-gate circuits is as cheap to compute as their count.
    """
    memo: dict[str, int | None] = {}
    return _circuit_depth(bc.circuit, bc.namespace, memo)


def t_depth(bc: BCircuit) -> int:
    """Depth counting only T/T* gates (fault-tolerance cost model).

    Clifford gates are treated as free (depth 0); each T or T* costs one
    step.  Useful after a decomposition into a Clifford+T-ish base.
    """
    memo: dict[str, int | None] = {}

    def sub_t_depth(name: str) -> int:
        if name not in memo:
            sub = bc.namespace.get(name)
            if sub is None:
                raise QuipperError(f"undefined subroutine {name!r}")
            memo[name] = None
            memo[name] = walk(sub.circuit)
        if memo[name] is None:
            raise QuipperError(f"recursive subroutine {name!r}")
        return memo[name]

    def walk(circuit: Circuit) -> int:
        frontier: dict[int, int] = {w: 0 for w, _ in circuit.inputs}
        total = 0
        for gate in circuit.gates:
            if isinstance(gate, Comment):
                continue
            if isinstance(gate, BoxCall):
                steps = sub_t_depth(gate.name) * gate.repetitions
                wires = [w for w, _ in gate.in_wires]
                wires += [c.wire for c in gate.controls]
            else:
                from ..core.gates import NamedGate

                is_t = isinstance(gate, NamedGate) and gate.name == "T"
                steps = 1 if is_t else 0
                wires = [w for w, _ in gate.wires_in()]
                wires += [w for w, _ in gate.wires_out() if w not in wires]
            start = max((frontier.get(w, 0) for w in wires), default=0)
            finish = start + steps
            for wire in wires:
                frontier[wire] = finish
            total = max(total, finish)
        return total

    return walk(bc.circuit)
