"""Decomposition into the binary (two-qubit) gate base.

This is the second stage of ``decompose_generic(Binary)`` (Section 4.4.3):
Toffoli gates are decomposed into binary gates using the V / V* construction
of Nielsen-Chuang Section 4.3, exactly the shape shown in the paper's
``timestep2`` figure:

    CCX(a, b; t)  =  CV(b; t) CX(a; b) CV*(b; t) CX(a; b) CV(a; t)

where V is the square root of NOT.  Negative controls on a Toffoli are
handled by conjugating the corresponding control wire with X gates.

Controlled two-qubit gates are first expanded:

    W(a, b)    = CX(a; b) CH(b; a) CX(a; b)        (controls land on the CH)
    swap(a, b) = CX(b; a) CX(a; b) CX(b; a)        (controls on the middle)

which can synthesize new multi-controlled gates; the pass therefore runs to
a fixpoint (at most three rounds in practice).
"""

from __future__ import annotations

from ..core.builder import Circ
from ..core.circuit import BCircuit
from ..core.gates import Control, Gate, NamedGate
from ..core.wires import QUANTUM
from .toffoli import _reduce_controls
from .transformer import transform_bcircuit


def _quantum_controls(gate: NamedGate) -> list[Control]:
    return [c for c in gate.controls if c.wire_type == QUANTUM]


def _is_binary(gate: Gate) -> bool:
    """True if the gate touches at most two quantum wires."""
    if not isinstance(gate, NamedGate):
        return True
    return len(gate.targets) + len(_quantum_controls(gate)) <= 2


def _emit_toffoli_binary(qc: Circ, gate: NamedGate) -> None:
    """Emit the 5-gate binary expansion of a 2-control NOT."""
    (target,) = gate.targets
    c1, c2 = _quantum_controls(gate)
    classical = tuple(c for c in gate.controls if c.wire_type != QUANTUM)
    flips = [c for c in (c1, c2) if not c.positive]
    for ctl in flips:
        qc._emit_raw(NamedGate("not", (ctl.wire,)))
    a, b = c1.wire, c2.wire

    def cv(tgt: int, ctl: int, inverted: bool = False) -> None:
        qc._emit_raw(
            NamedGate(
                "V",
                (tgt,),
                (Control(ctl, True, QUANTUM),) + classical,
                inverted=inverted,
            )
        )

    cv(target, b)
    qc._emit_raw(
        NamedGate("not", (b,), (Control(a, True, QUANTUM),) + classical)
    )
    cv(target, b, inverted=True)
    qc._emit_raw(
        NamedGate("not", (b,), (Control(a, True, QUANTUM),) + classical)
    )
    cv(target, a)
    for ctl in reversed(flips):
        qc._emit_raw(NamedGate("not", (ctl.wire,)))


def _binary_rule(qc: Circ, gate: Gate) -> bool:
    if _is_binary(gate):
        return False
    assert isinstance(gate, NamedGate)
    quantum_controls = _quantum_controls(gate)
    classical = tuple(c for c in gate.controls if c.wire_type != QUANTUM)
    if gate.name in ("not", "X") and len(quantum_controls) == 2:
        _emit_toffoli_binary(qc, gate)
        return True
    if gate.name == "swap":
        a, b = gate.targets
        qc._emit_raw(NamedGate("not", (a,), (Control(b, True, QUANTUM),)))
        qc._emit_raw(
            NamedGate(
                "not", (b,), (Control(a, True, QUANTUM),) + tuple(gate.controls)
            )
        )
        qc._emit_raw(NamedGate("not", (a,), (Control(b, True, QUANTUM),)))
        return True
    if gate.name == "W":
        a, b = gate.targets
        qc._emit_raw(NamedGate("not", (b,), (Control(a, True, QUANTUM),)))
        qc._emit_raw(
            NamedGate(
                "H", (a,), (Control(b, True, QUANTUM),) + tuple(gate.controls)
            )
        )
        qc._emit_raw(NamedGate("not", (b,), (Control(a, True, QUANTUM),)))
        return True
    if len(gate.targets) == 1 and len(quantum_controls) >= 2:
        # Multi-controlled single-qubit gate (e.g. the CH synthesized by a
        # controlled W): reduce controls with an ancilla chain.  The chain
        # emits 2-control NOTs, picked up by the next fixpoint round.
        reduced, cleanup = _reduce_controls(qc, gate.controls, 1)
        qc._emit_raw(
            NamedGate(
                gate.name,
                gate.targets,
                reduced,
                inverted=gate.inverted,
                param=gate.param,
            )
        )
        cleanup()
        return True
    raise NotImplementedError(
        f"no binary decomposition implemented for gate {gate!r}"
    )


def decompose_binary(bc: BCircuit) -> BCircuit:
    """Reduce a Toffoli-base circuit to two-qubit gates.

    Run :func:`~repro.transform.toffoli.decompose_toffoli` first (or use
    ``decompose_generic(BINARY, ...)``, which chains both passes).  The
    pass iterates to a fixpoint because expanding controlled W/swap gates
    can synthesize new Toffolis.
    """
    for _ in range(8):
        done = all(
            _is_binary(g) for g in bc.circuit.gates
        ) and all(
            _is_binary(g)
            for sub in bc.namespace.values()
            for g in sub.circuit.gates
        )
        if done:
            return bc
        bc = transform_bcircuit(bc, _binary_rule)
    raise RuntimeError("binary decomposition did not reach a fixpoint")
