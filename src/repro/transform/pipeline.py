"""Single-pass fused transformer pipelines.

Reproduces the workflow highlighted by the paper's Section 4.4.3 ("circuit
transformations, e.g. replacing one elementary gate set by another") and by
the resource-estimation follow-up work: one program definition, then a
*chain* of gate-set transformations and resource counts over it.  The
legacy entry point :func:`~repro.transform.transformer.transform_bcircuit`
applies one rule per call, so a chain of k rules costs k full rewrites of
the box hierarchy -- k traversals, k intermediate namespaces, k width
recomputations.

:func:`transform_bcircuit_fused` instead fuses the rules into a **single
traversal**: each gate of each subroutine body flows through the rule
chain once, the rewritten output of rule i feeding rule i+1 directly, so
the whole chain costs one pass regardless of k.  Two further economies:

* **Identity memoization** -- a subroutine body that no rule touches is
  detected (the output gate stream compares equal to the input) and the
  original :class:`~repro.core.circuit.Subroutine` object is reused,
  preserving its cached width instead of allocating a fresh namespace
  entry per pass.
* **Fixpoint rules** -- a rule wrapped with :func:`fixpoint_rule` has its
  own emissions fed back through itself until they stabilize, which lets
  self-expanding decompositions (the binary base synthesizes new Toffolis
  while eliminating old ones) complete in the same single traversal that
  previously required a whole-circuit fixpoint loop.

The pipeline is the engine behind :meth:`repro.program.Program.transform`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..core.builder import Circ
from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.errors import QuipperError
from ..core.gates import BoxCall, Gate, map_gate_wires
from ..core.stream import StreamConsumer
from ..obs import core as _obs
from ..optimize.stream import StreamOptimizer
from .binary import _binary_rule
from .inline import _max_wire_id
from .toffoli import _toffoli_rule
from .transformer import Rule


def fixpoint_rule(rule: Rule) -> Rule:
    """Mark *rule* so the fused pipeline re-applies it to its own output.

    The wrapped rule's emissions are fed back through the rule until it
    passes them through unchanged, all within the stage's single traversal.
    The rule must be *strictly reducing* (every replacement sequence is
    closer to its normal form than the gate it replaces), otherwise the
    recursion does not terminate.  Gate effects on wire liveness must be
    preserved by each rewrite (true of any unitary-to-unitary rule).
    """

    def wrapped(qc: Circ, gate: Gate):
        return rule(qc, gate)

    wrapped._fused_fixpoint = True  # type: ignore[attr-defined]
    wrapped.__name__ = getattr(rule, "__name__", "rule")
    wrapped.__doc__ = rule.__doc__
    return wrapped


#: The standard gate-base rules, exposed with pipeline-friendly names:
#: ``program.transform(to_toffoli, to_binary)`` is the fused equivalent of
#: ``decompose_generic(BINARY, bc)``.
to_toffoli: Rule = _toffoli_rule
to_binary: Rule = fixpoint_rule(_binary_rule)


class _SharedWires:
    """A mutable wire-id counter shared by every stage of one pipeline.

    All stages rewriting one circuit body allocate ancillas from the same
    monotone supply, so ids never collide even though the stages interleave.
    """

    __slots__ = ("next_wire",)

    def __init__(self, start: int):
        self.next_wire = start

    def fresh(self) -> int:
        wid = self.next_wire
        self.next_wire += 1
        return wid


class _TeeGates(list):
    """A gate list that forwards every appended gate to a sink.

    Stage builders store their emissions (rules such as the Toffoli
    control-reduction inspect ``qc.gates[-1]``) *and* stream each gate
    onward to the next stage the moment it is emitted.
    """

    __slots__ = ("sink",)

    def __init__(self, sink: Callable[[Gate], None]):
        super().__init__()
        self.sink = sink

    def append(self, gate: Gate) -> None:  # type: ignore[override]
        super().append(gate)
        self.sink(gate)


class _LastGateTee:
    """A non-retaining tee: forwards appended gates, keeps only the last.

    The streaming pipeline's replacement for :class:`_TeeGates` -- rules
    may still inspect the gate they just emitted (``qc.gates[-1]``), but
    nothing accumulates, so a stage's memory stays O(1) however many
    gates flow through it.
    """

    __slots__ = ("sink", "last")

    def __init__(self, sink: Callable[[Gate], None]):
        self.sink = sink
        self.last: Gate | None = None

    def append(self, gate: Gate) -> None:
        self.last = gate
        self.sink(gate)

    def __getitem__(self, index):
        if index == -1 and self.last is not None:
            return self.last
        raise QuipperError(
            "a streaming transform stage retains only its last emitted gate"
        )


class _StageCirc(Circ):
    """The builder a rule sees inside one fused-pipeline stage.

    Behaves exactly like the throwaway builder of the legacy
    ``_rewrite_circuit`` -- same liveness checks, same namespace -- except
    that emitted gates flow to the next stage instead of piling up into an
    intermediate circuit, and fresh wires come from the shared supply.
    """

    def __init__(self, namespace: dict[str, Subroutine],
                 inputs: tuple[tuple[int, str], ...], shared: _SharedWires):
        super().__init__(namespace=namespace)
        self._live = dict(inputs)
        self._max_live = len(self._live)
        self._shared = shared

    def _fresh_id(self) -> int:
        return self._shared.fresh()

    def _track_passthrough(self, gate: Gate) -> None:
        """Apply a pass-through gate's wire effects without re-validating.

        Gates that a rule declines to handle arrive from a validated
        source -- the input circuit, or an upstream stage that checked
        them at emission -- so the redundant per-stage re-validation the
        sequential transformer pays on every pass is skipped; only the
        liveness effects (which later rule emissions consult) are applied.
        """
        outs = gate.wires_out()
        out_ids = {w for w, _ in outs}
        live = self._live
        for wire, _ in gate.wires_in():
            if wire not in out_ids:
                live.pop(wire, None)
        for wire, wtype in outs:
            live[wire] = wtype


class _Stage:
    """One rule of the chain, wired to the next stage's intake."""

    __slots__ = ("rule", "qc", "downstream", "fixpoint")

    def __init__(self, rule: Rule, qc: _StageCirc,
                 downstream: Callable[[Gate], None], retain: bool = True):
        self.rule = rule
        self.qc = qc
        self.downstream = downstream
        self.fixpoint = bool(getattr(rule, "_fused_fixpoint", False))
        # Route the rule's emissions: a fixpoint rule's output re-enters
        # this stage (already liveness-tracked by _emit_raw), a plain
        # rule's output flows straight to the next stage.  Streaming
        # chains (*retain* False) keep only the last emitted gate.
        tee_cls = _TeeGates if retain else _LastGateTee
        qc.gates = tee_cls(
            self._reprocess if self.fixpoint else downstream
        )

    def process(self, gate: Gate) -> None:
        """Feed one upstream gate through this stage."""
        if not self.rule(self.qc, gate):
            self.qc._track_passthrough(gate)
            self.downstream(gate)

    def _reprocess(self, gate: Gate) -> None:
        """Feed one of the rule's own emissions back through the rule."""
        if not self.rule(self.qc, gate):
            # Already tracked when the rule emitted it; just pass it on.
            self.downstream(gate)


def _run_chain(
    circuit: Circuit,
    rules: tuple[Rule, ...],
    namespace: dict[str, Subroutine],
) -> list[Gate]:
    """Stream a circuit body through the fused rule chain, once."""
    out_gates: list[Gate] = []
    shared = _SharedWires(_max_wire_id(circuit) + 1)
    intake: Callable[[Gate], None] = out_gates.append
    for rule in reversed(rules):
        qc = _StageCirc(namespace, circuit.inputs, shared)
        intake = _Stage(rule, qc, intake).process
    for gate in circuit.gates:
        intake(gate)
    return out_gates


def _callees(circuit: Circuit) -> set[str]:
    return {g.name for g in circuit.gates if isinstance(g, BoxCall)}


#: Base of the wire-id range streaming transform stages draw ancillas
#: from.  A streaming chain cannot know how many wires the generating
#: builder will eventually allocate, so stage ancillas live far above any
#: realistic builder range (and below the lazy inliner's
#: :data:`~repro.transform.inline.STREAM_EXPANSION_BASE`).
STREAM_TRANSFORM_BASE = 1 << 59


class StreamTransformer(StreamConsumer):
    """Push a gate stream through a fused rule chain, gate by gate.

    The streaming counterpart of :func:`transform_bcircuit_fused`: the
    main circuit is never materialized -- each streamed gate enters the
    stage chain and its rewritten output flows straight to *downstream*
    (a counter, a writer, a simulation feed...).  Boxed subroutine bodies
    are rewritten **once, on demand**, the first time a ``BoxCall``
    naming them arrives (their callees first, transitively); bodies the
    whole chain leaves untouched are reused, preserving their memoized
    widths unless a transitive callee was rewritten -- the same
    identity-reuse and width-staleness discipline as the materializing
    pipeline.
    """

    def __init__(self, rules: tuple[Rule, ...], downstream: StreamConsumer):
        self.rules = tuple(rules)
        self.downstream = downstream

    def begin(self, inputs, namespace) -> None:
        self.src_ns = namespace
        self.out_ns: dict[str, Subroutine] = {}
        #: name -> transitively-changed flag (None while in progress).
        self._state: dict[str, bool | None] = {}
        self.downstream.begin(inputs, self.out_ns)
        shared = _SharedWires(STREAM_TRANSFORM_BASE)
        intake: Callable[[Gate], None] = self.downstream.gate
        for rule in reversed(self.rules):
            qc = _StageCirc(self.out_ns, inputs, shared)
            intake = _Stage(rule, qc, intake, retain=False).process
        self._intake = intake

    def gate(self, gate: Gate) -> None:
        if isinstance(gate, BoxCall):
            self._ensure(gate.name)
        self._intake(gate)

    def _ensure(self, name: str) -> bool:
        """Transform subroutine *name* (and its callees) into ``out_ns``.

        Returns whether the body -- or any transitive callee's body --
        was changed by the chain.
        """
        state = self._state
        if name in state:
            if state[name] is None:
                raise QuipperError(f"recursive subroutine {name!r}")
            return state[name]
        sub = self.src_ns.get(name)
        if sub is None:
            raise QuipperError(f"undefined subroutine {name!r}")
        state[name] = None  # cycle guard
        kid_changed = any(
            [self._ensure(callee) for callee in sorted(_callees(sub.circuit))]
        )
        new_gates = _run_chain(sub.circuit, self.rules, self.out_ns)
        body_changed = new_gates != sub.circuit.gates
        if _obs.ENABLED:
            _obs.add("transform.bodies.rewritten" if body_changed
                     else "transform.bodies.reused")
        if body_changed:
            shell = Subroutine(
                name=sub.name,
                circuit=Circuit(
                    inputs=sub.circuit.inputs,
                    gates=new_gates,
                    outputs=sub.circuit.outputs,
                ),
                in_shape=sub.in_shape,
                out_shape=sub.out_shape,
            )
            shell._signature = getattr(sub, "_signature", None)
            self.out_ns[name] = shell
        else:
            self.out_ns[name] = sub
            if kid_changed:
                # A rewritten callee changes the caller's transient
                # width; the reused body's cache must not survive.
                sub.invalidate_width()
        state[name] = body_changed or kid_changed
        return state[name]

    def finish(self, end):
        return self.downstream.finish(
            dataclasses.replace(end, namespace=self.out_ns)
        )


def transform_bcircuit_fused(bc: BCircuit, *rules: Rule) -> BCircuit:
    """Apply a chain of transformer rules in one traversal of the hierarchy.

    Equivalent (up to ancilla wire numbering) to folding
    :func:`~repro.transform.transformer.transform_bcircuit` over *rules*,
    but every subroutine body and the main circuit are traversed exactly
    once: each gate is offered to rule 1, whose output feeds rule 2, and so
    on, with liveness tracked per stage.  Subroutine bodies left untouched
    by the whole chain are detected and their original
    :class:`~repro.core.circuit.Subroutine` objects reused; a reused
    subroutine keeps its memoized width unless a (transitive) callee was
    rewritten, in which case the cache is dropped.
    """
    if not rules:
        return bc
    # Seed a namespace of provisional subroutine shells so that BoxCall
    # bookkeeping works while callee bodies are still being rewritten.
    new_namespace: dict[str, Subroutine] = {}
    for name, sub in bc.namespace.items():
        shell = Subroutine(
            name=sub.name,
            circuit=None,  # type: ignore[arg-type]  # filled below
            in_shape=sub.in_shape,
            out_shape=sub.out_shape,
        )
        shell._width = sub.width(bc.namespace)
        shell._signature = getattr(sub, "_signature", None)
        new_namespace[name] = shell
    changed: set[str] = set()
    for name, sub in bc.namespace.items():
        new_gates = _run_chain(sub.circuit, rules, new_namespace)
        if new_gates == sub.circuit.gates:
            # Identity rewrite: reuse the original Subroutine, preserving
            # its cached width (satellite bugfix: the legacy transformer
            # allocated a fresh namespace entry per pass regardless).
            if _obs.ENABLED:
                _obs.add("transform.bodies.reused")
            new_namespace[name] = sub
        else:
            if _obs.ENABLED:
                _obs.add("transform.bodies.rewritten")
            changed.add(name)
            new_namespace[name].circuit = Circuit(
                inputs=sub.circuit.inputs,
                gates=new_gates,
                outputs=sub.circuit.outputs,
            )
    # Width bookkeeping: rewritten bodies get their provisional width
    # dropped; a reused body's cached width is only trustworthy if no
    # transitive callee was rewritten (a callee's ancillas change the
    # caller's transient width).
    stale: dict[str, bool] = {}

    def callee_changed(name: str) -> bool:
        if name not in stale:
            stale[name] = False  # cycle guard; recursion is rejected later
            sub = new_namespace[name]
            stale[name] = any(
                c in changed or callee_changed(c)
                for c in _callees(sub.circuit)
            )
        return stale[name]

    for name in bc.namespace:
        if name in changed:
            new_namespace[name]._width = None
        elif callee_changed(name):
            new_namespace[name].invalidate_width()
    main = Circuit(
        inputs=bc.circuit.inputs,
        gates=_run_chain(bc.circuit, rules, new_namespace),
        outputs=bc.circuit.outputs,
    )
    return BCircuit(main, new_namespace)


def canonicalize_wires(bc: BCircuit) -> BCircuit:
    """Renumber wires in first-use order, for structural comparison.

    Fused and sequential rule application produce identical circuits up to
    the numbering of transformer-allocated ancillas (a fused chain draws
    all stages' ancillas from one shared supply).  Canonicalizing both
    sides makes the equivalence checkable with plain ``==``: input wires
    keep their relative order, every later wire is renamed to the order of
    its first appearance in the gate stream.
    """

    def canon(circuit: Circuit) -> Circuit:
        mapping: dict[int, int] = {}

        def rename(wid: int) -> int:
            if wid not in mapping:
                mapping[wid] = len(mapping)
            return mapping[wid]

        for wid, _ in circuit.inputs:
            rename(wid)
        gates = [map_gate_wires(g, rename) for g in circuit.gates]
        return Circuit(
            inputs=tuple((mapping[w], t) for w, t in circuit.inputs),
            gates=gates,
            outputs=tuple((rename(w), t) for w, t in circuit.outputs),
        )

    return BCircuit(
        canon(bc.circuit),
        {name: Subroutine(
            name=sub.name,
            circuit=canon(sub.circuit),
            in_shape=sub.in_shape,
            out_shape=sub.out_shape,
        ) for name, sub in bc.namespace.items()},
    )


__all__ = [
    "StreamOptimizer",
    "StreamTransformer",
    "canonicalize_wires",
    "fixpoint_rule",
    "to_binary",
    "to_toffoli",
    "transform_bcircuit_fused",
]
