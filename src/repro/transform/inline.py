"""Box inlining: expand a hierarchical circuit into a flat one.

Inlining is the semantic ground truth for boxed subcircuits: simulation,
printing with ``unbox``, and the testing of hierarchical gate counts all go
through it.  Controls on a box call are distributed over the body's gates
(Init/Term gates pass under controls unchanged, per Quipper's "nocontrol"
convention -- an ancilla is |0> regardless of the control's value, and the
body's assertions guarantee it is returned to |0>).

:func:`iter_flat_gates` is a lazy generator, so simulators can stream
through hierarchies whose inlined size would not fit in memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from ..core.circuit import BCircuit, Circuit
from ..core.errors import BoxError, ScopeError
from ..obs import core as _obs
from ..core.gates import (
    BoxCall,
    Comment,
    Control,
    Discard,
    Gate,
    Measure,
    map_gate_wires,
    with_extra_controls,
)


#: Base of the fresh-wire id range used when a *stream* consumer expands
#: boxed calls on the fly (QASM export, simulation feeds).  A generating
#: stream does not know how many wires the builder will eventually
#: allocate, so expansion ids are drawn from far above any realistic
#: builder range; a subroutine's internal wires die before its call
#: returns, so the two ranges never coexist ambiguously.
STREAM_EXPANSION_BASE = 1 << 60


def _max_wire_id(circuit: Circuit) -> int:
    top = -1
    for wire, _ in circuit.inputs:
        top = max(top, wire)

    def visit(wid: int) -> int:
        nonlocal top
        top = max(top, wid)
        return wid

    for gate in circuit.gates:
        map_gate_wires(gate, visit)
    return top


class _WireSource:
    """A monotone supply of fresh wire ids above an existing range."""

    def __init__(self, start: int):
        self.next_wire = start

    def fresh(self) -> int:
        wid = self.next_wire
        self.next_wire += 1
        return wid


def _expand(
    gate: Gate,
    controls: tuple[Control, ...],
    namespace: dict,
    source: _WireSource,
) -> Iterator[Gate]:
    if isinstance(gate, Comment):
        yield gate
        return
    if not isinstance(gate, BoxCall):
        if controls and isinstance(gate, (Measure, Discard)):
            raise ScopeError(
                "cannot distribute controls over a Measure/Discard gate"
            )
        yield with_extra_controls(gate, controls)
        return
    sub = namespace.get(gate.name)
    if sub is None:
        raise BoxError(f"undefined subroutine {gate.name!r}")
    inner_controls = controls + gate.controls
    if gate.inverted:
        body = [g.inverse() for g in reversed(sub.circuit.gates)]
        entry, exit_ = sub.circuit.outputs, sub.circuit.inputs
    else:
        body = sub.circuit.gates
        entry, exit_ = sub.circuit.inputs, sub.circuit.outputs
    for _ in range(gate.repetitions):
        mapping: dict[int, int] = {}
        for (sid, _), (cid, _) in zip(entry, gate.in_wires):
            mapping[sid] = cid
        for (sid, _), (cid, _) in zip(exit_, gate.out_wires):
            existing = mapping.get(sid)
            if existing is not None and existing != cid:
                raise BoxError(
                    f"inconsistent wire binding for box {gate.name!r}"
                )
            mapping[sid] = cid

        def remap(wid: int) -> int:
            if wid not in mapping:
                mapping[wid] = source.fresh()
            return mapping[wid]

        for body_gate in body:
            yield from _expand(
                map_gate_wires(body_gate, remap),
                inner_controls,
                namespace,
                source,
            )


class StreamExpander:
    """Expand the boxed calls of a gate stream on the fly.

    The shared lazy-inlining half of every flat-gate stream consumer
    (QASM export, simulation feeds): non-box gates pass through, a
    ``BoxCall`` expands recursively through :func:`_expand`, with the
    body's fresh internal wires drawn from one monotone supply based at
    :data:`STREAM_EXPANSION_BASE` so they can never collide with wires
    the generating builder allocates later.  The namespace may keep
    growing after construction (a live generating stream); every call is
    defined before its ``BoxCall`` arrives.
    """

    __slots__ = ("namespace", "_source")

    def __init__(self, namespace: dict):
        self.namespace = namespace
        self._source = _WireSource(STREAM_EXPANSION_BASE)

    def expand(self, gate: Gate) -> Iterator[Gate]:
        if isinstance(gate, BoxCall):
            yield from _expand(gate, (), self.namespace, self._source)
        else:
            yield gate


def iter_flat_gates(bc: BCircuit) -> Iterator[Gate]:
    """Lazily yield the gates of the fully-inlined circuit."""
    source = _WireSource(_max_wire_id(bc.circuit) + 1)
    for gate in bc.circuit.gates:
        yield from _expand(gate, (), bc.namespace, source)


def iter_flat_gates_from(
    gates: list[Gate], namespace: dict, next_wire: int
) -> Iterator[Gate]:
    """Lazily inline an explicit gate list (used by the QRAM executor)."""
    source = _WireSource(next_wire)
    for gate in gates:
        yield from _expand(gate, (), namespace, source)


class CompiledCircuit:
    """A fully inlined, execution-ready gate stream.

    ``gates`` is the flat, box-free, comment-free gate list of the whole
    hierarchy; simulators replay it directly instead of re-walking the box
    tree.  ``prefix_len`` is the length of the longest deterministic prefix
    -- the gates before the first ``Measure``/``Discard`` -- which is what
    lets shot samplers simulate that prefix once and fork the state per
    shot instead of replaying it.

    Compiling materializes the whole inlined stream, so it is for
    *replayed* execution (shot sampling, repeated runs); single-pass
    consumers of hierarchies too large to materialize should stream
    through :func:`iter_flat_gates` instead.
    """

    __slots__ = ("gates", "prefix_len")

    def __init__(self, gates: list[Gate]):
        self.gates = gates
        self.prefix_len = len(gates)
        for i, gate in enumerate(gates):
            if isinstance(gate, (Measure, Discard)):
                self.prefix_len = i
                break

    def __len__(self) -> int:
        return len(self.gates)


def _bc_signature(bc: BCircuit) -> tuple:
    """A staleness snapshot for the per-circuit compile cache.

    Holds the stored gate objects themselves (cheap: one reference each).
    Gates are frozen dataclasses, so any in-place hierarchy edit -- a gate
    replaced, appended, or a subroutine body swapped, even count-
    preservingly -- changes an element and fails the ``==`` comparison
    (identical elements short-circuit on identity, so the common unmutated
    case is a pointer sweep).
    """
    return (
        tuple(bc.circuit.gates),
        tuple(
            (name, tuple(sub.circuit.gates))
            for name, sub in bc.namespace.items()
        ),
    )


#: Process-wide compiled-stream pool keyed on the *structural digest* of
#: the program (see :meth:`repro.program.Program.digest`): structurally
#: equal circuits -- however many Program/BCircuit objects they were
#: built as -- share one inline per process.  LRU-bounded so a server
#: cycling through many distinct circuits cannot grow it without bound.
_DIGEST_POOL: OrderedDict[str, CompiledCircuit] = OrderedDict()
_DIGEST_POOL_MAX = 128


def compile_flat(bc: BCircuit, digest: str | None = None) -> CompiledCircuit:
    """Inline *bc* once into a reusable :class:`CompiledCircuit` (cached).

    The result is memoized on the BCircuit instance (guarded by a snapshot
    of the stored gate lists, so a mutated hierarchy recompiles), which is
    what lets ``Program.run`` and the simulation backends execute the same
    circuit repeatedly -- per-shot replays, repeated ``.run`` calls --
    without ever re-walking the box hierarchy.  Comments are dropped: they
    are no-ops to every executor.

    With *digest* (the caller-computed structural digest, see
    :meth:`repro.program.Program.digest`) the process-wide digest pool is
    consulted before compiling and populated after: two structurally
    equal circuits held as *distinct* objects -- two ``Program.capture``
    calls of the same function and shapes, a reloaded interchange dump --
    cost one inline between them instead of one each.  The caller owns
    the digest-to-structure contract: pass only a digest that uniquely
    identifies the inlined stream.
    """
    signature = _bc_signature(bc)
    cached = getattr(bc, "_compiled_flat", None)
    if cached is not None and cached[0] == signature:
        if _obs.ENABLED:
            _obs.add("cache.compiled_stream.hits")
        return cached[1]
    if digest is not None:
        pooled = _DIGEST_POOL.get(digest)
        if pooled is not None:
            _DIGEST_POOL.move_to_end(digest)
            # Adopt onto the instance memo so digestless consumers (the
            # simulation backends get a bare BCircuit) hit it next.
            bc._compiled_flat = (signature, pooled)
            if _obs.ENABLED:
                _obs.add("cache.compiled_digest.hits")
            return pooled
    with _obs.span("compile") as sp:
        gates = [
            gate for gate in iter_flat_gates(bc)
            if not isinstance(gate, Comment)
        ]
        compiled = CompiledCircuit(gates)
        sp.set(gates=len(gates), prefix=compiled.prefix_len)
    if _obs.ENABLED:
        _obs.add("cache.compiled_stream.misses")
    bc._compiled_flat = (signature, compiled)
    if digest is not None:
        if _obs.ENABLED:
            _obs.add("cache.compiled_digest.misses")
        _DIGEST_POOL[digest] = compiled
        _DIGEST_POOL.move_to_end(digest)
        while len(_DIGEST_POOL) > _DIGEST_POOL_MAX:
            _DIGEST_POOL.popitem(last=False)
    return compiled


def inline(bc: BCircuit) -> BCircuit:
    """Fully expand every BoxCall, returning a flat, box-free circuit.

    The inlined circuit's gate count equals
    :func:`~repro.transform.count.aggregate_gate_count` of the original --
    this equality is a key invariant of the library (tested property).
    Only call this when the inlined size is tractable.
    """
    flat = Circuit(
        inputs=bc.circuit.inputs,
        gates=list(iter_flat_gates(bc)),
        outputs=bc.circuit.outputs,
    )
    return BCircuit(flat, {})
