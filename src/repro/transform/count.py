"""Hierarchical gate counting (the paper's ``-f gatecount``, Section 5.4).

The headline scalability result of the paper is that Quipper can represent
and count circuits of *trillions* of gates -- 30,189,977,982,990 gates for
the full Triangle Finding algorithm -- in minutes on a laptop.  The trick is
that boxed subcircuits are counted once and their counts multiplied by the
number (and repetition factor) of their invocations, never inlining
anything.  Python integers are arbitrary precision, so the counts are exact
at any scale.

Count keys are ``(name, positive_controls, negative_controls)`` triples; the
paper renders the key ``("Not", 1, 1)`` as ``"Not", controls 1+1``
(Section 5.3.1).
"""

from __future__ import annotations

from collections import Counter

from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.errors import QuipperError
from ..core.stream import StreamConsumer
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)

#: A gate-count key: (display name, #positive controls, #negative controls).
GateCountKey = tuple[str, int, int]

#: Gate names counted identically to their own inverses.
_NAME_ALIASES = {"X": "Not", "not": "Not"}


def classify(gate: Gate) -> GateCountKey | None:
    """The count key of a gate, or None for non-gates (comments)."""
    if isinstance(gate, Comment):
        return None
    if isinstance(gate, NamedGate):
        name = _NAME_ALIASES.get(gate.name, gate.name)
        if gate.inverted:
            name += "*"
        pos = sum(1 for c in gate.controls if c.positive)
        neg = len(gate.controls) - pos
        return (name, pos, neg)
    if isinstance(gate, Init):
        return (f"Init{int(gate.value)}", 0, 0)
    if isinstance(gate, Term):
        return (f"Term{int(gate.value)}", 0, 0)
    if isinstance(gate, Discard):
        return ("Discard", 0, 0)
    if isinstance(gate, CInit):
        return (f"CInit{int(gate.value)}", 0, 0)
    if isinstance(gate, CTerm):
        return (f"CTerm{int(gate.value)}", 0, 0)
    if isinstance(gate, CDiscard):
        return ("CDiscard", 0, 0)
    if isinstance(gate, Measure):
        return ("Meas", 0, 0)
    if isinstance(gate, CGate):
        name = f"CGate:{gate.name}"
        if gate.uncompute:
            name += "*"
        return (name, 0, 0)
    if isinstance(gate, CNot):
        pos = sum(1 for c in gate.controls if c.positive)
        neg = len(gate.controls) - pos
        return ("CNot", pos, neg)
    if isinstance(gate, BoxCall):
        raise QuipperError("classify() does not apply to BoxCall gates")
    raise TypeError(f"unknown gate kind {gate!r}")


def _invert_key(key: GateCountKey) -> GateCountKey:
    """The count key of the inverse of a gate with the given key."""
    name, pos, neg = key
    swaps = {
        "Init0": "Term0", "Term0": "Init0",
        "Init1": "Term1", "Term1": "Init1",
        "CInit0": "CTerm0", "CTerm0": "CInit0",
        "CInit1": "CTerm1", "CTerm1": "CInit1",
    }
    if name in swaps:
        return (swaps[name], pos, neg)
    if name in ("Meas", "Discard", "CDiscard"):
        # These cannot occur inside a reversed box; keep the key stable.
        return key
    if name.endswith("*"):
        return (name[:-1], pos, neg)
    from ..core.gates import GATE_INFO

    info = GATE_INFO.get(name) or GATE_INFO.get(name.lower())
    if name == "Not" or (info is not None and info["self_inverse"]):
        return key
    if info is not None and info.get("rot"):
        return key  # parameter negation does not change the count key
    # Everything else -- named gates and CGate:<fn> keys alike -- inverts
    # by gaining the dagger suffix (the suffixed form was handled above).
    return (name + "*", pos, neg)


def _invert_counts(counts: Counter) -> Counter:
    return Counter({_invert_key(k): v for k, v in counts.items()})


def make_subroutine_counter(
    namespace: dict[str, Subroutine]
) -> "callable":
    """A memoized ``count_sub(name) -> Counter`` over *namespace*.

    The shared engine of :func:`aggregate_gate_count` and the streaming
    :class:`StreamingCounter`: a subroutine's aggregated count is computed
    exactly once and multiplied through every later call site, which is
    what makes trillion-gate resource estimates cheap.  The namespace may
    keep growing after the counter is created (a live generating stream
    defines boxes as it runs); every lookup sees the current entries.
    """
    memo: dict[str, Counter] = {}

    def count_sub(name: str) -> Counter:
        if name not in memo:
            sub = namespace.get(name)
            if sub is None:
                raise QuipperError(f"undefined subroutine {name!r}")
            memo[name] = None  # type: ignore[assignment]  # cycle guard
            memo[name] = count_circuit(sub.circuit)
        if memo[name] is None:
            raise QuipperError(f"recursive subroutine {name!r}")
        return memo[name]

    def count_circuit(circuit: Circuit) -> Counter:
        total: Counter = Counter()
        for gate in circuit.gates:
            add_gate(total, gate)
        return total

    def add_gate(total: Counter, gate: Gate) -> None:
        if isinstance(gate, Comment):
            return
        if isinstance(gate, BoxCall):
            sub_counts = count_sub(gate.name)
            if gate.inverted:
                sub_counts = _invert_counts(sub_counts)
            reps = gate.repetitions
            for key, value in sub_counts.items():
                total[key] += value * reps
        else:
            total[classify(gate)] += 1

    count_sub.add_gate = add_gate  # type: ignore[attr-defined]
    return count_sub


def aggregate_gate_count(bc: BCircuit) -> Counter:
    """Count every gate of the fully-inlined circuit, without inlining it.

    Subroutine counts are computed once and multiplied through call sites
    (including their ``repetitions`` factors), so this is fast even for
    circuits whose inlined size is astronomically large.
    """
    count_sub = make_subroutine_counter(bc.namespace)
    total: Counter = Counter()
    for gate in bc.circuit.gates:
        count_sub.add_gate(total, gate)  # type: ignore[attr-defined]
    return total


class StreamingCounter(StreamConsumer):
    """Gate-count consumer for a gate stream: O(1) memory per gate.

    Produces exactly the Counter of :func:`aggregate_gate_count` without
    the main circuit ever existing: each streamed gate is classified and
    dropped; a ``BoxCall`` is costed symbolically (the boxed body counted
    once, multiplied by ``repetitions``), so a repeated-subroutine stream
    of billions of logical gates counts in O(subroutine size) time and
    memory.
    """

    def begin(self, inputs, namespace) -> None:
        self.counts: Counter = Counter()
        self._count_sub = make_subroutine_counter(namespace)

    def gate(self, gate: Gate) -> None:
        self._count_sub.add_gate(self.counts, gate)  # type: ignore[attr-defined]

    def finish(self, end) -> Counter:
        return self.counts


def count_circuit_flat(circuit: Circuit) -> Counter:
    """Count the gates of a single flat circuit (no box expansion)."""
    counts: Counter = Counter()
    for gate in circuit.gates:
        key = None if isinstance(gate, Comment) else classify(gate)
        if key is not None:
            counts[key] += 1
    return counts


def total_gates(counts: Counter) -> int:
    """Total gates including initializations/terminations/measurements."""
    return sum(counts.values())


_NON_LOGICAL_PREFIXES = (
    "Init", "Term", "CInit", "CTerm", "Meas", "Discard", "CDiscard",
)


def total_logical_gates(counts: Counter) -> int:
    """Total gates excluding Init/Term/Meas, as in the paper's Section 6
    table ("Total refers to the total number of logical gates excluding
    initialization, termination, and measurement")."""
    return sum(
        v
        for (name, _, _), v in counts.items()
        if not name.startswith(_NON_LOGICAL_PREFIXES)
    )


def subroutine_gate_counts(bc: BCircuit) -> dict[str, Counter]:
    """Aggregated (fully-inlined) counts for each subroutine by name."""
    result: dict[str, Counter] = {}
    for name, sub in bc.namespace.items():
        result[name] = aggregate_gate_count(
            BCircuit(sub.circuit, bc.namespace)
        )
    return result
