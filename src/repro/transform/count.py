"""Hierarchical gate counting (the paper's ``-f gatecount``, Section 5.4).

The headline scalability result of the paper is that Quipper can represent
and count circuits of *trillions* of gates -- 30,189,977,982,990 gates for
the full Triangle Finding algorithm -- in minutes on a laptop.  The trick is
that boxed subcircuits are counted once and their counts multiplied by the
number (and repetition factor) of their invocations, never inlining
anything.  Python integers are arbitrary precision, so the counts are exact
at any scale.

Count keys are ``(name, positive_controls, negative_controls)`` triples; the
paper renders the key ``("Not", 1, 1)`` as ``"Not", controls 1+1``
(Section 5.3.1).
"""

from __future__ import annotations

from collections import Counter

from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.errors import QuipperError
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)

#: A gate-count key: (display name, #positive controls, #negative controls).
GateCountKey = tuple[str, int, int]

#: Gate names counted identically to their own inverses.
_NAME_ALIASES = {"X": "Not", "not": "Not"}


def classify(gate: Gate) -> GateCountKey | None:
    """The count key of a gate, or None for non-gates (comments)."""
    if isinstance(gate, Comment):
        return None
    if isinstance(gate, NamedGate):
        name = _NAME_ALIASES.get(gate.name, gate.name)
        if gate.inverted:
            name += "*"
        pos = sum(1 for c in gate.controls if c.positive)
        neg = len(gate.controls) - pos
        return (name, pos, neg)
    if isinstance(gate, Init):
        return (f"Init{int(gate.value)}", 0, 0)
    if isinstance(gate, Term):
        return (f"Term{int(gate.value)}", 0, 0)
    if isinstance(gate, Discard):
        return ("Discard", 0, 0)
    if isinstance(gate, CInit):
        return (f"CInit{int(gate.value)}", 0, 0)
    if isinstance(gate, CTerm):
        return (f"CTerm{int(gate.value)}", 0, 0)
    if isinstance(gate, CDiscard):
        return ("CDiscard", 0, 0)
    if isinstance(gate, Measure):
        return ("Meas", 0, 0)
    if isinstance(gate, CGate):
        name = f"CGate:{gate.name}"
        if gate.uncompute:
            name += "*"
        return (name, 0, 0)
    if isinstance(gate, CNot):
        pos = sum(1 for c in gate.controls if c.positive)
        neg = len(gate.controls) - pos
        return ("CNot", pos, neg)
    if isinstance(gate, BoxCall):
        raise QuipperError("classify() does not apply to BoxCall gates")
    raise TypeError(f"unknown gate kind {gate!r}")


def _invert_key(key: GateCountKey) -> GateCountKey:
    """The count key of the inverse of a gate with the given key."""
    name, pos, neg = key
    swaps = {
        "Init0": "Term0", "Term0": "Init0",
        "Init1": "Term1", "Term1": "Init1",
        "CInit0": "CTerm0", "CTerm0": "CInit0",
        "CInit1": "CTerm1", "CTerm1": "CInit1",
    }
    if name in swaps:
        return (swaps[name], pos, neg)
    if name in ("Meas", "Discard", "CDiscard"):
        # These cannot occur inside a reversed box; keep the key stable.
        return key
    if name.endswith("*"):
        return (name[:-1], pos, neg)
    from ..core.gates import GATE_INFO

    info = GATE_INFO.get(name) or GATE_INFO.get(name.lower())
    if name == "Not" or (info is not None and info["self_inverse"]):
        return key
    if info is not None and info.get("rot"):
        return key  # parameter negation does not change the count key
    # Everything else -- named gates and CGate:<fn> keys alike -- inverts
    # by gaining the dagger suffix (the suffixed form was handled above).
    return (name + "*", pos, neg)


def _invert_counts(counts: Counter) -> Counter:
    return Counter({_invert_key(k): v for k, v in counts.items()})


def aggregate_gate_count(bc: BCircuit) -> Counter:
    """Count every gate of the fully-inlined circuit, without inlining it.

    Subroutine counts are computed once and multiplied through call sites
    (including their ``repetitions`` factors), so this is fast even for
    circuits whose inlined size is astronomically large.
    """
    memo: dict[str, Counter] = {}

    def count_sub(name: str) -> Counter:
        if name not in memo:
            sub = bc.namespace.get(name)
            if sub is None:
                raise QuipperError(f"undefined subroutine {name!r}")
            memo[name] = _count(sub.circuit)
        return memo[name]

    def _count(circuit: Circuit) -> Counter:
        total: Counter = Counter()
        for gate in circuit.gates:
            if isinstance(gate, Comment):
                continue
            if isinstance(gate, BoxCall):
                sub_counts = count_sub(gate.name)
                if gate.inverted:
                    sub_counts = _invert_counts(sub_counts)
                reps = gate.repetitions
                for key, value in sub_counts.items():
                    total[key] += value * reps
            else:
                total[classify(gate)] += 1
        return total

    return _count(bc.circuit)


def count_circuit_flat(circuit: Circuit) -> Counter:
    """Count the gates of a single flat circuit (no box expansion)."""
    counts: Counter = Counter()
    for gate in circuit.gates:
        key = None if isinstance(gate, Comment) else classify(gate)
        if key is not None:
            counts[key] += 1
    return counts


def total_gates(counts: Counter) -> int:
    """Total gates including initializations/terminations/measurements."""
    return sum(counts.values())


_NON_LOGICAL_PREFIXES = (
    "Init", "Term", "CInit", "CTerm", "Meas", "Discard", "CDiscard",
)


def total_logical_gates(counts: Counter) -> int:
    """Total gates excluding Init/Term/Meas, as in the paper's Section 6
    table ("Total refers to the total number of logical gates excluding
    initialization, termination, and measurement")."""
    return sum(
        v
        for (name, _, _), v in counts.items()
        if not name.startswith(_NON_LOGICAL_PREFIXES)
    )


def subroutine_gate_counts(bc: BCircuit) -> dict[str, Counter]:
    """Aggregated (fully-inlined) counts for each subroutine by name."""
    result: dict[str, Counter] = {}
    for name, sub in bc.namespace.items():
        result[name] = aggregate_gate_count(
            BCircuit(sub.circuit, bc.namespace)
        )
    return result
