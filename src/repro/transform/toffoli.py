"""Decomposition into the Toffoli gate base.

"The decomposition is achieved by first decomposing multiply-controlled
gates into Toffoli gates, and then decomposing the Toffoli gates into binary
gates" (paper, Section 4.4.3).  This module is the first stage: after it,
NOT gates carry at most two controls and every other gate at most one.
Negative controls are preserved (the paper's gate counts report
``"Not", controls 1+1`` for mixed-sign Toffolis).

Control reduction uses the standard ancilla chain: the conjunction of the
controls is accumulated into ancillas with Toffoli gates, the target gate is
applied under the final ancilla, and the chain is uncomputed.
"""

from __future__ import annotations

from ..core.builder import Circ
from ..core.circuit import BCircuit
from ..core.gates import Control, Gate, NamedGate
from ..core.wires import QUANTUM
from .transformer import transform_bcircuit


def _reduce_controls(qc: Circ, controls: tuple[Control, ...], keep: int):
    """Emit an ancilla chain reducing *controls* to at most *keep* controls.

    Returns ``(reduced_controls, cleanup)`` where ``cleanup()`` uncomputes
    the chain.  Quantum Toffoli chains require quantum controls; classical
    controls are passed through untouched (they are free at execution time).
    """
    quantum = [c for c in controls if c.wire_type == QUANTUM]
    classical = [c for c in controls if c.wire_type != QUANTUM]
    if len(quantum) <= keep:
        return tuple(quantum) + tuple(classical), lambda: None

    chain_gates: list[Gate] = []

    def emit(gate: Gate) -> None:
        qc._emit_raw(gate)
        chain_gates.append(gate)

    # Chain just enough controls so that (ancilla + untouched controls)
    # is exactly `keep` controls: a_1 = c_1 & c_2 ; a_i = a_{i-1} & c_{i+1}.
    to_chain = quantum[: len(quantum) - keep + 1]
    rest = quantum[len(quantum) - keep + 1:]
    current = to_chain[0]
    for ctl in to_chain[1:]:
        anc = qc.qinit_qubit(False)
        chain_gates.append(qc.gates[-1])  # the Init gate just emitted
        emit(NamedGate("not", (anc.wire_id,), (current, ctl)))
        current = Control(anc.wire_id, True, QUANTUM)

    def cleanup() -> None:
        for gate in reversed(chain_gates):
            qc._emit_raw(gate.inverse())

    return (current,) + tuple(rest) + tuple(classical), cleanup


def _toffoli_rule(qc: Circ, gate: Gate) -> bool:
    if not isinstance(gate, NamedGate):
        return False
    is_not = gate.name in ("not", "X")
    keep = 2 if is_not else 1
    quantum_controls = [c for c in gate.controls if c.wire_type == QUANTUM]
    if len(quantum_controls) <= keep:
        return False
    reduced, cleanup = _reduce_controls(qc, gate.controls, keep)
    qc._emit_raw(
        NamedGate(
            gate.name,
            gate.targets,
            reduced,
            inverted=gate.inverted,
            param=gate.param,
        )
    )
    cleanup()
    return True


def decompose_toffoli(bc: BCircuit) -> BCircuit:
    """Reduce every gate to the Toffoli base throughout the hierarchy."""
    return transform_bcircuit(bc, _toffoli_rule)
