"""The fluent streaming surface: one gate stream, every consumer.

A :class:`GateStream` is the streaming counterpart of
:class:`~repro.program.Program`: where a Program generates (and caches) a
:class:`~repro.core.circuit.BCircuit` that consumers walk, a GateStream
re-runs its producer once per consumer and pushes each gate through the
consumer the moment it is emitted -- nothing is ever materialized, so the
circuit's size is bounded by disk (for the writers) or by nothing at all
(for the counters), not by RAM.

::

    prog = Program.capture(huge_circuit)
    prog.stream().count()                  # O(1)-memory gate count
    prog.stream().resources()              # counts + depth + width
    prog.stream(to_toffoli).count()        # rules fused into the stream
    with open("circuit.quip", "w") as fp:
        prog.stream().dump(fp)             # incremental interchange dump
    prog.stream().run(shots=64, seed=1)    # simulate while generating

Repeated boxed-subroutine calls stay *symbolic* in the counting
consumers (the body is costed once and multiplied through its call
sites), which is what makes million-to-billion-gate resource estimates
finish in seconds -- the paper's headline scalability result.
"""

from __future__ import annotations

from typing import Callable

from .backends.base import BackendError, RunResult, outcome_key
from .backends.clifford import CliffordFeed
from .backends.resources import StreamingResources
from .backends.statevector import StatevectorFeed, draw_counts
from .core.stream import StreamConsumer
from .core.wires import QUANTUM
from .obs import core as _obs
from .optimize.stream import StreamOptimizer
from .transform.count import StreamingCounter, total_gates, total_logical_gates
from .transform.depth import StreamingDepth
from .transform.pipeline import StreamTransformer
from .transform.transformer import Rule


class GateStream:
    """A re-runnable gate stream with the full consumer surface.

    ``produce(consumer)`` runs the underlying producer -- a generating
    builder (:func:`~repro.core.stream.stream_build`) or a stored-circuit
    replay (:func:`~repro.core.stream.replay_bcircuit`) -- pushing every
    gate to *consumer* and returning its result.  Each consumer method
    below is one fresh pass over the stream.
    """

    def __init__(self, produce: Callable[[StreamConsumer], object], *,
                 name: str = "stream", rules: tuple[Rule, ...] = (),
                 stages: tuple[tuple[str, tuple], ...] | None = None):
        self._produce_raw = produce
        self.name = name
        #: Ordered processing stages, applied producer-side first:
        #: ("rules", rule-tuple) or ("opt", pass-tuple).
        if stages is None:
            stages = (("rules", tuple(rules)),) if rules else ()
        self._stages = stages

    @property
    def _rules(self) -> tuple[Rule, ...]:
        """Every transformer rule in the chain, in application order."""
        return tuple(
            rule
            for kind, items in self._stages
            if kind == "rules"
            for rule in items
        )

    def _produce(self, consumer: StreamConsumer):
        label = type(consumer).__name__
        # Stages wrap inside-out: the first-applied stage is outermost.
        for kind, items in reversed(self._stages):
            if kind == "rules":
                consumer = StreamTransformer(items, consumer)
            else:
                consumer = StreamOptimizer(items, consumer)
        if _obs.ENABLED:
            with _obs.span("stream", stream=self.name, consumer=label):
                return self._produce_raw(consumer)
        return self._produce_raw(consumer)

    @staticmethod
    def _pass_key(peephole) -> tuple:
        """Equality key for a pass: its type plus its configuration."""
        return (type(peephole), tuple(sorted(vars(peephole).items())))

    def _extend(self, kind: str, items: tuple, name: str) -> "GateStream":
        """A new stream with *items* merged into the trailing stage.

        Transformer rules concatenate verbatim (chaining a rule twice
        applies it twice, like the materialized pipeline); optimizer
        passes deduplicate by type + configuration, since re-matching a
        window against an already-present pass is pure overhead.
        """
        stages = self._stages
        if stages and stages[-1][0] == kind:
            if kind == "rules":
                extra = tuple(items)
            else:
                present = {self._pass_key(p) for p in stages[-1][1]}
                extra = tuple(
                    item for item in items
                    if self._pass_key(item) not in present
                )
            stages = stages[:-1] + ((kind, stages[-1][1] + extra),)
        elif items or kind == "opt":
            stages = stages + ((kind, tuple(items)),)
        return GateStream(self._produce_raw, name=name, stages=stages)

    def transform(self, *rules) -> "GateStream":
        """Chain further transformer rules into the streaming chain.

        Rules are callables or gate-base names (``"toffoli"``,
        ``"binary"``), exactly as :meth:`repro.program.Program.transform`
        accepts.  Stage order follows call order: rules chained *after*
        an :meth:`optimize` stage see the optimized stream.
        """
        from .program import _resolve_rules

        return self._extend("rules", _resolve_rules(rules), self.name)

    def optimize(self, *passes) -> "GateStream":
        """Peephole-optimize the stream on its way to the consumer.

        Adds a :class:`~repro.optimize.StreamOptimizer` stage at this
        point of the chain: each gate flows through a bounded sliding
        window (O(window) memory) where adjacent inverse pairs cancel,
        rotations merge, and Clifford runs reduce; boxed subroutine
        bodies are optimized once, on demand.  With no arguments the
        default pass chain applies; calling again on the same stage
        merges (already-present passes are not duplicated).  See
        :mod:`repro.optimize.passes`.

        ::

            prog.stream("binary").optimize().count()
        """
        from .optimize.passes import resolve_passes

        return self._extend(
            "opt", resolve_passes(passes), f"{self.name}.optimize"
        )

    # -- counting and estimation --------------------------------------------

    def count(self):
        """Aggregated gate count of the stream (O(1) memory per gate)."""
        return self._produce(StreamingCounter())

    def total_gates(self) -> int:
        """Total gate count of the stream, Init/Term/Meas included."""
        return total_gates(self.count())

    def logical_gates(self) -> int:
        """Gate count excluding initialization/termination/measurement."""
        return total_logical_gates(self.count())

    def depth(self) -> int:
        """Critical-path depth of the stream (O(live width) memory)."""
        return self._produce(StreamingDepth())

    def t_depth(self) -> int:
        """Critical-path depth counting only T gates."""
        return self._produce(StreamingDepth(t_only=True))

    def resources(self) -> dict:
        """The full resource report (counts, depth, T-depth, width)."""
        return self._produce(StreamingResources())

    # -- incremental writers -------------------------------------------------

    def write_ascii(self, fp):
        """Write the printer-style ASCII rendering incrementally to *fp*."""
        from .output.ascii import AsciiStreamWriter

        return self._produce(AsciiStreamWriter(fp))

    def dump(self, fp):
        """Write Quipper-ASCII interchange text incrementally to *fp*.

        The result round-trips through :func:`repro.io.loads` and is
        byte-identical to :func:`repro.io.dumps` of the materialized
        circuit -- but the main circuit is never held in memory.
        """
        from .output.ascii import AsciiStreamWriter

        return self._produce(AsciiStreamWriter(fp, interchange=True))

    def write_qasm(self, fp):
        """Export flat OpenQASM 2.0 incrementally to *fp*.

        Boxed calls are expanded on the fly; the body is spooled to a
        temporary file so the header's register declarations can be
        written first (O(1) memory, O(circuit) disk).
        """
        from .io.qasm import QasmStreamWriter

        return self._produce(QasmStreamWriter(fp))

    # -- simulation feeds ----------------------------------------------------

    def run(self, backend: str = "statevector", *, shots: int | None = None,
            in_values: dict[int, bool] | None = None,
            seed: int | None = None, **options) -> RunResult:
        """Simulate the gate stream directly on a simulation backend.

        With ``shots=None`` this is a single generate-and-execute pass:
        each gate hits the statevector kernels (or the growing stabilizer
        tableau) the moment it is emitted.  With ``shots``, circuits
        whose stream consumed no randomness (no mid-stream measurement)
        are sampled with one multinomial draw from the final state --
        seed-exact with the materialized backend's batched path; streams
        with genuine mid-circuit measurement are re-generated once per
        shot (valid, but O(shots x gates): prefer the materialized
        ``Program.run`` when the circuit fits in memory).
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        if shots is not None and shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        with _obs.span("run." + backend, stream=self.name,
                       shots=shots if shots is not None else 1):
            feed = self._feed(backend, rng, in_values, options)
            result = self._produce(feed)
            if shots is None:
                return result
            if backend == "statevector" and not feed.stochastic:
                if _obs.ENABLED:
                    _obs.add("run.shots.batched", shots)
                counts = draw_counts(feed.sim, feed.outputs, shots, rng)
                return RunResult(
                    backend=backend, shots=shots, counts=counts,
                    metadata={"batched": True, "streamed": True},
                )
            counts: dict[str, int] = {}
            key = self._outcome(backend, feed)
            counts[key] = 1
            for _ in range(shots - 1):
                feed = self._feed(backend, rng, in_values, options)
                self._produce(feed)
                key = self._outcome(backend, feed)
                counts[key] = counts.get(key, 0) + 1
            if _obs.ENABLED:
                _obs.add("run.shots.replayed", shots)
            return RunResult(
                backend=backend, shots=shots, counts=counts,
                metadata={
                    "batched": False, "streamed": True, "replays": shots,
                },
            )

    @staticmethod
    def _feed(backend: str, rng, in_values, options) -> StreamConsumer:
        if backend == "statevector":
            return StatevectorFeed(rng, in_values, **options)
        if backend == "clifford":
            return CliffordFeed(rng, in_values, **options)
        raise BackendError(
            f"backend {backend!r} has no streaming feed; streaming "
            "supports 'statevector' and 'clifford' (for cost reports "
            "use .resources())"
        )

    @staticmethod
    def _outcome(backend: str, feed) -> str:
        if backend == "statevector":
            sim = feed.sim
            return outcome_key([
                sim.measure_qubit(w) if t == QUANTUM else sim.bits[w]
                for w, t in feed.outputs
            ])
        state = feed.state
        return outcome_key([
            state.tableau.measure(state.index[w])
            if t == QUANTUM
            else state.bits[w]
            for w, t in feed.outputs
        ])

    # -- pull-based iteration ------------------------------------------------

    def gates(self):
        """A generator over the stream's gates (bounded-buffer pull API).

        The push-based producer runs on a worker thread feeding a small
        bounded queue, so iteration is O(queue) memory however long the
        stream; abandoning the iterator (``break`` / ``close``) unwinds
        the producer promptly.
        """
        import contextvars
        import queue
        import threading

        done = object()
        stop = threading.Event()
        fifo: queue.Queue = queue.Queue(maxsize=256)
        failure: list[BaseException] = []

        class _Abort(Exception):
            pass

        class _Yielder(StreamConsumer):
            _pushed = 0

            def gate(self, gate):
                if _obs.ENABLED:
                    # Sampled (not per-gate) so telemetry stays off the
                    # queue's hot path: one depth observation per 256
                    # gates is plenty to see back-pressure.
                    self._pushed += 1
                    if not self._pushed & 255:
                        _obs.observe("stream.queue.depth", fifo.qsize())
                while True:
                    if stop.is_set():
                        raise _Abort()
                    try:
                        fifo.put(gate, timeout=0.05)
                        return
                    except queue.Full:
                        continue

        def work():
            try:
                self._produce(_Yielder())
            except _Abort:
                pass
            except BaseException as exc:  # re-raised on the consumer side
                failure.append(exc)
            while True:
                try:
                    fifo.put(done, timeout=0.05)
                    return
                except queue.Full:
                    if stop.is_set():
                        try:
                            fifo.get_nowait()
                        except queue.Empty:
                            pass

        # Run the producer in a copy of the caller's context so open
        # telemetry spans (contextvar-scoped) nest correctly across the
        # thread hop -- producer-side spans attribute to the consumer's
        # enclosing span, not to a detached root.
        ctx = contextvars.copy_context()
        worker = threading.Thread(
            target=lambda: ctx.run(work),
            name=f"{self.name}-producer", daemon=True,
        )
        worker.start()
        try:
            while True:
                item = fifo.get()
                if item is done:
                    break
                yield item
        finally:
            stop.set()
            while worker.is_alive():
                try:
                    fifo.get(timeout=0.05)
                except queue.Empty:
                    pass
            worker.join()
        if failure:
            raise failure[0]

    __iter__ = gates

    def __repr__(self) -> str:
        rules = f" +{len(self._rules)} rules" if self._rules else ""
        return f"<GateStream {self.name!r}{rules}>"


__all__ = ["GateStream"]
