"""Unitary matrices for the built-in gate vocabulary.

Conventions: single-qubit matrices act on basis (|0>, |1>); two-qubit
matrices on (|00>, |01>, |10>, |11>) with the *first* target as the more
significant bit.  Parametrised gates receive their parameter (an angle,
time, or QFT level) from the gate record.
"""

from __future__ import annotations

import cmath
import math
from functools import lru_cache

import numpy as np

from ..core.errors import SimulationError
from ..core.gates import NamedGate
from ..obs import core as _obs

_SQRT2 = math.sqrt(2.0)

_H = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_V = 0.5 * np.array(
    [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
)  # sqrt(X)
_E = np.array(  # Quipper's E = H S^3 omega^3, a Clifford gate
    [[-1 + 1j, 1 + 1j], [-1 + 1j, -1 - 1j]], dtype=complex
) / 2
_IX = 1j * _X
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
# The BWT W gate: fixes |00> and |11>, Hadamard on span{|01>, |10>}.
_W = np.array(
    [
        [1, 0, 0, 0],
        [0, 1 / _SQRT2, 1 / _SQRT2, 0],
        [0, 1 / _SQRT2, -1 / _SQRT2, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

_FIXED: dict[str, np.ndarray] = {
    "H": _H,
    "X": _X,
    "not": _X,
    "Y": _Y,
    "Z": _Z,
    "S": _S,
    "T": _T,
    "V": _V,
    "E": _E,
    "iX": _IX,
    "swap": _SWAP,
    "W": _W,
}


def gate_matrix(gate: NamedGate) -> np.ndarray:
    """The unitary matrix of a named gate (controls excluded).

    Raises :class:`~repro.core.errors.SimulationError` for unknown names;
    user-defined named gates have no intrinsic semantics and must be
    transformed away before simulation.  The returned array is a shared,
    read-only cache entry -- copy before mutating.
    """
    return gate_matrix_cached(gate.name, gate.param, gate.inverted)


@lru_cache(maxsize=4096)
def gate_matrix_cached(
    name: str, param: float | None, inverted: bool
) -> np.ndarray:
    """LRU-cached :func:`gate_matrix`, keyed on ``(name, param, inverted)``.

    Parametrised and inverted matrices are built once per distinct key; the
    returned array is marked read-only so cache entries cannot be corrupted
    by in-place arithmetic in a simulator kernel.
    """
    matrix = _named_matrix(name, param)
    if inverted:
        matrix = matrix.conj().T
    matrix = np.ascontiguousarray(matrix)
    matrix.setflags(write=False)
    return matrix


_obs.register_cache("sim.gate_matrix", gate_matrix_cached)


def _named_matrix(name: str, param: float | None) -> np.ndarray:
    fixed = _FIXED.get(name)
    if fixed is not None:
        return fixed
    if name == "exp(-i%Z)":
        t = float(param)
        return np.diag(
            [cmath.exp(-1j * t), cmath.exp(1j * t)]
        )
    if name == "exp(-i%ZZ)":
        t = float(param)
        lo, hi = cmath.exp(-1j * t), cmath.exp(1j * t)
        return np.diag([lo, hi, hi, lo])
    if name in ("R(2pi/%)", "rGate"):
        # diag(1, exp(2 pi i / 2^n)): the QFT phase-shift ladder gate.
        n = float(param)
        return np.diag([1.0, cmath.exp(2j * math.pi / (2.0 ** n))])
    if name == "Rz":
        t = float(param)
        return np.diag([cmath.exp(-1j * t / 2), cmath.exp(1j * t / 2)])
    if name == "Rx":
        t = float(param)
        c, s = math.cos(t / 2), math.sin(t / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "Ry":
        t = float(param)
        c, s = math.cos(t / 2), math.sin(t / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "phase":
        return np.array([[cmath.exp(1j * float(param))]], dtype=complex)
    raise SimulationError(f"no matrix known for gate {name!r}")


# ---------------------------------------------------------------------------
# Clifford classification (shared with the stabilizer simulator)
# ---------------------------------------------------------------------------

#: Canonical tableau operations and their matrices.  A gate whose cached
#: matrix equals one of these up to global phase is simulated on the CHP
#: tableau under that tag (e.g. ``Rz(pi/2)`` classifies as ``"S"``).
_CLIFFORD_CANON: tuple[tuple[str, np.ndarray], ...] = (
    ("I", np.eye(2, dtype=complex)),
    ("X", _X),
    ("Y", _Y),
    ("Z", _Z),
    ("H", _H),
    ("S", _S),
    ("S*", _S.conj().T),
    ("swap", _SWAP),
)


@lru_cache(maxsize=4096)
def clifford_classification(
    name: str, param: float | None, inverted: bool
) -> tuple[str, complex] | None:
    """Classify a named gate as a canonical tableau operation, or None.

    Goes through :func:`gate_matrix_cached`, so each ``(name, param,
    inverted)`` key is matrix-built and classified exactly once.  Returns
    ``(tag, phase)`` where *tag* is one of ``"I"``, ``"X"``, ``"Y"``,
    ``"Z"``, ``"H"``, ``"S"``, ``"S*"``, ``"swap"``, or ``"phase"`` for
    arity-0 scalar gates, and *phase* is the global-phase ratio between
    the gate's matrix and the canonical one.  The phase is unobservable
    for an *uncontrolled* gate, but becomes a relative phase under a
    quantum control -- controlled dispatch must demand ``phase == 1``.
    Returns None for gates with no single-tableau-op equivalent.
    """
    try:
        matrix = gate_matrix_cached(name, param, inverted)
    except SimulationError:
        return None
    if matrix.shape == (1, 1):
        return ("phase", complex(matrix[0, 0]))
    for tag, canonical in _CLIFFORD_CANON:
        if canonical.shape != matrix.shape:
            continue
        anchor = np.argmax(np.abs(canonical))
        ratio = complex(matrix.flat[anchor] / canonical.flat[anchor])
        if abs(abs(ratio) - 1.0) < 1e-9 and np.allclose(
            matrix, ratio * canonical, atol=1e-9
        ):
            return (tag, ratio)
    return None


def clifford_gate_tag(
    name: str, param: float | None, inverted: bool
) -> str | None:
    """The tableau-operation tag of a gate up to global phase, or None."""
    classified = clifford_classification(name, param, inverted)
    return classified[0] if classified else None


_obs.register_cache("sim.clifford_classification", clifford_classification)
