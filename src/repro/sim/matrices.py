"""Unitary matrices for the built-in gate vocabulary.

Conventions: single-qubit matrices act on basis (|0>, |1>); two-qubit
matrices on (|00>, |01>, |10>, |11>) with the *first* target as the more
significant bit.  Parametrised gates receive their parameter (an angle,
time, or QFT level) from the gate record.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..core.errors import SimulationError
from ..core.gates import NamedGate

_SQRT2 = math.sqrt(2.0)

_H = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_V = 0.5 * np.array(
    [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
)  # sqrt(X)
_E = np.array(  # Quipper's E = H S^3 omega^3, a Clifford gate
    [[-1 + 1j, 1 + 1j], [-1 + 1j, -1 - 1j]], dtype=complex
) / 2
_IX = 1j * _X
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
# The BWT W gate: fixes |00> and |11>, Hadamard on span{|01>, |10>}.
_W = np.array(
    [
        [1, 0, 0, 0],
        [0, 1 / _SQRT2, 1 / _SQRT2, 0],
        [0, 1 / _SQRT2, -1 / _SQRT2, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

_FIXED: dict[str, np.ndarray] = {
    "H": _H,
    "X": _X,
    "not": _X,
    "Y": _Y,
    "Z": _Z,
    "S": _S,
    "T": _T,
    "V": _V,
    "E": _E,
    "iX": _IX,
    "swap": _SWAP,
    "W": _W,
}


def gate_matrix(gate: NamedGate) -> np.ndarray:
    """The unitary matrix of a named gate (controls excluded).

    Raises :class:`~repro.core.errors.SimulationError` for unknown names;
    user-defined named gates have no intrinsic semantics and must be
    transformed away before simulation.
    """
    matrix = _named_matrix(gate)
    if gate.inverted:
        matrix = matrix.conj().T
    return matrix


def _named_matrix(gate: NamedGate) -> np.ndarray:
    name, param = gate.name, gate.param
    fixed = _FIXED.get(name)
    if fixed is not None:
        return fixed
    if name == "exp(-i%Z)":
        t = float(param)
        return np.diag(
            [cmath.exp(-1j * t), cmath.exp(1j * t)]
        )
    if name == "exp(-i%ZZ)":
        t = float(param)
        lo, hi = cmath.exp(-1j * t), cmath.exp(1j * t)
        return np.diag([lo, hi, hi, lo])
    if name in ("R(2pi/%)", "rGate"):
        # diag(1, exp(2 pi i / 2^n)): the QFT phase-shift ladder gate.
        n = float(param)
        return np.diag([1.0, cmath.exp(2j * math.pi / (2.0 ** n))])
    if name == "Rz":
        t = float(param)
        return np.diag([cmath.exp(-1j * t / 2), cmath.exp(1j * t / 2)])
    if name == "Rx":
        t = float(param)
        c, s = math.cos(t / 2), math.sin(t / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "Ry":
        t = float(param)
        c, s = math.cos(t / 2), math.sin(t / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "phase":
        return np.array([[cmath.exp(1j * float(param))]], dtype=complex)
    raise SimulationError(f"no matrix known for gate {name!r}")
