"""Stabilizer (Clifford) simulation -- the paper's ``run_clifford_generic``.

Implements the Aaronson-Gottesman CHP tableau algorithm (Phys. Rev. A 70,
052328).  Circuits built from H, S, CNOT, X, Y, Z, CZ, swap, init/term and
measurement are simulated in polynomial time, which is "especially useful
in testing oracles" (Section 4.4.5) and for checking the statevector
simulator against an independent implementation.

Because the builder never reuses wire ids, initialization is handled by
pre-allocating one tableau column per wire ever used; Term measures the
qubit and checks the programmer's assertion.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import BCircuit
from ..core.errors import AssertionFailedError, SimulationError
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.wires import QUANTUM
from .matrices import clifford_classification


class Tableau:
    """A CHP stabilizer tableau over *n* qubits."""

    def __init__(self, n: int, rng: np.random.Generator | None = None):
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        self.x[np.arange(n), np.arange(n)] = True  # destabilizers X_i
        self.z[np.arange(n, 2 * n), np.arange(n)] = True  # stabilizers Z_i
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- Clifford gates ----------------------------------------------------

    def hadamard(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = (
            self.z[:, a].copy(),
            self.x[:, a].copy(),
        )

    def s_gate(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def s_dagger(self, a: int) -> None:
        self.s_gate(a)
        self.z_gate(a)

    def cnot(self, a: int, b: int) -> None:
        """CNOT with control a, target b."""
        self.r ^= (
            self.x[:, a] & self.z[:, b] & (self.x[:, b] ^ self.z[:, a] ^ True)
        )
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    def x_gate(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def z_gate(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def y_gate(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def cz(self, a: int, b: int) -> None:
        self.hadamard(b)
        self.cnot(a, b)
        self.hadamard(b)

    def swap(self, a: int, b: int) -> None:
        self.cnot(a, b)
        self.cnot(b, a)
        self.cnot(a, b)

    # -- growth ------------------------------------------------------------

    def extend(self, k: int) -> None:
        """Append *k* fresh qubits in |0>, preserving the current state.

        The existing destabilizer/stabilizer rows keep their Pauli
        letters on the old columns; each new qubit contributes the
        standard |0> pair (destabilizer ``X_i``, stabilizer ``Z_i``).
        This is what lets a *streaming* Clifford feed simulate a circuit
        whose total wire count is unknown until the stream ends.
        """
        n, m = self.n, self.n + k
        x = np.zeros((2 * m, m), dtype=bool)
        z = np.zeros((2 * m, m), dtype=bool)
        r = np.zeros(2 * m, dtype=bool)
        x[:n, :n] = self.x[:n]
        z[:n, :n] = self.z[:n]
        r[:n] = self.r[:n]
        x[m:m + n, :n] = self.x[n:]
        z[m:m + n, :n] = self.z[n:]
        r[m:m + n] = self.r[n:]
        x[np.arange(n, m), np.arange(n, m)] = True  # destabilizers X_i
        z[np.arange(m + n, 2 * m), np.arange(n, m)] = True  # stabilizers Z_i
        self.x, self.z, self.r, self.n = x, z, r, m

    # -- measurement -------------------------------------------------------

    @staticmethod
    def _g(x1, z1, x2, z2):
        """Phase exponent contribution of multiplying two Pauli letters."""
        out = np.zeros(x1.shape, dtype=np.int64)
        case_xz = x1 & z1  # letter Y
        out += np.where(case_xz, z2.astype(np.int64) - x2.astype(np.int64), 0)
        case_x = x1 & ~z1  # letter X
        out += np.where(case_x, z2.astype(np.int64) * (2 * x2 - 1), 0)
        case_z = ~x1 & z1  # letter Z
        out += np.where(case_z, x2.astype(np.int64) * (1 - 2 * z2), 0)
        return out

    def _rowsum(self, h: int, i: int) -> None:
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(
            self._g(self.x[i], self.z[i], self.x[h], self.z[h]).sum()
        )
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def measure(self, a: int) -> bool:
        n = self.n
        stab_rows = np.nonzero(self.x[n:, a])[0]
        if stab_rows.size:  # random outcome
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, a]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            outcome = bool(self.rng.integers(2))
            self.z[p, a] = True
            self.r[p] = outcome
            return outcome
        # Deterministic outcome: accumulate into a scratch row.
        sx = np.zeros(n, dtype=bool)
        sz = np.zeros(n, dtype=bool)
        sr = 0
        for i in range(n):
            if self.x[i, a]:
                total = (
                    2 * sr
                    + 2 * int(self.r[i + n])
                    + int(self._g(self.x[i + n], self.z[i + n], sx, sz).sum())
                )
                sr = (total % 4) // 2
                sx ^= self.x[i + n]
                sz ^= self.z[i + n]
        return bool(sr)


class CliffordState:
    """Adapter running extended-model circuits on a :class:`Tableau`."""

    def __init__(self, wires: list[int], rng=None):
        self.index = {w: i for i, w in enumerate(wires)}
        self.tableau = Tableau(len(wires), rng=rng)
        self.bits: dict[int, bool] = {}

    def execute(self, gate: Gate) -> None:
        tab = self.tableau
        if isinstance(gate, Comment):
            return
        if isinstance(gate, NamedGate):
            self._named(gate)
            return
        if isinstance(gate, Init):
            if gate.value:
                tab.x_gate(self.index[gate.wire])
            return
        if isinstance(gate, Term):
            outcome = tab.measure(self.index[gate.wire])
            if outcome != gate.value:
                raise AssertionFailedError(
                    f"qubit {gate.wire} terminated asserting "
                    f"|{int(gate.value)}> but measured {int(outcome)}"
                )
            return
        if isinstance(gate, Discard):
            tab.measure(self.index[gate.wire])
            return
        if isinstance(gate, Measure):
            self.bits[gate.wire] = tab.measure(self.index[gate.wire])
            return
        if isinstance(gate, CInit):
            self.bits[gate.wire] = gate.value
            return
        if isinstance(gate, CTerm):
            if self.bits.pop(gate.wire) != gate.value:
                raise AssertionFailedError("classical assertion failed")
            return
        if isinstance(gate, CDiscard):
            self.bits.pop(gate.wire)
            return
        if isinstance(gate, (CGate, CNot)):
            from .classical import ClassicalState

            proxy = ClassicalState()
            proxy.values = self.bits
            proxy.execute(gate)
            return
        if isinstance(gate, BoxCall):
            raise SimulationError("BoxCall reached simulator; inline first")
        raise SimulationError(f"cannot Clifford-simulate {gate!r}")

    def _named(self, gate: NamedGate) -> None:
        tab = self.tableau
        quantum_controls = [
            c for c in gate.controls if c.wire_type == QUANTUM
        ]
        classical_controls = [
            c for c in gate.controls if c.wire_type != QUANTUM
        ]
        if any(self.bits[c.wire] != c.positive for c in classical_controls):
            return
        # Classification goes through the cached gate-matrix lookup
        # (matching up to global phase), so e.g. Rz(pi/2) runs as S and
        # R(2pi/2) as Z; each (name, param, inverted) key classifies once.
        classified = clifford_classification(
            gate.name, gate.param, gate.inverted
        )
        tag, phase = classified if classified else (None, 0j)
        targets = [self.index[t] for t in gate.targets]
        if quantum_controls:
            ctl = quantum_controls[0]
            if len(quantum_controls) > 1:
                raise SimulationError(
                    "multiply-controlled gates are not Clifford; decompose "
                    "to the Toffoli base will not help -- this simulator "
                    "handles only Clifford circuits"
                )
            # A global phase on the base gate becomes a *relative* phase
            # under a control (C-iX != CNOT), so only exact matches may
            # dispatch here.
            exact = abs(phase - 1.0) < 1e-9
            a = self.index[ctl.wire]
            if not ctl.positive:
                tab.x_gate(a)
            if tag == "X" and exact:
                tab.cnot(a, targets[0])
            elif tag == "Z" and exact:
                tab.cz(a, targets[0])
            else:
                raise SimulationError(
                    f"controlled {gate.name!r} is not a Clifford gate"
                )
            if not ctl.positive:
                tab.x_gate(a)
            return
        if tag == "X":
            tab.x_gate(targets[0])
        elif tag == "Y":
            tab.y_gate(targets[0])
        elif tag == "Z":
            tab.z_gate(targets[0])
        elif tag == "H":
            tab.hadamard(targets[0])
        elif tag == "S":
            tab.s_gate(targets[0])
        elif tag == "S*":
            tab.s_dagger(targets[0])
        elif tag == "swap":
            tab.swap(targets[0], targets[1])
        elif tag in ("phase", "I"):
            return
        else:
            raise SimulationError(f"{gate.name!r} is not a Clifford gate")


class StreamingCliffordState(CliffordState):
    """A CliffordState whose tableau grows as wires appear in a stream.

    The batch :class:`CliffordState` pre-allocates one column per wire
    ever used, which requires the whole gate list up front.  This variant
    starts empty and allocates a column the first time a wire is
    initialized (or declared as an input via :meth:`ensure_wire`),
    growing the tableau by amortized doubling, so it can consume a gate
    stream whose total wire count is unknown until the stream ends.
    """

    def __init__(self, rng=None):
        super().__init__([], rng=rng)

    def ensure_wire(self, wire: int) -> None:
        if wire in self.index:
            return
        if len(self.index) >= self.tableau.n:
            self.tableau.extend(max(8, self.tableau.n))
        self.index[wire] = len(self.index)

    def execute(self, gate: Gate) -> None:
        if isinstance(gate, Init):
            self.ensure_wire(gate.wire)
        super().execute(gate)


def run_clifford(bc: BCircuit, in_values: dict[int, bool] | None = None,
                 rng=None) -> CliffordState:
    """Run a Clifford circuit, returning the final CliffordState.

    Input wires are initialized to basis states from ``in_values``.
    """
    from ..transform.inline import compile_flat

    in_values = in_values or {}
    gates = compile_flat(bc).gates
    wires = []
    seen = set()
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            wires.append(wire)
            seen.add(wire)
    for gate in gates:
        if isinstance(gate, Init) and gate.wire not in seen:
            wires.append(gate.wire)
            seen.add(gate.wire)
    state = CliffordState(wires, rng=rng)
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            if in_values.get(wire, False):
                state.tableau.x_gate(state.index[wire])
        else:
            state.bits[wire] = in_values.get(wire, False)
    for gate in gates:
        state.execute(gate)
    return state
