"""Dense statevector simulation of the extended circuit model.

This is the paper's ``run_generic``: "Quipper also provides a function
run_generic to simulate a circuit (this is necessarily inefficient on a
classical computer)" (Section 4.4.5).  The simulator supports the whole
extended circuit model: dynamic qubit allocation (Init grows the state,
Term shrinks it *and checks the programmer's assertion*), measurement,
classical wires, and classically-controlled gates.

The state is a complex ndarray of shape ``(2,) * n`` with one axis per live
qubit; classical wires live in a plain dict.  Qubit count is limited by
memory (about 24 qubits in a few GB), which is ample for the library's
tests -- the paper's large circuits are *counted*, never simulated.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.circuit import BCircuit
from ..core.errors import (
    AssertionFailedError,
    SimulationError,
)
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.wires import QUANTUM
from .matrices import gate_matrix

_TOLERANCE = 1e-9

_CLASSICAL_FUNCTIONS = {
    "and": lambda values: all(values),
    "or": lambda values: any(values),
    "xor": lambda values: sum(values) % 2 == 1,
    "not": lambda values: not values[0],
    "eq": lambda values: values[0] == values[1],
}


class StateVector:
    """A resizable statevector with named qubit axes and a classical store."""

    def __init__(self, rng: np.random.Generator | None = None):
        self.state = np.ones((), dtype=complex)  # zero qubits: amplitude 1
        self.axes: dict[int, int] = {}  # wire id -> axis index
        self.bits: dict[int, bool] = {}
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- qubit bookkeeping ---------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.axes)

    def add_qubit(self, wire: int, value: bool) -> None:
        if wire in self.axes:
            raise SimulationError(f"qubit {wire} already allocated")
        basis = np.zeros(2, dtype=complex)
        basis[int(value)] = 1.0
        self.state = np.tensordot(self.state, basis, axes=0)
        self.axes[wire] = self.state.ndim - 1

    def _remove_axis(self, wire: int, keep_index: int) -> None:
        axis = self.axes.pop(wire)
        self.state = np.take(self.state, keep_index, axis=axis)
        for other, other_axis in self.axes.items():
            if other_axis > axis:
                self.axes[other] = other_axis - 1

    def remove_qubit_asserted(self, wire: int, value: bool) -> None:
        """Project onto |value> after checking the assertion holds."""
        axis = self.axes[wire]
        wrong = np.take(self.state, 1 - int(value), axis=axis)
        if math.sqrt(float(np.sum(np.abs(wrong) ** 2))) > 1e-6:
            raise AssertionFailedError(
                f"qubit {wire} terminated with assertion |{int(value)}> "
                "but has nonzero amplitude in the other basis state"
            )
        self._remove_axis(wire, int(value))
        self._renormalize()

    def measure_qubit(self, wire: int) -> bool:
        axis = self.axes[wire]
        ones = np.take(self.state, 1, axis=axis)
        p_one = float(np.sum(np.abs(ones) ** 2))
        total = float(np.sum(np.abs(self.state) ** 2))
        outcome = bool(self.rng.random() < p_one / total)
        self._remove_axis(wire, int(outcome))
        self._renormalize()
        return outcome

    def _renormalize(self) -> None:
        norm = math.sqrt(float(np.sum(np.abs(self.state) ** 2)))
        if norm < _TOLERANCE:
            raise SimulationError("state collapsed to zero norm")
        self.state = self.state / norm

    # -- gate application ------------------------------------------------

    def _control_slice(
        self, controls: tuple[Control, ...]
    ) -> tuple | None:
        """Build an index restricting to the control-satisfied subspace.

        Returns None if a classical control is unsatisfied (gate skipped).
        """
        index: list = [slice(None)] * self.state.ndim
        for ctl in controls:
            if ctl.wire_type == QUANTUM:
                index[self.axes[ctl.wire]] = 1 if ctl.positive else 0
            else:
                if self.bits[ctl.wire] != ctl.positive:
                    return None
        return tuple(index)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[Control, ...] = (),
    ) -> None:
        index = self._control_slice(controls)
        if index is None:
            return
        if not targets:  # global phase
            self.state[index] = self.state[index] * matrix[0, 0]
            return
        view = self.state[index]
        # Axis positions of the targets inside the sliced view: each integer-
        # indexed (control) axis before a target shifts it left by one.
        control_axes = sorted(
            self.axes[c.wire] for c in controls if c.wire_type == QUANTUM
        )
        view_axes = []
        for target in targets:
            axis = self.axes[target]
            shift = sum(1 for c in control_axes if c < axis)
            view_axes.append(axis - shift)
        k = len(targets)
        moved = np.moveaxis(view, view_axes, range(k))
        tail = moved.shape[k:]
        flat = moved.reshape(2 ** k, -1)
        result = (matrix @ flat).reshape((2,) * k + tail)
        self.state[index] = np.moveaxis(result, range(k), view_axes)

    # -- gate dispatch -----------------------------------------------------

    def execute(self, gate: Gate) -> None:
        """Execute one (box-free) gate."""
        if isinstance(gate, Comment):
            return
        if isinstance(gate, NamedGate):
            self.apply_unitary(gate_matrix(gate), gate.targets, gate.controls)
            return
        if isinstance(gate, Init):
            self.add_qubit(gate.wire, gate.value)
            return
        if isinstance(gate, Term):
            self.remove_qubit_asserted(gate.wire, gate.value)
            return
        if isinstance(gate, Discard):
            self.measure_qubit(gate.wire)  # trace out by sampling
            return
        if isinstance(gate, Measure):
            self.bits[gate.wire] = self.measure_qubit(gate.wire)
            return
        if isinstance(gate, CInit):
            self.bits[gate.wire] = gate.value
            return
        if isinstance(gate, CTerm):
            if self.bits.pop(gate.wire) != gate.value:
                raise AssertionFailedError(
                    f"classical wire {gate.wire} terminated with wrong value"
                )
            return
        if isinstance(gate, CDiscard):
            self.bits.pop(gate.wire)
            return
        if isinstance(gate, CGate):
            inputs = [self.bits[w] for w in gate.inputs]
            value = _CLASSICAL_FUNCTIONS[gate.name](inputs)
            if gate.uncompute:
                if self.bits.pop(gate.target) != value:
                    raise AssertionFailedError(
                        f"CGate* uncompute mismatch on wire {gate.target}"
                    )
            else:
                self.bits[gate.target] = value
            return
        if isinstance(gate, CNot):
            satisfied = all(
                (
                    self.bits[c.wire] == c.positive
                    if c.wire_type != QUANTUM
                    else self._classical_control_on_qubit(c)
                )
                for c in gate.controls
            )
            if satisfied:
                self.bits[gate.wire] = not self.bits[gate.wire]
            return
        if isinstance(gate, BoxCall):
            raise SimulationError(
                "BoxCall reached the simulator; inline the circuit first"
            )
        raise SimulationError(f"cannot simulate gate {gate!r}")

    def _classical_control_on_qubit(self, ctl: Control) -> bool:
        raise SimulationError(
            "a classical NOT cannot be controlled by a qubit (measurement "
            "would be required); restructure the circuit"
        )

    def basis_probabilities(self, wires: list[int]) -> dict[tuple[int, ...], float]:
        """Probability of each computational-basis outcome on *wires*."""
        order = [self.axes[w] for w in wires]
        probs = np.abs(self.state) ** 2
        other = [a for a in range(self.state.ndim) if a not in order]
        marginal = probs.sum(axis=tuple(other)) if other else probs
        marginal = np.moveaxis(
            marginal, [sorted(order).index(a) for a in order], range(len(order))
        )
        result: dict[tuple[int, ...], float] = {}
        for idx in np.ndindex(*([2] * len(wires))):
            p = float(marginal[idx])
            if p > 1e-12:
                result[idx] = p
        return result


def simulate(bc: BCircuit, in_values: dict[int, bool] | None = None,
             rng: np.random.Generator | None = None) -> StateVector:
    """Simulate a circuit hierarchy from computational-basis inputs.

    ``in_values`` maps input wire ids to initial basis values (default all
    False).  Returns the final :class:`StateVector` (outputs unmeasured).
    """
    from ..transform.inline import iter_flat_gates

    in_values = in_values or {}
    sim = StateVector(rng=rng)
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            sim.add_qubit(wire, in_values.get(wire, False))
        else:
            sim.bits[wire] = in_values.get(wire, False)
    for gate in iter_flat_gates(bc):
        sim.execute(gate)
    return sim
