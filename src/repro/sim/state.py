"""Dense statevector simulation of the extended circuit model.

This is the paper's ``run_generic``: "Quipper also provides a function
run_generic to simulate a circuit (this is necessarily inefficient on a
classical computer)" (Section 4.4.5).  The simulator supports the whole
extended circuit model: dynamic qubit allocation (Init grows the state,
Term shrinks it *and checks the programmer's assertion*), measurement,
classical wires, and classically-controlled gates.

The state is ONE flat contiguous complex vector of length ``2**n``;
``reshape((2,) * n)`` of it is a free view with one axis per live qubit,
and gates mutate strided sub-views of the buffer in place through the
specialized kernels of :mod:`repro.sim.kernels` -- diagonal gates touch
half the state with a single elementwise multiply, bit flips are slice
exchanges, and only the residual dense cases combine slices per a matrix.
Classical wires live in a plain dict.  Qubit count is limited by memory
(about 24 qubits in a few GB), which is ample for the library's tests --
the paper's large circuits are *counted*, never simulated.

:class:`LegacyStateVector` preserves the original moveaxis + reshape +
matmul engine verbatim as the reference implementation: the randomized
equivalence suite pins every kernel against it, and the throughput
benchmarks measure the flat engine's speedup over it.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.circuit import BCircuit
from ..core.errors import (
    AssertionFailedError,
    SimulationError,
)
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.wires import QUANTUM
from .kernels import (
    _apply_dense,
    _pattern_bits,
    _subindex,
    apply_kernel,
    gate_kernel,
)
from .matrices import gate_matrix

_TOLERANCE = 1e-9

_CLASSICAL_FUNCTIONS = {
    "and": lambda values: all(values),
    "or": lambda values: any(values),
    "xor": lambda values: sum(values) % 2 == 1,
    "not": lambda values: not values[0],
    "eq": lambda values: values[0] == values[1],
}


class StateVector:
    """A resizable flat statevector with named qubit axes and a classical
    store.

    The public surface is unchanged from the legacy engine -- ``state``
    still reads as a ``(2,) * n`` array with ``axes`` mapping wire ids to
    axis indices -- but the amplitudes live in one contiguous buffer
    (``data``) that the kernels of :mod:`repro.sim.kernels` mutate in
    place.
    """

    __slots__ = ("data", "axes", "bits", "rng")

    def __init__(self, rng: np.random.Generator | None = None):
        self.data = np.ones(1, dtype=complex)  # zero qubits: amplitude 1
        self.axes: dict[int, int] = {}  # wire id -> axis index
        self.bits: dict[int, bool] = {}
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- qubit bookkeeping ---------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.axes)

    @property
    def state(self) -> np.ndarray:
        """The legacy ``(2,) * n`` tensor layout (a free view of ``data``)."""
        return self.data.reshape((2,) * self.num_qubits)

    def _view(self) -> np.ndarray:
        return self.data.reshape((2,) * len(self.axes))

    def copy(self) -> "StateVector":
        """An independent fork of the simulated state.

        Amplitudes and classical bits are copied; the random generator is
        *shared*, so a sequence of forks consumes one random stream exactly
        as repeated fresh simulations would (shot sampling relies on this).
        """
        clone = StateVector.__new__(StateVector)
        clone.data = self.data.copy()
        clone.axes = dict(self.axes)
        clone.bits = dict(self.bits)
        clone.rng = self.rng
        return clone

    def add_qubit(self, wire: int, value: bool) -> None:
        if wire in self.axes:
            raise SimulationError(f"qubit {wire} already allocated")
        # Appending an axis in C order interleaves: new[2*i + bit] = old[i].
        grown = np.zeros(self.data.size * 2, dtype=complex)
        grown[int(value)::2] = self.data
        self.data = grown
        self.axes[wire] = len(self.axes)

    def _remove_axis(self, wire: int, keep_index: int) -> None:
        axis = self.axes.pop(wire)
        view = self.data.reshape((2,) * (len(self.axes) + 1))
        kept = view[_subindex(view.ndim, ((axis, keep_index),))]
        self.data = np.ascontiguousarray(kept).reshape(-1)
        for other, other_axis in self.axes.items():
            if other_axis > axis:
                self.axes[other] = other_axis - 1

    def _axis_weight(self, wire: int, value: int) -> float:
        """Squared amplitude mass of the subspace where *wire* is *value*."""
        half = self._view()[_subindex(len(self.axes), ((self.axes[wire], value),))]
        return float(np.sum(np.abs(half) ** 2))

    def remove_qubit_asserted(self, wire: int, value: bool) -> None:
        """Project onto |value> after checking the assertion holds."""
        if math.sqrt(self._axis_weight(wire, 1 - int(value))) > 1e-6:
            raise AssertionFailedError(
                f"qubit {wire} terminated with assertion |{int(value)}> "
                "but has nonzero amplitude in the other basis state"
            )
        self._remove_axis(wire, int(value))
        self._renormalize()

    def measure_qubit(self, wire: int) -> bool:
        p_one = self._axis_weight(wire, 1)
        total = float(np.sum(np.abs(self.data) ** 2))
        outcome = bool(self.rng.random() < p_one / total)
        self._remove_axis(wire, int(outcome))
        self._renormalize()
        return outcome

    def _renormalize(self) -> None:
        norm = math.sqrt(float(np.sum(np.abs(self.data) ** 2)))
        if norm < _TOLERANCE:
            raise SimulationError("state collapsed to zero norm")
        self.data /= norm

    # -- gate application ------------------------------------------------

    def _split_controls(
        self, controls: tuple[Control, ...]
    ) -> tuple[tuple[int, int], ...] | None:
        """Quantum controls as (axis, required bit) masks.

        Returns None if a classical control is unsatisfied (gate skipped).
        """
        quantum = []
        for ctl in controls:
            if ctl.wire_type == QUANTUM:
                quantum.append((self.axes[ctl.wire], 1 if ctl.positive else 0))
            elif self.bits[ctl.wire] != ctl.positive:
                return None
        return tuple(quantum)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[Control, ...] = (),
    ) -> None:
        """Apply an explicit matrix (the uncached general entry point)."""
        ctrl = self._split_controls(controls)
        if ctrl is None:
            return
        view = self._view()
        if not targets:  # global phase on the control subspace
            view[_subindex(view.ndim, ctrl)] *= matrix[0, 0]
            return
        target_axes = tuple(self.axes[t] for t in targets)
        slots = [
            _subindex(
                view.ndim,
                ctrl + tuple(zip(target_axes, _pattern_bits(j, len(targets)))),
            )
            for j in range(1 << len(targets))
        ]
        _apply_dense(view, slots, matrix)

    # -- gate dispatch -----------------------------------------------------

    def execute(self, gate: Gate) -> None:
        """Execute one (box-free) gate via the type-dispatch table."""
        handler = _DISPATCH.get(type(gate))
        if handler is None:
            raise SimulationError(f"cannot simulate gate {gate!r}")
        handler(self, gate)

    def _exec_named(self, gate: NamedGate) -> None:
        ctrl = self._split_controls(gate.controls)
        if ctrl is None:
            return
        kernel = gate_kernel(gate.name, gate.param, gate.inverted)
        if kernel.arity != len(gate.targets):
            raise SimulationError(
                f"gate {gate.name!r} expects {kernel.arity} target(s), "
                f"got {len(gate.targets)}"
            )
        apply_kernel(
            self._view(),
            kernel,
            tuple(self.axes[t] for t in gate.targets),
            ctrl,
        )

    def _exec_comment(self, gate: Comment) -> None:
        return

    def _exec_init(self, gate: Init) -> None:
        self.add_qubit(gate.wire, gate.value)

    def _exec_term(self, gate: Term) -> None:
        self.remove_qubit_asserted(gate.wire, gate.value)

    def _exec_discard(self, gate: Discard) -> None:
        self.measure_qubit(gate.wire)  # trace out by sampling

    def _exec_measure(self, gate: Measure) -> None:
        self.bits[gate.wire] = self.measure_qubit(gate.wire)

    def _exec_cinit(self, gate: CInit) -> None:
        self.bits[gate.wire] = gate.value

    def _exec_cterm(self, gate: CTerm) -> None:
        if self.bits.pop(gate.wire) != gate.value:
            raise AssertionFailedError(
                f"classical wire {gate.wire} terminated with wrong value"
            )

    def _exec_cdiscard(self, gate: CDiscard) -> None:
        self.bits.pop(gate.wire)

    def _exec_cgate(self, gate: CGate) -> None:
        inputs = [self.bits[w] for w in gate.inputs]
        value = _CLASSICAL_FUNCTIONS[gate.name](inputs)
        if gate.uncompute:
            if self.bits.pop(gate.target) != value:
                raise AssertionFailedError(
                    f"CGate* uncompute mismatch on wire {gate.target}"
                )
        else:
            self.bits[gate.target] = value

    def _exec_cnot(self, gate: CNot) -> None:
        satisfied = all(
            (
                self.bits[c.wire] == c.positive
                if c.wire_type != QUANTUM
                else self._classical_control_on_qubit(c)
            )
            for c in gate.controls
        )
        if satisfied:
            self.bits[gate.wire] = not self.bits[gate.wire]

    def _exec_boxcall(self, gate: BoxCall) -> None:
        raise SimulationError(
            "BoxCall reached the simulator; inline the circuit first"
        )

    def _classical_control_on_qubit(self, ctl: Control) -> bool:
        raise SimulationError(
            "a classical NOT cannot be controlled by a qubit (measurement "
            "would be required); restructure the circuit"
        )

    def basis_probabilities(self, wires: list[int]) -> dict[tuple[int, ...], float]:
        """Probability of each computational-basis outcome on *wires*."""
        state = self.state
        order = [self.axes[w] for w in wires]
        probs = np.abs(state) ** 2
        other = [a for a in range(state.ndim) if a not in order]
        marginal = probs.sum(axis=tuple(other)) if other else probs
        marginal = np.moveaxis(
            marginal, [sorted(order).index(a) for a in order], range(len(order))
        )
        result: dict[tuple[int, ...], float] = {}
        for idx in np.ndindex(*([2] * len(wires))):
            p = float(marginal[idx])
            if p > 1e-12:
                result[idx] = p
        return result


#: Precomputed type-dispatch table replacing the per-gate isinstance chain.
_DISPATCH: dict[type, object] = {
    NamedGate: StateVector._exec_named,
    Comment: StateVector._exec_comment,
    Init: StateVector._exec_init,
    Term: StateVector._exec_term,
    Discard: StateVector._exec_discard,
    Measure: StateVector._exec_measure,
    CInit: StateVector._exec_cinit,
    CTerm: StateVector._exec_cterm,
    CDiscard: StateVector._exec_cdiscard,
    CGate: StateVector._exec_cgate,
    CNot: StateVector._exec_cnot,
    BoxCall: StateVector._exec_boxcall,
}


class LegacyStateVector:
    """The original ``(2,)*n`` moveaxis + matmul engine, kept verbatim.

    This is the reference implementation the flat kernel engine is pinned
    against (tests/test_kernels.py) and benchmarked over
    (benchmarks/test_kernel_throughput.py).  Do not optimize it.
    """

    def __init__(self, rng: np.random.Generator | None = None):
        self.state = np.ones((), dtype=complex)  # zero qubits: amplitude 1
        self.axes: dict[int, int] = {}  # wire id -> axis index
        self.bits: dict[int, bool] = {}
        self.rng = rng if rng is not None else np.random.default_rng()

    @property
    def num_qubits(self) -> int:
        return len(self.axes)

    def add_qubit(self, wire: int, value: bool) -> None:
        if wire in self.axes:
            raise SimulationError(f"qubit {wire} already allocated")
        basis = np.zeros(2, dtype=complex)
        basis[int(value)] = 1.0
        self.state = np.tensordot(self.state, basis, axes=0)
        self.axes[wire] = self.state.ndim - 1

    def _remove_axis(self, wire: int, keep_index: int) -> None:
        axis = self.axes.pop(wire)
        self.state = np.take(self.state, keep_index, axis=axis)
        for other, other_axis in self.axes.items():
            if other_axis > axis:
                self.axes[other] = other_axis - 1

    def remove_qubit_asserted(self, wire: int, value: bool) -> None:
        axis = self.axes[wire]
        wrong = np.take(self.state, 1 - int(value), axis=axis)
        if math.sqrt(float(np.sum(np.abs(wrong) ** 2))) > 1e-6:
            raise AssertionFailedError(
                f"qubit {wire} terminated with assertion |{int(value)}> "
                "but has nonzero amplitude in the other basis state"
            )
        self._remove_axis(wire, int(value))
        self._renormalize()

    def measure_qubit(self, wire: int) -> bool:
        axis = self.axes[wire]
        ones = np.take(self.state, 1, axis=axis)
        p_one = float(np.sum(np.abs(ones) ** 2))
        total = float(np.sum(np.abs(self.state) ** 2))
        outcome = bool(self.rng.random() < p_one / total)
        self._remove_axis(wire, int(outcome))
        self._renormalize()
        return outcome

    def _renormalize(self) -> None:
        norm = math.sqrt(float(np.sum(np.abs(self.state) ** 2)))
        if norm < _TOLERANCE:
            raise SimulationError("state collapsed to zero norm")
        self.state = self.state / norm

    def _control_slice(
        self, controls: tuple[Control, ...]
    ) -> tuple | None:
        index: list = [slice(None)] * self.state.ndim
        for ctl in controls:
            if ctl.wire_type == QUANTUM:
                index[self.axes[ctl.wire]] = 1 if ctl.positive else 0
            else:
                if self.bits[ctl.wire] != ctl.positive:
                    return None
        return tuple(index)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[Control, ...] = (),
    ) -> None:
        index = self._control_slice(controls)
        if index is None:
            return
        if not targets:  # global phase
            self.state[index] = self.state[index] * matrix[0, 0]
            return
        view = self.state[index]
        # Axis positions of the targets inside the sliced view: each integer-
        # indexed (control) axis before a target shifts it left by one.
        control_axes = sorted(
            self.axes[c.wire] for c in controls if c.wire_type == QUANTUM
        )
        view_axes = []
        for target in targets:
            axis = self.axes[target]
            shift = sum(1 for c in control_axes if c < axis)
            view_axes.append(axis - shift)
        k = len(targets)
        moved = np.moveaxis(view, view_axes, range(k))
        tail = moved.shape[k:]
        flat = moved.reshape(2 ** k, -1)
        result = (matrix @ flat).reshape((2,) * k + tail)
        self.state[index] = np.moveaxis(result, range(k), view_axes)

    def execute(self, gate: Gate) -> None:
        """Execute one (box-free) gate (the original isinstance chain)."""
        if isinstance(gate, Comment):
            return
        if isinstance(gate, NamedGate):
            self.apply_unitary(gate_matrix(gate), gate.targets, gate.controls)
            return
        if isinstance(gate, Init):
            self.add_qubit(gate.wire, gate.value)
            return
        if isinstance(gate, Term):
            self.remove_qubit_asserted(gate.wire, gate.value)
            return
        if isinstance(gate, Discard):
            self.measure_qubit(gate.wire)  # trace out by sampling
            return
        if isinstance(gate, Measure):
            self.bits[gate.wire] = self.measure_qubit(gate.wire)
            return
        if isinstance(gate, CInit):
            self.bits[gate.wire] = gate.value
            return
        if isinstance(gate, CTerm):
            if self.bits.pop(gate.wire) != gate.value:
                raise AssertionFailedError(
                    f"classical wire {gate.wire} terminated with wrong value"
                )
            return
        if isinstance(gate, CDiscard):
            self.bits.pop(gate.wire)
            return
        if isinstance(gate, CGate):
            inputs = [self.bits[w] for w in gate.inputs]
            value = _CLASSICAL_FUNCTIONS[gate.name](inputs)
            if gate.uncompute:
                if self.bits.pop(gate.target) != value:
                    raise AssertionFailedError(
                        f"CGate* uncompute mismatch on wire {gate.target}"
                    )
            else:
                self.bits[gate.target] = value
            return
        if isinstance(gate, CNot):
            satisfied = all(
                (
                    self.bits[c.wire] == c.positive
                    if c.wire_type != QUANTUM
                    else self._classical_control_on_qubit(c)
                )
                for c in gate.controls
            )
            if satisfied:
                self.bits[gate.wire] = not self.bits[gate.wire]
            return
        if isinstance(gate, BoxCall):
            raise SimulationError(
                "BoxCall reached the simulator; inline the circuit first"
            )
        raise SimulationError(f"cannot simulate gate {gate!r}")

    def _classical_control_on_qubit(self, ctl: Control) -> bool:
        raise SimulationError(
            "a classical NOT cannot be controlled by a qubit (measurement "
            "would be required); restructure the circuit"
        )

    basis_probabilities = StateVector.basis_probabilities


def simulate(bc: BCircuit, in_values: dict[int, bool] | None = None,
             rng: np.random.Generator | None = None) -> StateVector:
    """Simulate a circuit hierarchy from computational-basis inputs.

    ``in_values`` maps input wire ids to initial basis values (default all
    False).  Returns the final :class:`StateVector` (outputs unmeasured).

    This is a single pass, so the hierarchy is *streamed* lazily -- a
    circuit whose inlined gate list would not fit in memory still
    simulates (the backends' shot samplers, which replay gates, go
    through the materialized :func:`~repro.transform.inline.compile_flat`
    stream instead).
    """
    from ..transform.inline import iter_flat_gates

    in_values = in_values or {}
    sim = StateVector(rng=rng)
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            sim.add_qubit(wire, in_values.get(wire, False))
        else:
            sim.bits[wire] = in_values.get(wire, False)
    for gate in iter_flat_gates(bc):
        sim.execute(gate)
    return sim
