"""Dense statevector simulation of the extended circuit model.

This is the paper's ``run_generic``: "Quipper also provides a function
run_generic to simulate a circuit (this is necessarily inefficient on a
classical computer)" (Section 4.4.5).  The simulator supports the whole
extended circuit model: dynamic qubit allocation (Init grows the state,
Term shrinks it *and checks the programmer's assertion*), measurement,
classical wires, and classically-controlled gates.

The state is ONE flat contiguous complex buffer of shape ``(B, 2**n)``:
``B`` independent simulations (shots, or parameter bindings) advancing in
lockstep, with ``reshape((B,) + (2,) * n)`` a free view carrying one axis
per live qubit after the batch axis.  Gates mutate strided sub-views of
the buffer in place through the specialized kernels of
:mod:`repro.sim.kernels` -- diagonal gates touch half of every member
with a single elementwise multiply, bit flips are slice exchanges, and
only the residual dense cases combine slices per a matrix.  Kernels never
index the batch axis, so ONE dispatch advances all ``B`` members: the
per-gate Python/numpy dispatch overhead that dominates at moderate qubit
counts is paid once per batch instead of once per shot.  At ``batch=1``
(the default) the engine is float-for-float identical to the pre-batch
flat engine.  Across batch sizes, measurement randomness, outcomes, and
seeded counts are bit-identical (see :meth:`StateVector.preload_randoms`)
and amplitudes agree to machine rounding -- numpy's SIMD loops may round
a strided batch column one ULP differently than a lone element.

Buffers are allocated through the array-module seam
(:mod:`repro.sim.xp`), so the same engine drives numpy today and any
capability-probed drop-in (cupy) selected via ``REPRO_ARRAY_MODULE``.
Classical wires live in a plain dict -- scalar bools at ``batch=1``,
host-side numpy bool arrays of shape ``(B,)`` otherwise (classical state
stays on the host even when amplitudes live on a device).

:class:`LegacyStateVector` preserves the original moveaxis + reshape +
matmul engine verbatim as the reference implementation: the randomized
equivalence suites pin every kernel -- scalar and batched -- against it,
and the throughput benchmarks measure the flat engine's speedup over it.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.circuit import BCircuit
from ..core.errors import (
    AssertionFailedError,
    SimulationError,
)
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.wires import QUANTUM
from ..obs import core as _obs
from . import xp as _xp
from .kernels import (
    _apply_dense,
    _pattern_bits,
    _subindex,
    apply_kernel,
    gate_kernel,
)
from .matrices import gate_matrix

_TOLERANCE = 1e-9

_CLASSICAL_FUNCTIONS = {
    "and": lambda values: all(values),
    "or": lambda values: any(values),
    "xor": lambda values: sum(values) % 2 == 1,
    "not": lambda values: not values[0],
    "eq": lambda values: values[0] == values[1],
}

#: Vectorized forms of the classical functions, applied over a stacked
#: ``(k, B)`` bool array when the state is batched.
_CLASSICAL_VECTOR_FUNCTIONS = {
    "and": lambda values: np.logical_and.reduce(values, axis=0),
    "or": lambda values: np.logical_or.reduce(values, axis=0),
    "xor": lambda values: values.sum(axis=0) % 2 == 1,
    "not": lambda values: ~values[0],
    "eq": lambda values: values[0] == values[1],
}


class StateVector:
    """A resizable flat statevector with named qubit axes, a classical
    store, and a leading batch axis.

    ``data`` has shape ``(batch, 2**n)``; at ``batch=1`` the public
    surface is unchanged from the scalar engine (``state`` reads as a
    ``(2,) * n`` array, classical bits are plain bools, and
    :meth:`measure_qubit` returns a bool).  At ``batch > 1`` every member
    advances through the same gate sequence in one kernel dispatch,
    ``state`` reads as ``(batch,) + (2,) * n``, classical bits are host
    ``(batch,)`` bool arrays, and measurement collapses each member to
    its own outcome.  ``axes`` maps wire ids to *qubit* axis indices
    (batch axis excluded); kernels see those indices shifted by one.
    """

    __slots__ = ("data", "axes", "bits", "rng", "batch", "_presampled")

    def __init__(
        self, rng: np.random.Generator | None = None, batch: int = 1
    ):
        if batch < 1:
            raise SimulationError("batch size must be >= 1")
        self.batch = int(batch)
        # zero qubits: every member is the scalar amplitude 1
        self.data = _xp.xp().ones((self.batch, 1), dtype=complex)
        self.axes: dict[int, int] = {}  # wire id -> qubit axis index
        self.bits: dict[int, bool | np.ndarray] = {}
        self.rng = rng if rng is not None else np.random.default_rng()
        self._presampled = None

    # -- qubit bookkeeping ---------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.axes)

    @property
    def state(self) -> np.ndarray:
        """The ``(2,) * n`` tensor layout (a free view of ``data``),
        with a leading batch axis when ``batch > 1``."""
        shape = (2,) * self.num_qubits
        if self.batch == 1:
            return self.data.reshape(shape)
        return self.data.reshape((self.batch,) + shape)

    def _view(self) -> np.ndarray:
        return self.data.reshape((self.batch,) + (2,) * len(self.axes))

    def copy(self) -> "StateVector":
        """An independent fork of the simulated state.

        Amplitudes and classical bits are copied; the random generator is
        *shared*, so a sequence of forks consumes one random stream exactly
        as repeated fresh simulations would (shot sampling relies on this).
        """
        clone = StateVector.__new__(StateVector)
        clone.batch = self.batch
        clone.data = self.data.copy()
        clone.axes = dict(self.axes)
        clone.bits = {
            w: (v.copy() if isinstance(v, np.ndarray) else v)
            for w, v in self.bits.items()
        }
        clone.rng = self.rng
        clone._presampled = self._presampled
        return clone

    def broadcast(self, batch: int) -> "StateVector":
        """Fork this batch-1 state into *batch* lockstep members.

        Every member starts as an exact copy of this state; the random
        generator is shared, as in :meth:`copy`.  This is how the shot
        sampler turns one simulated deterministic prefix into a whole
        batch of stochastic suffix replays.
        """
        if self.batch != 1:
            raise SimulationError("only a batch-1 state can broadcast")
        if batch < 1:
            raise SimulationError("batch size must be >= 1")
        clone = StateVector.__new__(StateVector)
        clone.batch = int(batch)
        if batch == 1:
            clone.data = self.data.copy()
            clone.bits = dict(self.bits)
        else:
            clone.data = _xp.xp().repeat(self.data, batch, axis=0)
            clone.bits = {
                w: np.full(batch, bool(v)) for w, v in self.bits.items()
            }
        clone.axes = dict(self.axes)
        clone.rng = self.rng
        clone._presampled = None
        return clone

    def set_bit(self, wire: int, value: bool) -> None:
        """Set classical wire *wire* to *value* on every member."""
        if self.batch == 1:
            self.bits[wire] = bool(value)
        else:
            self.bits[wire] = np.full(self.batch, bool(value))

    def _bit_array(self, value) -> np.ndarray:
        """A classical value as a host ``(batch,)`` bool array."""
        if isinstance(value, np.ndarray):
            return value
        return np.full(self.batch, bool(value))

    def add_qubit(self, wire: int, value: bool) -> None:
        if wire in self.axes:
            raise SimulationError(f"qubit {wire} already allocated")
        # Appending an axis in C order interleaves: new[2*i + bit] = old[i]
        # member by member.
        grown = _xp.xp().zeros(
            (self.batch, self.data.shape[1] * 2), dtype=complex
        )
        grown[:, int(value)::2] = self.data
        self.data = grown
        self.axes[wire] = len(self.axes)

    def _remove_axis(self, wire: int, keep_index: int) -> None:
        """Collapse *wire* to the same basis state in every member."""
        axis = self.axes.pop(wire)
        view = self.data.reshape((self.batch,) + (2,) * (len(self.axes) + 1))
        kept = view[_subindex(view.ndim, ((axis + 1, keep_index),))]
        self.data = _xp.xp().ascontiguousarray(kept).reshape(self.batch, -1)
        for other, other_axis in self.axes.items():
            if other_axis > axis:
                self.axes[other] = other_axis - 1

    def _remove_axis_members(self, wire: int, outcomes: np.ndarray) -> None:
        """Collapse *wire* to a per-member basis state (batched measure).

        ``outcomes`` is a host bool array of shape ``(batch,)``; member i
        keeps the slice where the wire's bit equals ``outcomes[i]``,
        gathered in one ``take_along_axis`` over the batch.
        """
        axis = self.axes.pop(wire)
        n = len(self.axes) + 1
        xpm = _xp.xp()
        view = self.data.reshape(
            self.batch, 1 << axis, 2, 1 << (n - 1 - axis)
        )
        idx = xpm.asarray(outcomes.astype(np.int64)).reshape(
            self.batch, 1, 1, 1
        )
        kept = xpm.take_along_axis(view, idx, axis=2)
        self.data = xpm.ascontiguousarray(kept).reshape(self.batch, -1)
        for other, other_axis in self.axes.items():
            if other_axis > axis:
                self.axes[other] = other_axis - 1

    def _axis_weight(self, wire: int, value: int) -> float:
        """Squared amplitude mass of the subspace where *wire* is *value*,
        summed over the whole batch (a scalar; batch-1 callers rely on the
        exact legacy float behavior)."""
        half = self._view()[
            _subindex(len(self.axes) + 1, ((self.axes[wire] + 1, value),))
        ]
        return float(np.sum(np.abs(half) ** 2))

    def _axis_weights(self, wire: int, value: int) -> np.ndarray:
        """Per-member squared amplitude mass where *wire* is *value*."""
        half = self._view()[
            _subindex(len(self.axes) + 1, ((self.axes[wire] + 1, value),))
        ]
        return (abs(half) ** 2).reshape(self.batch, -1).sum(axis=1)

    def remove_qubit_asserted(self, wire: int, value: bool) -> None:
        """Project onto |value> after checking the assertion holds for
        every member."""
        if self.batch == 1:
            wrong = self._axis_weight(wire, 1 - int(value))
        else:
            wrong = float(
                _xp.to_host(self._axis_weights(wire, 1 - int(value))).max()
            )
        if math.sqrt(wrong) > 1e-6:
            raise AssertionFailedError(
                f"qubit {wire} terminated with assertion |{int(value)}> "
                "but has nonzero amplitude in the other basis state"
            )
        self._remove_axis(wire, int(value))
        self._renormalize()

    def measure_qubit(self, wire: int):
        """Measure *wire*, collapsing each member to its own outcome.

        Returns a bool at ``batch=1``, a host ``(batch,)`` bool array
        otherwise.  One value of measurement randomness is consumed per
        member (from the preloaded matrix when :meth:`preload_randoms`
        armed one, else from ``rng``).
        """
        if self.batch == 1:
            p_one = self._axis_weight(wire, 1)
            total = float(np.sum(np.abs(self.data) ** 2))
            outcome = bool(self._draw_scalar() < p_one / total)
            self._remove_axis(wire, int(outcome))
            self._renormalize()
            return outcome
        p_one = self._axis_weights(wire, 1)
        total = (abs(self.data) ** 2).sum(axis=1)
        probs = _xp.to_host(p_one / total)
        outcomes = self._draw_members() < probs
        self._remove_axis_members(wire, outcomes)
        self._renormalize()
        return outcomes

    def preload_randoms(self, draws: np.ndarray) -> None:
        """Serve measurement randomness from a pre-drawn matrix.

        ``draws`` has shape ``(batch, events)``, drawn *shot-major* (one
        row per member) in a single ``rng.random((batch, events))`` call
        -- which consumes the underlying bit stream exactly as ``batch``
        sequential scalar simulations would, so batched sampling stays
        bit-identical to the per-shot fork loop it replaced.  Stochastic
        event j then consumes column j across all members.
        """
        columns = np.asarray(draws, dtype=float).T
        self._presampled = iter(columns)

    def _draw_scalar(self) -> float:
        if self._presampled is not None:
            return float(self._next_column()[0])
        return self.rng.random()

    def _draw_members(self) -> np.ndarray:
        if self._presampled is not None:
            return self._next_column()
        return self.rng.random(self.batch)

    def _next_column(self) -> np.ndarray:
        column = next(self._presampled, None)
        if column is None:
            raise SimulationError(
                "preloaded measurement randomness exhausted; the sampler "
                "under-counted the circuit's stochastic events"
            )
        return column

    def _renormalize(self) -> None:
        if self.batch == 1:
            norm = math.sqrt(float(np.sum(np.abs(self.data) ** 2)))
            if norm < _TOLERANCE:
                raise SimulationError("state collapsed to zero norm")
            self.data /= norm
            return
        norms = _xp.xp().sqrt((abs(self.data) ** 2).sum(axis=1))
        if float(_xp.to_host(norms).min()) < _TOLERANCE:
            raise SimulationError(
                "a batch member collapsed to zero norm"
            )
        self.data /= norms[:, None]

    # -- gate application ------------------------------------------------

    def _split_controls(
        self, controls: tuple[Control, ...]
    ) -> tuple[tuple[tuple[int, int], ...], np.ndarray | None] | None:
        """Quantum controls as (view axis, required bit) masks, plus the
        classical-control member mask.

        Returns None when no member satisfies the classical controls (the
        gate is skipped entirely); otherwise ``(quantum, mask)`` where
        ``mask`` is None when every member satisfies them, or a host bool
        array selecting the members that do.  Quantum-control axes are
        already shifted past the batch axis, ready for the kernel layer.
        """
        quantum = []
        mask = None
        for ctl in controls:
            if ctl.wire_type == QUANTUM:
                quantum.append(
                    (self.axes[ctl.wire] + 1, 1 if ctl.positive else 0)
                )
                continue
            value = self.bits[ctl.wire]
            if isinstance(value, np.ndarray):
                satisfied = value == ctl.positive
                mask = satisfied if mask is None else (mask & satisfied)
            elif value != ctl.positive:
                return None
        if mask is not None:
            if not mask.any():
                return None
            if mask.all():
                mask = None
        return tuple(quantum), mask

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[Control, ...] = (),
    ) -> None:
        """Apply an explicit matrix (the uncached general entry point)."""
        resolved = self._split_controls(controls)
        if resolved is None:
            return
        ctrl, mask = resolved
        view = self._view()
        if mask is None:
            self._apply_matrix(view, matrix, targets, ctrl)
            return
        members = _xp.xp().asarray(mask)
        sub = view[members]
        self._apply_matrix(sub, matrix, targets, ctrl)
        view[members] = sub

    def _apply_matrix(self, view, matrix, targets, ctrl) -> None:
        if not targets:  # global phase on the control subspace
            view[_subindex(view.ndim, ctrl)] *= matrix[0, 0]
            return
        target_axes = tuple(self.axes[t] + 1 for t in targets)
        slots = [
            _subindex(
                view.ndim,
                ctrl + tuple(zip(target_axes, _pattern_bits(j, len(targets)))),
            )
            for j in range(1 << len(targets))
        ]
        _apply_dense(view, slots, matrix)

    # -- gate dispatch -----------------------------------------------------

    def execute(self, gate: Gate) -> None:
        """Execute one (box-free) gate via the type-dispatch table."""
        handler = _DISPATCH.get(type(gate))
        if handler is None:
            raise SimulationError(f"cannot simulate gate {gate!r}")
        if _obs.ENABLED and self.batch > 1:
            _obs.add("sim.batch.gates")
        handler(self, gate)

    def _exec_named(self, gate: NamedGate) -> None:
        resolved = self._split_controls(gate.controls)
        if resolved is None:
            return
        ctrl, mask = resolved
        kernel = gate_kernel(gate.name, gate.param, gate.inverted)
        if kernel.arity != len(gate.targets):
            raise SimulationError(
                f"gate {gate.name!r} expects {kernel.arity} target(s), "
                f"got {len(gate.targets)}"
            )
        target_axes = tuple(self.axes[t] + 1 for t in gate.targets)
        if mask is None:
            apply_kernel(self._view(), kernel, target_axes, ctrl)
            return
        # Mixed classical controls: copy out the satisfying members, run
        # the kernel on the sub-batch, scatter the result back.
        view = self._view()
        members = _xp.xp().asarray(mask)
        sub = view[members]
        apply_kernel(sub, kernel, target_axes, ctrl)
        view[members] = sub

    def _exec_comment(self, gate: Comment) -> None:
        return

    def _exec_init(self, gate: Init) -> None:
        self.add_qubit(gate.wire, gate.value)

    def _exec_term(self, gate: Term) -> None:
        self.remove_qubit_asserted(gate.wire, gate.value)

    def _exec_discard(self, gate: Discard) -> None:
        self.measure_qubit(gate.wire)  # trace out by sampling

    def _exec_measure(self, gate: Measure) -> None:
        self.bits[gate.wire] = self.measure_qubit(gate.wire)

    def _exec_cinit(self, gate: CInit) -> None:
        self.set_bit(gate.wire, gate.value)

    def _exec_cterm(self, gate: CTerm) -> None:
        previous = self.bits.pop(gate.wire)
        if isinstance(previous, np.ndarray):
            mismatch = bool(np.any(previous != gate.value))
        else:
            mismatch = previous != gate.value
        if mismatch:
            raise AssertionFailedError(
                f"classical wire {gate.wire} terminated with wrong value"
            )

    def _exec_cdiscard(self, gate: CDiscard) -> None:
        self.bits.pop(gate.wire)

    def _exec_cgate(self, gate: CGate) -> None:
        if self.batch == 1:
            inputs = [self.bits[w] for w in gate.inputs]
            value = _CLASSICAL_FUNCTIONS[gate.name](inputs)
            if gate.uncompute:
                if self.bits.pop(gate.target) != value:
                    raise AssertionFailedError(
                        f"CGate* uncompute mismatch on wire {gate.target}"
                    )
            else:
                self.bits[gate.target] = value
            return
        inputs = np.stack(
            [self._bit_array(self.bits[w]) for w in gate.inputs]
        )
        value = _CLASSICAL_VECTOR_FUNCTIONS[gate.name](inputs)
        if gate.uncompute:
            previous = self._bit_array(self.bits.pop(gate.target))
            if bool(np.any(previous != value)):
                raise AssertionFailedError(
                    f"CGate* uncompute mismatch on wire {gate.target}"
                )
        else:
            self.bits[gate.target] = value

    def _exec_cnot(self, gate: CNot) -> None:
        if self.batch == 1:
            satisfied = all(
                (
                    self.bits[c.wire] == c.positive
                    if c.wire_type != QUANTUM
                    else self._classical_control_on_qubit(c)
                )
                for c in gate.controls
            )
            if satisfied:
                self.bits[gate.wire] = not self.bits[gate.wire]
            return
        satisfied = np.ones(self.batch, dtype=bool)
        for c in gate.controls:
            if c.wire_type == QUANTUM:
                self._classical_control_on_qubit(c)
            else:
                satisfied &= self._bit_array(self.bits[c.wire]) == c.positive
        current = self._bit_array(self.bits[gate.wire])
        self.bits[gate.wire] = np.where(satisfied, ~current, current)

    def _exec_boxcall(self, gate: BoxCall) -> None:
        raise SimulationError(
            "BoxCall reached the simulator; inline the circuit first"
        )

    def _classical_control_on_qubit(self, ctl: Control) -> bool:
        raise SimulationError(
            "a classical NOT cannot be controlled by a qubit (measurement "
            "would be required); restructure the circuit"
        )

    def basis_probabilities(self, wires: list[int]) -> dict[tuple[int, ...], float]:
        """Probability of each computational-basis outcome on *wires*."""
        if self.batch > 1:
            raise SimulationError(
                "basis_probabilities is defined on a single state; "
                "run with batch=1 to inspect amplitudes"
            )
        state = _xp.to_host(self.state)
        order = [self.axes[w] for w in wires]
        probs = np.abs(state) ** 2
        other = [a for a in range(state.ndim) if a not in order]
        marginal = probs.sum(axis=tuple(other)) if other else probs
        marginal = np.moveaxis(
            marginal, [sorted(order).index(a) for a in order], range(len(order))
        )
        result: dict[tuple[int, ...], float] = {}
        for idx in np.ndindex(*([2] * len(wires))):
            p = float(marginal[idx])
            if p > 1e-12:
                result[idx] = p
        return result


#: Precomputed type-dispatch table replacing the per-gate isinstance chain.
_DISPATCH: dict[type, object] = {
    NamedGate: StateVector._exec_named,
    Comment: StateVector._exec_comment,
    Init: StateVector._exec_init,
    Term: StateVector._exec_term,
    Discard: StateVector._exec_discard,
    Measure: StateVector._exec_measure,
    CInit: StateVector._exec_cinit,
    CTerm: StateVector._exec_cterm,
    CDiscard: StateVector._exec_cdiscard,
    CGate: StateVector._exec_cgate,
    CNot: StateVector._exec_cnot,
    BoxCall: StateVector._exec_boxcall,
}


class LegacyStateVector:
    """The original ``(2,)*n`` moveaxis + matmul engine, kept verbatim.

    This is the reference implementation the flat kernel engine is pinned
    against (tests/test_kernels.py, tests/test_batched.py) and benchmarked
    over (benchmarks/test_kernel_throughput.py).  Do not optimize it.
    """

    #: Legacy states are never batched (basis_probabilities is shared).
    batch = 1

    def __init__(self, rng: np.random.Generator | None = None):
        self.state = np.ones((), dtype=complex)  # zero qubits: amplitude 1
        self.axes: dict[int, int] = {}  # wire id -> axis index
        self.bits: dict[int, bool] = {}
        self.rng = rng if rng is not None else np.random.default_rng()

    @property
    def num_qubits(self) -> int:
        return len(self.axes)

    def add_qubit(self, wire: int, value: bool) -> None:
        if wire in self.axes:
            raise SimulationError(f"qubit {wire} already allocated")
        basis = np.zeros(2, dtype=complex)
        basis[int(value)] = 1.0
        self.state = np.tensordot(self.state, basis, axes=0)
        self.axes[wire] = self.state.ndim - 1

    def _remove_axis(self, wire: int, keep_index: int) -> None:
        axis = self.axes.pop(wire)
        self.state = np.take(self.state, keep_index, axis=axis)
        for other, other_axis in self.axes.items():
            if other_axis > axis:
                self.axes[other] = other_axis - 1

    def remove_qubit_asserted(self, wire: int, value: bool) -> None:
        axis = self.axes[wire]
        wrong = np.take(self.state, 1 - int(value), axis=axis)
        if math.sqrt(float(np.sum(np.abs(wrong) ** 2))) > 1e-6:
            raise AssertionFailedError(
                f"qubit {wire} terminated with assertion |{int(value)}> "
                "but has nonzero amplitude in the other basis state"
            )
        self._remove_axis(wire, int(value))
        self._renormalize()

    def measure_qubit(self, wire: int) -> bool:
        axis = self.axes[wire]
        ones = np.take(self.state, 1, axis=axis)
        p_one = float(np.sum(np.abs(ones) ** 2))
        total = float(np.sum(np.abs(self.state) ** 2))
        outcome = bool(self.rng.random() < p_one / total)
        self._remove_axis(wire, int(outcome))
        self._renormalize()
        return outcome

    def _renormalize(self) -> None:
        norm = math.sqrt(float(np.sum(np.abs(self.state) ** 2)))
        if norm < _TOLERANCE:
            raise SimulationError("state collapsed to zero norm")
        self.state = self.state / norm

    def _control_slice(
        self, controls: tuple[Control, ...]
    ) -> tuple | None:
        index: list = [slice(None)] * self.state.ndim
        for ctl in controls:
            if ctl.wire_type == QUANTUM:
                index[self.axes[ctl.wire]] = 1 if ctl.positive else 0
            else:
                if self.bits[ctl.wire] != ctl.positive:
                    return None
        return tuple(index)

    def apply_unitary(
        self,
        matrix: np.ndarray,
        targets: tuple[int, ...],
        controls: tuple[Control, ...] = (),
    ) -> None:
        index = self._control_slice(controls)
        if index is None:
            return
        if not targets:  # global phase
            self.state[index] = self.state[index] * matrix[0, 0]
            return
        view = self.state[index]
        # Axis positions of the targets inside the sliced view: each integer-
        # indexed (control) axis before a target shifts it left by one.
        control_axes = sorted(
            self.axes[c.wire] for c in controls if c.wire_type == QUANTUM
        )
        view_axes = []
        for target in targets:
            axis = self.axes[target]
            shift = sum(1 for c in control_axes if c < axis)
            view_axes.append(axis - shift)
        k = len(targets)
        moved = np.moveaxis(view, view_axes, range(k))
        tail = moved.shape[k:]
        flat = moved.reshape(2 ** k, -1)
        result = (matrix @ flat).reshape((2,) * k + tail)
        self.state[index] = np.moveaxis(result, range(k), view_axes)

    def execute(self, gate: Gate) -> None:
        """Execute one (box-free) gate (the original isinstance chain)."""
        if isinstance(gate, Comment):
            return
        if isinstance(gate, NamedGate):
            self.apply_unitary(gate_matrix(gate), gate.targets, gate.controls)
            return
        if isinstance(gate, Init):
            self.add_qubit(gate.wire, gate.value)
            return
        if isinstance(gate, Term):
            self.remove_qubit_asserted(gate.wire, gate.value)
            return
        if isinstance(gate, Discard):
            self.measure_qubit(gate.wire)  # trace out by sampling
            return
        if isinstance(gate, Measure):
            self.bits[gate.wire] = self.measure_qubit(gate.wire)
            return
        if isinstance(gate, CInit):
            self.bits[gate.wire] = gate.value
            return
        if isinstance(gate, CTerm):
            if self.bits.pop(gate.wire) != gate.value:
                raise AssertionFailedError(
                    f"classical wire {gate.wire} terminated with wrong value"
                )
            return
        if isinstance(gate, CDiscard):
            self.bits.pop(gate.wire)
            return
        if isinstance(gate, CGate):
            inputs = [self.bits[w] for w in gate.inputs]
            value = _CLASSICAL_FUNCTIONS[gate.name](inputs)
            if gate.uncompute:
                if self.bits.pop(gate.target) != value:
                    raise AssertionFailedError(
                        f"CGate* uncompute mismatch on wire {gate.target}"
                    )
            else:
                self.bits[gate.target] = value
            return
        if isinstance(gate, CNot):
            satisfied = all(
                (
                    self.bits[c.wire] == c.positive
                    if c.wire_type != QUANTUM
                    else self._classical_control_on_qubit(c)
                )
                for c in gate.controls
            )
            if satisfied:
                self.bits[gate.wire] = not self.bits[gate.wire]
            return
        if isinstance(gate, BoxCall):
            raise SimulationError(
                "BoxCall reached the simulator; inline the circuit first"
            )
        raise SimulationError(f"cannot simulate gate {gate!r}")

    def _classical_control_on_qubit(self, ctl: Control) -> bool:
        raise SimulationError(
            "a classical NOT cannot be controlled by a qubit (measurement "
            "would be required); restructure the circuit"
        )

    basis_probabilities = StateVector.basis_probabilities


def simulate(bc: BCircuit, in_values: dict[int, bool] | None = None,
             rng: np.random.Generator | None = None,
             batch: int = 1) -> StateVector:
    """Simulate a circuit hierarchy from computational-basis inputs.

    ``in_values`` maps input wire ids to initial basis values (default all
    False).  Returns the final :class:`StateVector` (outputs unmeasured).
    ``batch`` runs that many lockstep copies of the circuit in one pass --
    identical until measurement, then collapsing member by member.

    This is a single pass, so the hierarchy is *streamed* lazily -- a
    circuit whose inlined gate list would not fit in memory still
    simulates (the backends' shot samplers, which replay gates, go
    through the materialized :func:`~repro.transform.inline.compile_flat`
    stream instead).
    """
    from ..transform.inline import iter_flat_gates

    in_values = in_values or {}
    sim = StateVector(rng=rng, batch=batch)
    for wire, wtype in bc.circuit.inputs:
        if wtype == QUANTUM:
            sim.add_qubit(wire, in_values.get(wire, False))
        else:
            sim.set_bit(wire, in_values.get(wire, False))
    for gate in iter_flat_gates(bc):
        sim.execute(gate)
    return sim
