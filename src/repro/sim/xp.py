"""The array-module seam: numpy today, cupy (or any drop-in) tomorrow.

Every buffer the batched statevector engine allocates goes through this
module instead of importing :mod:`numpy` directly.  The active module is
selected once, lazily, from the ``REPRO_ARRAY_MODULE`` environment
variable (``numpy`` by default, ``cupy`` for the GPU path) and then
**probed per capability**: a candidate that cannot pass the engine's
actual access patterns -- complex128 buffers, strided sub-view mutation,
axis reductions, boolean row masking, per-row gathers -- is rejected and
the seam falls back to numpy with a warning rather than failing deep
inside a kernel.

The seam is deliberately thin.  Kernels receive arrays and use only the
operations the probes verify, so any module passing the probe suite is a
drop-in: the batched engine itself never mentions numpy.  Host handoffs
(sampling counts, serializing a statevector) go through
:func:`to_host`, the single point where device arrays become numpy.

Resolution is cached; tests (and embedders) can re-point the seam with
:func:`use` / :func:`reset`.
"""

from __future__ import annotations

import importlib
import os
import warnings

import numpy as _numpy

#: Environment variable naming the array module to load.
ENV_VAR = "REPRO_ARRAY_MODULE"

#: Capability probes, in the order they are attempted.  Each probe
#: exercises one access pattern the batched kernels rely on; see
#: :func:`probe_capabilities`.
CAPABILITIES = (
    "complex128",
    "strided_views",
    "axis_reduction",
    "boolean_mask",
    "row_gather",
)


class ArrayModule:
    """One resolved array backend: the module plus its probed surface."""

    __slots__ = ("name", "mod", "capabilities")

    def __init__(self, name: str, mod, capabilities: frozenset[str]):
        self.name = name
        self.mod = mod
        self.capabilities = capabilities

    def to_host(self, array):
        """The array as a host-side numpy ndarray (copy only if needed)."""
        if self.mod is _numpy:
            return array
        get = getattr(self.mod, "asnumpy", None)
        if get is not None:
            return get(array)
        return _numpy.asarray(array.get())

    def __repr__(self) -> str:
        return f"<ArrayModule {self.name!r} caps={sorted(self.capabilities)}>"


def probe_capabilities(mod) -> frozenset[str]:
    """Which of :data:`CAPABILITIES` the module actually supports.

    Each probe runs the real access pattern on a tiny array and must
    produce the numerically expected answer -- presence of an attribute
    is not trusted.  A probe that raises simply marks its capability
    unsupported.
    """
    passed = set()
    try:  # complex128: the amplitude dtype of every buffer
        a = mod.zeros(4, dtype=complex)
        a[1] = 1j
        if complex(a[1]) == 1j:
            passed.add("complex128")
    except Exception:  # pragma: no cover - degenerate module
        pass
    try:  # strided_views: in-place mutation through a reshaped sub-view
        a = mod.arange(8, dtype=complex)
        v = a.reshape(2, 2, 2)
        v[:, 1, :] = v[:, 1, :] * 2.0
        if complex(a[3]) == 6.0:
            passed.add("strided_views")
    except Exception:  # pragma: no cover
        pass
    try:  # axis_reduction: per-member norms over the batch axis
        a = mod.ones((2, 3), dtype=complex)
        s = a.real.sum(axis=1)
        if float(s[0]) == 3.0 and tuple(s.shape) == (2,):
            passed.add("axis_reduction")
    except Exception:  # pragma: no cover
        pass
    try:  # boolean_mask: masked member read + write-back on axis 0
        a = mod.arange(6, dtype=complex).reshape(3, 2)
        mask = mod.asarray([True, False, True])
        sub = a[mask]
        sub = sub * 10.0
        a[mask] = sub
        if complex(a[2, 0]) == 40.0:
            passed.add("boolean_mask")
    except Exception:  # pragma: no cover
        pass
    try:  # row_gather: per-member outcome selection (batched collapse)
        a = mod.arange(8, dtype=complex).reshape(2, 2, 2)
        idx = mod.asarray([1, 0]).reshape(2, 1, 1)
        got = mod.take_along_axis(a, idx, axis=1)
        if complex(got[0, 0, 1]) == 3.0 and complex(got[1, 0, 0]) == 4.0:
            passed.add("row_gather")
    except Exception:  # pragma: no cover
        pass
    return frozenset(passed)


_NUMPY_MODULE: ArrayModule | None = None
_active: ArrayModule | None = None


def _numpy_backend() -> ArrayModule:
    global _NUMPY_MODULE
    if _NUMPY_MODULE is None:
        _NUMPY_MODULE = ArrayModule(
            "numpy", _numpy, probe_capabilities(_numpy)
        )
    return _NUMPY_MODULE


def _resolve(name: str) -> ArrayModule:
    if name in ("", "numpy"):
        return _numpy_backend()
    try:
        mod = importlib.import_module(name)
    except ImportError:
        warnings.warn(
            f"{ENV_VAR}={name!r} is not importable; "
            "falling back to numpy",
            RuntimeWarning,
            stacklevel=3,
        )
        return _numpy_backend()
    caps = probe_capabilities(mod)
    missing = [c for c in CAPABILITIES if c not in caps]
    if missing:
        warnings.warn(
            f"{ENV_VAR}={name!r} failed capability probe(s) "
            f"{', '.join(missing)}; falling back to numpy",
            RuntimeWarning,
            stacklevel=3,
        )
        return _numpy_backend()
    return ArrayModule(name, mod, caps)


def active() -> ArrayModule:
    """The resolved array backend (selected on first use, then cached)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(ENV_VAR, "numpy").strip())
    return _active


def xp():
    """The active raw array module (what ``import numpy as np`` was)."""
    return active().mod


def to_host(array):
    """A host-side numpy view/copy of *array* (identity under numpy)."""
    return active().to_host(array)


def use(name: str) -> ArrayModule:
    """Re-point the seam at *name* (probing it); returns the resolution.

    Intended for tests and embedders; the environment variable is the
    deployment surface.  Falls back to numpy -- with a warning -- when
    the module is missing or fails a capability probe.
    """
    global _active
    _active = _resolve(name)
    return _active


def reset() -> None:
    """Drop the cached resolution; the next use re-reads the environment."""
    global _active
    _active = None


__all__ = [
    "ArrayModule",
    "CAPABILITIES",
    "ENV_VAR",
    "active",
    "probe_capabilities",
    "reset",
    "to_host",
    "use",
    "xp",
]
