"""Bit-indexed statevector kernels over a flat, batched amplitude array.

The legacy dense engine paid moveaxis + reshape + matmul round trips that
copied the whole ``(2,)*n`` state several times per gate.  This module is
the replacement hot path: the state lives in ONE contiguous
``(B, 2**n)`` complex buffer (``B`` simulated states advancing in
lockstep -- shots, or parameter bindings), ``reshape((B,) + (2,) * n)``
of which is a free view, and every gate mutates strided sub-views of
that buffer in place.  Kernels never index the batch axis: every slot
they build leaves axis 0 as a full slice, so ONE dispatch advances all
``B`` members -- the manyQ idiom that turns per-shot Python/numpy
dispatch overhead into a single vectorized operation.

Kernels are array-module agnostic: they only use the access patterns
probed by :mod:`repro.sim.xp` (strided views, elementwise arithmetic,
slice assignment), so the same code drives numpy buffers today and any
``REPRO_ARRAY_MODULE`` drop-in (cupy) tomorrow.  numpy appears below
only on the host side, to classify gate matrices.

Gates are classified once per ``(name, param, inverted)`` key (LRU) by the
*structure* of their cached matrix:

* **diagonal** (Z, S, T, Rz, ``R(2pi/%)``, ``exp(-i%Z)``, ``exp(-i%ZZ)``,
  and their inverses) -- an in-place elementwise multiply on the index mask
  of each target-bit pattern, skipping unit entries.  A T gate touches only
  the half of the state where its target bit is 1: zero matmuls, zero
  copies.
* **permutation-with-phases** (X/not, iX, Y, swap, CNOT/Toffoli via
  controls) -- slice exchanges along the permutation's cycles, one
  sub-block temporary, zero matmuls.
* **dense** (H, V, E, W, Rx, Ry, ...) -- the residual general case: the
  ``2**k`` target slices are linearly combined per the matrix rows and
  written back, skipping zero entries.  Still no moveaxis and no
  full-state copy.

Quantum controls are handled by kernel-level index masking: control axes
are pinned to their required bit value in the index tuple, so every kernel
runs on the control-satisfied subspace view directly instead of copying it
out and back via fancy-index slice assignment.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

import numpy as np

from ..obs import core as _obs
from .matrices import gate_matrix_cached

#: Kernel kinds (see module docstring).
DIAGONAL = "diagonal"
PERMUTE = "permute"
DENSE = "dense"
PHASE = "phase"

_ATOL = 1e-12


class Kernel(NamedTuple):
    """A compiled gate kernel: dispatch kind, target arity, and payload.

    ``data`` is kind-specific: the diagonal entries for ``DIAGONAL``, a
    ``(permutation, phases)`` pair for ``PERMUTE``, the (read-only) matrix
    for ``DENSE``, and the scalar for ``PHASE``.
    """

    kind: str
    arity: int
    data: tuple


@lru_cache(maxsize=4096)
def gate_kernel(name: str, param: float | None, inverted: bool) -> Kernel:
    """Classify a named gate into its specialized kernel (cached).

    Classification inspects the matrix structure rather than the gate name,
    so parametrised and inverted forms are routed correctly for free: an
    ``Rz`` is diagonal at any angle, ``Y`` and ``iX*`` are phase-carrying
    bit flips, and anything without special structure falls through to the
    dense kernel.
    """
    matrix = gate_matrix_cached(name, param, inverted)
    dim = matrix.shape[0]
    if dim == 1:
        return Kernel(PHASE, 0, (complex(matrix[0, 0]),))
    arity = dim.bit_length() - 1
    if np.all(np.abs(matrix - np.diag(np.diag(matrix))) <= _ATOL):
        return Kernel(
            DIAGONAL, arity, tuple(complex(x) for x in np.diag(matrix))
        )
    nonzero = np.abs(matrix) > _ATOL
    if np.all(nonzero.sum(axis=0) == 1) and np.all(nonzero.sum(axis=1) == 1):
        # new[j] = phases[j] * old[perm[j]] over target-bit patterns j.
        perm = tuple(int(np.nonzero(row)[0][0]) for row in nonzero)
        phases = tuple(complex(matrix[j, perm[j]]) for j in range(dim))
        return Kernel(PERMUTE, arity, (perm, phases))
    return Kernel(DENSE, arity, (matrix,))


_obs.register_cache("sim.gate_kernel", gate_kernel)


def _subindex(
    ndim: int, fixed: tuple[tuple[int, int], ...]
) -> tuple:
    """An n-dim index pinning each (axis, bit) in *fixed*, slicing the rest.

    Basic indexing with this tuple yields a strided *view* -- the core trick
    of the flat engine: kernels mutate these views in place.
    """
    index: list = [slice(None)] * ndim
    for axis, value in fixed:
        index[axis] = value
    return tuple(index)


def _pattern_bits(pattern: int, arity: int) -> tuple[int, ...]:
    """Bits of a target pattern, first target most significant (the
    matrix convention of :mod:`repro.sim.matrices`)."""
    return tuple((pattern >> (arity - 1 - i)) & 1 for i in range(arity))


def apply_kernel(
    view: np.ndarray,
    kernel: Kernel,
    target_axes: tuple[int, ...],
    ctrl: tuple[tuple[int, int], ...] = (),
) -> None:
    """Apply a compiled kernel in place on the ``(2,)*n`` state view.

    ``ctrl`` pins quantum-control axes to their required bit values (1 for
    a positive control, 0 for a negative one); classical controls must be
    resolved by the caller before reaching the kernel layer.
    """
    if _obs.ENABLED:
        _obs.add("sim.kernel." + kernel.kind)
        if ctrl:
            _obs.add("sim.kernel.controlled")
    if kernel.kind == PHASE:
        view[_subindex(view.ndim, ctrl)] *= kernel.data[0]
        return
    arity = kernel.arity
    slots = [
        _subindex(
            view.ndim,
            ctrl + tuple(zip(target_axes, _pattern_bits(j, arity))),
        )
        for j in range(1 << arity)
    ]
    if kernel.kind == DIAGONAL:
        for slot, entry in zip(slots, kernel.data):
            if entry != 1.0:
                view[slot] *= entry
        return
    if kernel.kind == PERMUTE:
        _apply_permutation(view, slots, *kernel.data)
        return
    _apply_dense(view, slots, kernel.data[0])


def _apply_permutation(view, slots, perm, phases) -> None:
    """Exchange target slices along the permutation's cycles.

    Each cycle is walked with a single sub-block temporary; fixed points
    reduce to phase multiplies (or nothing).
    """
    done = [False] * len(perm)
    for start in range(len(perm)):
        if done[start]:
            continue
        cycle = [start]
        done[start] = True
        nxt = perm[start]
        while nxt != start:
            cycle.append(nxt)
            done[nxt] = True
            nxt = perm[nxt]
        if len(cycle) == 1:
            if phases[start] != 1.0:
                view[slots[start]] *= phases[start]
            continue
        saved = view[slots[cycle[0]]].copy()
        for pattern in cycle:
            source_pattern = perm[pattern]
            source = (
                saved if source_pattern == cycle[0]
                else view[slots[source_pattern]]
            )
            phase = phases[pattern]
            view[slots[pattern]] = source if phase == 1.0 else source * phase


def _apply_dense(view, slots, matrix) -> None:
    """General k-qubit unitary: linearly combine the target slices.

    Reads every (control-masked) slice, forms each output row as a fresh
    sub-block, then writes all rows back -- correct even though rows share
    sources, because nothing is overwritten until every row is computed.
    """
    dim = len(slots)
    olds = [view[slot] for slot in slots]
    news = []
    for row in range(dim):
        acc = None
        for col in range(dim):
            coeff = matrix[row, col]
            if abs(coeff) <= _ATOL:
                continue
            if acc is None:
                acc = olds[col] * coeff
            else:
                acc += olds[col] * coeff
        news.append(acc)
    for slot, new in zip(slots, news):
        view[slot] = new if new is not None else 0.0
