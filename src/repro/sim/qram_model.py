"""The QRAM execution model: interleaved generation and execution.

Section 4.3.1 of the paper: "the classical controller generates a circuit,
sends it to the physical device for execution, awaits measurement results,
then generates another circuit, and so on ... this allows circuit outputs
(for example, the results of measurements) to be re-used as circuit
parameters (to control the generation of the next part of the circuit)" --
*dynamic lifting*.

:func:`run_with_lifting` plays the role of Knill's QRAM device, with the
statevector simulator standing in for the physical quantum computer (a
documented substitution; the paper itself never runs on hardware).  The
builder's ``dynamic_lift`` flushes all gates generated so far to the
simulator and reads the measured bit back as a generation-time ``Bool``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.builder import Circ
from ..core.qdata import qdata_leaves
from ..core.wires import QUANTUM, Bit, Qubit, Wire
from ..transform.inline import _WireSource, _expand
from .state import StateVector

#: Inlined-subroutine scratch wires are allocated in a range disjoint from
#: anything the builder will ever hand out.
_INLINE_WIRE_BASE = 10 ** 12


class QRAMExecutor:
    """Incrementally executes a builder's gate stream on a simulator."""

    def __init__(self, qc: Circ, rng: np.random.Generator | None = None):
        self.qc = qc
        self.sim = StateVector(rng=rng)
        self.position = 0
        self.source = _WireSource(_INLINE_WIRE_BASE)
        qc.lifting_handler = self._lift

    def flush(self) -> None:
        """Execute all gates generated since the last flush."""
        pending = self.qc.gates[self.position:]
        self.position = len(self.qc.gates)
        for gate in pending:
            for flat in _expand(gate, (), self.qc.namespace, self.source):
                self.sim.execute(flat)

    def _lift(self, qc: Circ, bitwire: Bit) -> bool:
        self.flush()
        return self.sim.bits[bitwire.wire_id]

    def readout(self, data):
        """Flush, then read the final values of output wires.

        Remaining qubits are measured; bits are read; parameters pass
        through.  Returns a bool structure shaped like *data*.
        """
        self.flush()
        return _readout_struct(data, self.sim)


def _readout_struct(data, sim: StateVector):
    if isinstance(data, Qubit):
        return sim.measure_qubit(data.wire_id)
    if isinstance(data, Bit):
        return sim.bits[data.wire_id]
    if isinstance(data, tuple):
        return tuple(_readout_struct(d, sim) for d in data)
    if isinstance(data, list):
        return [_readout_struct(d, sim) for d in data]
    if isinstance(data, dict):
        return {k: _readout_struct(v, sim) for k, v in data.items()}
    if hasattr(data, "from_bools"):
        bools = [_readout_struct(leaf, sim) for leaf in qdata_leaves(data)]
        return data.from_bools(bools)
    if hasattr(data, "qdata_leaves"):
        return [_readout_struct(leaf, sim) for leaf in data.qdata_leaves()]
    return data


def run_with_lifting(
    fn: Callable, *inputs, rng: np.random.Generator | None = None, seed=None
):
    """Run a circuit-producing function under the QRAM model.

    *inputs* are bool structures (or parameter objects with a
    ``qshape_specimen`` hook) for fn's quantum arguments; they are loaded
    into the simulated device as basis states.  Inside *fn*,
    ``qc.dynamic_lift(bit)`` is available and triggers circuit execution up
    to that point.  Returns fn's result with all wires read out as bools.
    """
    from .classical import _param_bools, _shape_from_params

    if rng is None:
        rng = np.random.default_rng(seed)
    qc = Circ()
    executor = QRAMExecutor(qc, rng=rng)
    args = []
    for value in inputs:
        shape = _shape_from_params(value)
        data = qc.fresh_like(shape)
        for leaf, bit_value in zip(qdata_leaves(data), _param_bools(value)):
            if leaf.wire_type == QUANTUM:
                executor.sim.add_qubit(leaf.wire_id, bit_value)
            else:
                executor.sim.bits[leaf.wire_id] = bit_value
        args.append(data)
    qc.snapshot_inputs()
    result = fn(qc, *args)
    return executor.readout(result)
