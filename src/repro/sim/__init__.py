"""Simulators: the "circuit execution time" of the two run-times.

* :func:`run_generic` -- dense statevector simulation (any circuit).
* :func:`run_classical_generic` -- efficient boolean evaluation of
  classical/reversible circuits (oracle testing).
* :func:`run_clifford_generic` -- efficient stabilizer simulation of
  Clifford circuits.
* :func:`run_with_lifting` -- the QRAM model with dynamic lifting.
"""

from __future__ import annotations

import numpy as np

from .classical import evaluate, run_classical_generic
from .clifford import CliffordState, Tableau, run_clifford
from .qram_model import QRAMExecutor, run_with_lifting
from .state import StateVector, simulate


def run_generic(fn, *inputs, seed=None):
    """Simulate a circuit-producing function on basis-state inputs.

    Returns fn's output structure with every wire read out: Bits give their
    classical value, remaining Qubits are measured in the computational
    basis.  Measurement outcomes are sampled with *seed*.  This is the
    paper's ``run_generic`` ("necessarily inefficient on a classical
    computer" -- it is exponential in the number of qubits).
    """
    return run_with_lifting(fn, *inputs, rng=np.random.default_rng(seed))


def run_clifford_generic(fn, *inputs, seed=None):
    """Simulate a Clifford circuit-producing function efficiently."""
    from ..core.builder import build
    from .classical import _param_bools, _shape_from_params
    from .qram_model import _readout_struct

    shapes = [_shape_from_params(v) for v in inputs]
    bc, out_struct = build(fn, *shapes)
    in_leaf_values = [b for v in inputs for b in _param_bools(v)]
    in_values = {
        wire: value
        for (wire, _), value in zip(bc.circuit.inputs, in_leaf_values)
    }
    state = run_clifford(bc, in_values, rng=np.random.default_rng(seed))

    class _CliffordReadout:
        """Duck-types the StateVector readout interface over a tableau."""

        def __init__(self, clifford: CliffordState):
            self.clifford = clifford
            self.bits = clifford.bits

        def measure_qubit(self, wire: int) -> bool:
            return self.clifford.tableau.measure(self.clifford.index[wire])

    return _readout_struct(out_struct, _CliffordReadout(state))


__all__ = [
    "run_generic",
    "run_classical_generic",
    "run_clifford_generic",
    "run_with_lifting",
    "simulate",
    "evaluate",
    "run_clifford",
    "StateVector",
    "CliffordState",
    "Tableau",
    "QRAMExecutor",
]
