"""Efficient simulation of classical (boolean/reversible) circuits.

The paper (Section 4.4.5): "The more specialized functions
run_classical_generic and run_clifford_generic can be used to simulate
certain classes of circuits efficiently; this is especially useful in
testing oracles."  This module is ``run_classical_generic``: it evaluates
circuits whose gates act classically on computational-basis states -- NOT
gates with controls, swaps, init/term (assertions checked!), measurement,
and classical logic gates.  Oracles and the arithmetic library are tested
almost entirely through it, at sizes far beyond statevector reach.
"""

from __future__ import annotations

from ..core.builder import build
from ..core.circuit import BCircuit
from ..core.errors import AssertionFailedError, SimulationError
from ..core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from ..core.qdata import qdata_leaves
from ..core.wires import QUANTUM

_CLASSICAL_FUNCTIONS = {
    "and": lambda values: all(values),
    "or": lambda values: any(values),
    "xor": lambda values: sum(values) % 2 == 1,
    "not": lambda values: not values[0],
    "eq": lambda values: values[0] == values[1],
}


class ClassicalState:
    """Wire valuation for boolean circuit evaluation."""

    def __init__(self) -> None:
        self.values: dict[int, bool] = {}

    def _controls_satisfied(self, controls) -> bool:
        return all(self.values[c.wire] == c.positive for c in controls)

    def execute(self, gate: Gate) -> None:
        if isinstance(gate, Comment):
            return
        if isinstance(gate, NamedGate):
            if gate.name in ("not", "X"):
                if self._controls_satisfied(gate.controls):
                    wire = gate.targets[0]
                    self.values[wire] = not self.values[wire]
                return
            if gate.name == "swap":
                if self._controls_satisfied(gate.controls):
                    a, b = gate.targets
                    self.values[a], self.values[b] = (
                        self.values[b],
                        self.values[a],
                    )
                return
            raise SimulationError(
                f"gate {gate.name!r} is not classical; use run_generic"
            )
        if isinstance(gate, (Init, CInit)):
            self.values[gate.wire] = gate.value
            return
        if isinstance(gate, (Term, CTerm)):
            actual = self.values.pop(gate.wire)
            if actual != gate.value:
                raise AssertionFailedError(
                    f"wire {gate.wire} terminated asserting {gate.value} "
                    f"but holds {actual} (programmer assertion violated)"
                )
            return
        if isinstance(gate, (Discard, CDiscard)):
            self.values.pop(gate.wire)
            return
        if isinstance(gate, Measure):
            return  # value is preserved; the wire changes type only
        if isinstance(gate, CGate):
            inputs = [self.values[w] for w in gate.inputs]
            value = _CLASSICAL_FUNCTIONS[gate.name](inputs)
            if gate.uncompute:
                if self.values.pop(gate.target) != value:
                    raise AssertionFailedError(
                        f"CGate* uncompute mismatch on wire {gate.target}"
                    )
            else:
                self.values[gate.target] = value
            return
        if isinstance(gate, CNot):
            if self._controls_satisfied(gate.controls):
                self.values[gate.wire] = not self.values[gate.wire]
            return
        if isinstance(gate, BoxCall):
            raise SimulationError("BoxCall reached evaluator; inline first")
        raise SimulationError(f"cannot evaluate gate {gate!r}")


def evaluate(bc: BCircuit, in_values: dict[int, bool]) -> dict[int, bool]:
    """Evaluate a classical circuit on given input wire values.

    Returns the valuation of the output wires.
    """
    from ..transform.inline import iter_flat_gates

    state = ClassicalState()
    for wire, _ in bc.circuit.inputs:
        state.values[wire] = bool(in_values.get(wire, False))
    for gate in iter_flat_gates(bc):
        state.execute(gate)
    return {wire: state.values[wire] for wire, _ in bc.circuit.outputs}


def _shape_from_params(value):
    """A shape specimen for a parameter structure (bools -> qubits)."""
    from ..core.qdata import qubit

    if isinstance(value, bool):
        return qubit
    if isinstance(value, tuple):
        return tuple(_shape_from_params(v) for v in value)
    if isinstance(value, list):
        return [_shape_from_params(v) for v in value]
    if isinstance(value, dict):
        return {k: _shape_from_params(v) for k, v in value.items()}
    if hasattr(value, "qshape_specimen"):
        return value.qshape_specimen()
    raise SimulationError(f"cannot derive an input shape from {value!r}")


def _param_bools(value) -> list[bool]:
    if isinstance(value, bool):
        return [value]
    if isinstance(value, (tuple, list)):
        return [b for v in value for b in _param_bools(v)]
    if isinstance(value, dict):
        return [b for k in sorted(value) for b in _param_bools(value[k])]
    if hasattr(value, "qshape_bools"):
        return value.qshape_bools()
    raise SimulationError(f"cannot take input bools from {value!r}")


def run_classical_generic(fn, *inputs, as_bools=None):
    """Run a circuit-producing function on classical basis inputs.

    *inputs* are bool structures (or parameter objects such as ``IntM``)
    matching fn's quantum arguments.  The circuit is generated once and
    evaluated classically; the return value is fn's output structure with
    every wire replaced by its boolean value (custom registers are
    converted back via their ``from_bools`` hook when available).
    """
    shapes = [_shape_from_params(v) for v in inputs]
    bc, out_struct = build(fn, *shapes)
    in_leaf_values = [b for v in inputs for b in _param_bools(v)]
    in_values = {
        wire: value
        for (wire, _), value in zip(bc.circuit.inputs, in_leaf_values)
    }
    out_values = evaluate(bc, in_values)
    return _readout(out_struct, out_values)


def _readout(struct, values: dict[int, bool]):
    from ..core.wires import Wire

    if isinstance(struct, Wire):
        return values[struct.wire_id]
    if isinstance(struct, tuple):
        return tuple(_readout(s, values) for s in struct)
    if isinstance(struct, list):
        return [_readout(s, values) for s in struct]
    if isinstance(struct, dict):
        return {k: _readout(v, values) for k, v in struct.items()}
    if hasattr(struct, "from_bools"):
        bools = [values[leaf.wire_id] for leaf in qdata_leaves(struct)]
        return struct.from_bools(bools)
    if hasattr(struct, "qdata_leaves"):
        return [values[leaf.wire_id] for leaf in struct.qdata_leaves()]
    return struct  # embedded parameter
