"""Circuit lifting: classical code -> quantum oracles (paper Section 4.6).

The ``build_circuit`` decorator, the ``unpack`` operation, traced data
types (:class:`CBool`, :class:`CWord`, :class:`CFix`), and
``classical_to_reversible``.
"""

from .cbool import (
    CBool,
    Trace,
    all_of,
    any_of,
    bool_and,
    bool_or,
    bool_xor,
    cond,
)
from .cint import CFix, CWord
from .reversible import classical_to_reversible
from .template import Template, build_circuit, unpack

__all__ = [
    "build_circuit",
    "unpack",
    "Template",
    "classical_to_reversible",
    "CBool",
    "CWord",
    "CFix",
    "Trace",
    "cond",
    "bool_xor",
    "bool_and",
    "bool_or",
    "all_of",
    "any_of",
]
