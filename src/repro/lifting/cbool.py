"""The symbolic boolean domain used by circuit lifting.

Quipper's ``build_circuit`` keyword lifts classical Haskell code to
circuit-generating code at compile time, via Template Haskell (paper
Section 4.6.1).  Python has no compile-time metaprogramming with the same
ergonomics, so this reproduction lifts by *tracing*: the classical function
is executed over symbolic :class:`CBool` values which record the boolean
DAG of the computation.  The effect is the same -- a circuit computing the
same function, with ancillas for intermediate values -- and parameter-
dependent control flow (list lengths, ifs on real ``bool`` parameters) is
resolved during the trace exactly as Quipper resolves it at generation
time.

Branching on a *symbolic* boolean is impossible (its value exists only at
circuit execution time); use :func:`cond` to build both branches, which is
precisely what Quipper requires of lifted code as well.

Hash-consing (``share=True``, the default) merges syntactically identical
subterms.  Quipper's Template Haskell lifting does *not* share common
subexpressions, so ``share=False`` gives counts closer to the paper's.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import LiftingError

AND = "and"
OR = "or"
XOR = "xor"
NOT = "not"
INPUT = "in"
CONST = "const"


class CBool:
    """A node of the traced boolean DAG."""

    __slots__ = ("trace", "op", "args", "value", "node_id")

    def __init__(self, trace: "Trace", op: str, args: tuple, value=None):
        self.trace = trace
        self.op = op
        self.args = args
        self.value = value  # bool for CONST, input index for INPUT
        self.node_id = trace._next_id()

    # -- operators ---------------------------------------------------------

    def __and__(self, other):
        return self.trace.gate(AND, self, other)

    __rand__ = __and__

    def __or__(self, other):
        return self.trace.gate(OR, self, other)

    __ror__ = __or__

    def __xor__(self, other):
        return self.trace.gate(XOR, self, other)

    __rxor__ = __xor__

    def __invert__(self):
        return self.trace.gate_not(self)

    def __bool__(self):
        raise LiftingError(
            "cannot branch on a circuit-time boolean: its value is only "
            "known at circuit execution time.  Use repro.lifting.cond(c, "
            "t, e) to construct both branches (paper Section 4.3.2)."
        )

    def __eq__(self, other):  # symbolic equality, not comparison
        if isinstance(other, (CBool, bool)):
            return ~(self ^ other)
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, (CBool, bool)):
            return self ^ other
        return NotImplemented

    def __hash__(self):
        return id(self)

    def __repr__(self):
        return f"CBool<{self.op}:{self.node_id}>"


class Trace:
    """A lifting trace: allocates and (optionally) hash-conses CBool nodes."""

    def __init__(self, share: bool = True):
        self.share = share
        self.inputs: list[CBool] = []
        self._count = 0
        self._table: dict[tuple, CBool] = {}
        self._true = CBool(self, CONST, (), True)
        self._false = CBool(self, CONST, (), False)

    def _next_id(self) -> int:
        self._count += 1
        return self._count

    def const(self, value: bool) -> CBool:
        return self._true if value else self._false

    def new_input(self) -> CBool:
        node = CBool(self, INPUT, (), len(self.inputs))
        self.inputs.append(node)
        return node

    def lift(self, value) -> CBool:
        if isinstance(value, CBool):
            if value.trace is not self:
                raise LiftingError("CBool used outside its own trace")
            return value
        if isinstance(value, bool):
            return self.const(value)
        raise LiftingError(f"not liftable to a traced boolean: {value!r}")

    def gate(self, op: str, a, b) -> CBool:
        a, b = self.lift(a), self.lift(b)
        folded = self._fold(op, a, b)
        if folded is not None:
            return folded
        if self.share:
            left, right = sorted((a.node_id, b.node_id))
            key = (op, left, right)
            cached = self._table.get(key)
            if cached is not None:
                return cached
            node = CBool(self, op, (a, b))
            self._table[key] = node
            return node
        return CBool(self, op, (a, b))

    def gate_not(self, a) -> CBool:
        a = self.lift(a)
        if a.op == CONST:
            return self.const(not a.value)
        if a.op == NOT:
            return a.args[0]
        if self.share:
            key = (NOT, a.node_id)
            cached = self._table.get(key)
            if cached is not None:
                return cached
            node = CBool(self, NOT, (a,))
            self._table[key] = node
            return node
        return CBool(self, NOT, (a,))

    @staticmethod
    def _fold(op: str, a: CBool, b: CBool) -> CBool | None:
        """Constant folding (parameters vanish, as in Quipper)."""
        trace = a.trace
        a_const = a.op == CONST
        b_const = b.op == CONST
        if a_const and b_const:
            table = {
                AND: a.value and b.value,
                OR: a.value or b.value,
                XOR: a.value != b.value,
            }
            return trace.const(table[op])
        if a_const or b_const:
            const, other = (a, b) if a_const else (b, a)
            if op == AND:
                return other if const.value else trace.const(False)
            if op == OR:
                return trace.const(True) if const.value else other
            if op == XOR:
                return trace.gate_not(other) if const.value else other
        if a is b:
            if op in (AND, OR):
                return a
            if op == XOR:
                return trace.const(False)
        return None


def bool_xor(a, b):
    """Exclusive or, usable on both traced and plain booleans.

    This is the lifted counterpart of the paper's ``bool_xor`` in the
    parity-oracle example.
    """
    if isinstance(a, CBool):
        return a ^ b
    if isinstance(b, CBool):
        return b ^ a
    return bool(a) != bool(b)


def cond(c, then_value, else_value):
    """Symbolic if-then-else: both branches are built (Section 4.3.2).

    Works elementwise over equal-length lists/tuples.  For a *parameter*
    condition (a plain bool), only the chosen branch is returned -- the
    paper's point that parameter conditionals generate smaller circuits.
    """
    if isinstance(c, bool):
        return then_value if c else else_value
    if not isinstance(c, CBool):
        raise LiftingError(f"cond condition must be bool or CBool: {c!r}")
    if isinstance(then_value, (list, tuple)):
        if len(then_value) != len(else_value):
            raise LiftingError("cond branches must have equal shape")
        pairs = [cond(c, t, e) for t, e in zip(then_value, else_value)]
        return type(then_value)(pairs)
    return (c & then_value) | (~c & else_value)


def bool_and(a, b):
    """Conjunction usable on both traced and plain booleans."""
    if isinstance(a, CBool) or isinstance(b, CBool):
        return (a if isinstance(a, CBool) else b) & (
            b if isinstance(a, CBool) else a
        )
    return bool(a) and bool(b)


def bool_or(a, b):
    """Disjunction usable on both traced and plain booleans."""
    if isinstance(a, CBool) or isinstance(b, CBool):
        return (a if isinstance(a, CBool) else b) | (
            b if isinstance(a, CBool) else a
        )
    return bool(a) or bool(b)


def all_of(values: Iterable):
    """Conjunction of a sequence of (traced) booleans."""
    result = True
    for value in values:
        result = bool_and(result, value)
    return result


def any_of(values: Iterable):
    """Disjunction of a sequence of (traced) booleans."""
    result = False
    for value in values:
        result = bool_or(result, value)
    return result
