"""``classical_to_reversible``: the fourth oracle-automation step.

Paper Section 4.6.1: the standard trick of replacing ``x -> f(x)`` by the
reversible ``(x, y) -> (x, y XOR f(x))``, "while also uncomputing any
scratch space used by the function f".  The compute/copy/uncompute
discipline is exactly ``with_computed``, so the implementation is three
lines of orchestration::

    classical_to_reversible(unpack(template_f))  # (qc, x, y) -> (x, y)
"""

from __future__ import annotations

from typing import Callable

from ..core.builder import Circ
from ..core.errors import ShapeMismatchError
from ..core.qdata import qdata_leaves


def classical_to_reversible(circuit_fn: Callable) -> Callable:
    """Lift ``(qc, x) -> f(x)`` into reversible ``(qc, x, y) -> (x, y)``.

    The returned function computes f's circuit, XORs the result into *y*
    (which must match f's output shape), and uncomputes everything --
    inputs come back unchanged and all ancillas are returned to |0>.
    """

    def reversible(qc: Circ, x, y):
        def compute():
            return circuit_fn(qc, x)

        def action(result):
            result_leaves = qdata_leaves(result)
            y_leaves = qdata_leaves(y)
            if len(result_leaves) != len(y_leaves):
                raise ShapeMismatchError(
                    f"oracle output has {len(result_leaves)} wires but the "
                    f"target register has {len(y_leaves)}"
                )
            for src, dst in zip(result_leaves, y_leaves):
                qc.qnot(dst, controls=src)
            return None

        qc.with_computed(compute, action)
        return x, y

    return reversible
