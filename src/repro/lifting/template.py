"""``build_circuit``: automatic generation of circuits from classical code.

Paper Section 4.6.1: "The implementation of a quantum oracle 'by hand'
usually requires four separate steps ... In Quipper, all of these steps but
the first one can be automated."  The ``build_circuit`` decorator wraps a
classical Python function; :func:`unpack` turns the wrapped function into a
circuit-generating function::

    @build_circuit
    def f(as_):
        result = False
        for h in as_:
            result = bool_xor(h, result)
        return result

    template_f = unpack(f)          # (qc, [Qubit]) -> Qubit

The function still runs classically when called directly (the decorator is
transparent), mirroring Quipper's generation of both ``f`` and
``template_f``.

Synthesis allocates one ancilla per DAG node: AND becomes a Toffoli, OR a
negative-controlled Toffoli plus X, XOR two CNOTs, NOT a CNOT plus X.
Scratch wires are left live (the paper's parity figure shows them as extra
outputs); wrap with :func:`~repro.lifting.reversible.classical_to_reversible`
to uncompute them.
"""

from __future__ import annotations

import functools
from typing import Callable

from ..core.builder import Circ, neg
from ..core.errors import LiftingError
from ..core.wires import Qubit, Wire
from ..datatypes.fpreal import FPReal
from ..datatypes.qdint import QDInt
from ..datatypes.register import Register
from .cbool import AND, CBool, CONST, INPUT, NOT, OR, XOR, Trace
from .cint import CFix, CWord


class Template:
    """The result of ``build_circuit``: callable classically, liftable."""

    def __init__(self, fn: Callable, share: bool = True):
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.share = share

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)

    def circuit(self, qc: Circ, *args):
        """Generate the lifted circuit applied to quantum *args*."""
        return _lift_call(self, qc, args)


def build_circuit(fn: Callable | None = None, *, share: bool = True):
    """Decorator marking a classical function for circuit lifting.

    With ``share=False``, hash-consing of common subexpressions is
    disabled, which matches the behaviour of Quipper's Template Haskell
    lifting (and its larger gate counts).
    """
    if fn is None:
        return lambda real_fn: Template(real_fn, share=share)
    return Template(fn, share=share)


def unpack(template: Template) -> Callable:
    """The circuit-generating function of a lifted classical function.

    ``unpack(template_f)`` has signature ``(qc, *quantum_args) -> outputs``,
    the Python counterpart of the paper's
    ``unpack template_f :: [Qubit] -> Circ Qubit``.
    """
    if not isinstance(template, Template):
        raise LiftingError(
            "unpack() expects a function decorated with @build_circuit"
        )

    def circuit_fn(qc: Circ, *args):
        return _lift_call(template, qc, args)

    circuit_fn.__name__ = f"template_{template.fn.__name__}"
    return circuit_fn


def _lift_call(template: Template, qc: Circ, args):
    trace = Trace(share=template.share)
    input_wires: dict[int, Qubit] = {}  # node_id -> circuit wire
    symbolic_args = [
        _to_symbolic(trace, arg, input_wires) for arg in args
    ]
    result = template.fn(*symbolic_args)
    synth = _Synthesizer(qc, trace, input_wires)
    return synth.realize(result)


def _to_symbolic(trace: Trace, value, input_wires: dict):
    if isinstance(value, Qubit):
        node = trace.new_input()
        input_wires[node.node_id] = value
        return node
    if isinstance(value, FPReal):
        bits = [
            _to_symbolic(trace, w, input_wires) for w in value.bits_le()
        ]
        return CFix(
            CWord(trace, bits), value.integer_bits, value.fraction_bits
        )
    if isinstance(value, Register):  # QDInt, QIntTF, ...
        bits = [
            _to_symbolic(trace, w, input_wires) for w in value.bits_le()
        ]
        return CWord(trace, bits)
    if isinstance(value, tuple):
        return tuple(_to_symbolic(trace, v, input_wires) for v in value)
    if isinstance(value, list):
        return [_to_symbolic(trace, v, input_wires) for v in value]
    if isinstance(value, dict):
        return {
            k: _to_symbolic(trace, v, input_wires) for k, v in value.items()
        }
    # Anything else is a generation-time parameter, passed through.
    return value


class _Synthesizer:
    """Turns a traced boolean DAG into gates on a builder."""

    def __init__(self, qc: Circ, trace: Trace, input_wires: dict):
        self.qc = qc
        self.trace = trace
        self.wire_of: dict[int, Qubit] = dict(input_wires)
        self.used_outputs: set[int] = set(
            w.wire_id for w in input_wires.values()
        )

    def realize(self, result):
        """Synthesize all nodes reachable from *result*; map it to wires."""
        self._synthesize_nodes(_collect_nodes(result))
        return self._to_wires(result, outputs=True)

    def _synthesize_nodes(self, roots: list[CBool]) -> None:
        # Iterative post-order DFS (oracles can have 10^5+ nodes).
        stack: list[tuple[CBool, bool]] = [(n, False) for n in roots]
        while stack:
            node, expanded = stack.pop()
            if node.node_id in self.wire_of:
                continue
            if node.op in (INPUT,):
                raise LiftingError("input node without a wire")
            if not expanded:
                stack.append((node, True))
                for child in node.args:
                    if child.node_id not in self.wire_of:
                        stack.append((child, False))
                continue
            self.wire_of[node.node_id] = self._emit(node)

    def _emit(self, node: CBool) -> Qubit:
        qc = self.qc
        if node.op == CONST:
            return qc.qinit_qubit(node.value)
        child_wires = [self.wire_of[c.node_id] for c in node.args]
        target = qc.qinit_qubit(False)
        if node.op == NOT:
            qc.qnot(target, controls=child_wires[0])
            qc.qnot(target)
        elif node.op == XOR:
            qc.qnot(target, controls=child_wires[0])
            qc.qnot(target, controls=child_wires[1])
        elif node.op == AND:
            qc.qnot(target, controls=tuple(child_wires))
        elif node.op == OR:
            qc.qnot(target, controls=[neg(w) for w in child_wires])
            qc.qnot(target)
        else:
            raise LiftingError(f"unknown node kind {node.op!r}")
        return target

    def _node_wire(self, node: CBool, outputs: bool) -> Qubit:
        wire = self.wire_of[node.node_id]
        if outputs and wire.wire_id in self.used_outputs:
            # An output must be a fresh wire when the node is an input or
            # is used for several outputs: copy it.
            copy = self.qc.qinit_qubit(False)
            self.qc.qnot(copy, controls=wire)
            wire = copy
        if outputs:
            self.used_outputs.add(wire.wire_id)
        return wire

    def _to_wires(self, value, outputs: bool = False):
        if isinstance(value, CBool):
            return self._node_wire(value, outputs)
        if isinstance(value, CFix):
            bits = [
                self._to_wires(b, outputs) for b in value.word.bits
            ]
            return FPReal(
                list(reversed(bits)), value.integer_bits, value.fraction_bits
            )
        if isinstance(value, CWord):
            bits = [self._to_wires(b, outputs) for b in value.bits]
            return QDInt(list(reversed(bits)))
        if isinstance(value, tuple):
            return tuple(self._to_wires(v, outputs) for v in value)
        if isinstance(value, list):
            return [self._to_wires(v, outputs) for v in value]
        if isinstance(value, dict):
            return {
                k: self._to_wires(v, outputs) for k, v in value.items()
            }
        return value


def _collect_nodes(value) -> list[CBool]:
    nodes: list[CBool] = []
    _collect_into(value, nodes)
    return nodes


def _collect_into(value, nodes: list[CBool]) -> None:
    if isinstance(value, CBool):
        nodes.append(value)
    elif isinstance(value, CWord):
        nodes.extend(value.bits)
    elif isinstance(value, CFix):
        nodes.extend(value.word.bits)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _collect_into(item, nodes)
    elif isinstance(value, dict):
        for key in sorted(value):
            _collect_into(value[key], nodes)
