"""Traced integers and fixed-point reals for circuit lifting.

Quipper's ``build_circuit`` handles not just booleans but the arithmetic
types: the paper's Linear Systems oracles lift functions like ``sin(x)``
over 32+32-bit fixed-point arguments into multi-million-gate circuits
(Section 4.6.1).  :class:`CWord` is a fixed-width two's-complement integer
over traced booleans; :class:`CFix` adds a binary point.

All arithmetic is synthesized as boolean logic in the trace (ripple-carry
adders, shift-and-add multipliers), which the template synthesizer then
turns into Toffoli/CNOT circuits.
"""

from __future__ import annotations

from ..core.errors import LiftingError
from .cbool import CBool, Trace, cond


class CWord:
    """A fixed-width two's-complement integer of traced booleans.

    Bits are stored little-endian (``bits[0]`` is the least significant).
    Arithmetic wraps modulo ``2**width``, matching ``QDInt`` semantics.
    """

    __slots__ = ("trace", "bits")

    def __init__(self, trace: Trace, bits: list):
        self.trace = trace
        self.bits = [trace.lift(b) for b in bits]

    @property
    def width(self) -> int:
        return len(self.bits)

    @classmethod
    def from_const(cls, trace: Trace, value: int, width: int) -> "CWord":
        value %= 1 << width
        return cls(
            trace, [bool((value >> i) & 1) for i in range(width)]
        )

    def _coerce(self, other) -> "CWord":
        if isinstance(other, CWord):
            if other.width != self.width:
                raise LiftingError(
                    f"CWord width mismatch: {self.width} vs {other.width}"
                )
            return other
        if isinstance(other, int):
            return CWord.from_const(self.trace, other, self.width)
        raise LiftingError(f"cannot coerce {other!r} to CWord")

    # -- arithmetic -------------------------------------------------------

    def add_with_carry(self, other) -> tuple["CWord", CBool]:
        """Ripple-carry addition; returns (sum, carry_out)."""
        other = self._coerce(other)
        carry = self.trace.const(False)
        out = []
        for a, b in zip(self.bits, other.bits):
            out.append(a ^ b ^ carry)
            carry = (a & b) | (carry & (a ^ b))
        return CWord(self.trace, out), carry

    def __add__(self, other):
        total, _ = self.add_with_carry(other)
        return total

    __radd__ = __add__

    def __neg__(self):
        flipped = CWord(self.trace, [~b for b in self.bits])
        return flipped + 1

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        """Shift-and-add multiplication modulo ``2**width``."""
        other = self._coerce(other)
        total = CWord.from_const(self.trace, 0, self.width)
        for i, bit in enumerate(other.bits):
            shifted = self.shift_left(i)
            gated = CWord(self.trace, [bit & s for s in shifted.bits])
            total = total + gated
        return total

    __rmul__ = __mul__

    def shift_left(self, amount: int) -> "CWord":
        """Logical shift left by a constant (drops high bits)."""
        false = self.trace.const(False)
        bits = [false] * amount + self.bits[: self.width - amount]
        return CWord(self.trace, bits)

    def shift_right(self, amount: int) -> "CWord":
        """*Arithmetic* shift right by a constant (sign-extending)."""
        sign = self.bits[-1]
        bits = self.bits[amount:] + [sign] * min(amount, self.width)
        return CWord(self.trace, bits[: self.width])

    def sign_extend(self, width: int) -> "CWord":
        if width < self.width:
            raise LiftingError("sign_extend cannot shrink a word")
        sign = self.bits[-1]
        return CWord(self.trace, self.bits + [sign] * (width - self.width))

    def truncate(self, width: int) -> "CWord":
        return CWord(self.trace, self.bits[:width])

    # -- comparisons (symbolic) ---------------------------------------------

    def eq(self, other) -> CBool:
        other = self._coerce(other)
        result = self.trace.const(True)
        for a, b in zip(self.bits, other.bits):
            result = result & ~(a ^ b)
        return result

    def lt_unsigned(self, other) -> CBool:
        """Unsigned less-than via the subtraction borrow."""
        other = self._coerce(other)
        borrow = self.trace.const(False)
        for a, b in zip(self.bits, other.bits):
            # borrow' = (~a & b) | (~(a ^ b) & borrow)
            borrow = ((~a) & b) | (~(a ^ b) & borrow)
        return borrow

    def select(self, c, other) -> "CWord":
        """cond over words: self if c else other."""
        other = self._coerce(other)
        return CWord(
            self.trace,
            [cond(c, a, b) for a, b in zip(self.bits, other.bits)],
        )


class CFix:
    """A traced fixed-point real: CWord with a binary point.

    The value is ``word (two's complement) / 2**fraction_bits``.  This is
    the lifting-domain counterpart of :class:`~repro.datatypes.FPReal`.
    """

    __slots__ = ("word", "integer_bits", "fraction_bits")

    def __init__(self, word: CWord, integer_bits: int, fraction_bits: int):
        if word.width != integer_bits + fraction_bits:
            raise LiftingError("CFix word width does not match format")
        self.word = word
        self.integer_bits = integer_bits
        self.fraction_bits = fraction_bits

    @property
    def trace(self) -> Trace:
        return self.word.trace

    @property
    def width(self) -> int:
        return self.word.width

    @classmethod
    def from_const(cls, trace: Trace, value: float, integer_bits: int,
                   fraction_bits: int) -> "CFix":
        raw = round(value * (1 << fraction_bits))
        word = CWord.from_const(trace, raw, integer_bits + fraction_bits)
        return cls(word, integer_bits, fraction_bits)

    def _coerce(self, other) -> "CFix":
        if isinstance(other, CFix):
            if (other.integer_bits, other.fraction_bits) != (
                self.integer_bits,
                self.fraction_bits,
            ):
                raise LiftingError("CFix format mismatch")
            return other
        if isinstance(other, (int, float)):
            return CFix.from_const(
                self.trace, other, self.integer_bits, self.fraction_bits
            )
        raise LiftingError(f"cannot coerce {other!r} to CFix")

    def __add__(self, other):
        other = self._coerce(other)
        return CFix(
            self.word + other.word, self.integer_bits, self.fraction_bits
        )

    __radd__ = __add__

    def __neg__(self):
        return CFix(-self.word, self.integer_bits, self.fraction_bits)

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        """Fixed-point product: widen, multiply, shift the point back.

        Both operands are sign-extended to double width so the unsigned
        shift-and-add product agrees with the signed product modulo
        ``2**(2w)``; the result is the middle window of the full product.
        """
        other = self._coerce(other)
        wide_self = self.word.sign_extend(2 * self.width)
        wide_other = other.word.sign_extend(2 * self.width)
        product = wide_self * wide_other
        window = product.shift_right(self.fraction_bits).truncate(self.width)
        return CFix(window, self.integer_bits, self.fraction_bits)

    __rmul__ = __mul__

    def select(self, c, other) -> "CFix":
        other = self._coerce(other)
        return CFix(
            self.word.select(c, other.word),
            self.integer_bits,
            self.fraction_bits,
        )
