"""Always-on service metrics: counters and latency percentiles.

The :mod:`repro.obs` layer records *sessions* -- it is scoped, optional,
and shared process-wide -- so the server keeps its own small, always-on
tally for the ``/v1/stats`` endpoint: monotone counters plus bounded
latency rings with p50/p99.  When a telemetry session is active (the
server opens one for its lifetime unless ``--no-telemetry``), the same
events are mirrored into obs counters/histograms, so service traffic
shows up in the standard profile table and Chrome-trace sinks too.
"""

from __future__ import annotations

import time
from collections import deque


def percentile(samples: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by nearest-rank (0.0 empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class LatencyRing:
    """A bounded ring of latency samples with on-demand percentiles.

    O(1) to record; percentile queries sort the (bounded) window, which
    is plenty for a stats endpoint polled by humans and dashboards.
    """

    __slots__ = ("samples", "count", "total")

    def __init__(self, size: int = 2048):
        self.samples: deque[float] = deque(maxlen=size)
        self.count = 0
        self.total = 0.0

    def record(self, ms: float) -> None:
        """Fold one latency sample (milliseconds) into the ring."""
        self.samples.append(ms)
        self.count += 1
        self.total += ms

    def summary(self) -> dict:
        """Count, mean, and windowed p50/p99/max as a JSON-ready dict."""
        window = list(self.samples)
        return {
            "count": self.count,
            "mean_ms": round(self.total / self.count, 3) if self.count else 0.0,
            "p50_ms": round(percentile(window, 0.50), 3),
            "p99_ms": round(percentile(window, 0.99), 3),
            "max_ms": round(max(window), 3) if window else 0.0,
        }


class ServiceMetrics:
    """The server's always-on counters and per-class latency rings.

    Latency classes: ``cold`` (job whose compile missed the cache),
    ``hit`` (cache-hit job), ``run`` (simulation fan-out to the worker
    pool).  Everything lives in the event-loop thread, so no locking.
    """

    def __init__(self):
        self.started = time.time()
        self.counters: dict[str, int] = {}
        self.latency = {
            "cold": LatencyRing(),
            "hit": LatencyRing(),
            "run": LatencyRing(),
        }
        self.queue_wait = LatencyRing()

    def inc(self, name: str, n: int = 1) -> None:
        """Increment a named counter, mirroring into obs when enabled."""
        self.counters[name] = self.counters.get(name, 0) + n
        from ..obs import core as _obs

        if _obs.ENABLED:
            _obs.add(f"service.{name}", n)

    def observe_latency(self, kind: str, ms: float) -> None:
        """Record one job latency under its class (cold/hit/run)."""
        ring = self.latency.get(kind)
        if ring is not None:
            ring.record(ms)
        from ..obs import core as _obs

        if _obs.ENABLED:
            _obs.observe(f"service.latency.{kind}_ms", ms)

    def observe_queue_wait(self, ms: float) -> None:
        """Record one submit-to-start queue wait."""
        self.queue_wait.record(ms)
        from ..obs import core as _obs

        if _obs.ENABLED:
            _obs.observe("service.queue_wait_ms", ms)

    def snapshot(self) -> dict:
        """The stats-endpoint view: counters + latency summaries."""
        return {
            "uptime_s": round(time.time() - self.started, 3),
            "counters": dict(sorted(self.counters.items())),
            "latency": {
                kind: ring.summary() for kind, ring in self.latency.items()
            },
            "queue_wait": self.queue_wait.summary(),
        }


__all__ = ["LatencyRing", "ServiceMetrics", "percentile"]
