"""JSON-safe payloads for structured run results.

The server speaks canonical JSON (see
:func:`repro.service.digest.canonical_json`); this module flattens a
:class:`~repro.backends.RunResult` -- numpy arrays, integer-keyed bit
maps, Counter-like dicts -- into plain JSON types with a deterministic
layout, so a seeded run serializes to the same bytes on every worker.
"""

from __future__ import annotations

from typing import Any

from ..backends import RunResult


def _json_safe(value: Any) -> Any:
    """Recursively coerce numpy scalars/containers to plain JSON types."""
    import numpy as np

    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    return str(value)


def result_payload(result: RunResult) -> dict:
    """Flatten a :class:`~repro.backends.RunResult` into a JSON payload.

    The statevector (when present) becomes a list of ``[re, im]`` pairs
    in axis order, with the wire ids alongside; complex values have no
    JSON spelling of their own.  Absent fields are omitted rather than
    nulled, so payload bytes do not depend on backend internals growing
    new fields.
    """
    payload: dict[str, Any] = {"backend": result.backend}
    if result.shots is not None:
        payload["shots"] = int(result.shots)
    if result.counts is not None:
        payload["counts"] = {
            str(k): int(v) for k, v in result.counts.items()
        }
    if result.bits is not None:
        payload["bits"] = {str(k): bool(v) for k, v in result.bits.items()}
    if result.resources is not None:
        payload["resources"] = _json_safe(result.resources)
    if result.statevector is not None:
        payload["statevector"] = [
            [float(a.real), float(a.imag)] for a in result.statevector
        ]
        payload["statevector_wires"] = list(result.statevector_wires)
    if result.metadata:
        payload["metadata"] = _json_safe(result.metadata)
    return payload


__all__ = ["result_payload"]
