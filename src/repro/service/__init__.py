"""The circuit-compilation service: async jobs over a shared cache.

Quipper's generate/transform/compile pipeline is deterministic and
pure, which makes compiled circuits perfectly cacheable -- this package
turns that into a small network service.  An asyncio HTTP/JSON server
(:mod:`~repro.service.server`, stdlib only) accepts compile, structural
query, export, and simulation jobs; a **content-addressed cache**
(:mod:`~repro.service.cache`) keyed on the canonical request spec
guarantees each distinct circuit is built exactly once, concurrently or
not; and run jobs fan out to **digest-affine worker processes**
(:mod:`~repro.service.workers`) whose seeded results are byte-identical
regardless of worker or server lifetime.

Start a server with the ``repro-serve`` console script and talk to it
with :class:`~repro.service.client.ServiceClient` (or bare ``curl``);
see ``docs/service.md`` for the endpoint reference and deployment notes.
"""

from .client import ServiceClient, ServiceClientError
from .jobs import Job, JobManager
from .registry import (
    ParamSpec,
    ServiceError,
    list_programs,
    register_program,
)
from .server import ServiceServer, main

__all__ = [
    "Job",
    "JobManager",
    "ParamSpec",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "list_programs",
    "main",
    "register_program",
]
