"""The circuit-compilation service: async jobs over a shared cache.

Quipper's generate/transform/compile pipeline is deterministic and
pure, which makes compiled circuits perfectly cacheable -- this package
turns that into a small network service.  An asyncio HTTP/JSON server
(:mod:`~repro.service.server`, stdlib only) accepts compile, structural
query, export, and simulation jobs; a **content-addressed cache**
(:mod:`~repro.service.cache`) keyed on the canonical request spec
guarantees each distinct circuit is built exactly once, concurrently or
not; and run jobs fan out to **digest-affine worker processes**
(:mod:`~repro.service.workers`) whose seeded results are byte-identical
regardless of worker or server lifetime.

The service is **fault-tolerant by construction**: the worker pool is
supervised (heartbeats, crash detection, bounded respawn with backoff,
automatic requeue -- :mod:`~repro.service.workers`), disk-cache entries
are checksummed and quarantined on corruption, an unavailable pool
degrades to in-process runs instead of failing, and every failure mode
is reachable deterministically through the seedable fault-injection
registry in :mod:`~repro.service.faults` (``repro-serve --inject``).

Start a server with the ``repro-serve`` console script and talk to it
with :class:`~repro.service.client.ServiceClient` (or bare ``curl``);
see ``docs/service.md`` for the endpoint reference, deployment notes,
and the operating & failure-modes runbook.
"""

from .client import ServiceClient, ServiceClientError
from .faults import FaultPlan, InjectedFault, PoolUnavailable
from .jobs import Job, JobManager
from .registry import (
    ParamSpec,
    ServiceError,
    list_programs,
    register_program,
)
from .server import ServiceServer, main
from .workers import ShardedPool

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "Job",
    "JobManager",
    "ParamSpec",
    "PoolUnavailable",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "ShardedPool",
    "list_programs",
    "main",
    "register_program",
]
