"""Asynchronous job management: submit, bound, time out, deliver.

A job is one action over one content-addressed circuit: a compile, a
cheap structural query (count/depth/resources/export), or a simulation
run.  The manager enforces the service's load discipline:

* **Backpressure** -- at most ``max_pending`` unfinished jobs; past
  that, submits fail with a 429-shaped :class:`~.registry.ServiceError`
  carrying a ``Retry-After`` hint, instead of queueing unboundedly.
* **Bounded concurrency** -- a semaphore caps simultaneously *executing*
  jobs; everything else measurably waits in queue (the submit-to-start
  gap lands in the ``queue_wait`` histogram).
* **Per-job timeout with cancellation** -- a job overrunning its budget
  is cancelled and reports ``error: timeout``; an already-dispatched
  process-pool computation finishes in the worker and is discarded (the
  shard stays warm for the next job).
* **Graceful degradation** -- a run job whose worker pool is
  unavailable (crash loop, spawn failure) falls back to an in-process
  synchronous run (``jobs.fallback_sync``).  The pipeline is
  deterministic, so the fallback payload is byte-identical to what the
  worker would have produced; the client sees a normal ``done`` job.
* **Draining** -- once the server begins a drain (SIGTERM), new
  submissions are refused with a 503-shaped error while already-
  admitted jobs run to completion.

Every job runs under an obs span (``service.job``) that carries the job
id, action, and digest prefix, so a Chrome-trace export of a server
session shows per-job swimlanes over the standard pipeline spans.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from collections import OrderedDict

from ..core.errors import QuipperError
from ..obs import core as _obs
from .cache import CompileCache
from .digest import spec_digest
from .faults import PoolUnavailable
from .metrics import ServiceMetrics
from .registry import ACTIONS, ServiceError, canonical_spec
from .workers import ShardedPool, run_program_payload

_job_counter = itertools.count(1)


def canonical_run_options(raw: object) -> dict:
    """Validate and normalize a job's ``"run"`` options (raises 400)."""
    if raw is None:
        raw = {}
    if not isinstance(raw, dict):
        raise ServiceError("'run' must be a JSON object")
    unknown = set(raw) - {"backend", "shots", "seed", "in_values", "batch"}
    if unknown:
        raise ServiceError(
            f"unknown run option(s): {', '.join(sorted(unknown))}"
        )
    backend = raw.get("backend", "statevector")
    if not isinstance(backend, str):
        raise ServiceError("'run.backend' must be a string")
    shots = raw.get("shots")
    if shots is not None and (
        isinstance(shots, bool) or not isinstance(shots, int) or shots < 1
    ):
        raise ServiceError("'run.shots' must be a positive integer or null")
    batch = raw.get("batch")
    if batch is not None and (
        isinstance(batch, bool) or not isinstance(batch, int) or batch < 1
    ):
        raise ServiceError("'run.batch' must be a positive integer or null")
    seed = raw.get("seed")
    if seed is not None and (
        isinstance(seed, bool) or not isinstance(seed, int)
    ):
        raise ServiceError("'run.seed' must be an integer or null")
    in_values = raw.get("in_values")
    converted: dict[int, bool] | None = None
    if in_values is not None:
        if not isinstance(in_values, dict):
            raise ServiceError("'run.in_values' must map wire ids to bools")
        converted = {}
        for key, value in in_values.items():
            try:
                wire = int(key)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"'run.in_values' wire id {key!r} is not an integer"
                ) from None
            if not isinstance(value, bool):
                raise ServiceError(
                    f"'run.in_values' value for wire {wire} must be a bool"
                )
            converted[wire] = value
    return {
        "backend": backend, "shots": shots, "seed": seed,
        "in_values": converted, "batch": batch,
    }


class Job:
    """One submitted job and everything its lifecycle accumulates."""

    __slots__ = ("id", "action", "digest", "cspec", "run_options", "state",
                 "created", "started", "finished", "cache_hit", "result",
                 "error", "error_status", "worker", "task", "queue_wait_ms",
                 "exec_ms")

    def __init__(self, job_id: str, action: str, digest: str, cspec: dict,
                 run_options: dict | None):
        self.id = job_id
        self.action = action
        self.digest = digest
        self.cspec = cspec
        self.run_options = run_options
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.cache_hit: bool | None = None
        self.result: dict | None = None
        self.error: str | None = None
        self.error_status: int = 500
        self.worker: dict | None = None
        self.task: asyncio.Task | None = None
        self.queue_wait_ms: float | None = None
        self.exec_ms: float | None = None

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("done", "error", "cancelled")

    def as_status(self) -> dict:
        """The poll-endpoint view of this job (no result payload)."""
        status: dict = {
            "id": self.id,
            "state": self.state,
            "action": self.action,
            "digest": self.digest,
            "created": round(self.created, 6),
        }
        if self.cache_hit is not None:
            status["cache_hit"] = self.cache_hit
        if self.queue_wait_ms is not None:
            status["queue_wait_ms"] = round(self.queue_wait_ms, 3)
        if self.exec_ms is not None:
            status["exec_ms"] = round(self.exec_ms, 3)
        if self.worker is not None:
            status["worker"] = self.worker
        if self.error is not None:
            status["error"] = self.error
        return status


class JobManager:
    """Owns the job table, the execution budget, and the timeouts."""

    def __init__(self, cache: CompileCache, pool: ShardedPool,
                 metrics: ServiceMetrics, *, max_pending: int = 64,
                 max_running: int = 8, job_timeout: float = 120.0,
                 max_jobs_kept: int = 512):
        self.cache = cache
        self.pool = pool
        self.metrics = metrics
        self.max_pending = max_pending
        self.job_timeout = job_timeout
        self.max_jobs_kept = max_jobs_kept
        self.jobs: OrderedDict[str, Job] = OrderedDict()
        self.active = 0
        self.draining = False
        self._running = asyncio.Semaphore(max_running)

    def submit(self, spec: dict) -> Job:
        """Validate *spec*, admit it (or 429/503), and schedule execution."""
        if self.draining:
            self.metrics.inc("jobs.rejected_draining")
            raise ServiceError(
                "server is draining; submit elsewhere or retry later",
                status=503,
            )
        if self.active >= self.max_pending:
            self.metrics.inc("jobs.rejected")
            raise ServiceError(
                f"job queue is full ({self.max_pending} pending); retry",
                status=429,
            )
        action = spec.get("action", "compile")
        if action not in ACTIONS:
            raise ServiceError(
                f"unknown action {action!r}; one of {', '.join(ACTIONS)}"
            )
        cspec = canonical_spec(spec)
        run_options = (
            canonical_run_options(spec.get("run"))
            if action == "run" else None
        )
        job = Job(
            f"j{next(_job_counter):08d}", action, spec_digest(cspec),
            cspec, run_options,
        )
        self.jobs[job.id] = job
        while len(self.jobs) > self.max_jobs_kept:
            _, old = self.jobs.popitem(last=False)
            if not old.done and old.task is not None:
                old.task.cancel()
        self.active += 1
        self.metrics.inc("jobs.submitted")
        job.task = asyncio.get_running_loop().create_task(
            self._drive(job), name=f"repro-service-{job.id}"
        )
        return job

    def get(self, job_id: str) -> Job | None:
        """The job table entry, or None when unknown/expired."""
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued/running job (terminal jobs are left alone)."""
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        if not job.done and job.task is not None:
            job.task.cancel()
        return job

    async def wait(self, job: Job, timeout: float | None = None) -> Job:
        """Await a job's terminal state (the sync fast path uses this)."""
        if job.task is not None:
            done = (asyncio.wait_for(asyncio.shield(job.task), timeout)
                    if timeout is not None else asyncio.shield(job.task))
            try:
                await done
            except (asyncio.CancelledError, asyncio.TimeoutError):
                pass
        return job

    async def _drive(self, job: Job) -> None:
        try:
            await asyncio.wait_for(self._work(job), self.job_timeout)
            job.state = "done"
            self.metrics.inc("jobs.completed")
        except asyncio.TimeoutError:
            job.state = "error"
            job.error = f"timeout after {self.job_timeout:g}s"
            job.error_status = 504
            self.metrics.inc("jobs.timeouts")
        except asyncio.CancelledError:
            job.state = "cancelled"
            self.metrics.inc("jobs.cancelled")
        except ServiceError as exc:
            job.state = "error"
            job.error = str(exc)
            job.error_status = exc.status
            self.metrics.inc("jobs.failed")
        except QuipperError as exc:
            # Pipeline refusals (export limits, backend argument errors)
            # are the client's problem, not a server fault.
            job.state = "error"
            job.error = f"{type(exc).__name__}: {exc}"
            job.error_status = 400
            self.metrics.inc("jobs.failed")
        except Exception as exc:  # noqa: BLE001 - job boundary
            job.state = "error"
            job.error = f"{type(exc).__name__}: {exc}"
            job.error_status = 500
            self.metrics.inc("jobs.failed")
        finally:
            job.finished = time.time()
            self.active -= 1
            if job.started is not None:
                job.exec_ms = (job.finished - job.started) * 1e3
                kind = ("run" if job.action == "run"
                        else "hit" if job.cache_hit else "cold")
                self.metrics.observe_latency(
                    kind, (job.finished - job.created) * 1e3
                )

    async def _work(self, job: Job) -> None:
        async with self._running:
            job.started = time.time()
            job.queue_wait_ms = (job.started - job.created) * 1e3
            self.metrics.observe_queue_wait(job.queue_wait_ms)
            job.state = "running"
            with _obs.span("service.job", job=job.id, action=job.action,
                           digest=job.digest[:12]):
                entry, hit = await self.cache.get(job.digest, job.cspec)
                job.cache_hit = hit
                loop = asyncio.get_running_loop()
                if job.action == "run":
                    try:
                        outcome = await self.pool.run(
                            job.digest, entry.text, job.run_options or {}
                        )
                        job.result = outcome["payload"]
                        job.worker = outcome.get("worker")
                    except PoolUnavailable:
                        # Degrade, don't fail: the deterministic
                        # pipeline makes an in-process run byte-
                        # identical to the worker's answer.
                        self.metrics.inc("jobs.fallback_sync")
                        with _obs.span("service.fallback", job=job.id):
                            job.result = await loop.run_in_executor(
                                None, run_program_payload,
                                entry.program, job.run_options or {},
                            )
                        job.worker = {"pid": os.getpid(), "fallback": True}
                else:
                    job.result = await loop.run_in_executor(
                        None, entry.query, job.action
                    )


__all__ = ["Job", "JobManager", "canonical_run_options"]
