"""A resilient blocking client for the compile service (stdlib only).

Wraps :mod:`http.client` over one keep-alive connection; not
thread-safe -- give each thread (or asyncio executor worker) its own
:class:`ServiceClient`.  The two usage shapes::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 8766) as svc:
        # Sync fast path: submit-and-wait in one round trip.
        out = svc.query(program="bwt", params={"n": 4}, action="count")
        print(out["counts"])

        # Async jobs: submit, poll, fetch.
        job = svc.submit(program="tf", params={"l": 2}, action="run",
                         run={"shots": 64, "seed": 7})
        done = svc.wait(job["id"])
        print(svc.result(job["id"])["result"]["counts"])

Resilience is built into :meth:`ServiceClient.request`, bounded by a
``max_wait`` wall-clock budget:

* A dropped or reset connection (server restart, crashed keep-alive)
  reconnects and resends.  That resend is safe precisely because the
  service is **content-addressed**: resubmitting a spec is idempotent
  -- same digest, same cached compile, byte-identical seeded results.
* ``429`` / ``503`` responses (full queue, draining server) are retried
  with capped exponential backoff honoring the server's ``Retry-After``
  hint, plus **deterministic seeded jitter** (``jitter_seed``) so a
  retrying client fleet decorrelates without sacrificing reproducible
  tests.
* :meth:`execute` adds job-level resubmission on top: a job id lost to
  a server restart (404 mid-poll) resubmits the same spec and keeps
  waiting.

``max_wait=0`` disables retries entirely (the pre-resilience behavior:
first error surfaces immediately).
"""

from __future__ import annotations

import http.client
import json
import random
import time

#: HTTP statuses worth retrying: overload (429) and drain/degrade (503).
RETRYABLE_STATUSES = (429, 503)


class ServiceClientError(Exception):
    """A non-2xx service response; carries status and retry hint."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None, attempts: int = 1):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after
        self.attempts = attempts


class ServiceClient:
    """Blocking HTTP client bound to one server address.

    *retries* bounds reconnect attempts per request, *max_wait* bounds
    the total time spent backing off on retryable statuses, *backoff* /
    *backoff_cap* shape the exponential schedule, and *jitter_seed*
    seeds the jitter stream (deterministic per client instance).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8766, *,
                 timeout: float = 60.0, retries: int = 3,
                 max_wait: float = 15.0, backoff: float = 0.1,
                 backoff_cap: float = 2.0, jitter_seed: int = 0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.max_wait = max_wait
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the underlying connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _backoff_wait(self, attempt: int, hint: float | None) -> float:
        """The next sleep: server hint or capped exponential, + jitter.

        Jitter is a deterministic draw from the client's seeded stream,
        up to a quarter of the base wait -- enough to decorrelate a
        retrying fleet, small enough to respect ``Retry-After``.
        """
        base = (hint if hint is not None
                else min(self.backoff * 2 ** attempt, self.backoff_cap))
        return base + self._rng.uniform(0.0, base / 4) if base > 0 else 0.0

    def request(self, method: str, path: str, body: dict | None = None, *,
                max_wait: float | None = None) -> dict:
        """One logical request; reconnects and backs off within budget.

        Raises :class:`ServiceClientError` (with the attempt count) for
        a non-2xx answer that is not retryable or whose retry budget --
        *max_wait* here, falling back to the client default -- ran out.
        """
        payload = json.dumps(body).encode() if body is not None else None
        budget = self.max_wait if max_wait is None else max_wait
        deadline = time.monotonic() + budget
        conn_failures = 0
        attempt = 0
        while True:
            conn = self._connection()
            try:
                conn.request(
                    method, path, body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                # Reconnect-and-resend: safe for every endpoint because
                # submissions are content-addressed (idempotent).
                self.close()
                conn_failures += 1
                attempt += 1
                if conn_failures > self.retries:
                    raise
                wait = self._backoff_wait(conn_failures - 1, None)
                if time.monotonic() + wait > deadline and conn_failures > 1:
                    raise
                time.sleep(wait)
                continue
            attempt += 1
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"error": raw.decode(errors="replace")}
            if response.status < 400:
                return data
            header = response.headers.get("Retry-After")
            retry_after = float(header) if header else None
            if response.status in RETRYABLE_STATUSES:
                wait = self._backoff_wait(attempt - 1, retry_after)
                if time.monotonic() + wait <= deadline:
                    time.sleep(wait)
                    continue
            raise ServiceClientError(
                response.status, data.get("error", "request failed"),
                retry_after=retry_after, attempts=attempt,
            )

    # -- introspection ------------------------------------------------------

    def health(self) -> dict:
        """``GET /v1/healthz``."""
        return self.request("GET", "/v1/healthz")

    def programs(self) -> dict:
        """``GET /v1/programs``."""
        return self.request("GET", "/v1/programs")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self.request("GET", "/v1/stats")

    def profile(self) -> dict:
        """``GET /v1/profile`` (requires server-side telemetry)."""
        return self.request("GET", "/v1/profile")

    # -- jobs ---------------------------------------------------------------

    def submit(self, **spec) -> dict:
        """Submit an async job; returns its status dict (with ``id``)."""
        spec.pop("sync", None)
        return self.request("POST", "/v1/jobs", spec)

    def query(self, **spec) -> dict:
        """The sync fast path: submit, wait inline, return the result."""
        spec["sync"] = True
        return self.request("POST", "/v1/jobs", spec)["result"]

    def status(self, job_id: str) -> dict:
        """Poll one job's status."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Fetch a finished job's ``{"job": ..., "result": ...}``."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued/running job."""
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             interval: float = 0.02) -> dict:
        """Poll until the job reaches a terminal state (or timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "error", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:g}s"
                )
            time.sleep(interval)

    def execute(self, *, timeout: float = 60.0, **spec) -> dict:
        """Submit-poll-fetch with idempotent resubmission; returns result.

        The async-path analogue of :meth:`query` for jobs too long for
        one round trip.  If the job id disappears mid-poll (the server
        restarted and lost its job table) the *spec* -- being content-
        addressed -- is simply resubmitted: the restarted server's
        warm-started cache and deterministic pipeline make the retried
        job's payload byte-identical to the one the lost job would
        have returned.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.submit(**spec)
            try:
                status = self.wait(
                    job["id"],
                    timeout=max(0.01, deadline - time.monotonic()),
                )
                if status["state"] == "done":
                    return self.result(job["id"])["result"]
                raise ServiceClientError(
                    500, status.get("error", status["state"])
                )
            except ServiceClientError as exc:
                if exc.status != 404 or time.monotonic() >= deadline:
                    raise
                # Job table lost (restart): resubmit the same digest.


__all__ = ["RETRYABLE_STATUSES", "ServiceClient", "ServiceClientError"]
