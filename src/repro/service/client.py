"""A minimal blocking client for the compile service (stdlib only).

Wraps :mod:`http.client` over one keep-alive connection; not
thread-safe -- give each thread (or asyncio executor worker) its own
:class:`ServiceClient`.  The two usage shapes::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 8766) as svc:
        # Sync fast path: submit-and-wait in one round trip.
        out = svc.query(program="bwt", params={"n": 4}, action="count")
        print(out["counts"])

        # Async jobs: submit, poll, fetch.
        job = svc.submit(program="tf", params={"l": 2}, action="run",
                         run={"shots": 64, "seed": 7})
        done = svc.wait(job["id"])
        print(svc.result(job["id"])["result"]["counts"])
"""

from __future__ import annotations

import http.client
import json
import time


class ServiceClientError(Exception):
    """A non-2xx service response; carries status and retry hint."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Blocking HTTP client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8766, *,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the underlying connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: dict | None = None) -> dict:
        """One request/response cycle; raises on non-2xx statuses.

        Retries exactly once on a dropped keep-alive connection (the
        server may have restarted between calls).
        """
        payload = json.dumps(body).encode() if body is not None else None
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(
                    method, path, body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"error": raw.decode(errors="replace")}
        if response.status >= 400:
            retry_after = response.headers.get("Retry-After")
            raise ServiceClientError(
                response.status, data.get("error", "request failed"),
                retry_after=float(retry_after) if retry_after else None,
            )
        return data

    # -- introspection ------------------------------------------------------

    def health(self) -> dict:
        """``GET /v1/healthz``."""
        return self.request("GET", "/v1/healthz")

    def programs(self) -> dict:
        """``GET /v1/programs``."""
        return self.request("GET", "/v1/programs")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self.request("GET", "/v1/stats")

    def profile(self) -> dict:
        """``GET /v1/profile`` (requires server-side telemetry)."""
        return self.request("GET", "/v1/profile")

    # -- jobs ---------------------------------------------------------------

    def submit(self, **spec) -> dict:
        """Submit an async job; returns its status dict (with ``id``)."""
        spec.pop("sync", None)
        return self.request("POST", "/v1/jobs", spec)

    def query(self, **spec) -> dict:
        """The sync fast path: submit, wait inline, return the result."""
        spec["sync"] = True
        return self.request("POST", "/v1/jobs", spec)["result"]

    def status(self, job_id: str) -> dict:
        """Poll one job's status."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Fetch a finished job's ``{"job": ..., "result": ...}``."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued/running job."""
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             interval: float = 0.02) -> dict:
        """Poll until the job reaches a terminal state (or timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "error", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:g}s"
                )
            time.sleep(interval)


__all__ = ["ServiceClient", "ServiceClientError"]
