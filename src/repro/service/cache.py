"""The content-addressed compile cache: hot circuits compile once.

Maps the digest of a canonical compile spec (see
:mod:`repro.service.registry`) to a fully-built pipeline product: the
generated + transformed + optimized hierarchy, its compiled flat stream,
and (lazily) its interchange text for worker shipping and disk
persistence.  Three properties carry the service's load story:

* **Single-flight** -- concurrent requests for one digest coalesce onto
  one build: the first request compiles (in a worker thread, so the
  event loop keeps serving), everyone else awaits the same future.  The
  obs counter ``cache.compiled_stream.misses`` staying at 1 under a
  client hammer is the tested proof.
* **Shared pool keying** -- the build feeds the digest into
  :func:`repro.transform.inline.compile_flat`'s process-wide pool, so
  even cache-evicted circuits resubmitted later reuse an inline when
  the pool still holds it.
* **Disk warm-start** -- with a ``cache_dir``, the final (post-
  transform, post-optimize) circuit is persisted as Quipper-ASCII under
  its digest; a restarted server (or a sibling process) parses that
  text instead of re-running capture/transform/optimize.
* **Disk integrity** -- every persisted ``{digest}.quip`` carries a
  one-line checksum header over its circuit text.  Warm-start loads
  re-digest the body and verify both the checksum and the spec digest
  in the filename; a truncated, bit-flipped, or foreign file is moved
  to ``cache_dir/quarantine/`` (``cache.quarantined``) and the circuit
  is recompiled from the spec -- corruption costs one compile, never a
  wrong answer.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import Counter, OrderedDict
from pathlib import Path

from ..obs import core as _obs
from ..program import Program
from .digest import digest_text
from .faults import DELAY_S, FaultPlan
from .metrics import ServiceMetrics
from .registry import ServiceError, build_program
from .serialize import result_payload

#: First line of every persisted cache entry: format version, the spec
#: digest the filename claims, and the checksum of the body that
#: follows.  The loader strips it before parsing; sibling servers
#: racing to persist one digest still produce identical bytes.
_HEADER = "; repro-cache v1 spec={spec} sha256={sha}\n"

#: Domain tag for the body checksum (see :func:`..digest.digest_text`).
_SUM_DOMAIN = "quip-cache"


class CacheEntry:
    """One cached compile product and its memoized cheap queries."""

    __slots__ = ("digest", "program", "width", "from_disk", "compile_ms",
                 "_text", "_results", "_lock")

    def __init__(self, digest: str, program: Program, width: int,
                 from_disk: bool, compile_ms: float):
        self.digest = digest
        self.program = program
        self.width = width
        self.from_disk = from_disk
        self.compile_ms = compile_ms
        self._text: str | None = None
        self._results: dict[str, dict] = {}
        self._lock = threading.Lock()

    def text(self) -> str:
        """The final circuit as interchange text (computed once)."""
        with self._lock:
            if self._text is None:
                from ..io import dumps

                self._text = dumps(self.program.bcircuit)
            return self._text

    def query(self, action: str) -> dict:
        """Answer one non-run action from the cached product (memoized).

        Every payload is JSON-ready; repeated queries of one action on a
        hot entry are dictionary lookups.
        """
        with self._lock:
            cached = self._results.get(action)
            if cached is not None:
                return cached
        payload = self._compute(action)
        with self._lock:
            self._results.setdefault(action, payload)
            return self._results[action]

    def _compute(self, action: str) -> dict:
        program = self.program
        if action == "compile":
            compiled = program.compiled()
            return {
                "digest": self.digest,
                "gates_stored": len(program.bcircuit),
                "gates_inlined": len(compiled),
                "prefix_len": compiled.prefix_len,
                "width": self.width,
            }
        if action == "count":
            counts: Counter = program.count()
            return {
                "counts": {str(k): int(v) for k, v in counts.items()},
                "total": int(sum(counts.values())),
            }
        if action == "depth":
            return {"depth": int(program.depth())}
        if action == "t_depth":
            return {"t_depth": int(program.t_depth())}
        if action == "width":
            return {"width": self.width}
        if action == "resources":
            return result_payload(program.run(backend="resources"))
        if action == "ascii":
            return {"text": program.ascii()}
        if action == "quipper":
            return {"text": self.text()}
        if action == "qasm":
            return {"text": program.qasm()}
        raise ServiceError(f"unknown action {action!r}")


class CompileCache:
    """Digest-keyed LRU of :class:`CacheEntry` with single-flight builds."""

    def __init__(self, metrics: ServiceMetrics, maxsize: int = 128,
                 cache_dir: str | os.PathLike | None = None,
                 faults: FaultPlan | None = None):
        self.metrics = metrics
        self.maxsize = maxsize
        self.faults = faults or FaultPlan()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._pending: dict[str, asyncio.Future] = {}

    async def get(self, digest: str, cspec: dict) -> tuple[CacheEntry, bool]:
        """The entry for *digest*, building it at most once per flight.

        Returns ``(entry, cache_hit)``; a request that coalesced onto an
        in-flight build counts as a hit (it did not compile).
        """
        entry = self.entries.get(digest)
        if entry is not None:
            self.entries.move_to_end(digest)
            self.metrics.inc("cache.hits")
            return entry, True
        loop = asyncio.get_running_loop()
        pending = self._pending.get(digest)
        if pending is not None:
            self.metrics.inc("cache.hits")
            self.metrics.inc("cache.coalesced")
            return await asyncio.shield(pending), True
        future: asyncio.Future = loop.create_future()
        self._pending[digest] = future
        try:
            entry = await loop.run_in_executor(
                None, self._build_sync, digest, cspec
            )
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved: waiters re-raise theirs
            raise
        else:
            self.metrics.inc("cache.misses")
            if entry.from_disk:
                self.metrics.inc("cache.disk_hits")
            self.entries[digest] = entry
            self.entries.move_to_end(digest)
            while len(self.entries) > self.maxsize:
                self.entries.popitem(last=False)
            if not future.done():
                future.set_result(entry)
            return entry, False
        finally:
            self._pending.pop(digest, None)

    def _disk_path(self, digest: str) -> Path | None:
        return (
            self.cache_dir / f"{digest}.quip"
            if self.cache_dir is not None else None
        )

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad cache file aside (never silently reuse or delete)."""
        target = path.parent / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            path.replace(target)
        except OSError:
            pass  # racing sibling already moved/removed it
        self.metrics.inc("cache.quarantined")
        self.metrics.inc(f"cache.quarantined.{reason}")

    def _load_disk(self, digest: str, path: Path) -> str | None:
        """Read + verify one persisted entry; None means rebuild.

        The circuit text is trusted only when the header's checksum
        re-digests from the body *and* the header's spec digest matches
        the filename; anything else -- truncation, a flipped bit, a
        legacy or foreign file -- is quarantined and recompiled.
        """
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.metrics.inc("cache.disk_read_errors")
            return None
        rule = self.faults.fire("disk_read")
        if rule is not None:
            self.metrics.inc("faults.injected")
            if rule.mode == "delay":
                time.sleep(DELAY_S)
            elif rule.mode == "corrupt":
                raw = self.faults.corrupt_text(raw, "disk_read")
            else:
                self.metrics.inc("cache.disk_read_errors")
                return None  # injected read failure: treat as a miss
        header, sep, body = raw.partition("\n")
        expected = _HEADER.format(
            spec=digest, sha=digest_text(body, _SUM_DOMAIN)
        )
        if not sep or header + sep != expected:
            self._quarantine(path, "digest_mismatch")
            return None
        return body

    def _build_sync(self, digest: str, cspec: dict) -> CacheEntry:
        """Build one entry (runs in a worker thread off the event loop)."""
        from ..transform.inline import compile_flat

        t0 = time.perf_counter()
        text: str | None = None
        path = self._disk_path(digest)
        if path is not None and path.exists():
            text = self._load_disk(digest, path)
        from_disk = text is not None
        if text is not None:
            program = Program.loads(text, name=f"disk:{digest[:12]}")
        else:
            program = build_program(cspec)
        with _obs.span("service.compile", digest=digest[:12]):
            bc = program.bcircuit  # generate + transform + optimize (or parse)
            width = bc.check()
            # Key the process-wide compiled pool on the service digest:
            # the canonical spec uniquely determines the inlined stream.
            compile_flat(bc, digest=f"service:{digest}")
        entry = CacheEntry(
            digest, program, width, from_disk,
            compile_ms=(time.perf_counter() - t0) * 1e3,
        )
        if text is not None:
            entry._text = text
        elif path is not None:
            self._persist(digest, path, entry.text())
        return entry

    def _persist(self, digest: str, path: Path, body: str) -> None:
        """Write one checksummed entry (atomic rename, best effort).

        Per-process temp name + atomic rename: two sibling servers
        persisting one digest race harmlessly to identical bytes.  A
        failed write (disk full, injected fault) is counted and
        dropped -- persistence is an optimization, not a correctness
        requirement.
        """
        rule = self.faults.fire("disk_write")
        if rule is not None:
            self.metrics.inc("faults.injected")
            if rule.mode == "delay":
                time.sleep(DELAY_S)
            else:
                self.metrics.inc("cache.disk_write_errors")
                return  # injected write failure: entry stays memory-only
        header = _HEADER.format(spec=digest, sha=digest_text(body, _SUM_DOMAIN))
        try:
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(header + body, encoding="utf-8")
            tmp.replace(path)
        except OSError:
            self.metrics.inc("cache.disk_write_errors")


__all__ = ["CacheEntry", "CompileCache"]
