"""The content-addressed compile cache: hot circuits compile once.

Maps the digest of a canonical compile spec (see
:mod:`repro.service.registry`) to a fully-built pipeline product: the
generated + transformed + optimized hierarchy, its compiled flat stream,
and (lazily) its interchange text for worker shipping and disk
persistence.  Three properties carry the service's load story:

* **Single-flight** -- concurrent requests for one digest coalesce onto
  one build: the first request compiles (in a worker thread, so the
  event loop keeps serving), everyone else awaits the same future.  The
  obs counter ``cache.compiled_stream.misses`` staying at 1 under a
  client hammer is the tested proof.
* **Shared pool keying** -- the build feeds the digest into
  :func:`repro.transform.inline.compile_flat`'s process-wide pool, so
  even cache-evicted circuits resubmitted later reuse an inline when
  the pool still holds it.
* **Disk warm-start** -- with a ``cache_dir``, the final (post-
  transform, post-optimize) circuit is persisted as Quipper-ASCII under
  its digest; a restarted server (or a sibling process) parses that
  text instead of re-running capture/transform/optimize.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import Counter, OrderedDict
from pathlib import Path

from ..obs import core as _obs
from ..program import Program
from .metrics import ServiceMetrics
from .registry import ServiceError, build_program
from .serialize import result_payload


class CacheEntry:
    """One cached compile product and its memoized cheap queries."""

    __slots__ = ("digest", "program", "width", "from_disk", "compile_ms",
                 "_text", "_results", "_lock")

    def __init__(self, digest: str, program: Program, width: int,
                 from_disk: bool, compile_ms: float):
        self.digest = digest
        self.program = program
        self.width = width
        self.from_disk = from_disk
        self.compile_ms = compile_ms
        self._text: str | None = None
        self._results: dict[str, dict] = {}
        self._lock = threading.Lock()

    def text(self) -> str:
        """The final circuit as interchange text (computed once)."""
        with self._lock:
            if self._text is None:
                from ..io import dumps

                self._text = dumps(self.program.bcircuit)
            return self._text

    def query(self, action: str) -> dict:
        """Answer one non-run action from the cached product (memoized).

        Every payload is JSON-ready; repeated queries of one action on a
        hot entry are dictionary lookups.
        """
        with self._lock:
            cached = self._results.get(action)
            if cached is not None:
                return cached
        payload = self._compute(action)
        with self._lock:
            self._results.setdefault(action, payload)
            return self._results[action]

    def _compute(self, action: str) -> dict:
        program = self.program
        if action == "compile":
            compiled = program.compiled()
            return {
                "digest": self.digest,
                "gates_stored": len(program.bcircuit),
                "gates_inlined": len(compiled),
                "prefix_len": compiled.prefix_len,
                "width": self.width,
            }
        if action == "count":
            counts: Counter = program.count()
            return {
                "counts": {str(k): int(v) for k, v in counts.items()},
                "total": int(sum(counts.values())),
            }
        if action == "depth":
            return {"depth": int(program.depth())}
        if action == "t_depth":
            return {"t_depth": int(program.t_depth())}
        if action == "width":
            return {"width": self.width}
        if action == "resources":
            return result_payload(program.run(backend="resources"))
        if action == "ascii":
            return {"text": program.ascii()}
        if action == "quipper":
            return {"text": self.text()}
        if action == "qasm":
            return {"text": program.qasm()}
        raise ServiceError(f"unknown action {action!r}")


class CompileCache:
    """Digest-keyed LRU of :class:`CacheEntry` with single-flight builds."""

    def __init__(self, metrics: ServiceMetrics, maxsize: int = 128,
                 cache_dir: str | os.PathLike | None = None):
        self.metrics = metrics
        self.maxsize = maxsize
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._pending: dict[str, asyncio.Future] = {}

    async def get(self, digest: str, cspec: dict) -> tuple[CacheEntry, bool]:
        """The entry for *digest*, building it at most once per flight.

        Returns ``(entry, cache_hit)``; a request that coalesced onto an
        in-flight build counts as a hit (it did not compile).
        """
        entry = self.entries.get(digest)
        if entry is not None:
            self.entries.move_to_end(digest)
            self.metrics.inc("cache.hits")
            return entry, True
        loop = asyncio.get_running_loop()
        pending = self._pending.get(digest)
        if pending is not None:
            self.metrics.inc("cache.hits")
            self.metrics.inc("cache.coalesced")
            return await asyncio.shield(pending), True
        future: asyncio.Future = loop.create_future()
        self._pending[digest] = future
        try:
            entry = await loop.run_in_executor(
                None, self._build_sync, digest, cspec
            )
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved: waiters re-raise theirs
            raise
        else:
            self.metrics.inc("cache.misses")
            if entry.from_disk:
                self.metrics.inc("cache.disk_hits")
            self.entries[digest] = entry
            self.entries.move_to_end(digest)
            while len(self.entries) > self.maxsize:
                self.entries.popitem(last=False)
            if not future.done():
                future.set_result(entry)
            return entry, False
        finally:
            self._pending.pop(digest, None)

    def _disk_path(self, digest: str) -> Path | None:
        return (
            self.cache_dir / f"{digest}.quip"
            if self.cache_dir is not None else None
        )

    def _build_sync(self, digest: str, cspec: dict) -> CacheEntry:
        """Build one entry (runs in a worker thread off the event loop)."""
        from ..transform.inline import compile_flat

        t0 = time.perf_counter()
        text: str | None = None
        from_disk = False
        path = self._disk_path(digest)
        if path is not None and path.exists():
            text = path.read_text(encoding="utf-8")
            program = Program.loads(text, name=f"disk:{digest[:12]}")
            from_disk = True
        else:
            program = build_program(cspec)
        with _obs.span("service.compile", digest=digest[:12]):
            bc = program.bcircuit  # generate + transform + optimize (or parse)
            width = bc.check()
            # Key the process-wide compiled pool on the service digest:
            # the canonical spec uniquely determines the inlined stream.
            compile_flat(bc, digest=f"service:{digest}")
        entry = CacheEntry(
            digest, program, width, from_disk,
            compile_ms=(time.perf_counter() - t0) * 1e3,
        )
        if text is not None:
            entry._text = text
        elif path is not None:
            # Per-process temp name + atomic rename: two sibling servers
            # persisting one digest race harmlessly to identical bytes.
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(entry.text(), encoding="utf-8")
            tmp.replace(path)
        return entry


__all__ = ["CacheEntry", "CompileCache"]
