"""The sharded simulation worker pool: run jobs fan out of the server.

Simulation is CPU-bound Python + numpy, so run jobs leave the event
loop for a pool of **single-process shards**: each shard is its own
``ProcessPoolExecutor(max_workers=1)``, and a job's digest picks its
shard deterministically (``int(digest[:8], 16) % shards``).  Digest
affinity is the point -- every run of one circuit lands in the worker
that already holds it, so the worker-side caches do their job:

* a per-worker LRU of parsed Programs keyed by digest (the circuit text
  ships to a shard exactly once, not per job), and
* the per-circuit compiled-stream memo of
  :func:`repro.transform.inline.compile_flat`, warm after the first run.

Workers are plain ``spawn`` processes (no fork-under-threads hazards in
a threaded server): they import :mod:`repro` fresh and never touch the
server's memory, which is why seeded results are byte-identical no
matter which worker -- or which server lifetime -- produced them.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from .metrics import ServiceMetrics
from .registry import ServiceError

#: Per-worker parsed-Program LRU size (circuits, not gates).
WORKER_CACHE_SIZE = 32

#: Sentinel payload a worker returns when it does not hold the digest
#: (fresh worker, LRU eviction, crashed-and-respawned process) and the
#: call did not ship the circuit text; the server retries with text.
_NEED_TEXT = "_need_text"

# -- worker-side (runs in the spawned process) ------------------------------

_WORKER_PROGRAMS: "OrderedDict[str, object]" = OrderedDict()


def _worker_run(digest: str, text: str | None, run_kwargs: dict) -> dict:
    """Execute one run job inside a worker process.

    Returns a JSON/pickle-safe dict: the serialized
    :class:`~repro.backends.RunResult` payload plus worker provenance
    (pid, whether the program/compiled stream were already warm) that
    the stats endpoint and the cache tests read.
    """
    from ..program import Program
    from .serialize import result_payload

    program = _WORKER_PROGRAMS.get(digest)
    program_warm = program is not None
    if program is None:
        if text is None:
            return {_NEED_TEXT: True}
        program = Program.loads(text, name=f"worker:{digest[:12]}")
        program.bcircuit  # parse now: steady-state runs are replay-only
        _WORKER_PROGRAMS[digest] = program
        _WORKER_PROGRAMS.move_to_end(digest)
        while len(_WORKER_PROGRAMS) > WORKER_CACHE_SIZE:
            _WORKER_PROGRAMS.popitem(last=False)
    else:
        _WORKER_PROGRAMS.move_to_end(digest)
    stream_warm = getattr(program.bcircuit, "_compiled_flat", None) is not None
    result = program.run(
        run_kwargs.get("backend", "statevector"),
        shots=run_kwargs.get("shots"),
        seed=run_kwargs.get("seed"),
        in_values=run_kwargs.get("in_values"),
    )
    return {
        "payload": result_payload(result),
        "worker": {
            "pid": os.getpid(),
            "program_warm": program_warm,
            "stream_warm": stream_warm,
        },
    }


# -- server-side ------------------------------------------------------------


class ShardPool:
    """Digest-affine pool of single-worker process shards."""

    def __init__(self, metrics: ServiceMetrics, shards: int = 2):
        if shards < 1:
            raise ServiceError("worker pool needs at least one shard")
        self.metrics = metrics
        self.shards = shards
        self._context = multiprocessing.get_context("spawn")
        self._executors: list[ProcessPoolExecutor | None] = [None] * shards
        #: Digests each shard has been shipped (so text goes over once).
        self._known: list[set[str]] = [set() for _ in range(shards)]
        self.busy = [0] * shards
        self.jobs_run = [0] * shards

    def shard_index(self, digest: str) -> int:
        """The deterministic shard owning *digest*."""
        return int(digest[:8], 16) % self.shards

    def _executor(self, index: int) -> ProcessPoolExecutor:
        executor = self._executors[index]
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1, mp_context=self._context
            )
            self._executors[index] = executor
        return executor

    async def run(self, digest: str, text_provider: Callable[[], str],
                  run_kwargs: dict) -> dict:
        """Fan one run job out to its shard; returns the worker's dict.

        Ships the circuit text only when the shard has not seen the
        digest; a worker that lost it anyway (respawn, LRU eviction)
        answers with a need-text sentinel and the job retries once with
        the text attached.
        """
        loop = asyncio.get_running_loop()
        index = self.shard_index(digest)
        executor = self._executor(index)
        known = self._known[index]
        text = None
        if digest not in known:
            text = await loop.run_in_executor(None, text_provider)
        self.busy[index] += 1
        try:
            outcome = await loop.run_in_executor(
                executor, _worker_run, digest, text, run_kwargs
            )
            if outcome.get(_NEED_TEXT):
                known.discard(digest)
                self.metrics.inc("pool.reships")
                text = await loop.run_in_executor(None, text_provider)
                outcome = await loop.run_in_executor(
                    executor, _worker_run, digest, text, run_kwargs
                )
            known.add(digest)
            self.jobs_run[index] += 1
            self.metrics.inc("pool.jobs")
            return outcome
        finally:
            self.busy[index] -= 1

    def snapshot(self) -> dict:
        """The stats-endpoint view of the pool."""
        return {
            "shards": self.shards,
            "busy": list(self.busy),
            "jobs_run": list(self.jobs_run),
            "known_digests": [len(k) for k in self._known],
            "started": [e is not None for e in self._executors],
        }

    def shutdown(self) -> None:
        """Stop every started shard process."""
        for i, executor in enumerate(self._executors):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                self._executors[i] = None


__all__ = ["ShardPool", "WORKER_CACHE_SIZE"]
