"""The supervised, sharded simulation worker pool.

Simulation is CPU-bound Python + numpy, so run jobs leave the event
loop for a pool of **single-process shards**: each shard is its own
``ProcessPoolExecutor(max_workers=1)``, and a job's digest picks its
shard deterministically (``int(digest[:8], 16) % shards``).  Digest
affinity is the point -- every run of one circuit lands in the worker
that already holds it, so the worker-side caches do their job:

* a per-worker LRU of parsed Programs keyed by digest (the circuit text
  ships to a shard exactly once, not per job), and
* the per-circuit compiled-stream memo of
  :func:`repro.transform.inline.compile_flat`, warm after the first run.

Workers are plain ``spawn`` processes (no fork-under-threads hazards in
a threaded server): they import :mod:`repro` fresh and never touch the
server's memory, which is why seeded results are byte-identical no
matter which worker -- or which server lifetime -- produced them.

:class:`ShardedPool` *supervises* those shards.  A worker that dies
mid-job (SIGKILL, OOM, injected crash) surfaces as a broken executor;
the pool respawns the shard with bounded exponential backoff, requeues
the in-flight job, and retries it at most :attr:`ShardedPool.max_retries`
times -- safe, because the pipeline is deterministic, so a retried
seeded run returns the same bytes the lost one would have.  A
heartbeat task pings idle shards and respawns silently-dead ones before
the next job finds out.  A shard that keeps dying (more than
:attr:`ShardedPool.max_respawns` consecutive failures) is marked failed
and the pool raises :class:`~repro.service.faults.PoolUnavailable`,
which the job manager answers with an in-process fallback run -- the
service degrades, it does not fail.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from ..obs import core as _obs
from .faults import DELAY_S, FaultPlan, InjectedFault, PoolUnavailable
from .metrics import ServiceMetrics
from .registry import ServiceError

#: Per-worker parsed-Program LRU size (circuits, not gates).
WORKER_CACHE_SIZE = 32

#: Sentinel payload a worker returns when it does not hold the digest
#: (fresh worker, LRU eviction, crashed-and-respawned process) and the
#: call did not ship the circuit text; the server retries with text.
_NEED_TEXT = "_need_text"

# -- worker-side (runs in the spawned process) ------------------------------

_WORKER_PROGRAMS: "OrderedDict[str, object]" = OrderedDict()

_WORKER_FAULTS = FaultPlan()


def _worker_init(fault_spec: str, fault_seed: int) -> None:
    """Executor initializer: arm the worker's own fault schedule.

    Each worker incarnation replays the schedule from arrival 0, so a
    fixed seed fully determines when (and whether) a worker crashes --
    including across respawns.
    """
    global _WORKER_FAULTS
    _WORKER_FAULTS = FaultPlan.parse(fault_spec, seed=fault_seed)


def _worker_ping() -> int:
    """Heartbeat probe: proves the worker process answers (returns pid).

    Deliberately outside the fault schedule -- the supervisor must
    trust its own detector.
    """
    return os.getpid()


def run_program_payload(program, run_kwargs: dict) -> dict:
    """Run one program and flatten the result to its JSON payload.

    The single run path shared by workers and the in-process
    degradation fallback, so both produce byte-identical payloads for
    one seeded job.
    """
    from .serialize import result_payload

    extra = {}
    if run_kwargs.get("batch") is not None:
        extra["batch"] = run_kwargs["batch"]
    result = program.run(
        run_kwargs.get("backend", "statevector"),
        shots=run_kwargs.get("shots"),
        seed=run_kwargs.get("seed"),
        in_values=run_kwargs.get("in_values"),
        **extra,
    )
    return result_payload(result)


def _worker_run(digest: str, text: str | None, run_kwargs: dict) -> dict:
    """Execute one run job inside a worker process.

    Returns a JSON/pickle-safe dict: the serialized
    :class:`~repro.backends.RunResult` payload plus worker provenance
    (pid, whether the program/compiled stream were already warm) that
    the stats endpoint and the cache tests read.

    The ``worker_exec`` injection point fires here: ``crash`` kills the
    process the way SIGKILL would (no cleanup, no exception crosses the
    pipe), anything else raises a picklable
    :class:`~repro.service.faults.InjectedFault` the supervisor retries.
    """
    import time

    from ..program import Program

    rule = _WORKER_FAULTS.fire("worker_exec")
    if rule is not None:
        if rule.mode == "delay":
            time.sleep(DELAY_S)
        elif rule.mode == "crash":
            os._exit(13)  # die like SIGKILL: no unwind, pipe just breaks
        else:
            raise InjectedFault(f"injected worker_exec:{rule.mode}")
    program = _WORKER_PROGRAMS.get(digest)
    program_warm = program is not None
    if program is None:
        if text is None:
            return {_NEED_TEXT: True}
        program = Program.loads(text, name=f"worker:{digest[:12]}")
        program.bcircuit  # parse now: steady-state runs are replay-only
        _WORKER_PROGRAMS[digest] = program
        _WORKER_PROGRAMS.move_to_end(digest)
        while len(_WORKER_PROGRAMS) > WORKER_CACHE_SIZE:
            _WORKER_PROGRAMS.popitem(last=False)
    else:
        _WORKER_PROGRAMS.move_to_end(digest)
    stream_warm = getattr(program.bcircuit, "_compiled_flat", None) is not None
    return {
        "payload": run_program_payload(program, run_kwargs),
        "worker": {
            "pid": os.getpid(),
            "program_warm": program_warm,
            "stream_warm": stream_warm,
        },
    }


# -- server-side ------------------------------------------------------------


class ShardedPool:
    """Digest-affine pool of supervised single-worker process shards.

    Crash handling is three nested safety nets, cheapest first:

    1. **Retry** -- a failed attempt (broken executor, injected ipc
       fault) requeues the job on the same shard, up to *max_retries*
       times (``worker.retries``).
    2. **Respawn** -- a broken executor is torn down and respawned with
       exponential backoff (``worker.respawns``); the shard's shipped-
       digest set is cleared so circuit text ships again.
    3. **Give up per shard** -- more than *max_respawns* consecutive
       failures marks the shard failed (``worker.shards_failed``) and
       jobs for it raise :class:`PoolUnavailable`, the job manager's
       cue to run in-process instead.

    A background heartbeat pings idle started shards every *heartbeat*
    seconds and routes failures through the same respawn path, so a
    worker SIGKILLed *between* jobs is already replaced when the next
    job arrives.
    """

    def __init__(self, metrics: ServiceMetrics, shards: int = 2, *,
                 faults: FaultPlan | None = None, max_retries: int = 3,
                 max_respawns: int = 5, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, heartbeat: float = 5.0):
        if shards < 1:
            raise ServiceError("worker pool needs at least one shard")
        self.metrics = metrics
        self.shards = shards
        self.faults = faults or FaultPlan()
        self.max_retries = max_retries
        self.max_respawns = max_respawns
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heartbeat = heartbeat
        self._context = multiprocessing.get_context("spawn")
        self._executors: list[ProcessPoolExecutor | None] = [None] * shards
        #: Digests each shard has been shipped (so text goes over once).
        self._known: list[set[str]] = [set() for _ in range(shards)]
        #: Bumped on every (re)spawn; lets concurrent jobs that crashed
        #: on one incarnation agree on a single respawn.
        self._generation = [0] * shards
        #: Consecutive failed attempts per shard; any success resets.
        self._consecutive = [0] * shards
        self.busy = [0] * shards
        self.jobs_run = [0] * shards
        self.respawns = [0] * shards
        self.failed = [False] * shards
        self._heartbeat_task: asyncio.Task | None = None

    def shard_index(self, digest: str) -> int:
        """The deterministic shard owning *digest*."""
        return int(digest[:8], 16) % self.shards

    @property
    def degraded(self) -> bool:
        """Whether any shard has been given up on (healthz reports it)."""
        return any(self.failed)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Launch the heartbeat supervisor (needs a running loop)."""
        if self.heartbeat and self._heartbeat_task is None:
            self._heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name="repro-service-heartbeat"
            )

    def shutdown(self) -> None:
        """Stop the heartbeat and every started shard process."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        for i, executor in enumerate(self._executors):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                self._executors[i] = None

    # -- supervision --------------------------------------------------------

    def _executor(self, index: int) -> ProcessPoolExecutor:
        executor = self._executors[index]
        if executor is None:
            rule = self.faults.fire("worker_spawn")
            if rule is not None:
                self.metrics.inc("faults.injected")
                # delay is a no-op here (spawning is already slow and
                # this is the event-loop thread); everything else is a
                # failed spawn the retry loop handles.
                if rule.mode != "delay":
                    raise InjectedFault(f"injected worker_spawn:{rule.mode}")
            executor = ProcessPoolExecutor(
                max_workers=1, mp_context=self._context,
                initializer=_worker_init,
                initargs=(self.faults.spec(), self.faults.seed),
            )
            self._executors[index] = executor
            self._generation[index] += 1
        return executor

    def _note_failure(self, index: int) -> None:
        """Record one failed attempt; give the shard up past the budget."""
        self._consecutive[index] += 1
        if self._consecutive[index] > self.max_respawns:
            if not self.failed[index]:
                self.failed[index] = True
                self.metrics.inc("worker.shards_failed")
            raise PoolUnavailable(
                f"shard {index} failed {self._consecutive[index]} "
                f"consecutive attempts; giving it up"
            )

    async def _respawn(self, index: int, generation: int,
                       reason: str) -> None:
        """Replace shard *index*'s process (once per broken incarnation).

        Concurrent jobs that all crashed on generation *g* funnel here;
        only the first finds the generation unchanged and pays the
        teardown + backoff, the rest return immediately and retry
        against the fresh incarnation.
        """
        if self._generation[index] != generation:
            return  # a sibling already respawned this incarnation
        executor = self._executors[index]
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._executors[index] = None
        self._generation[index] += 1
        self._known[index].clear()
        self.respawns[index] += 1
        self.metrics.inc("worker.respawns")
        if _obs.ENABLED:
            _obs.add(f"service.worker.respawn.{reason}", 1)
        self._note_failure(index)
        backoff = min(
            self.backoff_base * 2 ** (self._consecutive[index] - 1),
            self.backoff_cap,
        )
        await asyncio.sleep(backoff)

    async def _heartbeat_loop(self) -> None:
        """Ping idle started shards; respawn the ones that stop answering."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.heartbeat)
            for index in range(self.shards):
                executor = self._executors[index]
                if (executor is None or self.failed[index]
                        or self.busy[index]):
                    continue  # cold, given-up, or legitimately working
                generation = self._generation[index]
                try:
                    await asyncio.wait_for(
                        loop.run_in_executor(executor, _worker_ping),
                        timeout=max(1.0, self.heartbeat),
                    )
                    self.metrics.inc("worker.heartbeats")
                except asyncio.TimeoutError:
                    if self.busy[index]:
                        continue  # a job arrived mid-ping; not a hang
                    self.metrics.inc("worker.heartbeat_failures")
                    await self._try_respawn(index, generation)
                except Exception:  # noqa: BLE001 - dead/broken executor
                    self.metrics.inc("worker.heartbeat_failures")
                    await self._try_respawn(index, generation)

    async def _try_respawn(self, index: int, generation: int) -> None:
        try:
            await self._respawn(index, generation, "heartbeat")
        except PoolUnavailable:
            pass  # shard marked failed; jobs will degrade gracefully

    async def _fire_ipc(self, point: str) -> None:
        """Fire a server-side ipc injection point (delay or raise)."""
        rule = self.faults.fire(point)
        if rule is None:
            return
        self.metrics.inc("faults.injected")
        if rule.mode == "delay":
            await asyncio.sleep(DELAY_S)
        else:
            raise InjectedFault(f"injected {point}:{rule.mode}")

    # -- job execution ------------------------------------------------------

    async def run(self, digest: str, text_provider: Callable[[], str],
                  run_kwargs: dict) -> dict:
        """Fan one run job out to its shard; returns the worker's dict.

        Ships the circuit text only when the shard has not seen the
        digest; a worker that lost it anyway (respawn, LRU eviction)
        answers with a need-text sentinel and the attempt retries once
        with the text attached.  A crashed worker or injected ipc fault
        requeues the whole attempt (respawning first when the process
        died), at most :attr:`max_retries` times, before the pool
        declares itself unavailable for this job.
        """
        index = self.shard_index(digest)
        if self.failed[index]:
            raise PoolUnavailable(f"shard {index} is marked failed")
        self.busy[index] += 1
        try:
            last_error: BaseException | None = None
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self.metrics.inc("worker.retries")
                generation = self._generation[index]
                try:
                    outcome = await self._attempt(
                        index, digest, text_provider, run_kwargs
                    )
                except BrokenProcessPool as exc:
                    last_error = exc
                    self.metrics.inc("worker.crashes")
                    await self._respawn(index, generation, "crash")
                    continue
                except InjectedFault as exc:
                    last_error = exc
                    self._note_failure(index)
                    continue
                self._consecutive[index] = 0
                self.jobs_run[index] += 1
                self.metrics.inc("pool.jobs")
                return outcome
            raise PoolUnavailable(
                f"shard {index}: job still failing after "
                f"{self.max_retries} retries ({last_error})"
            )
        finally:
            self.busy[index] -= 1

    async def _attempt(self, index: int, digest: str,
                       text_provider: Callable[[], str],
                       run_kwargs: dict) -> dict:
        """One dispatch attempt against the shard's current incarnation."""
        loop = asyncio.get_running_loop()
        executor = self._executor(index)
        known = self._known[index]
        text = None
        if digest not in known:
            text = await loop.run_in_executor(None, text_provider)
        await self._fire_ipc("ipc_send")
        outcome = await loop.run_in_executor(
            executor, _worker_run, digest, text, run_kwargs
        )
        if outcome.get(_NEED_TEXT):
            known.discard(digest)
            self.metrics.inc("pool.reships")
            text = await loop.run_in_executor(None, text_provider)
            outcome = await loop.run_in_executor(
                executor, _worker_run, digest, text, run_kwargs
            )
        await self._fire_ipc("ipc_recv")
        known.add(digest)
        return outcome

    def snapshot(self) -> dict:
        """The stats-endpoint view of the pool."""
        return {
            "shards": self.shards,
            "busy": list(self.busy),
            "jobs_run": list(self.jobs_run),
            "known_digests": [len(k) for k in self._known],
            "started": [e is not None for e in self._executors],
            "respawns": list(self.respawns),
            "failed": list(self.failed),
            "degraded": self.degraded,
        }


#: Backward-compatible alias (the pre-supervision class name).
ShardPool = ShardedPool

__all__ = ["ShardPool", "ShardedPool", "WORKER_CACHE_SIZE",
           "run_program_payload"]
