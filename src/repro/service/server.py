"""The compile-service HTTP server and the ``repro-serve`` entry point.

A single-process asyncio server speaking plain HTTP/1.1 + JSON over
stdlib streams -- no web framework, no new dependencies.  The event loop
owns admission, the job table, and the content-addressed cache; compiles
run in a thread off the loop, simulations fan out to spawned worker
processes (:mod:`repro.service.workers`).  Endpoints:

========================== ================================================
``GET /v1/healthz``         liveness, health state (ok|degraded|draining)
``GET /v1/programs``        registered program families and their params
``GET /v1/stats``           counters, latency percentiles, cache + pool
``GET /v1/profile``         live obs span/counter totals (telemetry on)
``POST /v1/jobs``           submit a job; ``"sync": true`` waits inline
``GET /v1/jobs/<id>``       poll job status
``GET /v1/jobs/<id>/result`` fetch the result payload (chunked if large)
``DELETE /v1/jobs/<id>``    cancel a queued/running job
========================== ================================================

Responses are canonical JSON (sorted keys, minimal separators), so two
servers answering the same seeded run produce byte-identical bodies --
the restart-determinism tests diff raw bytes.  Bodies past 64 KiB go
out with chunked transfer-encoding so a huge statevector or QASM dump
never sits fully buffered twice.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time

from .. import __version__
from ..obs import core as _obs
from .cache import CompileCache
from .digest import canonical_json
from .faults import DELAY_S, FaultPlan
from .jobs import JobManager
from .metrics import ServiceMetrics
from .registry import ACTIONS, TRANSFORMS, ServiceError, list_programs
from .workers import ShardedPool

#: Largest request body accepted (circuit submissions), bytes.
MAX_BODY = 8 * 1024 * 1024

#: Response bodies past this size stream out in chunks of this size.
CHUNK_SIZE = 64 * 1024


class ServiceServer:
    """The assembled service: cache + pool + jobs behind an HTTP front.

    ``port=0`` binds an ephemeral port (tests); the bound address is on
    :attr:`host` / :attr:`port` after :meth:`start`.  Unless *telemetry*
    is off, the server's whole lifetime runs inside one
    :func:`repro.obs.capture` session, so ``GET /v1/profile`` (and a
    shutdown trace export) see every pipeline span the traffic caused.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 shards: int = 2, max_pending: int = 64, max_running: int = 8,
                 job_timeout: float = 120.0, cache_size: int = 128,
                 cache_dir: str | None = None, telemetry: bool = True,
                 faults: FaultPlan | None = None, heartbeat: float = 5.0,
                 max_retries: int = 3, max_respawns: int = 5,
                 backoff_base: float = 0.05):
        self.host = host
        self.port = port
        self.telemetry = telemetry
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.metrics = ServiceMetrics()
        self.cache = CompileCache(
            self.metrics, maxsize=cache_size, cache_dir=cache_dir,
            faults=self.faults,
        )
        self.pool = ShardedPool(
            self.metrics, shards=shards, faults=self.faults,
            max_retries=max_retries, max_respawns=max_respawns,
            backoff_base=backoff_base, heartbeat=heartbeat,
        )
        self.jobs = JobManager(
            self.cache, self.pool, self.metrics, max_pending=max_pending,
            max_running=max_running, job_timeout=job_timeout,
        )
        self.recorder: _obs.Recorder | None = None
        self._capture = None
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether a drain has begun (new submissions answer 503)."""
        return self.jobs.draining

    def health_state(self) -> str:
        """The service's coarse state: ``ok``, ``degraded``, ``draining``.

        ``degraded`` means a worker shard has been given up on and run
        jobs are served by the in-process fallback -- correct answers,
        reduced throughput.  ``draining`` means running jobs are being
        finished off and new submissions are refused.
        """
        if self.draining:
            return "draining"
        if self.pool.degraded:
            return "degraded"
        return "ok"

    async def start(self) -> None:
        """Bind and start serving (returns once listening)."""
        if self.telemetry and self._capture is None:
            self._capture = _obs.capture()
            self.recorder = self._capture.__enter__()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.pool.start()

    async def stop(self) -> None:
        """Stop listening, cancel live jobs, shut the worker pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for job in list(self.jobs.jobs.values()):
            if not job.done and job.task is not None:
                job.task.cancel()
        await asyncio.sleep(0)
        self.pool.shutdown()
        if self._capture is not None:
            self._capture.__exit__(None, None, None)
            self._capture = None

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``repro-serve`` main loop)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    def begin_drain(self) -> None:
        """Flip into draining mode: finish running jobs, 503 new ones."""
        if not self.jobs.draining:
            self.jobs.draining = True
            self.metrics.inc("drains")

    async def drain(self, grace: float = 30.0) -> None:
        """Graceful shutdown: drain, wait for live jobs, stop serving.

        Runs on SIGTERM.  Already-admitted jobs get up to *grace*
        seconds to finish (clients polling them still get answers);
        new submissions 503 immediately.  Closing the listener ends
        :meth:`serve_forever`, whose caller runs :meth:`stop`.
        """
        self.begin_drain()
        deadline = time.monotonic() + grace
        while self.jobs.active and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await reader.readline()
                if not request:
                    break
                parts = request.decode("latin-1").split()
                if len(parts) != 3:
                    await self._send(writer, 400, {"error": "bad request"},
                                     keep_alive=False)
                    break
                method, target, _version = parts
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                if length > MAX_BODY:
                    await self._send(
                        writer, 413,
                        {"error": f"body exceeds {MAX_BODY} bytes"},
                        keep_alive=False,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                self.metrics.inc("http.requests")
                status, payload, extra = await self._route(
                    method, target.split("?", 1)[0], body
                )
                await self._send(writer, status, payload, keep_alive, extra)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass  # connection teardown during server shutdown

    _STATUS_TEXT = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
        429: "Too Many Requests", 500: "Internal Server Error",
        503: "Service Unavailable", 504: "Gateway Timeout",
    }

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    payload: dict, keep_alive: bool = True,
                    extra: dict | None = None) -> None:
        body = canonical_json(payload).encode()
        reason = self._STATUS_TEXT.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json"]
        for key, value in (extra or {}).items():
            head.append(f"{key}: {value}")
        head.append(
            f"Connection: {'keep-alive' if keep_alive else 'close'}"
        )
        chunked = len(body) > CHUNK_SIZE
        if chunked:
            head.append("Transfer-Encoding: chunked")
            self.metrics.inc("http.chunked_responses")
        else:
            head.append(f"Content-Length: {len(body)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if chunked:
            for start in range(0, len(body), CHUNK_SIZE):
                chunk = body[start:start + CHUNK_SIZE]
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk)
                writer.write(b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
        else:
            writer.write(body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict, dict | None]:
        try:
            if path == "/v1/healthz" and method == "GET":
                state = self.health_state()
                return 200, {
                    "ok": state != "draining",
                    "status": state,
                    "version": __version__,
                    "uptime_s": round(time.time() - self.metrics.started, 3),
                }, None
            if path == "/v1/programs" and method == "GET":
                return 200, {
                    "programs": list_programs(),
                    "actions": list(ACTIONS),
                    "transforms": [t for t in TRANSFORMS if t is not None],
                }, None
            if path == "/v1/stats" and method == "GET":
                return 200, self._stats(), None
            if path == "/v1/profile" and method == "GET":
                return self._profile()
            if path == "/v1/jobs" and method == "POST":
                return await self._submit(body)
            if path.startswith("/v1/jobs/"):
                return await self._job_route(method, path)
            return 404, {"error": f"no such endpoint: {method} {path}"}, None
        except ServiceError as exc:
            extra = ({"Retry-After": "1"} if exc.status in (429, 503)
                     else None)
            return exc.status, {"error": str(exc)}, extra
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            self.metrics.inc("http.errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None

    def _stats(self) -> dict:
        stats = {
            "health": self.health_state(),
            "service": self.metrics.snapshot(),
            "cache": {
                "entries": len(self.cache.entries),
                "maxsize": self.cache.maxsize,
                "pending": len(self.cache._pending),
                "disk": self.cache.cache_dir is not None,
            },
            "pool": self.pool.snapshot(),
            "jobs": {
                "active": self.jobs.active,
                "kept": len(self.jobs.jobs),
                "max_pending": self.jobs.max_pending,
            },
        }
        if self.faults.active():
            stats["faults"] = self.faults.describe()
        return stats

    def _profile(self) -> tuple[int, dict, None]:
        rec = _obs.current_recorder()
        if rec is None:
            return 404, {"error": "telemetry is disabled on this server"}, None
        spans = [
            {"path": path, "calls": calls,
             "total_us": round(total_us, 1), "rss_kb": rss_kb}
            for path, (calls, total_us, rss_kb) in rec.span_totals().items()
        ]
        return 200, {
            "counters": dict(sorted(rec.counters.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(rec.histograms.items())
            },
            "spans": spans,
        }, None

    async def _submit(self, body: bytes) -> tuple[int, dict, dict | None]:
        try:
            spec = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(spec, dict):
            raise ServiceError("request body must be a JSON object")
        sync = bool(spec.pop("sync", False))
        rule = self.faults.fire("job_admission")
        if rule is not None:
            self.metrics.inc("faults.injected")
            if rule.mode == "delay":
                await asyncio.sleep(DELAY_S)
            elif rule.mode == "crash":
                raise ServiceError("injected admission crash; retry",
                                   status=503)
            else:  # reject / corrupt both shed load retryably
                raise ServiceError("injected admission rejection; retry",
                                   status=429)
        job = self.jobs.submit(spec)
        if not sync:
            status = job.as_status()
            status["links"] = {
                "status": f"/v1/jobs/{job.id}",
                "result": f"/v1/jobs/{job.id}/result",
            }
            return 202, status, None
        await self.jobs.wait(job)
        if job.state == "done":
            return 200, {"job": job.as_status(), "result": job.result}, None
        return job.error_status, {
            "error": job.error or job.state, "job": job.as_status(),
        }, None

    async def _job_route(self, method: str,
                         path: str) -> tuple[int, dict, dict | None]:
        rest = path[len("/v1/jobs/"):]
        job_id, _, tail = rest.partition("/")
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, None
        if method == "DELETE" and not tail:
            self.jobs.cancel(job_id)
            await asyncio.sleep(0)  # let the cancellation land
            return 200, job.as_status(), None
        if method != "GET":
            return 405, {"error": f"{method} not allowed here"}, None
        if tail == "":
            return 200, job.as_status(), None
        if tail == "result":
            if job.state in ("queued", "running"):
                return 409, {
                    "error": f"job {job_id} is {job.state}; poll status",
                    "job": job.as_status(),
                }, None
            if job.state != "done":
                return job.error_status, {
                    "error": job.error or job.state,
                    "job": job.as_status(),
                }, None
            return 200, {"job": job.as_status(), "result": job.result}, None
        return 404, {"error": f"no such endpoint: GET {path}"}, None


# ---------------------------------------------------------------------------
# The ``repro-serve`` console entry point
# ---------------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the circuit-compilation service over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8766,
                        help="bind port; 0 picks one (default 8766)")
    parser.add_argument("--shards", type=int, default=2,
                        help="simulation worker processes (default 2)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="queued+running job ceiling before 429s")
    parser.add_argument("--max-running", type=int, default=8,
                        help="jobs executing concurrently (default 8)")
    parser.add_argument("--job-timeout", type=float, default=120.0,
                        help="per-job wall-clock budget, seconds")
    parser.add_argument("--cache-size", type=int, default=128,
                        help="compiled circuits kept in memory")
    parser.add_argument("--cache-dir", default=None,
                        help="persist compiled circuits here (warm restarts)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="skip the lifetime obs capture session")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace of the session on exit")
    parser.add_argument("--inject", action="append", default=[],
                        metavar="SPEC",
                        help="inject faults: point:mode@rate[,...] "
                             "(e.g. worker_exec:crash@0.2); repeatable; "
                             "defaults to $REPRO_FAULTS")
    parser.add_argument("--inject-seed", type=int, default=None,
                        metavar="N",
                        help="seed for the deterministic fault schedule "
                             "(defaults to $REPRO_FAULTS_SEED or 0)")
    parser.add_argument("--heartbeat", type=float, default=5.0,
                        help="worker heartbeat interval, seconds; "
                             "0 disables (default 5)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds running jobs get to finish after "
                             "SIGTERM (default 30)")
    return parser


async def _serve(server: ServiceServer, drain_grace: float = 30.0) -> None:
    await server.start()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(
            signal.SIGTERM,
            lambda: asyncio.ensure_future(server.drain(drain_grace)),
        )
    except NotImplementedError:  # pragma: no cover - non-POSIX loops
        pass
    print(f"repro-serve: listening on http://{server.host}:{server.port} "
          f"(shards={server.pool.shards}, cache={server.cache.maxsize}"
          + (f", faults={server.faults.spec()}@seed{server.faults.seed}"
             if server.faults.active() else "") + ")",
          file=sys.stderr, flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if server.draining:
            print("repro-serve: drained, shutting down", file=sys.stderr)
        await server.stop()


def main(argv: list[str] | None = None) -> int:
    """Run the server until interrupted (the console-script target)."""
    args = _parser().parse_args(argv)
    if args.inject or args.inject_seed is not None:
        env_plan = FaultPlan.from_env()
        faults = FaultPlan.parse(
            ",".join(args.inject) or env_plan.spec(),
            seed=(args.inject_seed if args.inject_seed is not None
                  else env_plan.seed),
        )
    else:
        faults = FaultPlan.from_env()
    server = ServiceServer(
        args.host, args.port, shards=args.shards,
        max_pending=args.max_pending, max_running=args.max_running,
        job_timeout=args.job_timeout, cache_size=args.cache_size,
        cache_dir=args.cache_dir, telemetry=not args.no_telemetry,
        faults=faults, heartbeat=args.heartbeat,
    )
    try:
        asyncio.run(_serve(server, drain_grace=args.drain_grace))
    except KeyboardInterrupt:
        print("repro-serve: shutting down", file=sys.stderr)
    if args.trace_out and server.recorder is not None:
        from ..obs import dump_chrome_trace

        dump_chrome_trace(server.recorder, args.trace_out)
        print(f"repro-serve: trace written to {args.trace_out}",
              file=sys.stderr)
    return 0


__all__ = ["CHUNK_SIZE", "MAX_BODY", "ServiceServer", "main"]

if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
