"""Deterministic fault injection for the compile service.

Production failures -- crashed workers, corrupted cache files, flaky
pipes, overload -- arrive at random, which makes "the service survives
them" an untestable claim.  This module turns those failures into a
**seedable, deterministic schedule**: every place the service touches
an unreliable resource declares a named *injection point*, and a
:class:`FaultPlan` decides, purely from ``(seed, point, mode, n)`` for
the *n*-th arrival at that point, whether the fault fires.  The same
seed therefore produces the same fault schedule on every run -- the
whole chaos matrix is an ordinary, reproducible test.

Injection points (see ``docs/service.md`` for the failure-mode table):

=================== ======================================================
``worker_spawn``     creating a shard's worker process
``worker_exec``      inside the worker, around one run job
``ipc_send``         shipping a job to a shard
``ipc_recv``         receiving a shard's result
``disk_read``        loading a ``.quip`` entry from the disk cache
``disk_write``       persisting a ``.quip`` entry to the disk cache
``job_admission``    admitting one submitted job
=================== ======================================================

Modes: ``crash`` (the resource dies: process exit, raised fault, lost
result), ``corrupt`` (the payload survives but its bytes are wrong),
``delay`` (the operation stalls for :data:`DELAY_S`), and ``reject``
(admission refuses the job with a retryable status).

A plan is spelled ``point:mode@rate[,point:mode@rate...]`` where
*rate* is a firing probability in ``[0, 1]`` or the word ``once``
(fire exactly on the first arrival) -- e.g.
``worker_exec:crash@0.2,disk_read:corrupt@0.1``.  Plans come from
``repro-serve --inject`` or the ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``
environment variables (which is how spawned worker processes inherit
the schedule).
"""

from __future__ import annotations

import hashlib
import os
import threading

from .registry import ServiceError

#: Injection points a plan may target.
POINTS = ("worker_spawn", "worker_exec", "ipc_send", "ipc_recv",
          "disk_read", "disk_write", "job_admission")

#: Fault modes a rule may request.
MODES = ("crash", "corrupt", "delay", "reject")

#: How long a ``delay`` fault stalls, seconds (small on purpose: chaos
#: runs exercise ordering and timeouts, not wall-clock patience).
DELAY_S = 0.02

#: Domain-separation salt folded into every firing decision, so a
#: fault schedule can never accidentally correlate with any other
#: seeded stream in the system (shot sampling, jitter, ...).
_SALT = "repro-fault-v1"


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never raised in clean runs).

    Raised server-side at ipc/spawn points and worker-side for
    ``worker_exec:crash`` alternatives; it pickles cleanly across the
    process boundary (single message arg), so the supervisor can catch
    it by type and retry.
    """


class PoolUnavailable(RuntimeError):
    """The worker pool cannot serve a job (crash loop, spawn failure).

    The signal for graceful degradation: the job manager catches this
    and falls back to an in-process synchronous run, which -- the
    pipeline being deterministic -- yields byte-identical results.
    """


class FaultRule:
    """One parsed ``point:mode@rate`` clause of a fault plan."""

    __slots__ = ("point", "mode", "rate", "once")

    def __init__(self, point: str, mode: str, rate: float, once: bool):
        self.point = point
        self.mode = mode
        self.rate = rate
        self.once = once

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = "once" if self.once else f"{self.rate:g}"
        return f"{self.point}:{self.mode}@{rate}"


def _decision(seed: int, point: str, mode: str, n: int) -> float:
    """The deterministic uniform draw for the *n*-th arrival at a point.

    A hash of ``(salt, seed, point, mode, n)`` mapped to ``[0, 1)``:
    independent of thread interleaving, process, and platform, so a
    fault schedule replays exactly under a fixed seed.
    """
    digest = hashlib.sha256(
        f"{_SALT}:{seed}:{point}:{mode}:{n}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultPlan:
    """A seeded schedule of injected faults over named points.

    The plan keeps one arrival counter per point; :meth:`fire` advances
    it and returns the rule that fired (or ``None``).  Counters are
    lock-protected: compile builds fire ``disk_*`` from executor
    threads while the event loop fires ``job_admission``.
    """

    def __init__(self, rules: list[FaultRule] | None = None, seed: int = 0):
        self.rules = list(rules or [])
        self.seed = seed
        self._counts: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, spec: str | None, seed: int = 0) -> "FaultPlan":
        """Parse ``point:mode@rate[,...]`` (empty/None -> inert plan)."""
        rules: list[FaultRule] = []
        for clause in (spec or "").replace(";", ",").split(","):
            clause = clause.strip()
            if not clause:
                continue
            try:
                point, _, rest = clause.partition(":")
                mode, _, rate_text = rest.partition("@")
                point, mode = point.strip(), mode.strip()
                rate_text = rate_text.strip() or "1"
            except ValueError:  # pragma: no cover - partition never raises
                raise ServiceError(f"bad fault clause {clause!r}")
            if point not in POINTS:
                raise ServiceError(
                    f"unknown fault point {point!r}; "
                    f"one of {', '.join(POINTS)}"
                )
            if mode not in MODES:
                raise ServiceError(
                    f"unknown fault mode {mode!r}; one of {', '.join(MODES)}"
                )
            once = rate_text == "once"
            if once:
                rate = 1.0
            else:
                try:
                    rate = float(rate_text)
                except ValueError:
                    raise ServiceError(
                        f"fault rate {rate_text!r} is not a number or 'once'"
                    ) from None
                if not 0.0 <= rate <= 1.0:
                    raise ServiceError(
                        f"fault rate must be in [0, 1], got {rate!r}"
                    )
            rules.append(FaultRule(point, mode, rate, once))
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan spelled by ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``."""
        environ = os.environ if environ is None else environ
        spec = environ.get("REPRO_FAULTS", "")
        try:
            seed = int(environ.get("REPRO_FAULTS_SEED", "0") or "0")
        except ValueError:
            raise ServiceError("REPRO_FAULTS_SEED must be an integer")
        return cls.parse(spec, seed=seed)

    def spec(self) -> str:
        """The plan re-spelled in parseable ``--inject`` syntax."""
        return ",".join(repr(rule) for rule in self.rules)

    # -- firing -------------------------------------------------------------

    def active(self) -> bool:
        """Whether any rule exists (inert plans cost one truth test)."""
        return bool(self.rules)

    def fire(self, point: str) -> FaultRule | None:
        """Advance *point*'s arrival counter; return the rule that fired.

        Rules are evaluated in plan order; the first that fires wins.
        Call sites interpret the returned rule's mode (raise, corrupt,
        sleep, reject) -- the plan only decides *whether*.
        """
        if not self.rules:
            return None
        with self._lock:
            n = self._counts.get(point, 0)
            self._counts[point] = n + 1
            for rule in self.rules:
                if rule.point != point:
                    continue
                if rule.once:
                    fired = n == 0
                else:
                    fired = _decision(self.seed, point, rule.mode, n) < rule.rate
                if fired:
                    key = f"{point}.{rule.mode}"
                    self._fired[key] = self._fired.get(key, 0) + 1
                    return rule
        return None

    def corrupt_text(self, text: str, point: str = "disk_read") -> str:
        """Deterministically damage *text* (one flipped character).

        The position comes from the same seeded hash family as the
        firing decisions, so a corrupt fault always produces the same
        corrupt bytes -- corruption-recovery tests diff exact files.
        """
        if not text:
            return "\x00"
        n = self._counts.get(point, 0)
        pos = int(_decision(self.seed, point, "corrupt-pos", n) * len(text))
        pos = min(pos, len(text) - 1)
        flipped = chr(ord(text[pos]) ^ 0x01)
        return text[:pos] + flipped + text[pos + 1:]

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        """The stats-endpoint view: spec, seed, arrivals, fires."""
        with self._lock:
            return {
                "spec": self.spec(),
                "seed": self.seed,
                "arrivals": dict(sorted(self._counts.items())),
                "fired": dict(sorted(self._fired.items())),
            }


__all__ = [
    "DELAY_S",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "MODES",
    "POINTS",
    "PoolUnavailable",
]
