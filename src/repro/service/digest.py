"""Canonical serialization and content digests for service requests.

The compile cache of :mod:`repro.service` is *content-addressed*: the
key is a SHA-256 over the canonical JSON of everything that determines
the compiled circuit -- the registered program name, its fully-defaulted
parameters, and the transform/optimize chain -- or, for raw circuit
submissions, the interchange text itself.  Two clients submitting the
same work therefore hash to the same key no matter how they spelled the
request (key order, omitted defaults, int-vs-float literals), which is
what makes "hot circuits compile once fleet-wide" true.

The JSON canonicalization here (sorted keys, no whitespace, NaN
rejected) is also used for every response body the server emits, so a
seeded run's result is **byte-identical** across workers, server
restarts, and machines.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(obj: object) -> str:
    """Serialize *obj* to canonical JSON: sorted keys, no whitespace.

    The one serialization used both for digest inputs and for response
    bodies, so equality of payloads is equality of bytes.  Rejects NaN
    and infinities (``allow_nan=False``): they have no canonical JSON
    spelling and would silently break byte-level determinism.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def digest_text(text: str, domain: str = "text") -> str:
    """Hex SHA-256 of *text* under a domain prefix.

    The *domain* prefix keeps different key spaces (request specs, raw
    circuit text, program lineages) from ever colliding with each other.
    """
    return hashlib.sha256(f"{domain}:{text}".encode()).hexdigest()


def spec_digest(cspec: dict) -> str:
    """The content-address of one canonical compile spec.

    *cspec* must already be canonicalized (defaults applied, unknown
    keys rejected) by :func:`repro.service.registry.canonical_spec`;
    this function only fixes the serialization and hashes it.
    """
    return digest_text(canonical_json(cspec), domain="spec")


__all__ = ["canonical_json", "digest_text", "spec_digest"]
