"""The service's program registry and request-spec canonicalization.

Clients cannot ship Python callables over HTTP, so the compile service
works from two kinds of submission:

* ``{"program": <name>, "params": {...}}`` -- a server-side registered
  circuit family (the paper's algorithm generators ship registered out
  of the box; deployments add their own with :func:`register_program`).
* ``{"circuit": <quipper-ascii>}`` -- raw interchange text, parsed by
  :func:`repro.io.loads`; content-addressed by the text itself.

Either way the optional ``"transform"`` (gate base) and ``"optimize"``
(peephole pass chain) keys extend the pipeline.  Everything that
determines the compiled circuit is folded into one **canonical spec**
(defaults applied, types coerced, unknown keys rejected) whose digest is
the cache key -- so ``{"n": 4}`` and ``{"n": 4, "s": 1}`` are the same
BWT circuit and compile once between them.
"""

from __future__ import annotations

from typing import Callable

from ..core.errors import QuipperError
from ..program import Program


class ServiceError(QuipperError):
    """A request the service must refuse; carries the HTTP status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class ParamSpec:
    """One declared parameter of a registered program family."""

    __slots__ = ("name", "kind", "default", "choices", "minimum")

    def __init__(self, name: str, kind: str, default, *,
                 choices: tuple | None = None, minimum=None):
        self.name = name
        self.kind = kind  # "int" | "float" | "str"
        self.default = default
        self.choices = choices
        self.minimum = minimum

    def coerce(self, value):
        """Validate and normalize one submitted value (raises 400)."""
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ServiceError(
                    f"parameter {self.name!r} must be an integer, "
                    f"got {value!r}"
                )
            if isinstance(value, float):
                if not value.is_integer():
                    raise ServiceError(
                        f"parameter {self.name!r} must be an integer, "
                        f"got {value!r}"
                    )
                value = int(value)
        elif self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ServiceError(
                    f"parameter {self.name!r} must be a number, got {value!r}"
                )
            value = float(value)
        elif self.kind == "str":
            if not isinstance(value, str):
                raise ServiceError(
                    f"parameter {self.name!r} must be a string, got {value!r}"
                )
        if self.choices is not None and value not in self.choices:
            raise ServiceError(
                f"parameter {self.name!r} must be one of {self.choices}, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ServiceError(
                f"parameter {self.name!r} must be >= {self.minimum}, "
                f"got {value!r}"
            )
        return value

    def describe(self) -> dict:
        """The JSON description shown by ``GET /v1/programs``."""
        info: dict = {"type": self.kind, "default": self.default}
        if self.choices is not None:
            info["choices"] = list(self.choices)
        if self.minimum is not None:
            info["minimum"] = self.minimum
        return info


class ProgramEntry:
    """A registered program family: metadata plus a Program factory."""

    __slots__ = ("name", "description", "params", "factory")

    def __init__(self, name: str, description: str,
                 params: tuple[ParamSpec, ...],
                 factory: Callable[[dict], Program]):
        self.name = name
        self.description = description
        self.params = params
        self.factory = factory


_PROGRAMS: dict[str, ProgramEntry] = {}

#: Transform specs the service accepts (the shared CLI gate bases).
TRANSFORMS = (None, "toffoli", "binary")

#: What ``"action"`` a job may request.
ACTIONS = ("compile", "count", "depth", "t_depth", "width", "resources",
           "ascii", "quipper", "qasm", "run")


def register_program(name: str, description: str,
                     params: tuple[ParamSpec, ...] = ()):
    """Register a Program factory under a stable service name.

    The factory receives the fully-defaulted, validated parameter dict
    and must deterministically return the same circuit for the same
    parameters -- that determinism is what the content-addressed cache
    rides on.  Re-registering a name replaces the entry (tests).
    """

    def apply(factory: Callable[[dict], Program]):
        _PROGRAMS[name] = ProgramEntry(name, description, params, factory)
        return factory

    return apply


def list_programs() -> dict:
    """The ``GET /v1/programs`` payload: name -> description + params."""
    return {
        entry.name: {
            "description": entry.description,
            "params": {p.name: p.describe() for p in entry.params},
        }
        for entry in sorted(_PROGRAMS.values(), key=lambda e: e.name)
    }


def canonical_spec(spec: dict) -> dict:
    """Validate a submitted compile spec and normalize it for digesting.

    Returns a dict with exactly the keys that determine the compiled
    circuit: ``program`` + fully-defaulted ``params`` (or raw
    ``circuit`` text), ``transform``, and ``optimize``.  Everything else
    (action, run options, sync flag) is per-job, not per-circuit, and
    deliberately stays out of the cache key.
    """
    if not isinstance(spec, dict):
        raise ServiceError("request body must be a JSON object")
    program = spec.get("program")
    circuit = spec.get("circuit")
    if (program is None) == (circuit is None):
        raise ServiceError(
            "submit exactly one of 'program' (registered name) or "
            "'circuit' (Quipper-ASCII text)"
        )
    out: dict = {}
    if circuit is not None:
        if not isinstance(circuit, str) or not circuit.strip():
            raise ServiceError("'circuit' must be non-empty Quipper-ASCII")
        out["circuit"] = circuit
    else:
        entry = _PROGRAMS.get(program)
        if entry is None:
            known = ", ".join(sorted(_PROGRAMS)) or "none"
            raise ServiceError(
                f"unknown program {program!r}; registered: {known}",
                status=404,
            )
        raw = spec.get("params") or {}
        if not isinstance(raw, dict):
            raise ServiceError("'params' must be a JSON object")
        declared = {p.name: p for p in entry.params}
        unknown = set(raw) - set(declared)
        if unknown:
            raise ServiceError(
                f"unknown parameter(s) for {program!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        out["program"] = program
        out["params"] = {
            name: p.coerce(raw[name]) if name in raw else p.default
            for name, p in declared.items()
        }
    transform = spec.get("transform")
    if transform not in TRANSFORMS:
        raise ServiceError(
            f"'transform' must be one of {TRANSFORMS[1:]} or null, "
            f"got {transform!r}"
        )
    out["transform"] = transform
    optimize = spec.get("optimize", False)
    if isinstance(optimize, list):
        from ..optimize import PASS_REGISTRY

        bad = [p for p in optimize if p not in PASS_REGISTRY]
        if bad:
            raise ServiceError(
                f"unknown optimizer pass(es): {', '.join(map(str, bad))}; "
                f"known: {', '.join(sorted(PASS_REGISTRY))}"
            )
    elif not isinstance(optimize, bool):
        raise ServiceError(
            "'optimize' must be true, false, or a list of pass names"
        )
    out["optimize"] = optimize
    return out


def build_program(cspec: dict) -> Program:
    """Instantiate the (lazy) Program pipeline of a canonical spec."""
    if "circuit" in cspec:
        program = Program.loads(cspec["circuit"], name="submitted")
    else:
        entry = _PROGRAMS[cspec["program"]]
        program = entry.factory(cspec["params"])
    if cspec["transform"] is not None:
        program = program.transform(cspec["transform"])
    optimize = cspec["optimize"]
    if optimize is True:
        program = program.optimize()
    elif isinstance(optimize, list):
        program = program.optimize(*optimize)
    return program


# ---------------------------------------------------------------------------
# Built-in program families: the paper's generators, service-addressable
# ---------------------------------------------------------------------------


@register_program("bell", "Two-qubit Bell pair with measurement")
def _bell_factory(params: dict) -> Program:
    from ..core.qdata import qubit

    def bell(qc, a, b):
        qc.hadamard(a)
        qc.qnot(b, controls=a)
        return qc.measure((a, b))

    return Program.capture(bell, qubit, qubit, name="bell")


@register_program(
    "bwt", "Binary Welded Tree walk (paper Section 5.1)",
    (
        ParamSpec("n", "int", 4, minimum=1),
        ParamSpec("s", "int", 1, minimum=1),
        ParamSpec("t", "float", 0.1),
        ParamSpec("oracle", "str", "orthodox",
                  choices=("orthodox", "template")),
    ),
)
def _bwt_factory(params: dict) -> Program:
    from ..algorithms.bwt.main import bwt_program

    return bwt_program(
        params["n"], params["s"], params["t"], params["oracle"]
    )


@register_program(
    "tf", "Triangle Finding (paper Section 5.2)",
    (
        ParamSpec("part", "str", "full",
                  choices=("pow17", "mul", "qwsh", "oracle", "full")),
        ParamSpec("l", "int", 4, minimum=1),
        ParamSpec("n", "int", 3, minimum=1),
        ParamSpec("r", "int", 2, minimum=1),
        ParamSpec("oracle", "str", "orthodox",
                  choices=("orthodox", "simple")),
    ),
)
def _tf_factory(params: dict) -> Program:
    from ..algorithms.tf.main import part_program

    return part_program(
        params["part"], params["l"], params["n"], params["r"],
        params["oracle"],
    )


__all__ = [
    "ACTIONS",
    "ParamSpec",
    "ProgramEntry",
    "ServiceError",
    "TRANSFORMS",
    "build_program",
    "canonical_spec",
    "list_programs",
    "register_program",
]
