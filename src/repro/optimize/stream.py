"""StreamOptimizer: the peephole optimizer as a gate-stream stage.

The streaming counterpart of :func:`~repro.optimize.peephole.
optimize_bcircuit`: gates flow through a bounded sliding window
(:class:`~repro.optimize.peephole.PeepholeOptimizer`) on their way to
the downstream consumer, so optimization composes with the O(1)-memory
streaming surface -- ``prog.stream().optimize().count()`` never
materializes the main circuit.  Memory stays O(window), independent of
stream length, and the stage is safe under the builder's
``with_computed`` retention: retention buffering happens inside the
*producer* (:class:`~repro.core.stream.StreamingCirc`), strictly
upstream of this consumer, so replayed uncompute gates arrive as
ordinary stream elements.

Boxed subroutine bodies are optimized **once, on demand**, the first
time a ``BoxCall`` naming them arrives -- bodies the passes leave
untouched are reused (cached width preserved unless a transitive callee
was rewritten), the same identity-reuse discipline as
:class:`~repro.transform.pipeline.StreamTransformer`.
"""

from __future__ import annotations

import dataclasses

from ..core.circuit import Subroutine
from ..core.errors import QuipperError
from ..core.gates import BoxCall, Gate
from ..core.stream import StreamConsumer
from ..obs import core as _obs
from .passes import PeepholePass, body_safe_passes, resolve_passes
from .peephole import (
    DEFAULT_WINDOW,
    PeepholeOptimizer,
    _callees,
    optimize_gates_fixpoint,
    rebuilt_subroutine,
    width_fresh_clone,
)


class StreamOptimizer(StreamConsumer):
    """Push a gate stream through the peephole window, gate by gate.

    Wrap any downstream :class:`~repro.core.stream.StreamConsumer`::

        counter = StreamingCounter()
        replay_bcircuit(bc, StreamOptimizer((), counter))

    The main stream gets a single bounded-lookahead pass (O(window)
    memory); subroutine bodies, which are materialized by construction,
    are optimized to a fixpoint exactly like the materialized entry
    point, so streamed and materialized optimization agree on the
    namespace.
    """

    def __init__(self, passes: tuple[PeepholePass, ...] | None,
                 downstream: StreamConsumer, *,
                 window: int = DEFAULT_WINDOW):
        self.passes = resolve_passes(tuple(passes or ()))
        # Bodies may be invoked under controls: global-phase-only
        # elisions are disabled for them (same rule as the materialized
        # optimize_bcircuit).
        self.body_passes = body_safe_passes(self.passes)
        self.downstream = downstream
        self.window = window

    def begin(self, inputs, namespace) -> None:
        """Open the window; hand the downstream the live output namespace."""
        self.src_ns = namespace
        self.out_ns: dict[str, Subroutine] = {}
        #: name -> transitively-changed flag (None while in progress).
        self._state: dict[str, bool | None] = {}
        self.downstream.begin(inputs, self.out_ns)
        self._optimizer = PeepholeOptimizer(
            self.passes, window=self.window, sink=self.downstream.gate
        )

    def gate(self, gate: Gate) -> None:
        """Feed one streamed gate through the window (bodies on demand)."""
        if isinstance(gate, BoxCall):
            self._ensure(gate.name)
        self._optimizer.feed(gate)

    def _ensure(self, name: str) -> bool:
        """Optimize subroutine *name* (and its callees) into ``out_ns``.

        Returns whether the body -- or any transitive callee's body --
        was changed by the passes.
        """
        state = self._state
        if name in state:
            if state[name] is None:
                raise QuipperError(f"recursive subroutine {name!r}")
            return state[name]
        sub = self.src_ns.get(name)
        if sub is None:
            raise QuipperError(f"undefined subroutine {name!r}")
        state[name] = None  # cycle guard
        kid_changed = any(
            [self._ensure(callee) for callee in sorted(_callees(sub.circuit))]
        )
        new_gates = optimize_gates_fixpoint(
            sub.circuit.gates, self.body_passes, window=self.window
        )
        body_changed = new_gates != sub.circuit.gates
        if _obs.ENABLED:
            _obs.add("optimize.bodies.rewritten" if body_changed
                     else "optimize.bodies.reused")
        if body_changed:
            self.out_ns[name] = rebuilt_subroutine(sub, new_gates)
        elif kid_changed:
            # An optimized callee can shrink this reused body's
            # transient width in the optimized namespace; clone rather
            # than mutate, so the source hierarchy's cached width (still
            # correct there) survives.
            self.out_ns[name] = width_fresh_clone(sub)
        else:
            self.out_ns[name] = sub
        state[name] = body_changed or kid_changed
        return state[name]

    def finish(self, end):
        """Flush the window and finish downstream with the new namespace."""
        self._optimizer.flush()
        # Carry over subroutines the main stream never invoked (bodies
        # only reachable from other bodies are pulled in by _ensure), so
        # the downstream consumer sees the full namespace.
        for name in end.namespace:
            if name not in self.out_ns:
                self._ensure(name)
        return self.downstream.finish(
            dataclasses.replace(end, namespace=self.out_ns)
        )


__all__ = ["StreamOptimizer"]
