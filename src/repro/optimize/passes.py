"""Composable peephole passes: local rewrites over adjacent gates.

Each pass is a small, independent rewrite rule consumed by
:class:`~repro.optimize.peephole.PeepholeOptimizer`.  A pass contributes
two things:

* :meth:`~PeepholePass.rewrite` -- offered a group of *virtually
  adjacent* gates (the optimizer has already proven that the gates
  between them commute out of the way), it returns the replacement gate
  list, or ``None`` when the pattern does not match.
* :meth:`~PeepholePass.commutes` -- extra commutation knowledge the
  optimizer's scan uses to look *through* gates that are in the way
  (e.g. two gates that are each diagonal on every shared wire commute).

The standard passes reproduce the optimization-for-resource-estimation
workflow of the Quipper follow-up work: adjacent inverse-pair
cancellation, additive rotation merging with modular folding, diagonal
commutation, Clifford rewrites (``H;Z;H -> X``), and NOT-propagation
through control dots.

Pass contract (what keeps window rewrites sound):

* A pair pass may only match when both gates have the **same wire
  footprint** (same targets + controls), unless it sets ``strict`` --
  then the optimizer guarantees no commuting gate was skipped between
  the group's members.
* A replacement must commute with anything its inputs commuted with
  (automatic for footprint-preserving rewrites whose output is diagonal
  wherever its inputs were).
"""

from __future__ import annotations

import dataclasses
import math

from ..core.errors import IrreversibleError, QuipperError
from ..core.gates import (
    BoxCall,
    CNot,
    Comment,
    Control,
    Gate,
    NamedGate,
    acts_diagonally_on,
    control_wires,
    rotation_periods,
)


def gate_footprint(gate: Gate) -> frozenset[int]:
    """Every wire id a gate touches (inputs, outputs, and controls)."""
    return frozenset(
        w for w, _ in gate.wires_in() + gate.wires_out()
    )


def _same_controls(a: Gate, b: Gate) -> bool:
    """Whether two gates carry the same control set (order-insensitive)."""
    ca, cb = control_wires(a), control_wires(b)
    return len(ca) == len(cb) and set(ca) == set(cb)


class PeepholePass:
    """Base class for peephole passes; subclass and override the hooks.

    ``sizes`` lists the adjacent-group sizes :meth:`rewrite` understands
    (1 = single-gate elision, 2 = pairs, 3 = triples); ``strict`` makes
    the optimizer offer groups only when no commuting gate was skipped
    while establishing adjacency.

    ::

        class DropComments(PeepholePass):
            sizes = (1,)
            def rewrite(self, group):
                return [] if isinstance(group[0], Comment) else None
    """

    #: Registry / display name of the pass.
    name = "peephole"
    #: Adjacent-group sizes rewrite() understands.
    sizes: tuple[int, ...] = (2,)
    #: Whether matches require no commute-skips during the adjacency scan.
    strict = False

    def rewrite(self, group: tuple[Gate, ...]) -> list[Gate] | None:
        """The replacement for an adjacent gate group, or None (no match)."""
        return None

    def commutes(self, earlier: Gate, later: Gate) -> bool:
        """Extra commutation knowledge for the optimizer's scan."""
        return False

    def body_safe(self) -> "PeepholePass":
        """The variant of this pass valid inside boxed subroutine bodies.

        A body may be invoked under controls pushed down from the call
        site, which turns a global phase into an observable *relative*
        phase -- so a pass whose rewrites are only equivalent up to
        global phase must return a phase-exact variant here.  The
        default returns ``self`` (exact rewrites are body-safe as-is).
        """
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ElideIdentities(PeepholePass):
    """Drop gates that are the identity: zero rotations and bare phases.

    A rotation whose parameter is an exact multiple of the gate's matrix
    period is the identity; an *uncontrolled* rotation folds modulo the
    smaller phase period, since a global phase is unobservable.  An
    uncontrolled ``phase`` gate touches no wires at all and is always a
    pure global phase.

    ::

        Rz(0) q          ->  (nothing)
        Rz(4pi) q        ->  (nothing)
        phase(0.7)       ->  (nothing; uncontrolled)
    """

    name = "elide"
    sizes = (1,)

    def __init__(self, fold_global_phase: bool = True):
        """*fold_global_phase* permits global-phase-only elisions.

        Valid for a top-level circuit, where a global phase is
        unobservable; must be False for subroutine bodies, which may be
        invoked under controls that turn a global phase into a relative
        one (see :meth:`PeepholePass.body_safe`).
        """
        self.fold_global_phase = fold_global_phase

    def body_safe(self) -> "ElideIdentities":
        """The variant safe inside (possibly controlled) boxed bodies."""
        return ElideIdentities(fold_global_phase=False)

    def rewrite(self, group: tuple[Gate, ...]) -> list[Gate] | None:
        """Drop the gate when it is an exact identity (see class doc)."""
        (gate,) = group
        if not isinstance(gate, NamedGate) or gate.param is None:
            return None
        periods = rotation_periods(gate.name)
        if periods is None:
            return None
        phase_foldable = self.fold_global_phase and not gate.controls
        if gate.name == "phase" and phase_foldable:
            return []
        period, phase_period = periods
        effective = phase_period if phase_foldable else period
        if math.fmod(gate.param, effective) == 0.0:
            return []
        return None


class CancelInverses(PeepholePass):
    """Cancel a gate with an adjacent inverse (``H;H``, ``T;T*``, ...).

    Applies to anything :meth:`~repro.core.gates.Gate.inverse` is defined
    for and compares equal: named gates (self-inverse or daggered),
    ``Init``/``Term`` pairs, classical gates, and whole boxed-subroutine
    call pairs (a ``with_computed`` whose action collapsed leaves its
    compute and uncompute calls adjacent).

    ::

        QGate["H"](0); QGate["H"](0)          ->  (nothing)
        QInit0(3); QTerm0(3)                  ->  (nothing)
        Subroutine["f"](a); Subroutine*["f"]  ->  (nothing)
    """

    name = "cancel"
    sizes = (2,)

    def rewrite(self, group: tuple[Gate, ...]) -> list[Gate] | None:
        """Empty replacement when the pair multiplies to the identity."""
        first, second = group
        if isinstance(first, Comment):
            return None
        try:
            inverse = first.inverse()
        except (IrreversibleError, QuipperError):
            return None
        if inverse == second:
            return []
        if (
            isinstance(first, NamedGate)
            and isinstance(second, NamedGate)
            and isinstance(inverse, NamedGate)
            and inverse.name == second.name
            and inverse.targets == second.targets
            and inverse.inverted == second.inverted
            and inverse.param == second.param
            and set(inverse.controls) == set(second.controls)
        ):
            # Same controls in a different order still cancel.
            return []
        return None


class MergeRotations(PeepholePass):
    """Merge adjacent same-axis rotations: ``Rz(a);Rz(b) -> Rz(a+b)``.

    Parameters add for the ``rot`` gate family (Rx/Ry/Rz, ``exp(-i%Z)``,
    ``exp(-i%ZZ)``, ``phase``); the sum folds modulo the gate's exact
    matrix period, and a merged rotation that lands on the identity
    (modulo global phase, when uncontrolled) is elided outright.  A
    daggered rotation counts with negated parameter.  Controls must
    agree as a set.

    ::

        Rz(pi/4) q; Rz(pi/4) q   ->  Rz(pi/2) q
        Rz(a) q; Rz(-a) q        ->  (nothing)
    """

    name = "merge"
    sizes = (2,)

    def __init__(self, fold_global_phase: bool = True):
        """*fold_global_phase* permits global-phase-only elisions.

        Must be False for subroutine bodies, which may be invoked under
        controls (see :meth:`ElideIdentities.__init__`).
        """
        self.fold_global_phase = fold_global_phase

    def body_safe(self) -> "MergeRotations":
        """The variant safe inside (possibly controlled) boxed bodies."""
        return MergeRotations(fold_global_phase=False)

    def rewrite(self, group: tuple[Gate, ...]) -> list[Gate] | None:
        """The single merged rotation, folded; [] when it is identity."""
        first, second = group
        if (
            not isinstance(first, NamedGate)
            or not isinstance(second, NamedGate)
            or first.name != second.name
            or first.targets != second.targets
            or first.param is None
            or second.param is None
            or not _same_controls(first, second)
        ):
            return None
        periods = rotation_periods(first.name)
        if periods is None:
            return None
        period, phase_period = periods

        def effective(gate: NamedGate) -> float:
            return -gate.param if gate.inverted else gate.param

        total = math.fmod(effective(first) + effective(second), period)
        if self.fold_global_phase and not first.controls:
            if first.name == "phase":
                return []
            if math.fmod(total, phase_period) == 0.0:
                return []
        if total == 0.0:
            return []
        merged = NamedGate(
            first.name,
            first.targets,
            first.controls,
            inverted=False,
            param=total,
        )
        return [merged]


class CommuteDiagonals(PeepholePass):
    """Commutation knowledge: diagonal gates pass through each other.

    Contributes no rewrites -- it widens the optimizer's adjacency scan:
    two gates that each act diagonally (in the computational basis) on
    every wire they share commute, so a cancellation or merge partner
    can be found *through* them.  Control dots are always diagonal on
    their wire, which is what lets a rotation merge across a controlled
    gate that merely *controls* on the rotation's wire.

    ::

        Rz(a) q; CZ q r; Rz(b) q    ->  Rz(a+b) q; CZ q r
        T q; QGate["not"](r) with controls=[+q]; T* q  ->  the T pair cancels
    """

    name = "commute"
    sizes = ()

    def commutes(self, earlier: Gate, later: Gate) -> bool:
        """True when both gates act diagonally on every shared wire."""
        shared = gate_footprint(earlier) & gate_footprint(later)
        return all(
            acts_diagonally_on(earlier, w) and acts_diagonally_on(later, w)
            for w in shared
        )


#: Clifford pair rewrites keyed on ((name, inverted), (name, inverted)).
_CLIFFORD_PAIRS: dict[tuple, tuple[str, bool]] = {
    (("S", False), ("S", False)): ("Z", False),
    (("S", True), ("S", True)): ("Z", False),
    (("T", False), ("T", False)): ("S", False),
    (("T", True), ("T", True)): ("S", True),
    (("V", False), ("V", False)): ("X", False),
    (("V", True), ("V", True)): ("X", False),
    (("S", False), ("Z", False)): ("S", True),
    (("Z", False), ("S", False)): ("S", True),
    (("S", True), ("Z", False)): ("S", False),
    (("Z", False), ("S", True)): ("S", False),
}

#: H ; P ; H -> Q conjugation rewrites (exact, no phase residue).
_HPH = {"X": "Z", "not": "Z", "Z": "X"}


class CliffordRewrites(PeepholePass):
    """Strength-reduce short Clifford runs: ``S;S -> Z``, ``H;Z;H -> X``.

    The pair table covers the exact (phase-free) identities over the
    built-in vocabulary -- ``S;S=Z``, ``T;T=S``, ``V;V=X``, ``S;Z=S*``
    -- so the rewrites stay valid under controls.  The triple form
    rewrites an ``H;P;H`` conjugation on one wire (``P`` in {X, Z}).

    ::

        QGate["T"](0); QGate["T"](0)               ->  QGate["S"](0)
        QGate["H"](0); QGate["Z"](0); QGate["H"](0) -> QGate["X"](0)
    """

    name = "clifford"
    sizes = (2, 3)
    strict = True

    def rewrite(self, group: tuple[Gate, ...]) -> list[Gate] | None:
        """The shorter Clifford equivalent of the run, or None."""
        if not all(isinstance(g, NamedGate) for g in group):
            return None
        first = group[0]
        if any(
            g.targets != first.targets or not _same_controls(g, first)
            for g in group[1:]
        ):
            return None
        if len(group) == 2:
            key = tuple((g.name, g.inverted) for g in group)
            hit = _CLIFFORD_PAIRS.get(key)
            if hit is None:
                return None
            name, inverted = hit
            return [
                NamedGate(name, first.targets, first.controls,
                          inverted=inverted)
            ]
        outer_a, inner, outer_b = group
        if (
            outer_a.name == "H"
            and outer_b.name == "H"
            and inner.name in _HPH
            and len(first.targets) == 1
        ):
            return [
                NamedGate(_HPH[inner.name], first.targets, first.controls)
            ]
        return None


class PushNots(PeepholePass):
    """Propagate a bare NOT forward through control dots on its wire.

    ``X w ; G(... controls=[+w] ...)`` equals ``G(... controls=[-w] ...)
    ; X w`` -- the NOT hops over the gate, flipping the control's sign.
    Pushing NOTs rightward herds them together so the cancellation pass
    can annihilate the pairs that negative-control conjugation scatters
    through a decomposed circuit (the binary gate base conjugates every
    negative Toffoli control with X pairs).

    ::

        X q; QGate["not"](t) with controls=[+q]; X q
            ->  QGate["not"](t) with controls=[-q]
    """

    name = "pushnot"
    sizes = (2,)
    # The NOT hops over gates between it and the control-carrier, so the
    # adjacency scan must not have looked through anything that merely
    # commutes with the carrier -- it might not commute with the NOT.
    strict = True

    def rewrite(self, group: tuple[Gate, ...]) -> list[Gate] | None:
        """[carrier-with-flipped-control, NOT] -- the NOT hops forward."""
        nots, gate = group
        if (
            not isinstance(nots, NamedGate)
            or nots.name not in ("X", "not")
            or nots.controls
            or len(nots.targets) != 1
        ):
            return None
        wire = nots.targets[0]
        if not isinstance(gate, (NamedGate, CNot, BoxCall)):
            return None
        controls = control_wires(gate)
        index = next(
            (k for k, c in enumerate(controls) if c.wire == wire), None
        )
        if index is None:
            return None
        flipped = list(controls)
        old = flipped[index]
        flipped[index] = Control(old.wire, not old.positive, old.wire_type)
        moved = dataclasses.replace(gate, controls=tuple(flipped))
        return [moved, nots]


#: The default pass chain, in application order.
DEFAULT_PASSES: tuple[PeepholePass, ...] = (
    ElideIdentities(),
    CancelInverses(),
    MergeRotations(),
    CliffordRewrites(),
    PushNots(),
    CommuteDiagonals(),
)

#: Name -> pass-factory registry for string-based selection
#: (``Program.optimize("cancel", "merge")``).
PASS_REGISTRY: dict[str, type[PeepholePass]] = {
    cls.name: cls
    for cls in (
        ElideIdentities,
        CancelInverses,
        MergeRotations,
        CliffordRewrites,
        PushNots,
        CommuteDiagonals,
    )
}


def body_safe_passes(
    passes: tuple[PeepholePass, ...]
) -> tuple[PeepholePass, ...]:
    """Map a pass chain to its boxed-body-safe form (phase-exact)."""
    return tuple(p.body_safe() for p in passes)


def resolve_passes(specs: tuple) -> tuple[PeepholePass, ...]:
    """Expand pass specs (instances, classes, or registry names).

    With no specs the full :data:`DEFAULT_PASSES` chain is returned.
    """
    if not specs:
        return DEFAULT_PASSES
    resolved: list[PeepholePass] = []
    for spec in specs:
        if isinstance(spec, PeepholePass):
            resolved.append(spec)
        elif isinstance(spec, type) and issubclass(spec, PeepholePass):
            resolved.append(spec())
        elif isinstance(spec, str) and spec in PASS_REGISTRY:
            resolved.append(PASS_REGISTRY[spec]())
        else:
            raise ValueError(
                f"not a peephole pass or registered pass name: {spec!r}"
            )
    return tuple(resolved)


__all__ = [
    "DEFAULT_PASSES",
    "PASS_REGISTRY",
    "CancelInverses",
    "CliffordRewrites",
    "CommuteDiagonals",
    "ElideIdentities",
    "MergeRotations",
    "PeepholePass",
    "PushNots",
    "body_safe_passes",
    "gate_footprint",
    "resolve_passes",
]
