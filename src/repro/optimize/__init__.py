"""Peephole circuit optimization: shrink the emitted gate stream.

Quipper's transformers make trillion-gate circuits *representable*; the
follow-up resource-estimation work shows the numbers only become useful
when decomposition is paired with optimization.  This package is a
sliding-window peephole optimizer over both representations:

* materialized hierarchies -- :func:`optimize_bcircuit` (surfaced as
  :meth:`repro.program.Program.optimize`), bodies optimized once and
  shared across call sites, fixpoint-iterated and idempotent;
* gate streams -- :class:`StreamOptimizer` (surfaced as
  :meth:`repro.streaming.GateStream.optimize`), one bounded-lookahead
  pass in O(window) memory.

The composable pass vocabulary lives in :mod:`repro.optimize.passes`:
adjacent inverse-pair cancellation, additive rotation merging with
modular folding, control-aware diagonal commutation, Clifford rewrites,
and NOT-propagation through control dots.

::

    from repro import Program

    prog.transform("binary").optimize()          # decompose, then shrink
    prog.optimize("cancel", "merge")             # a custom pass chain
    prog.stream().optimize().count()             # O(window) memory
"""

from .passes import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    CancelInverses,
    CliffordRewrites,
    CommuteDiagonals,
    ElideIdentities,
    MergeRotations,
    PeepholePass,
    PushNots,
    body_safe_passes,
    resolve_passes,
)
from .peephole import (
    DEFAULT_WINDOW,
    PeepholeOptimizer,
    optimize_bcircuit,
    optimize_circuit,
    optimize_gates,
    optimize_gates_fixpoint,
)
from .stream import StreamOptimizer

__all__ = [
    "DEFAULT_PASSES",
    "DEFAULT_WINDOW",
    "PASS_REGISTRY",
    "CancelInverses",
    "CliffordRewrites",
    "CommuteDiagonals",
    "ElideIdentities",
    "MergeRotations",
    "PeepholeOptimizer",
    "PeepholePass",
    "PushNots",
    "StreamOptimizer",
    "body_safe_passes",
    "optimize_bcircuit",
    "optimize_circuit",
    "optimize_gates",
    "optimize_gates_fixpoint",
    "resolve_passes",
]
