"""The sliding-window peephole optimizer core.

The Quipper follow-up work on concrete resource estimation shows that
gate-set decomposition only pays off when paired with an *optimizer*
that shrinks the emitted gate stream.  This module is that optimizer: a
:class:`PeepholeOptimizer` holds a bounded window of recently seen
gates and, for each arriving gate, scans backwards for a rewrite
partner, looking *through* gates that provably commute out of the way
(disjoint wires, or diagonal on every shared wire -- see
:mod:`repro.optimize.passes`).  Matched groups are replaced and the
replacements re-enter matching, so chains collapse transitively:
``Rz(a); CZ; Rz(b); Rz(-a-b)`` disappears entirely.

Memory is O(window) however many gates flow through, which is what lets
the same core serve both the materialized entry points
(:func:`optimize_circuit`, :func:`optimize_bcircuit`, fixpoint-iterated)
and the streaming consumer stage
(:class:`~repro.optimize.stream.StreamOptimizer`, single pass).

Boxed subroutine bodies are optimized **once** and shared across call
sites: :func:`optimize_bcircuit` rewrites each namespace entry
independently (a ``BoxCall`` is an opaque barrier in the window), and a
body the passes leave untouched keeps its original
:class:`~repro.core.circuit.Subroutine` object -- cached width and all
-- exactly like the fused transformer pipeline.
"""

from __future__ import annotations

from typing import Callable

from ..core.circuit import BCircuit, Circuit, Subroutine
from ..core.gates import BoxCall, Comment, Gate
from ..obs import core as _obs
from .passes import (
    PeepholePass,
    body_safe_passes,
    gate_footprint,
    resolve_passes,
)

#: Default sliding-window capacity (gates retained for matching).
DEFAULT_WINDOW = 64

#: Fixpoint-iteration cap for the materialized entry points.
MAX_ROUNDS = 16


class PeepholeOptimizer:
    """An incremental sliding-window optimizer over a gate stream.

    Feed gates in circuit order with :meth:`feed`; gates leave the
    window (oldest first, original relative order preserved up to
    licensed commutations) through *sink* once they can no longer
    participate in a rewrite, and :meth:`flush` drains the remainder.

    ::

        out: list[Gate] = []
        opt = PeepholeOptimizer(sink=out.append)
        for gate in gates:
            opt.feed(gate)
        opt.flush()            # `out` is now the optimized sequence
    """

    def __init__(self, passes: tuple[PeepholePass, ...] | None = None, *,
                 window: int = DEFAULT_WINDOW,
                 sink: Callable[[Gate], None] | None = None):
        self.passes = resolve_passes(tuple(passes or ()))
        self.window_size = max(2, int(window))
        self.sink = sink if sink is not None else (lambda gate: None)
        self._window: list[Gate] = []
        self._footprints: list[frozenset[int]] = []
        self._single = [p for p in self.passes if 1 in p.sizes]
        self._pairs = [p for p in self.passes if 2 in p.sizes]
        self._triples = [p for p in self.passes if 3 in p.sizes]
        self._commuters = [
            p for p in self.passes
            if type(p).commutes is not PeepholePass.commutes
        ]

    # -- feeding -------------------------------------------------------------

    def feed(self, gate: Gate) -> None:
        """Offer one gate, in circuit order, to the window."""
        self._process(gate, depth=0)
        overflow = len(self._window) - self.window_size
        if overflow > 0:
            for flushed in self._window[:overflow]:
                self.sink(flushed)
            del self._window[:overflow]
            del self._footprints[:overflow]

    def flush(self) -> None:
        """Drain every windowed gate to the sink (end of stream)."""
        for gate in self._window:
            self.sink(gate)
        self._window.clear()
        self._footprints.clear()

    # -- matching ------------------------------------------------------------

    def _append(self, gate: Gate, footprint: frozenset[int]) -> None:
        self._window.append(gate)
        self._footprints.append(footprint)

    def _commutes(self, earlier: Gate, later: Gate) -> bool:
        return any(p.commutes(earlier, later) for p in self._commuters)

    def _process(self, gate: Gate, depth: int) -> None:
        """Match *gate* against the window; append if nothing rewrites."""
        footprint = gate_footprint(gate)
        if depth > 64:  # safety valve against a non-reducing pass chain
            self._append(gate, footprint)
            return
        for single in self._single:
            replaced = single.rewrite((gate,))
            if replaced is not None:
                if _obs.ENABLED:
                    _obs.add(f"optimize.pass.{single.name}.rewrites")
                for emitted in replaced:
                    self._process(emitted, depth + 1)
                return
        if isinstance(gate, Comment) or not footprint:
            # Comments annotate, they do not act; footprint-free gates
            # have nothing to match against.
            self._append(gate, footprint)
            return
        window, footprints = self._window, self._footprints
        skipped_commuting = False
        index = len(window) - 1
        while index >= 0:
            shared = footprints[index] & footprint
            if not shared:
                index -= 1
                continue
            partner = window[index]
            replaced = self._try_group(
                index, (partner, gate), skipped_commuting
            )
            if replaced is None and self._triples:
                replaced = self._try_triple(
                    index, partner, gate, skipped_commuting
                )
            if replaced is not None:
                for emitted in replaced:
                    self._process(emitted, depth + 1)
                return
            if self._commutes(partner, gate):
                skipped_commuting = True
                index -= 1
                continue
            break  # blocker: nothing before it can be reached
        self._append(gate, footprint)

    def _try_group(self, index: int, group: tuple[Gate, ...],
                   skipped_commuting: bool) -> list[Gate] | None:
        """Offer a pair (window[index], incoming) to the pair passes."""
        for peephole in self._pairs:
            if peephole.strict and skipped_commuting:
                continue
            replaced = peephole.rewrite(group)
            if replaced is not None:
                if _obs.ENABLED:
                    _obs.add(f"optimize.pass.{peephole.name}.rewrites")
                del self._window[index]
                del self._footprints[index]
                return replaced
        return None

    def _try_triple(self, index: int, partner: Gate, gate: Gate,
                    skipped_commuting: bool) -> list[Gate] | None:
        """Offer (window[j], window[index], incoming) to triple passes.

        The third-back gate ``window[j]`` must reach ``window[index]``
        across fully disjoint gates only (no commute-skips): triple
        patterns are conjugations, whose outer gates are never diagonal.
        """
        if skipped_commuting:
            return None
        target = self._footprints[index]
        for j in range(index - 1, -1, -1):
            if not (self._footprints[j] & target):
                continue
            for peephole in self._triples:
                replaced = peephole.rewrite((self._window[j], partner, gate))
                if replaced is not None:
                    if _obs.ENABLED:
                        _obs.add(f"optimize.pass.{peephole.name}.rewrites")
                    del self._window[index]
                    del self._footprints[index]
                    del self._window[j]
                    del self._footprints[j]
                    return replaced
            return None
        return None


# ---------------------------------------------------------------------------
# Materialized entry points
# ---------------------------------------------------------------------------


def optimize_gates(gates: list[Gate],
                   passes: tuple[PeepholePass, ...] | None = None, *,
                   window: int = DEFAULT_WINDOW) -> list[Gate]:
    """One optimizer pass over a gate list; returns the rewritten list."""
    out: list[Gate] = []
    optimizer = PeepholeOptimizer(passes, window=window, sink=out.append)
    for gate in gates:
        optimizer.feed(gate)
    optimizer.flush()
    return out


def optimize_gates_fixpoint(gates: list[Gate],
                            passes: tuple[PeepholePass, ...] | None = None,
                            *, window: int = DEFAULT_WINDOW) -> list[Gate]:
    """Iterate :func:`optimize_gates` until the gate list stabilizes.

    The pass chain is reducing-or-stationary, so iteration converges;
    a safety cap (:data:`MAX_ROUNDS`) guards against a pathological
    user-supplied pass.  The fixpoint makes the materialized optimizer
    idempotent: ``optimize(optimize(c)) == optimize(c)``.
    """
    current = list(gates)
    for round_no in range(MAX_ROUNDS):
        rewritten = optimize_gates(current, passes, window=window)
        if rewritten == current:
            if _obs.ENABLED:
                _obs.add("optimize.rounds", round_no + 1)
                _obs.add("optimize.gates.removed",
                         len(gates) - len(rewritten))
            return rewritten
        current = rewritten
    if _obs.ENABLED:
        _obs.add("optimize.rounds", MAX_ROUNDS)
        _obs.add("optimize.gates.removed", len(gates) - len(current))
    return current


def optimize_circuit(circuit: Circuit,
                     passes: tuple[PeepholePass, ...] | None = None, *,
                     window: int = DEFAULT_WINDOW) -> Circuit:
    """Optimize one flat circuit body (interface wires unchanged)."""
    return Circuit(
        inputs=circuit.inputs,
        gates=optimize_gates_fixpoint(circuit.gates, passes, window=window),
        outputs=circuit.outputs,
    )


def _callees(circuit: Circuit) -> set[str]:
    return {g.name for g in circuit.gates if isinstance(g, BoxCall)}


def rebuilt_subroutine(sub: Subroutine, new_gates: list[Gate]) -> Subroutine:
    """A fresh Subroutine shell around *new_gates*, interface preserved."""
    shell = Subroutine(
        name=sub.name,
        circuit=Circuit(
            inputs=sub.circuit.inputs,
            gates=new_gates,
            outputs=sub.circuit.outputs,
        ),
        in_shape=sub.in_shape,
        out_shape=sub.out_shape,
    )
    shell._signature = getattr(sub, "_signature", None)
    return shell


def width_fresh_clone(sub: Subroutine) -> Subroutine:
    """A shell sharing *sub*'s circuit but with its own width cache.

    Used when a reused (unoptimized) body's cached width went stale
    because a transitive callee was rewritten: the original Subroutine
    must NOT be mutated -- it still serves the unoptimized hierarchy,
    where its cached width remains correct -- so the optimized namespace
    gets a clone whose width will be recomputed against the *optimized*
    callees on first query.
    """
    shell = Subroutine(
        name=sub.name,
        circuit=sub.circuit,
        in_shape=sub.in_shape,
        out_shape=sub.out_shape,
    )
    shell._signature = getattr(sub, "_signature", None)
    return shell


def optimize_bcircuit(bc: BCircuit,
                      passes: tuple[PeepholePass, ...] | None = None, *,
                      window: int = DEFAULT_WINDOW) -> BCircuit:
    """Peephole-optimize a whole hierarchy, body by body.

    Every subroutine body is optimized exactly once and shared across
    its call sites.  A body the passes leave untouched keeps its
    original :class:`~repro.core.circuit.Subroutine` object -- and its
    memoized width -- unless a (transitive) callee's body was rewritten,
    in which case the cached width is dropped (an optimized callee can
    shrink the caller's transient width).

    Bodies are optimized with the *body-safe* form of the pass chain
    (:func:`~repro.optimize.passes.body_safe_passes`): a ``BoxCall`` may
    be invoked under controls, which turn a global phase into an
    observable relative phase, so global-phase-only elisions are
    disabled inside bodies.
    """
    passes = resolve_passes(tuple(passes or ()))
    body_passes = body_safe_passes(passes)
    new_namespace: dict[str, Subroutine] = {}
    changed: set[str] = set()
    for name, sub in bc.namespace.items():
        new_gates = optimize_gates_fixpoint(
            sub.circuit.gates, body_passes, window=window
        )
        if new_gates == sub.circuit.gates:
            new_namespace[name] = sub
            continue
        changed.add(name)
        new_namespace[name] = rebuilt_subroutine(sub, new_gates)
    # Width staleness: same discipline as the fused transformer pipeline.
    stale: dict[str, bool] = {}

    def callee_changed(name: str) -> bool:
        if name not in stale:
            stale[name] = False  # cycle guard
            stale[name] = any(
                c in changed or callee_changed(c)
                for c in _callees(new_namespace[name].circuit)
            )
        return stale[name]

    for name in bc.namespace:
        if name not in changed and callee_changed(name):
            # A rewritten callee changes this reused body's transient
            # width in the *optimized* namespace only; clone instead of
            # invalidating, so the original hierarchy's cached width
            # (still correct there) is untouched.
            new_namespace[name] = width_fresh_clone(bc.namespace[name])
    main = Circuit(
        inputs=bc.circuit.inputs,
        gates=optimize_gates_fixpoint(
            bc.circuit.gates, passes, window=window
        ),
        outputs=bc.circuit.outputs,
    )
    return BCircuit(main, new_namespace)


__all__ = [
    "DEFAULT_WINDOW",
    "MAX_ROUNDS",
    "PeepholeOptimizer",
    "optimize_bcircuit",
    "optimize_circuit",
    "optimize_gates",
    "optimize_gates_fixpoint",
    "rebuilt_subroutine",
    "width_fresh_clone",
]
