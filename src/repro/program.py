"""The fluent ``Program`` pipeline: one definition, every consumer.

The headline design of the paper (Sections 1 and 4) is that a single
circuit-producing function *is* the program, consumed interchangeably by
printers, gate counters, transformers, and simulators.  The follow-up
resource-estimation work ("Concrete Resource Estimation in Quantum
Algorithms") shows the workflow this module makes first-class: define the
program once, then chain gate-set transformations and resource counts over
it.

A :class:`Program` wraps a circuit-producing function together with its
shape arguments.  Circuit generation is lazy and cached -- nothing is
built until a consumer asks -- and every consumer of the historical free
functions is a method::

    from repro import Program, qubit

    prog = Program.capture(mycirc, qubit, qubit)
    prog.print()                          # was print_generic(mycirc, ...)
    prog.count()                          # was gatecount_generic(...)
    prog.run(shots=1024, seed=7)          # was run_generic(...)
    prog.transform("binary").depth()      # decompose, then estimate

:meth:`Program.transform` fuses its rules into a **single traversal** of
the box hierarchy (see :mod:`repro.transform.pipeline`): each gate flows
through the rule chain once, so ``prog.transform(r1, r2, r3)`` costs one
pass where three ``transform_bcircuit`` calls cost three.

The :func:`subroutine` / :func:`main` decorators declare box structure
declaratively::

    @subroutine
    def adder(qc, a, b): ...              # every call is a boxed BoxCall

    @main(qubit, qubit)
    def bell(qc, a, b): ...               # `bell` IS a Program

A decorated ``@main`` program remains callable as an ordinary circuit
function, so programs compose: ``bell(qc, a, b)`` inside another circuit
emits the same gates inline.
"""

from __future__ import annotations

import functools
import hashlib
from collections import Counter
from typing import Callable

from .backends import RunResult, get_backend
from .core.builder import Circ, build
from .obs import core as _obs
from .core.circuit import BCircuit, Circuit
from .core.gates import (
    BoxCall,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Init,
    NamedGate,
    Term,
    with_extra_controls,
)
from .core.wires import QUANTUM, Qubit
from .transform import (
    BINARY,
    TOFFOLI,
    aggregate_gate_count,
    circuit_depth,
    inline as _inline_bcircuit,
    reverse_bcircuit,
    t_depth as _t_depth,
    to_binary,
    to_toffoli,
    total_gates,
    total_logical_gates,
    transform_bcircuit_fused,
)
from .transform.inline import _max_wire_id
from .transform.transformer import Rule


def _resolve_rules(specs: tuple) -> tuple[Rule, ...]:
    """Expand transform specs (callables or gate-base names) into rules.

    The string constants :data:`~repro.transform.TOFFOLI` and
    :data:`~repro.transform.BINARY` expand to the standard decomposition
    rules (``BINARY`` implies the Toffoli stage first, exactly like
    ``decompose_generic``); any callable is used as a transformer rule
    directly.
    """
    rules: list[Rule] = []
    for spec in specs:
        if spec == TOFFOLI:
            rules.append(to_toffoli)
        elif spec == BINARY:
            rules.extend((to_toffoli, to_binary))
        elif callable(spec):
            rules.append(spec)
        else:
            raise ValueError(
                f"not a transformer rule or gate base name: {spec!r}"
            )
    return tuple(rules)


#: Stable digest identities for circuit functions (see
#: :func:`register_capture`): name -> function.
_CAPTURE_REGISTRY: dict[str, Callable] = {}


def register_capture(fn: Callable | None = None, *, name: str | None = None):
    """Give a circuit function a stable structural-digest identity.

    :meth:`Program.digest` normally has to *generate* the circuit and
    hash its canonical serialization.  A registered function promises
    that it deterministically maps its shape arguments to one circuit,
    so programs captured from it digest **without building**: the digest
    is computed from the registered name, the canonicalized shapes, and
    the pipeline-stage chain.  Registration is what lets the compile
    service (:mod:`repro.service`) key its content-addressed cache
    before any generation work happens.

    Usable directly or as a decorator::

        @register_capture
        def adder(qc, a, b): ...

        register_capture(qrwbwt, name="bwt.qrwbwt")

    Re-registering a name with a *different* function raises
    ``ValueError`` -- digest stability is the whole point.
    """

    def apply(f: Callable):
        key = name or f"{f.__module__}.{f.__qualname__}"
        existing = _CAPTURE_REGISTRY.get(key)
        if existing is not None and existing is not f:
            raise ValueError(
                f"capture name {key!r} is already registered to a "
                "different function"
            )
        _CAPTURE_REGISTRY[key] = f
        f.__repro_digest_name__ = key  # type: ignore[attr-defined]
        return f

    return apply(fn) if fn is not None else apply


def _encode_shapes(shapes: tuple) -> str | None:
    """Canonical text for a shape tuple, or None when not encodable."""
    from .io.ascii_parser import encode_shape

    try:
        return encode_shape(tuple(shapes))
    except Exception:
        return None


class Program:
    """A quantum program: a lazily-generated, transformable circuit.

    Immutable and fluent: every pipeline operation (:meth:`transform`,
    :meth:`inverse`, :meth:`controlled`, :meth:`inline`) returns a new
    ``Program`` whose circuit is generated -- and cached -- only when a
    consumer (:meth:`count`, :meth:`run`, :meth:`ascii`, ...) first needs
    it.
    """

    __slots__ = ("name", "_thunk", "_fn", "_shapes", "_cache", "_on_extra",
                 "_phase_folded", "_stage", "_lineage", "_digest")

    def __init__(self, thunk: Callable[[], tuple[BCircuit, object]], *,
                 name: str | None = None, fn: Callable | None = None,
                 shapes: tuple = (), on_extra: str = "warn",
                 stage: str = "capture",
                 lineage: tuple[str, ...] | None = None):
        self.name = name or "program"
        self._thunk = thunk
        self._fn = fn
        self._shapes = shapes
        self._on_extra = on_extra
        #: Telemetry span name under which generation is recorded --
        #: which pipeline stage building this Program *is* ("capture",
        #: "transform", "optimize", ...).
        self._stage = stage
        self._cache: tuple[BCircuit, object] | None = None
        #: Canonical pipeline-stage tokens for build-free digesting
        #: (None: fall back to hashing the built circuit's dumps text).
        self._lineage = lineage
        self._digest: str | None = None
        #: Whether an upstream optimize() stage may have elided gates
        #: that were only a *global* phase -- unobservable for this
        #: program as-is, but observable if it is later .controlled().
        self._phase_folded = False

    # -- construction -------------------------------------------------------

    @classmethod
    def capture(cls, fn: Callable, *shapes, name: str | None = None,
                on_extra: str = "warn") -> "Program":
        """Wrap a circuit-producing function and its input shapes.

        ``Program.capture(fn, *shapes)`` is the lazy, reusable analogue of
        ``build(fn, *shapes)``: the circuit is generated on first use and
        cached on the Program.  *on_extra* is forwarded to
        :meth:`repro.core.builder.Circ.finish`.

        Capturing a ``Program`` again is allowed: with no further
        arguments it is the identity; with shapes (re-shaping a ``@main``
        program, say) the underlying circuit function is re-captured,
        which requires the Program to wrap one.
        """
        if isinstance(fn, Program):
            if not shapes and name is None:
                return fn
            if fn._fn is None:
                raise TypeError(
                    f"Program {fn.name!r} does not wrap a circuit "
                    "function and cannot be re-captured with new shapes"
                )
            return cls.capture(
                fn._fn, *(shapes or fn._shapes),
                name=name or fn.name, on_extra=on_extra,
            )
        lineage = None
        digest_name = getattr(fn, "__repro_digest_name__", None)
        if digest_name is not None and _CAPTURE_REGISTRY.get(digest_name) is fn:
            encoded = _encode_shapes(shapes)
            if encoded is not None:
                lineage = (f"capture[{digest_name}]{encoded}",)
        return cls(
            lambda: build(fn, *shapes, on_extra=on_extra),
            name=name or getattr(fn, "__name__", None),
            fn=fn,
            shapes=shapes,
            on_extra=on_extra,
            lineage=lineage,
        )

    @classmethod
    def from_bcircuit(cls, bc: BCircuit, outputs: object = None,
                      name: str | None = None) -> "Program":
        """Wrap an already-generated hierarchical circuit."""
        return cls(lambda: (bc, outputs), name=name)

    @classmethod
    def loads(cls, text: str, name: str | None = None) -> "Program":
        """A Program backed by serialized Quipper-ASCII text (lazy parse)."""
        from .io import loads as _loads

        return cls(lambda: (_loads(text), None), name=name, stage="parse")

    @classmethod
    def loads_qasm(cls, text: str, name: str | None = None) -> "Program":
        """A Program backed by OpenQASM 2 text (lazy parse).

        The text is read by :func:`repro.io.parse_qasm` on first use:
        qelib1 gates map onto the repro vocabulary, ``measure``/``if``
        become the extended model's measurement and classical controls,
        and parameterless ``gate`` definitions stay hierarchical as
        boxed subroutines.  ``Program.loads_qasm(p.qasm())`` is the
        round trip the ``equiv`` backend certifies.
        """
        from .io import parse_qasm as _parse_qasm

        return cls(
            lambda: (_parse_qasm(text), None), name=name, stage="parse"
        )

    @classmethod
    def from_qasm(cls, path, name: str | None = None) -> "Program":
        """A Program backed by an OpenQASM 2 file (lazy read + parse)."""

        def make():
            from .io import parse_qasm as _parse_qasm

            with open(path, "r", encoding="utf-8") as handle:
                return _parse_qasm(handle.read()), None

        return cls(make, name=name, stage="parse")

    # -- generation ---------------------------------------------------------

    def _built(self) -> tuple[BCircuit, object]:
        if self._cache is None:
            if _obs.ENABLED:
                with _obs.span(self._stage, program=self.name) as sp:
                    self._cache = self._thunk()
                    sp.set(gates=len(self._cache[0]))
            else:
                self._cache = self._thunk()
            # Release the thunk: derived stages close over their parent
            # Programs, and dropping the closure lets fully-built
            # intermediate stages (and their cached circuits) be freed.
            self._thunk = None
        return self._cache

    @property
    def bcircuit(self) -> BCircuit:
        """The generated circuit hierarchy (built once, then cached)."""
        return self._built()[0]

    @property
    def outputs(self) -> object:
        """The structured output data returned by the captured function."""
        return self._built()[1]

    def __call__(self, qc: Circ, *args):
        """Run the captured function inline inside another circuit.

        Keeps decorated ``@main`` programs composable as ordinary circuit
        functions.
        """
        if self._fn is None:
            raise TypeError(
                f"Program {self.name!r} does not wrap a circuit function "
                "and cannot be called inline"
            )
        return self._fn(qc, *args)

    def _derived(self, suffix: str,
                 make: Callable[[], tuple[BCircuit, object]],
                 stage: str | None = None,
                 token: str | None = None) -> "Program":
        lineage = None
        if token is not None and self._lineage is not None:
            lineage = self._lineage + (token,)
        derived = Program(
            make, name=f"{self.name}.{suffix}",
            stage=stage or suffix.split("(", 1)[0],
            lineage=lineage,
        )
        derived._phase_folded = self._phase_folded
        return derived

    def digest(self) -> str:
        """A content digest: equal-by-construction programs digest equal.

        The hex SHA-256 keying the content-addressed compile caches
        (:func:`repro.transform.inline.compile_flat` in-process,
        :mod:`repro.service` fleet-wide).  Two domains, both stable
        across processes and runs:

        * **Lineage** -- a program captured from a
          :func:`register_capture`-ed function through canonical
          pipeline stages (gate-base :meth:`transform`, registry-named
          :meth:`optimize` passes, :meth:`inverse` / :meth:`inline` /
          :meth:`controlled`) digests *without generating anything*,
          from the registered name + canonicalized shapes + stage chain.
        * **Structure** -- any other program digests the canonical
          Quipper-ASCII serialization (:func:`repro.io.dumps`) of its
          generated hierarchy, so structurally identical circuits from
          unregistered lambdas still share one digest.

        The two domains are prefixed apart, so a lineage digest never
        collides with a structure digest of the same circuit -- within
        each domain, equal digest implies equal compiled stream.
        """
        if self._digest is None:
            if self._lineage is not None:
                payload = "lineage:" + "\x1f".join(self._lineage)
            else:
                from .io import dumps as _dumps

                payload = "circuit:" + _dumps(self.bcircuit)
            self._digest = hashlib.sha256(payload.encode()).hexdigest()
        return self._digest

    # -- pipeline stages ----------------------------------------------------

    def transform(self, *rules) -> "Program":
        """Chain transformer rules, fused into one traversal.

        Each rule is a transformer callable (``rule(qc, gate) -> handled``)
        or a gate-base name (:data:`~repro.transform.TOFFOLI`,
        :data:`~repro.transform.BINARY`).  However many rules are chained,
        every subroutine body is traversed exactly once, each gate flowing
        through the whole chain (see
        :func:`repro.transform.pipeline.transform_bcircuit_fused`), where
        the legacy ``transform_bcircuit`` cost one full hierarchy rewrite
        per rule.
        """
        resolved = _resolve_rules(rules)
        label = ",".join(getattr(r, "__name__", "rule") for r in resolved)
        # Gate-base names are canonical digest tokens; arbitrary rule
        # callables are not (their behaviour is opaque), which drops the
        # derived program back to structure-domain digesting.
        token = None
        if all(isinstance(spec, str) for spec in rules):
            token = f"transform[{','.join(rules)}]"
        return self._derived(
            f"transform({label})",
            lambda: (
                transform_bcircuit_fused(self.bcircuit, *resolved),
                self.outputs,
            ),
            token=token,
        )

    def optimize(self, *passes, window: int | None = None,
                 fold_global_phase: bool = True) -> "Program":
        """Peephole-optimize the circuit (see :mod:`repro.optimize`).

        Runs the sliding-window peephole optimizer over every subroutine
        body (once, shared across call sites) and the main circuit,
        iterated to a fixpoint -- ``prog.optimize().optimize()`` equals
        ``prog.optimize()``.  With no arguments the full default pass
        chain applies; *passes* selects a custom chain by registry name
        or :class:`~repro.optimize.PeepholePass` instance.  *window*
        bounds the lookahead (gates retained for matching).

        With *fold_global_phase* (the default) the top-level circuit may
        shed gates that only contribute a global phase (``Rz(2pi)``,
        bare ``phase`` gates) -- unobservable for this program, but a
        *relative* phase if the optimized program is later
        :meth:`controlled`; pass ``fold_global_phase=False`` (or control
        first) when that composition is intended.  Boxed bodies are
        always optimized phase-exactly, since their call sites may be
        controlled.

        ::

            prog.transform("binary").optimize().count()
            prog.optimize("cancel", "merge")
        """
        from .optimize import DEFAULT_WINDOW, optimize_bcircuit, resolve_passes
        from .optimize.passes import body_safe_passes

        resolved = resolve_passes(passes)
        if not fold_global_phase:
            resolved = body_safe_passes(resolved)
        label = ",".join(p.name for p in resolved)
        token = None
        if all(isinstance(spec, str) for spec in passes):
            token = (f"optimize[{label};w={window or DEFAULT_WINDOW};"
                     f"phase={int(fold_global_phase)}]")
        derived = self._derived(
            f"optimize({label})",
            lambda: (
                optimize_bcircuit(
                    self.bcircuit, resolved,
                    window=window or DEFAULT_WINDOW,
                ),
                self.outputs,
            ),
            token=token,
        )
        if fold_global_phase:
            derived._phase_folded = True
        return derived

    def inline(self) -> "Program":
        """Expand every boxed subroutine call into a flat circuit."""
        return self._derived(
            "inline", lambda: (_inline_bcircuit(self.bcircuit), self.outputs),
            token="inline",
        )

    def inverse(self) -> "Program":
        """The reverse program (Section 4.2.2); boxes stay shared."""
        return self._derived(
            "inverse", lambda: (reverse_bcircuit(self.bcircuit), None),
            token="inverse",
        )

    def controlled(self, n: int = 1) -> "Program":
        """Control the whole program on *n* fresh qubits.

        The control wires are appended as extra circuit inputs/outputs and
        attached to every gate of the main circuit (box calls carry them
        down the hierarchy at inline/execution time).  Init/Term gates pass
        beneath the controls unchanged, per Quipper's "nocontrol"
        convention; measurements and discards cannot be controlled and
        raise :class:`~repro.core.errors.ScopeError`.

        Controlling an :meth:`optimize`-derived program emits a
        ``RuntimeWarning``: the optimizer may have elided gates that
        were only a global phase, which the new controls would have
        turned into an observable relative phase.  Control first, or
        use ``optimize(fold_global_phase=False)``.
        """
        if n < 1:
            raise ValueError("controlled() requires n >= 1")
        if self._phase_folded:
            import warnings

            warnings.warn(
                "controlled() on an optimize()-derived program: the "
                "optimizer may have folded global phases that become "
                "relative (observable) under the new controls; control "
                "first or use optimize(fold_global_phase=False)",
                RuntimeWarning,
                stacklevel=2,
            )

        def make() -> tuple[BCircuit, object]:
            from .core.errors import ScopeError

            bc = self.bcircuit
            base = _max_wire_id(bc.circuit) + 1
            controls = tuple(
                Control(base + i, True, QUANTUM) for i in range(n)
            )
            gates = []
            for gate in bc.circuit.gates:
                if isinstance(gate, (Init, Term, CInit, CTerm, Comment)):
                    gates.append(gate)  # "nocontrol" gates
                elif isinstance(gate, (NamedGate, CNot, BoxCall)):
                    gates.append(with_extra_controls(gate, controls))
                elif isinstance(gate, CGate):
                    gates.append(gate)  # classical computation is free
                else:
                    raise ScopeError(
                        f"{type(gate).__name__} cannot appear in a "
                        "controlled program"
                    )
            ctl_wires = tuple((c.wire, QUANTUM) for c in controls)
            circuit = Circuit(
                inputs=bc.circuit.inputs + ctl_wires,
                gates=gates,
                outputs=bc.circuit.outputs + ctl_wires,
            )
            ctl_struct = tuple(Qubit(c.wire) for c in controls)
            return BCircuit(circuit, bc.namespace), (self.outputs, ctl_struct)

        return self._derived(f"controlled({n})", make, token=f"controlled[{n}]")

    # -- streaming ----------------------------------------------------------

    def stream(self, *rules) -> "GateStream":
        """A lazy gate stream over this program -- nothing materialized.

        For a captured (not-yet-built) program the stream re-runs the
        circuit function once per consumer, pushing each gate to the
        consumer as it is emitted -- the program's circuit is **never
        built**, so streams of any gate count run in O(live wires +
        boxed bodies) memory.  For an already-built (or loaded, or
        derived) program the stored hierarchy is replayed instead.

        *rules* are transformer rules (or gate-base names, as in
        :meth:`transform`) fused into the stream: each emitted gate flows
        through the whole chain on its way to the consumer, with boxed
        bodies rewritten once, on demand.

        ::

            prog.stream().count()            # O(1)-memory gate count
            prog.stream("binary").depth()    # decompose + estimate, fused
            prog.stream().dump(fp)           # incremental interchange dump
        """
        from .core.stream import replay_bcircuit, stream_build
        from .streaming import GateStream

        resolved = _resolve_rules(rules)
        if self._fn is not None and self._cache is None:
            fn, shapes, on_extra = self._fn, self._shapes, self._on_extra

            def produce(consumer):
                return stream_build(fn, shapes, consumer, on_extra=on_extra)
        else:

            def produce(consumer):
                bc, outs = self._built()
                return replay_bcircuit(bc, consumer, out_struct=outs)

        return GateStream(
            produce, name=f"{self.name}.stream", rules=resolved
        )

    # -- consumers: counting and estimation ---------------------------------

    def count(self, stream: bool = False) -> Counter:
        """Aggregated hierarchical gate count (never inlines).

        With ``stream`` the count is taken over a gate stream instead of
        the built circuit (see :meth:`stream`): identical Counter, O(1)
        memory per gate, and the circuit is not generated into memory if
        it was not already.
        """
        if stream:
            return self.stream().count()
        return aggregate_gate_count(self.bcircuit)

    def total_gates(self) -> int:
        """Total gate count, including Init/Term/Meas."""
        return total_gates(self.count())

    def logical_gates(self) -> int:
        """Gate count excluding initialization/termination/measurement."""
        return total_logical_gates(self.count())

    def depth(self, stream: bool = False) -> int:
        """Critical-path depth over the hierarchy (no inlining)."""
        if stream:
            return self.stream().depth()
        return circuit_depth(self.bcircuit)

    def t_depth(self, stream: bool = False) -> int:
        """Critical-path depth counting only T gates."""
        if stream:
            return self.stream().t_depth()
        return _t_depth(self.bcircuit)

    def width(self) -> int:
        """Peak number of simultaneously live wires (validates wiring)."""
        return self.bcircuit.check()

    def resources(self, stream: bool = False) -> dict:
        """The ``resources`` backend's static cost report as a dict."""
        if stream:
            return self.stream().resources()
        return self.run(backend="resources").resources

    # -- consumers: execution -----------------------------------------------

    def compiled(self):
        """The fully-inlined execution stream (compiled once, then cached).

        Returns the :class:`~repro.transform.inline.CompiledCircuit` the
        simulation backends replay: the flat gate list with its
        deterministic-prefix split.  The stream is memoized on the
        generated circuit (which this Program caches) **and** in a
        process-wide pool keyed on :meth:`digest`, so structurally equal
        programs -- however many Program objects they were built as --
        share one inline of the hierarchy per process.
        """
        from .transform.inline import compile_flat

        return compile_flat(self.bcircuit, digest=self.digest())

    def run(self, backend: str = "statevector", *, shots: int | None = None,
            in_values: dict[int, bool] | None = None,
            seed: int | None = None, trace=None, **options) -> RunResult:
        """Execute on a named backend (the method form of ``run_generic``).

        The simulation backends (statevector, clifford) consume the
        compiled gate stream of :meth:`compiled`; the counting backends
        never inline, so any-size hierarchies stay cheap to estimate.

        Extra keyword *options* configure the backend itself -- e.g.
        ``run("statevector", shots=1024, batch=64)`` advances 64 shots
        per kernel dispatch through the batched statevector engine
        (seeded counts are bit-identical at every batch size; the
        default is a memory-bounded auto size).

        *trace* -- a path or open file handle -- captures telemetry for
        this run (generation, compile, and execution spans plus kernel
        and cache metrics; see :mod:`repro.obs`) and writes it there in
        Chrome ``trace_event`` format, loadable in ``chrome://tracing``.
        """
        if trace is not None:
            from .obs import capture, dump_chrome_trace

            with capture() as rec:
                result = self.run(
                    backend, shots=shots, in_values=in_values, seed=seed,
                    **options,
                )
            dump_chrome_trace(rec, trace)
            return result
        if _obs.ENABLED:
            with _obs.span(
                "run." + backend, program=self.name,
                shots=shots if shots is not None else 1,
            ):
                self._prime_compiled(backend, shots, options)
                return get_backend(backend, **options).run(
                    self.bcircuit, shots=shots, in_values=in_values,
                    seed=seed,
                )
        self._prime_compiled(backend, shots, options)
        return get_backend(backend, **options).run(
            self.bcircuit, shots=shots, in_values=in_values, seed=seed
        )

    def _prime_compiled(self, backend, shots, options) -> None:
        # The clifford and shot-sampling statevector paths consume the
        # compiled stream; priming it through compiled() routes this
        # program's digest into the process-wide compile pool, so
        # structurally equal Programs (equal digest, distinct objects)
        # share one inline of the hierarchy.  Only a cold instance memo
        # is primed -- a warm one means the backend's own lookup already
        # suffices, and priming anyway would double-count the cache hit.
        # The statevector shots=None path streams lazily on purpose
        # (arbitrarily large hierarchies) and is left unprimed, as is
        # any circuit the backend would reject on width (it errors out
        # before compiling; keep that cheap).
        if backend == "clifford" or (
            backend == "statevector" and shots is not None
            and self.bcircuit.check() <= options.get("max_width", 26)
        ):
            if getattr(self.bcircuit, "_compiled_flat", None) is None:
                self.compiled()

    def equivalent_to(self, other, **options):
        """Decide whether this program equals *other* up to global phase.

        Runs the ``equiv`` backend (:mod:`repro.backends.equiv`) over
        the pair and returns its structured
        :class:`~repro.backends.equiv.EquivVerdict`: ``verdict`` is
        ``"equivalent"``, ``"distinct"`` (with a witness basis input),
        or ``"unknown"``, and ``decider`` names the cheapest decider
        that settled it (Clifford tableau, statevector unitary
        comparison, or normal-form matching -- see the backend docs for
        the escalation order).  *other* is a :class:`Program` or a bare
        :class:`~repro.core.circuit.BCircuit`; extra *options* configure
        the backend (e.g. ``max_width=``).
        """
        result = self.run("equiv", other=other, **options)
        return result.metadata["equiv"]

    def report(self, backend: str = "statevector", *,
               shots: int | None = None,
               in_values: dict[int, bool] | None = None,
               seed: int | None = None, **options) -> str:
        """Run under telemetry capture; return the human profile table.

        A fresh :func:`repro.obs.capture` session wraps one
        :meth:`run`, so the table covers whatever that run had to do:
        stages not yet built are generated (and timed) inside it, while
        already-cached stages show up only as cache hits.
        """
        from .obs import capture, format_summary

        with capture() as rec:
            self.run(
                backend, shots=shots, in_values=in_values, seed=seed,
                **options,
            )
        return format_summary(rec)

    # -- consumers: rendering and interchange -------------------------------

    def ascii(self, fp=None) -> str | None:
        """The circuit as Quipper-style ASCII text.

        With *fp* the text is written incrementally to the file handle
        through a gate stream (the circuit is not materialized) and
        ``None`` is returned.
        """
        if fp is not None:
            self.stream().write_ascii(fp)
            return None
        from .output.ascii import format_bcircuit

        return format_bcircuit(self.bcircuit)

    def print(self, file=None) -> BCircuit:
        """Print the ASCII rendering; returns the circuit (print_generic)."""
        print(self.ascii(), file=file)
        return self.bcircuit

    def gatecount(self, per_subroutine: bool = False) -> str:
        """The paper's ``-f gatecount`` report as a string."""
        from .output.gatecount import format_gatecount

        return format_gatecount(self.bcircuit, per_subroutine=per_subroutine)

    def dumps(self, fp=None) -> str | None:
        """Serialize to Quipper-ASCII interchange text (round-trips).

        With *fp* the text is streamed to the file handle one gate-line
        at a time -- byte-identical to the returned string, but the
        circuit is never materialized -- and ``None`` is returned.
        """
        if fp is not None:
            self.stream().dump(fp)
            return None
        from .io import dumps as _dumps

        return _dumps(self.bcircuit)

    def qasm(self, fp=None) -> str | None:
        """Export to flat OpenQASM 2.0 (inlines the hierarchy).

        With *fp* the export is streamed: boxed calls are expanded on
        the fly and the body spooled through a temporary file, so
        exports larger than RAM work.  Returns ``None`` in that case.
        """
        if fp is not None:
            self.stream().write_qasm(fp)
            return None
        from .io import bcircuit_to_qasm

        return bcircuit_to_qasm(self.bcircuit)

    # -- misc ---------------------------------------------------------------

    def __len__(self) -> int:
        """Stored gates across the hierarchy (not the inlined count)."""
        return len(self.bcircuit)

    def __repr__(self) -> str:
        state = "built" if self._cache is not None else "lazy"
        return f"<Program {self.name!r} ({state})>"


def subroutine(fn: Callable | None = None, *, name: str | None = None):
    """Declare a circuit function as a boxed subcircuit (Section 4.4.4).

    Every call of the decorated function emits a single ``BoxCall`` gate;
    the body is generated once per argument shape.  Declarative equivalent
    of calling ``qc.box(name, fn, *args)`` by hand::

        @subroutine
        def adder(qc, a, b): ...

        adder(qc, x, y)       # emits BoxCall["adder"]
    """

    def decorate(f: Callable):
        box_name = name or f.__name__

        @functools.wraps(f)
        def wrapper(qc: Circ, *args):
            return qc.box(box_name, f, *args)

        wrapper.box_name = box_name  # type: ignore[attr-defined]
        wrapper.__wrapped__ = f
        return wrapper

    return decorate(fn) if fn is not None else decorate


def main(*shapes, name: str | None = None, on_extra: str = "warn"):
    """Declare a program entry point: the decorated function IS a Program.

    ::

        @main(qubit, qubit)
        def bell(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return qc.measure((a, b))

        bell.run(shots=100)        # a Program, pipeline-ready
        bell(qc, a, b)             # still callable inline

    The shapes are the specimens ``build`` would receive.
    """

    def decorate(f: Callable) -> Program:
        return Program.capture(f, *shapes, name=name, on_extra=on_extra)

    return decorate


__all__ = ["Program", "main", "register_capture", "subroutine"]
