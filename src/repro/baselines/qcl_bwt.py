"""A QCL-style generator for the BWT circuit (the Section 6 baseline).

QCL itself is an interpreter we cannot run here, so -- per the
reproduction's substitution policy -- this module generates the *same BWT
circuit* in the style QCL compiles to, following Section 6's diagnosis of
why QCL's circuits are larger:

* **Global register allocation, no scoped ancillas.**  "Quipper explicitly
  tracks the scope of ancillas whereas QCL does not": every scratch
  register is allocated once at the start (Init only; the paper's QCL
  column has Term = 0) and never returned, roughly doubling the qubit
  count.
* **No flag caching.**  QCL's "quantum functions" re-derive their
  conditions at every conditional operation, so every label-copy CNOT
  carries the full depth-test control pattern instead of a precomputed
  flag qubit.
* **Eager multi-control expansion.**  Every k-controlled gate is expanded
  on the spot into a Toffoli chain over pool scratch qubits, recomputed
  and uncomputed around each individual gate -- no sharing between
  adjacent gates.
* **No final measurement** (the paper's QCL column has Meas = 0).

The numbers this produces land in the paper's regime: an order of
magnitude more logical gates than orthodox Quipper, with about twice the
qubits.
"""

from __future__ import annotations

from ..core.builder import Circ, Signed, build, neg
from ..core.gates import Control, NamedGate
from ..core.wires import QUANTUM, Qubit
from ..algorithms.bwt.graph import (
    WELD_OFFSETS,
    entrance_label,
    register_size,
)


class _QCLCompiler:
    """Mimics QCL's compilation strategy onto the shared circuit IR."""

    def __init__(self, qc: Circ, pool_size: int, register_width: int):
        self.qc = qc
        # The global scratch pool: allocated once, never terminated.
        self.pool = [qc.qinit_qubit(False) for _ in range(pool_size)]
        # The statically-declared shift temporary for condition evaluation.
        self.shift_temp = [
            qc.qinit_qubit(False) for _ in range(register_width)
        ]

    def mcx(self, target: Qubit, controls: list) -> None:
        """A multi-controlled NOT, eagerly expanded QCL-style.

        QCL's gate set has no negative controls, so every empty dot costs
        an X-conjugation of its wire -- this is where the QCL column's
        large "Not" count in the paper's table comes from.  Conditions
        with more than two controls are evaluated into pool scratch with
        a Toffoli chain, recomputed and uncomputed around *each* gate (no
        sharing between gates: QCL has no with_computed).
        """
        qc = self.qc
        normalized = []
        for ctl in controls:
            if isinstance(ctl, Signed):
                normalized.append((ctl.wire, ctl.positive))
            else:
                normalized.append((ctl, True))
        if len(normalized) == 0:
            qc.qnot(target)
            return
        if len(normalized) == 1:
            wire, positive = normalized[0]
            if positive:
                qc.qnot(target, controls=wire)
            else:
                qc.qnot(wire)
                qc.qnot(target, controls=wire)
                qc.qnot(wire)
            return
        self.statement(
            [w if pos else neg(w) for (w, pos) in normalized],
            lambda enable: qc.qnot(target, controls=enable),
        )

    def _evaluate_condition(self, condition: list) -> tuple[Qubit, list]:
        """Evaluate a condition pattern into a pool flag (QCL's ``quif``).

        QCL's conditional statements evaluate their quantum condition
        expression into an enable bit before every statement, and undo it
        after -- nothing is cached across statements.  Returns the enable
        wire and the recorded gates for the caller to replay in reverse.
        """
        qc = self.qc
        recorded: list = []

        def emit(gate: NamedGate) -> None:
            qc._emit_raw(gate)
            recorded.append(gate)

        normalized = []
        for ctl in condition:
            if isinstance(ctl, Signed):
                normalized.append((ctl.wire, ctl.positive))
            else:
                normalized.append((ctl, True))
        for wire, positive in normalized:
            if not positive:
                emit(NamedGate("not", (wire.wire_id,)))
        current = normalized[0][0]
        used = 0
        for nxt, _ in normalized[1:]:
            anc = self.pool[used]
            used += 1
            emit(
                NamedGate(
                    "not",
                    (anc.wire_id,),
                    (
                        Control(current.wire_id, True, QUANTUM),
                        Control(nxt.wire_id, True, QUANTUM),
                    ),
                )
            )
            current = anc
        return current, recorded

    def quif_shift_compare(self, heap: list[Qubit], d: int, constant: int,
                           extra: list, body) -> None:
        """``quif ((heap >> d) == constant && extra) { body }``.

        The interpreter-style evaluation: copy the register into the
        shift temporary, shift right by d with swap cascades (three CNOTs
        per position per step), compare against the constant (X-conjugate
        the zero bits, AND-chain into an enable bit), run the body under
        the enable, and undo everything.  This is where QCL's thousands
        of singly-controlled NOTs come from in the paper's table.
        """
        qc = self.qc
        recorded: list = []

        def emit(gate: NamedGate) -> None:
            qc._emit_raw(gate)
            recorded.append(gate)

        def cnot(target: Qubit, control: Qubit) -> None:
            emit(
                NamedGate(
                    "not",
                    (target.wire_id,),
                    (Control(control.wire_id, True, QUANTUM),),
                )
            )

        width = len(heap)
        temp = self.shift_temp[:width]
        for source, scratch in zip(heap, temp):
            cnot(scratch, source)
        for _ in range(d):
            for j in range(width - 1):
                # swap temp[j], temp[j+1] with three CNOTs
                cnot(temp[j], temp[j + 1])
                cnot(temp[j + 1], temp[j])
                cnot(temp[j], temp[j + 1])
        # Compare temp[0:width-d] against the constant: X the zero bits,
        # then accumulate the conjunction.  Shifted-in high bits must be
        # zero and are part of the comparison (they are |0> already and
        # get X-ed as "expected zero" bits).
        tests: list[tuple[Qubit, bool]] = [
            (temp[j], bool((constant >> j) & 1)) for j in range(width)
        ]
        for wire, expect_one in tests:
            if not expect_one:
                emit(NamedGate("not", (wire.wire_id,)))
        for ctl in extra:
            if isinstance(ctl, Signed) and not ctl.positive:
                emit(NamedGate("not", (ctl.wire.wire_id,)))
        links = [w for (w, _) in tests] + [
            (c.wire if isinstance(c, Signed) else c) for c in extra
        ]
        current = links[0]
        used = 0
        for nxt in links[1:]:
            anc = self.pool[used]
            used += 1
            emit(
                NamedGate(
                    "not",
                    (anc.wire_id,),
                    (
                        Control(current.wire_id, True, QUANTUM),
                        Control(nxt.wire_id, True, QUANTUM),
                    ),
                )
            )
            current = anc
        body(current)
        for gate in reversed(recorded):
            qc._emit_raw(gate.inverse())

    def statement(self, condition: list, emit_body) -> None:
        """Run one conditional statement: evaluate, act, unevaluate."""
        if len(condition) == 0:
            emit_body(None)
            return
        enable, recorded = self._evaluate_condition(condition)
        emit_body(enable)
        for gate in reversed(recorded):
            self.qc._emit_raw(gate.inverse())

    def copy_bit(self, src: Qubit, dst: Qubit, condition: list) -> None:
        """dst ^= src under a condition, as one conditional statement.

        When the source bit itself appears in the condition its value is
        implied: a positive occurrence makes the copy an unconditional
        toggle under the pattern, a negative one makes it a no-op.
        """
        for ctl in condition:
            wire = ctl.wire if isinstance(ctl, Signed) else ctl
            if wire.wire_id == src.wire_id:
                positive = ctl.positive if isinstance(ctl, Signed) else True
                if positive:
                    self.mcx(dst, condition)
                return
        self.statement(
            condition,
            lambda enable: self.qc.qnot(dst, controls=(src, enable)),
        )


def _pos(node: list[Qubit], j: int, n: int) -> Qubit:
    return node[1 + (n - j)]


def _qcl_oracle(compiler: _QCLCompiler, a: list[Qubit], b: list[Qubit],
                r: Qubit, color: int, n: int) -> None:
    """The BWT oracle, QCL-style.

    Each branch is one ``quif ((a >> d) == 1 && ...) { copies }``
    statement; the condition is evaluated arithmetically (shift the label
    into a temporary with swap cascades, compare against the constant),
    exactly as an unoptimizing interpreter compiles it, and re-evaluated
    for every branch.
    """
    qc = compiler.qc
    hi, lo = color >> 1, color & 1
    heap = [_pos(a, j, n) for j in range(n + 1)]  # little-endian

    def quif(d: int, extra: list, statement) -> None:
        # One conditional statement: the interpreter re-evaluates the
        # condition for every statement inside the source-level loop.
        compiler.quif_shift_compare(heap, d, 1, extra, statement)

    def copy(enable: Qubit, src: Qubit, dst: Qubit) -> None:
        qc.qnot(dst, controls=(src, enable))

    for d in range(0, n):
        if d % 2 == hi:
            for j in range(0, n):
                quif(d, [], lambda en, j=j: copy(
                    en, _pos(a, j, n), _pos(b, j + 1, n)))
            if lo:
                quif(d, [], lambda en: qc.qnot(_pos(b, 0, n), controls=en))
            quif(d, [], lambda en: copy(en, a[0], b[0]))
            quif(d, [], lambda en: qc.qnot(r, controls=en))
    for d in range(1, n + 1):
        if (d - 1) % 2 == hi:
            low = _pos(a, 0, n)
            extra = [low if lo else neg(low)]
            for j in range(1, n + 1):
                quif(d, extra, lambda en, j=j: copy(
                    en, _pos(a, j, n), _pos(b, j - 1, n)))
            quif(d, extra, lambda en: copy(en, a[0], b[0]))
            quif(d, extra, lambda en: qc.qnot(r, controls=en))
    if n % 2 == hi:
        for j in range(0, n):
            quif(n, [], lambda en, j=j: copy(
                en, _pos(a, j, n), _pos(b, j, n)))
        quif(n, [], lambda en: qc.qnot(_pos(b, n, n), controls=en))
        quif(n, [], lambda en: copy(en, a[0], b[0]))
        quif(n, [], lambda en: qc.qnot(b[0], controls=en))
        g = WELD_OFFSETS[lo] % (1 << n)
        if g:
            quif(n, [], lambda en: _qcl_add_const(
                compiler, b, g, [en, neg(a[0])], n))
            quif(n, [], lambda en: _qcl_add_const(
                compiler, b, (1 << n) - g, [en, a[0]], n))
        quif(n, [], lambda en: qc.qnot(r, controls=en))
    qc.qnot(r)


def _qcl_add_const(compiler: _QCLCompiler, b: list[Qubit], value: int,
                   cond: list, n: int) -> None:
    """b[0:n] += value (mod 2^n), as cascaded controlled increments.

    The schoolbook controlled increment: for each set bit k of the value,
    a descending cascade of multi-controlled NOTs (carry propagation by
    brute force) -- the shape a naive imperative compiler produces.
    """
    for k in range(n):
        if not ((value >> k) & 1):
            continue
        # Increment the register's bits k..n-1 as a counter.
        for j in range(n - 1, k, -1):
            controls = cond + [
                _pos(b, i, n) for i in range(k, j)
            ]
            compiler.mcx(_pos(b, j, n), controls)
        compiler.mcx(_pos(b, k, n), cond)


def _qcl_timestep(compiler: _QCLCompiler, a: list[Qubit], b: list[Qubit],
                  r: Qubit, h: Qubit, t: float) -> None:
    """The Figure 1 gadget with a globally-allocated ancilla h."""
    qc = compiler.qc
    for x, y in zip(a, b):
        qc.gate_W(x, y)
    for x, y in zip(a, b):
        compiler.mcx(h, [x, neg(y)])
    qc.expZt(t, h, controls=neg(r))
    for x, y in reversed(list(zip(a, b))):
        compiler.mcx(h, [x, neg(y)])
    for x, y in reversed(list(zip(a, b))):
        qc.gate_W(x, y)


def qcl_bwt_circuit(n: int, s: int, t: float):
    """Generate the complete BWT circuit, QCL-style.

    Same algorithm and parameters as
    :func:`repro.algorithms.bwt.bwt_circuit`, different compilation
    strategy; the Section 6 comparison table is these two side by side.
    """

    def program(qc: Circ):
        m = register_size(n)
        compiler = _QCLCompiler(qc, pool_size=m + n, register_width=n + 1)
        entrance = entrance_label(n)
        a = [qc.qinit_qubit(False) for _ in range(m)]
        for i in range(m):
            if (entrance >> (m - 1 - i)) & 1:
                qc.qnot(a[i])
        # Global registers, allocated once (never scoped, never freed).
        # QCL declares its working registers statically, including the
        # expression temporaries its interpreter materializes (a shifted
        # copy of the node label, comparison scratch, adder carries) --
        # the reason the paper's QCL circuit "uses twice as many qubits".
        b = [qc.qinit_qubit(False) for _ in range(m)]
        r = qc.qinit_qubit(False)
        h = qc.qinit_qubit(False)
        _compare_temp = [qc.qinit_qubit(False) for _ in range(m)]
        _carry_temp = [qc.qinit_qubit(False) for _ in range(n)]
        for _ in range(s):
            for color in range(4):
                _qcl_oracle(compiler, a, b, r, color, n)
                _qcl_timestep(compiler, a, b, r, h, t)
                _qcl_oracle(compiler, a, b, r, color, n)
        return None

    return build(program)[0]
