"""Baseline comparators for the paper's evaluation (Section 6)."""

from .qcl_bwt import qcl_bwt_circuit

__all__ = ["qcl_bwt_circuit"]
