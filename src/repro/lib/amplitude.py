"""Amplitude amplification and Grover iteration (paper Section 3.1).

"Amplitude amplification (also known as Grover's search) is used to
increase the amplitude of certain basis states in a superposition, while
decreasing others."

The phase oracle convention: an oracle is a circuit function that flips the
phase of the marked basis states.  :func:`phase_oracle_from_bit_oracle`
converts a bit-computing oracle into a phase oracle by computing the bit,
applying Z, and uncomputing (phase kickback without the |-> ancilla).
"""

from __future__ import annotations

from typing import Callable

from ..core.builder import Circ, neg
from ..core.qdata import qdata_leaves


def phase_flip_if_zero(qc: Circ, data) -> None:
    """Flip the phase of the all-|0> component of *data*.

    Implemented as a Z on the last qubit, negatively controlled on all the
    others, conjugated by X on the last (so the phase lands on |00..0>).
    """
    leaves = qdata_leaves(data)
    last = leaves[-1]
    rest = leaves[:-1]
    qc.qnot(last)
    qc.gate_Z(last, controls=[neg(q) for q in rest] or None)
    qc.qnot(last)


def diffuse(qc: Circ, data) -> None:
    """The Grover diffusion operator: inversion about the uniform state."""
    for q in qdata_leaves(data):
        qc.hadamard(q)
    phase_flip_if_zero(qc, data)
    for q in qdata_leaves(data):
        qc.hadamard(q)


def phase_oracle_from_bit_oracle(
    qc: Circ, bit_oracle: Callable, data
) -> None:
    """Phase-flip the states on which *bit_oracle* computes True.

    ``bit_oracle(qc, data)`` must return a fresh qubit holding the
    predicate; it is computed, a Z applies the phase, and the computation
    is uncomputed (``with_computed``).
    """
    qc.with_computed(
        lambda: bit_oracle(qc, data),
        lambda result: qc.gate_Z(result),
    )


def grover_iteration(qc: Circ, data, phase_oracle: Callable) -> None:
    """One Grover iteration: phase oracle, then diffusion."""
    phase_oracle(qc, data)
    diffuse(qc, data)


def amplitude_amplification(
    qc: Circ, data, phase_oracle: Callable, iterations: int
) -> None:
    """Iterate Grover steps *iterations* times (paper Section 3.1)."""
    for _ in range(iterations):
        grover_iteration(qc, data, phase_oracle)


def prepare_uniform(qc: Circ, data) -> None:
    """Map |00..0> to the uniform superposition (H on every qubit)."""
    for q in qdata_leaves(data):
        qc.hadamard(q)
