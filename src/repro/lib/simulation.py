"""Hamiltonian simulation helpers: Pauli exponentials and Trotter steps.

Used by the Ground State Estimation algorithm (paper Section 1: "Ground
State Estimation (GSE): To compute the ground state energy level of a
particular molecule"), which phase-estimates ``exp(-iHt)`` for a molecular
Hamiltonian written as a sum of Pauli strings.

``exp(-i t c P)`` for a Pauli string P is the textbook construction: basis
changes mapping each X/Y factor to Z, a CNOT parity ladder onto the last
involved qubit, the ``exp(-iZt)`` rotation, and the mirror (paper Section
3.4: "iteration (e.g., Trotterization)").
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.builder import Circ
from ..core.wires import Qubit

#: A Pauli string: mapping qubit index -> 'X' | 'Y' | 'Z'.
PauliString = dict[int, str]

#: A Hamiltonian: list of (coefficient, PauliString) terms.  The empty
#: string is the identity (a global energy offset).
Hamiltonian = list[tuple[float, PauliString]]


def exp_pauli(
    qc: Circ,
    t: float,
    coeff: float,
    pauli: PauliString,
    qubits: Sequence[Qubit],
    control: Qubit | None = None,
) -> None:
    """Apply ``exp(-i * t * coeff * P)`` for the Pauli string P.

    With *control*, the rotation (and only the rotation -- the basis
    changes and parity ladder are self-cancelling) is controlled, giving
    controlled-U for phase estimation at no extra cost.
    """
    if not pauli:
        # exp(-i t c I) is a global phase; visible only under control.
        qc.named_gate("phase", controls=control, param=-t * coeff)
        return
    indices = sorted(pauli)

    def basis_change():
        for index in indices:
            kind = pauli[index]
            if kind == "X":
                qc.hadamard(qubits[index])
            elif kind == "Y":
                # Map Y to Z: apply H S-dagger (so that S H maps back).
                qc.gate_S(qubits[index], inverted=True)
                qc.hadamard(qubits[index])
        for first, second in zip(indices, indices[1:]):
            qc.qnot(qubits[second], controls=qubits[first])
        return indices[-1]

    def rotation(last_index):
        qc.expZt(t * coeff, qubits[last_index], controls=control)
        return None

    qc.with_computed(basis_change, rotation)


def trotter_step(
    qc: Circ,
    hamiltonian: Hamiltonian,
    t: float,
    qubits: Sequence[Qubit],
    control: Qubit | None = None,
) -> None:
    """One first-order Trotter step: apply each term's exponential for t."""
    for coeff, pauli in hamiltonian:
        exp_pauli(qc, t, coeff, pauli, qubits, control=control)


def trotterized_evolution(
    qc: Circ,
    hamiltonian: Hamiltonian,
    t: float,
    steps: int,
    qubits: Sequence[Qubit],
    control: Qubit | None = None,
) -> None:
    """Approximate ``exp(-iHt)`` with *steps* first-order Trotter steps."""
    dt = t / steps
    for _ in range(steps):
        trotter_step(qc, hamiltonian, dt, qubits, control=control)
