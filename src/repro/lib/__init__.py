"""Quantum algorithm primitives (paper Section 3.1).

QFT, amplitude amplification, phase estimation, quantum-walk pieces,
quantum-addressed memory, and Hamiltonian-simulation helpers -- "the heart
of what makes a quantum algorithm potentially outperform its classical
counterpart".
"""

from .amplitude import (
    amplitude_amplification,
    diffuse,
    grover_iteration,
    phase_flip_if_zero,
    phase_oracle_from_bit_oracle,
    prepare_uniform,
)
from .phase_estimation import phase_estimation
from .qft import qft, qft_big_endian, qft_big_endian_inverse, qft_inverse
from .qram import qram_fetch, qram_store, qram_swap
from .simulation import (
    Hamiltonian,
    PauliString,
    exp_pauli,
    trotter_step,
    trotterized_evolution,
)
from .walk import adjacency_interaction, repeat_walk_steps, walk_diffusion

__all__ = [
    "qft",
    "qft_inverse",
    "qft_big_endian",
    "qft_big_endian_inverse",
    "amplitude_amplification",
    "grover_iteration",
    "diffuse",
    "phase_flip_if_zero",
    "phase_oracle_from_bit_oracle",
    "prepare_uniform",
    "phase_estimation",
    "qram_fetch",
    "qram_store",
    "qram_swap",
    "exp_pauli",
    "trotter_step",
    "trotterized_evolution",
    "Hamiltonian",
    "PauliString",
    "adjacency_interaction",
    "repeat_walk_steps",
    "walk_diffusion",
]
