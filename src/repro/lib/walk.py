"""Quantum-walk building blocks (paper Section 3.1).

"Quantum walks can be described as the quantum counterpart to random
walks."  Two styles appear in the paper's algorithm suite:

* *continuous-time* walks, simulated by Trotterized evolution of the
  graph's adjacency Hamiltonian -- this is the Binary Welded Tree
  algorithm's diffusion step (Figure 1), built from W gates and
  ``exp(-iZt)``;
* *discrete, Grover-based* walks on a larger graph -- the Triangle
  Finding algorithm's walk on the Hamming graph, whose step mixes a
  diffusion of the "direction" registers with data updates.

This module holds the shared generic pieces; the algorithm-specific step
structure lives with each algorithm.
"""

from __future__ import annotations

from typing import Callable

from ..core.builder import Circ
from ..core.qdata import qdata_leaves
from .amplitude import diffuse


def walk_diffusion(qc: Circ, data) -> None:
    """Grover diffusion of a walk's direction/coin registers.

    This is what the TF algorithm's ``a7_DIFFUSE`` applies to the pair
    (index, node) choosing the next Hamming-graph neighbour.
    """
    diffuse(qc, data)


def adjacency_interaction(
    qc: Circ, a, b, edge_control, t: float
) -> None:
    """One welded-tree-style interaction term between node registers.

    Applies the Figure 1 gadget: W-gates entangle corresponding qubit
    pairs of *a* and *b*, a phase evolution ``exp(-iZt)`` acts on an
    ancilla computed from the pair-difference pattern, and the W-gates are
    undone.  *edge_control* (a qubit or None) gates the evolution on the
    presence of the edge.
    """
    a_leaves = qdata_leaves(a)
    b_leaves = qdata_leaves(b)

    def enter_w_basis():
        for x, y in zip(a_leaves, b_leaves):
            qc.gate_W(x, y)
        return None

    def evolve(_):
        with qc.ancilla() as scratch:
            controls = list(a_leaves)
            qc.qnot(scratch, controls=controls)
            ctl = [edge_control] if edge_control is not None else None
            qc.expZt(t, scratch, controls=ctl)
            qc.qnot(scratch, controls=controls)
        return None

    qc.with_computed(enter_w_basis, evolve)


def repeat_walk_steps(
    qc: Circ, step: Callable, data, steps: int, box_name: str | None = None
) -> object:
    """Iterate a walk step; with *box_name*, as a repeated boxed subroutine.

    The boxed form keeps the circuit representation O(1) in the number of
    steps -- the mechanism behind the paper's trillion-gate circuits.
    """
    if box_name is None:
        for _ in range(steps):
            data = step(qc, data)
        return data
    return qc.nbox(box_name, steps, step, data)
