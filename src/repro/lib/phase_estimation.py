"""Phase estimation (paper Section 3.1).

"Phase estimation is a technique for estimating eigenvalues of a unitary
operator."  Given a circuit implementing controlled powers of U and a
target register holding (a component of) an eigenvector, the standard
circuit estimates the eigenphase to ``precision`` bits:

    |0..0>|psi>  ->  |round(2^m * theta)>|psi>     (U|psi> = e^{2 pi i theta}|psi>)

The caller provides ``controlled_power(qc, target, power, control)``, which
must apply U^power to the target under the given control qubit -- circuit
implementations that can scale a time parameter (e.g. Trotterized
Hamiltonian simulation in GSE) do this in O(1) gates per power.
"""

from __future__ import annotations

from typing import Callable

from ..core.builder import Circ
from ..datatypes.qdint import QDInt
from .qft import qft_big_endian_inverse


def phase_estimation(
    qc: Circ,
    controlled_power: Callable,
    target,
    precision: int,
) -> QDInt:
    """Estimate the eigenphase of U on *target* to *precision* bits.

    Returns a fresh ``QDInt`` register (MSB first) holding the phase
    estimate; measuring it yields ``round(2^precision * theta)`` with high
    probability.  The control register is returned unmeasured so callers
    can amplify or post-select.
    """
    controls = [qc.qinit_qubit(False) for _ in range(precision)]
    for q in controls:
        qc.hadamard(q)
    # controls[0] is the most significant bit: it controls U^(2^(m-1)).
    for index, ctl in enumerate(controls):
        power = 1 << (precision - 1 - index)
        controlled_power(qc, target, power, ctl)
    qft_big_endian_inverse(qc, list(reversed(controls)))
    # After the swapless inverse QFT the phase bits come out reversed;
    # relabel (gate-free) so the returned register reads MSB-first.
    return QDInt(list(reversed(controls)))
