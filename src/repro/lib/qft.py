"""The quantum Fourier transform (paper Section 3.1).

"The quantum Fourier transform is a unitary change of basis analogous to
the classical Fourier transform, and is used in many quantum algorithms,
for example to find the period of a periodic function."

The circuit is the textbook ladder of Hadamards and controlled phase
rotations (the ``rGate`` R_m = diag(1, exp(2 pi i / 2^m))).  No terminal
swaps are emitted; instead the *returned* qubit list is reversed, which is
the Quipper convention (wire relabeling is free).
"""

from __future__ import annotations

from ..core.builder import Circ
from ..core.wires import Qubit
from ..datatypes.register import Register


def qft_big_endian(qc: Circ, qs: list[Qubit]) -> list[Qubit]:
    """QFT over a big-endian qubit list, *without* the bit reversal.

    After the circuit, qubit i holds the Fourier phase ``0.j_{i+1}..j_n``
    (so the logical output order is the reverse of the input order).  Used
    directly by the Draper adder, which tracks phases positionally.
    """
    n = len(qs)
    for i in range(n):
        qc.hadamard(qs[i])
        for j in range(i + 1, n):
            qc.rGate(j - i + 1, qs[i], controls=qs[j])
    return qs


def qft_big_endian_inverse(qc: Circ, qs: list[Qubit]) -> list[Qubit]:
    """The exact inverse gate sequence of :func:`qft_big_endian`."""
    n = len(qs)
    for i in range(n - 1, -1, -1):
        for j in range(n - 1, i, -1):
            qc.rGate(j - i + 1, qs[i], controls=qs[j], inverted=True)
        qc.hadamard(qs[i])
    return qs


def qft(qc: Circ, data) -> object:
    """QFT over a register or qubit list; returns the relabeled result.

    The output is bit-reversed relative to the input (the swaps are
    performed by relabeling rather than gates).
    """
    qs = _as_list(data)
    qft_big_endian(qc, qs)
    return _rebuild(data, list(reversed(qs)))


def qft_inverse(qc: Circ, data) -> object:
    """Inverse QFT; exactly inverts :func:`qft` including the relabeling."""
    qs = list(reversed(_as_list(data)))
    qft_big_endian_inverse(qc, qs)
    return _rebuild(data, qs)


def _as_list(data) -> list[Qubit]:
    if isinstance(data, Register):
        return list(data.wires)
    return list(data)


def _rebuild(data, qs: list[Qubit]):
    if isinstance(data, Register):
        return data.qdata_rebuild(qs)
    return qs
