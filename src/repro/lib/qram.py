"""Quantum-addressed register access (the TF algorithm's qRAM).

The paper's ``a6_QWSH`` subroutine uses ``qram_fetch`` and ``qram_store``
to move the Hamming-tuple component addressed by a quantum index register
in and out of a scratch register.  A "table" here is a dict mapping each
classical address to a piece of quantum data (the paper's
``IntMap QNode``); the address register is a :class:`QDInt`.

Each operation iterates over the classical addresses, applying gates
controlled on the address register matching that address (a mix of
positive and negative controls -- another source of the paper's
``controls a+b`` gate counts).
"""

from __future__ import annotations

from ..core.builder import Circ, Signed, neg
from ..core.errors import ShapeMismatchError
from ..core.qdata import qdata_leaves
from ..datatypes.qdint import QDInt


def _address_controls(index: QDInt, address: int) -> list[Signed]:
    """The control pattern asserting ``index == address``."""
    controls = []
    for i in range(len(index)):
        wire = index.bit(i)
        controls.append(wire if (address >> i) & 1 else neg(wire))
    return controls


def _entry_leaves(table: dict, address: int):
    leaves = qdata_leaves(table[address])
    return leaves


def qram_fetch(qc: Circ, index: QDInt, table: dict, target) -> None:
    """target ^= table[index] (quantum-indexed fetch).

    For every address a in the table, XORs entry a into the target under
    the control pattern ``index == a``.
    """
    target_leaves = qdata_leaves(target)
    for address in sorted(table):
        controls = _address_controls(index, address)
        entry = _entry_leaves(table, address)
        if len(entry) != len(target_leaves):
            raise ShapeMismatchError(
                f"table entry {address} shape differs from target"
            )
        for src, dst in zip(entry, target_leaves):
            qc.qnot(dst, controls=[src, *controls])


def qram_store(qc: Circ, index: QDInt, table: dict, source) -> None:
    """table[index] ^= source (quantum-indexed store)."""
    source_leaves = qdata_leaves(source)
    for address in sorted(table):
        controls = _address_controls(index, address)
        entry = _entry_leaves(table, address)
        if len(entry) != len(source_leaves):
            raise ShapeMismatchError(
                f"table entry {address} shape differs from source"
            )
        for src, dst in zip(source_leaves, entry):
            qc.qnot(dst, controls=[src, *controls])


def qram_swap(qc: Circ, index: QDInt, table: dict, other) -> None:
    """Swap table[index] with *other* (quantum-indexed swap).

    Implemented as three quantum-indexed XORs, the register-level analogue
    of the three-CNOT swap.
    """
    qram_fetch(qc, index, table, other)
    qram_store(qc, index, table, other)
    qram_fetch(qc, index, table, other)
