"""F1: Figure 1 -- the BWT diffusion timestep.

"Example of a quantum circuit ... showing a diffusion step from the Binary
Welded Tree algorithm": W gates on each (a_i, b_i) pair, a controlled-NOT
cascade onto an ancilla (positive on a, negative on b), the exp(-iZt)
evolution negatively controlled on r, and the mirror image.
"""

from repro import aggregate_gate_count, build
from repro.core.gates import Init, NamedGate, Term
from repro.algorithms.bwt import register_size, timestep
from conftest import report


def _build_timestep(n):
    m = register_size(n)

    def circ(qc):
        a = [qc.qinit_qubit(False) for _ in range(m)]
        b = [qc.qinit_qubit(False) for _ in range(m)]
        r = qc.qinit_qubit(False)
        timestep(qc, a, b, r, 0.2)
        return a, b, r

    bc, _ = build(circ)
    return bc, m


def test_figure1_structure(benchmark):
    bc, m = benchmark(_build_timestep, 4)
    counts = aggregate_gate_count(bc)
    w_count = counts[("W", 0, 0)]
    cascade = counts[("Not", 1, 1)]
    evolution = counts[("exp(-i%Z)", 0, 1)]
    assert w_count == 2 * m          # W forward + W dagger (self-inverse)
    assert cascade == 2 * m          # the (+a_i, -b_i) cascade and mirror
    assert evolution == 1            # e^{-iZt}, empty-dot controlled on r
    # the scope of the gadget ancilla is explicit
    body = bc.circuit.gates
    init_positions = [i for i, g in enumerate(body) if isinstance(g, Init)]
    term_positions = [i for i, g in enumerate(body) if isinstance(g, Term)]
    assert term_positions[-1] > init_positions[-1]
    report(
        "F1 BWT diffusion timestep (Figure 1)",
        [
            ("W gates (pairs x fwd/bwd)", "2 per pair", w_count),
            ("controlled-not cascade", "1 per pair, mirrored", cascade),
            ("exp(-iZt), neg. control on r", 1, evolution),
        ],
    )


def test_figure1_scales_with_n(benchmark):
    def run():
        return [
            aggregate_gate_count(_build_timestep(n)[0])[("W", 0, 0)]
            for n in (2, 4, 8)
        ]

    w_counts = benchmark(run)
    assert w_counts == [2 * register_size(n) for n in (2, 4, 8)]
