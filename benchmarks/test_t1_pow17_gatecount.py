"""T1: the Section 5.3.1 gate-count listing for o4_POW17.

Paper (l=4, n=3, r=2, Toffoli base)::

    1636: "Init0"
    3484: "Not", controls 1
    288: "Not" controls 1+1
    2592: "Not", controls 2
    1632: "Term0"
    Total gates: 9632
    Inputs: 4 / Outputs: 8 / Qubits in circuit: 71

Shape claims asserted: the same gate-kind vocabulary, roughly a third of
the gates being initializations/terminations (the explicit ancilla
scoping), controlled-not domination, and matching interface arities.
"""

from repro import TOFFOLI, aggregate_gate_count, decompose_generic, total_gates
from repro.algorithms.tf.main import build_part
from conftest import report

PAPER = {
    "Init0": 1636,
    "Not c1": 3484,
    "Not c1+1": 288,
    "Not c2": 2592,
    "Term0": 1632,
    "total": 9632,
    "qubits": 71,
}


def _counts():
    bc = build_part("pow17", 4, 3, 2, "orthodox")
    bc = decompose_generic(TOFFOLI, bc)
    return bc, aggregate_gate_count(bc)


def test_t1_gatecount_table(benchmark):
    bc, counts = benchmark(_counts)
    total = total_gates(counts)
    init = sum(v for (k, _, _), v in counts.items() if k.startswith("Init"))
    term = sum(v for (k, _, _), v in counts.items() if k.startswith("Term"))
    not1 = counts[("Not", 1, 0)] + counts[("Not", 0, 1)]
    not11 = counts[("Not", 1, 1)]
    not2 = counts[("Not", 2, 0)] + counts[("Not", 0, 2)]
    width = bc.check()

    # -- shape claims ------------------------------------------------------
    # same gate vocabulary: only Init/Term and controlled nots
    for (kind, _, _) in counts:
        assert kind.startswith(("Init", "Term", "Not")), kind
    # explicit ancilla discipline: Init ~ Term, and together a sizable
    # fraction of the circuit ("about one third", Section 5.3.1)
    assert abs(init - term) <= 8  # the 4 extra outputs stay un-terminated
    assert 0.15 <= (init + term) / total <= 0.5
    # controlled-nots dominate
    assert (not1 + not11 + not2) / total >= 0.5
    # interface matches the paper exactly
    assert bc.circuit.in_arity == 4
    assert bc.circuit.out_arity == 8
    # same order of magnitude throughout
    assert 3_000 <= total <= 100_000
    assert 30 <= width <= 200

    report(
        "T1 o4_POW17 aggregated gate count (Section 5.3.1)",
        [
            ("Init0", PAPER["Init0"], init),
            ("Not, controls 1", PAPER["Not c1"], not1),
            ("Not, controls 1+1", PAPER["Not c1+1"], not11),
            ("Not, controls 2", PAPER["Not c2"], not2),
            ("Term0", PAPER["Term0"], term),
            ("Total gates", PAPER["total"], total),
            ("Inputs", 4, bc.circuit.in_arity),
            ("Outputs", 8, bc.circuit.out_arity),
            ("Qubits in circuit", PAPER["qubits"], width),
        ],
    )
