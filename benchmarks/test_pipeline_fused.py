"""Fused vs sequential transformer cost on a deep boxed circuit.

The redesign claim: applying k transformer rules through the fused
pipeline (one traversal of the box hierarchy, each gate flowing through
the whole rule chain) beats k sequential ``transform_bcircuit`` passes
(k full hierarchy rewrites, k intermediate namespaces, k width
recomputations).

The measured numbers are recorded once to ``benchmarks/baselines/
fused_transform.json`` (written only if absent, so runs never dirty the
committed baseline) and every later run reports itself against that
recorded speedup.
"""

from __future__ import annotations

import statistics
import time

from repro import build, qubit
from repro.core.gates import NamedGate
from repro.transform import (
    aggregate_gate_count,
    canonicalize_wires,
    to_toffoli,
    transform_bcircuit_fused,
)
from repro.transform.transformer import _legacy_transform_bcircuit

from conftest import quick_mode, record_benchmark, report

#: Box-hierarchy depth and per-body gate count of the benchmark circuit.
DEPTH = 10 if quick_mode() else 50
BODY_GATES = 24
REPEATS = 1 if quick_mode() else 3


def _s_to_tt(qc, gate):
    if isinstance(gate, NamedGate) and gate.name == "S":
        half = NamedGate(
            "T", gate.targets, gate.controls, inverted=gate.inverted
        )
        qc._emit_raw(half)
        qc._emit_raw(half)
        return True
    return False


def _t_to_hsh(qc, gate):
    if isinstance(gate, NamedGate) and gate.name == "T" and not gate.controls:
        for name in ("H", "S", "H"):
            qc._emit_raw(NamedGate(name, gate.targets))
        return True
    return False


RULES = (to_toffoli, _s_to_tt, _t_to_hsh)


def _deep_boxed_circuit():
    """DEPTH nested boxed levels, each body mixing plain and 3-control gates."""

    def emit_body(qc, qs):
        a, b, c, d = qs
        for _ in range(BODY_GATES // 4):
            qc.gate_S(a)
            qc.hadamard(b)
            qc.qnot(d, controls=(a, b, c))  # toffoli rule fires
            qc.gate_T(c)
        return qs

    def make_level(inner, name):
        def level(qc, qs):
            qs = qc.box(name, inner, qs) if inner is not None else qs
            return emit_body(qc, qs)

        return level

    fn = None
    for depth in range(DEPTH):
        fn = make_level(fn, f"level{depth}")
    return build(lambda qc, qs: fn(qc, qs), [qubit] * 4)[0]


def _time(fn) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _sequential(bc):
    for rule in RULES:
        bc = _legacy_transform_bcircuit(bc, rule)
    return bc


def test_fused_beats_sequential_passes():
    bc = _deep_boxed_circuit()
    stored = len(bc)

    seq_time = _time(lambda: _sequential(bc))
    fused_time = _time(lambda: transform_bcircuit_fused(bc, *RULES))

    # Same circuit either way (up to ancilla numbering).
    seq = _sequential(bc)
    fused = transform_bcircuit_fused(bc, *RULES)
    assert aggregate_gate_count(fused) == aggregate_gate_count(seq)
    assert canonicalize_wires(fused) == canonicalize_wires(seq)

    speedup = seq_time / fused_time
    record = {
        "depth": DEPTH,
        "stored_gates": stored,
        "rules": len(RULES),
        "sequential_s": round(seq_time, 6),
        "fused_s": round(fused_time, 6),
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("fused_transform", record)

    report(
        "fused vs sequential transformer (3 rules, deep boxed circuit)",
        [
            ("stored gates", "-", stored),
            ("sequential 3 passes (s)", "-", f"{seq_time:.4f}"),
            ("fused single pass (s)", "-", f"{fused_time:.4f}"),
            ("speedup", ">= 1", f"{speedup:.2f}x"),
            (
                "recorded baseline speedup",
                "-",
                baseline["speedup"] if baseline else "recorded now",
            ),
        ],
    )
    # The fused pipeline must do strictly less work than k passes; a 10%
    # scheduling-noise allowance keeps local machines from flaking, and
    # quick (CI smoke) mode skips the timing assertion entirely.
    if not quick_mode():
        assert fused_time <= seq_time * 1.1, record
