"""Compile-service throughput: cold compiles vs cache hits vs run fan-out.

The service's reason to exist is that the second request for a circuit
should cost network + lookup, not another pipeline build.  This
benchmark boots a real in-process server on an ephemeral port and
measures, through the actual HTTP client:

* **cold** -- median sync-query latency for never-seen specs (every one
  a full generate + compile);
* **hit** -- median latency re-querying one hot spec;
* **run fan-out** -- seeded simulation jobs from concurrent clients
  through the sharded worker pool: jobs/sec and the server-side p99.

The recorded ``speedup`` (cold / hit) lands in
``benchmarks/baselines/service.json``; the content-address cache claims
at least 10x and typically delivers orders of magnitude.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

from conftest import quick_mode, record_benchmark, report

#: Tree height of the BWT specs (distinct `t` values make distinct
#: digests at identical compile cost, so every cold sample is honest).
TREE = 3 if quick_mode() else 4
COLD_SPECS = 3 if quick_mode() else 6
HIT_REPS = 20 if quick_mode() else 200
RUN_JOBS = 4 if quick_mode() else 12
RUN_CLIENTS = 2 if quick_mode() else 4
SHOTS = 16 if quick_mode() else 32


def _spec(index: int) -> dict:
    # optimize=True makes every cold build pay the full pipeline
    # (generate + peephole passes), keeping the cold/hit gap wide and
    # stable on noisy runners.
    return {"program": "bwt", "optimize": True,
            "params": {"n": TREE, "t": 0.1 + index * 0.01}}


def _measure(server: ServiceServer) -> dict:
    with ServiceClient("127.0.0.1", server.port, timeout=300) as svc:
        cold = []
        for i in range(COLD_SPECS):
            start = time.perf_counter()
            svc.query(**_spec(i), action="count")
            cold.append((time.perf_counter() - start) * 1e3)
        hot = _spec(0)
        hits = []
        for _ in range(HIT_REPS):
            start = time.perf_counter()
            svc.query(**hot, action="count")
            hits.append((time.perf_counter() - start) * 1e3)

    # Fan-out uses a fixed small walk (sub-second statevector runs):
    # the measurement is pool throughput, not simulation weight.
    run_spec = {
        "program": "bwt", "params": {"n": 3, "t": 0.1}, "action": "run",
        "run": {"backend": "statevector", "shots": SHOTS, "seed": 7},
    }

    def run_client(worker: int) -> list[bytes]:
        payloads = []
        with ServiceClient("127.0.0.1", server.port, timeout=300) as svc:
            for _ in range(RUN_JOBS // RUN_CLIENTS):
                job = svc.submit(**run_spec)
                status = svc.wait(job["id"], timeout=300)
                assert status["state"] == "done", status
                payloads.append(json.dumps(
                    svc.result(job["id"])["result"], sort_keys=True
                ).encode())
        return payloads

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=RUN_CLIENTS) as pool:
        batches = list(pool.map(run_client, range(RUN_CLIENTS)))
    run_wall = time.perf_counter() - start
    payloads = [p for batch in batches for p in batch]
    assert len(set(payloads)) == 1, "seeded runs must be byte-identical"

    with ServiceClient("127.0.0.1", server.port, timeout=60) as svc:
        stats = svc.stats()
    return {
        "cold_ms": statistics.median(cold),
        "hit_ms": statistics.median(hits),
        "run_wall_s": run_wall,
        "jobs": len(payloads),
        "stats": stats,
    }


def test_service_throughput():
    async def scenario():
        server = ServiceServer(port=0, shards=2, max_running=8)
        await server.start()
        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, _measure, server
            )
        finally:
            await server.stop()

    measured = asyncio.run(scenario())
    counters = measured["stats"]["service"]["counters"]
    latency = measured["stats"]["service"]["latency"]

    # Shape claims that hold at any size: one miss per distinct digest
    # (the run spec, unoptimized, never collides with the cold specs),
    # every other request -- coalesced in-flight waiters included --
    # served from the cache.
    digests = COLD_SPECS + 1
    requests = COLD_SPECS + HIT_REPS + measured["jobs"]
    assert counters["cache.misses"] == digests
    assert counters["cache.hits"] == requests - digests

    speedup = measured["cold_ms"] / measured["hit_ms"]
    jobs_per_s = measured["jobs"] / measured["run_wall_s"]
    record = {
        "tree": TREE,
        "cold_specs": COLD_SPECS,
        "hit_reps": HIT_REPS,
        "run_jobs": measured["jobs"],
        "cold_ms": round(measured["cold_ms"], 3),
        "hit_ms": round(measured["hit_ms"], 3),
        "hit_p99_ms": latency["hit"]["p99_ms"],
        "run_p99_ms": latency["run"]["p99_ms"],
        "jobs_per_s": round(jobs_per_s, 2),
        "speedup": round(speedup, 2),
    }
    baseline = record_benchmark("service", record)

    report("compile service: cold vs cache-hit vs run fan-out", [
        ("cold compile median (ms)", "-", record["cold_ms"]),
        ("cache hit median (ms)", "-", record["hit_ms"]),
        ("cache-hit speedup", ">= 10x", record["speedup"]),
        ("run jobs / s", "-", record["jobs_per_s"]),
        ("run p99 (ms)", "-", record["run_p99_ms"]),
        ("baseline speedup", "-",
         baseline.get("speedup") if baseline else "(recorded)"),
    ])

    if not quick_mode():
        # The headline acceptance claim, with comfortable margin over
        # the recorded baselines' typical two orders of magnitude.
        assert speedup >= 10.0, (
            f"cache hits only {speedup:.1f}x faster than cold compiles"
        )
