"""T3: the Section 5.4 whole-algorithm count -- the trillion-gate result.

Paper: ``./tf -f gatecount -o orthodox -l 31 -n 15 -r 6`` "runs to
completion in under two minutes and produces a count of 30189977982990
(over 30 trillion) total gates and 4676 qubits."

This is the headline scalability claim: the hierarchical (boxed) circuit
representation makes counting a 3*10^13-gate circuit a matter of seconds,
because subroutine counts multiply through call sites instead of ever
being materialized.
"""

import time

from repro import TOFFOLI, aggregate_gate_count, decompose_generic, total_gates
from repro.algorithms.tf.main import build_part
from conftest import report

PAPER_GATES = 30_189_977_982_990
PAPER_QUBITS = 4676


def _measure():
    bc = build_part("full", 31, 15, 6, "orthodox")
    stored = len(bc)
    bc = decompose_generic(TOFFOLI, bc)
    counts = aggregate_gate_count(bc)
    return total_gates(counts), bc.check(), stored


def test_t3_trillions_of_gates(benchmark):
    start = time.time()
    total, qubits, stored = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    elapsed = time.time() - start
    # over 10 trillion gates, counted exactly
    assert total > 10_000_000_000_000
    assert total < 1_000_000_000_000_000
    # thousands of qubits, like the paper's 4676
    assert 1_000 <= qubits <= 20_000
    # the representation is tiny compared to the inlined circuit
    assert stored < 1_000_000
    assert total / stored > 10 ** 7
    # "under two minutes" on the paper's laptop; we stay under it too
    assert elapsed < 120
    report(
        "T3 full Triangle Finding count (l=31, n=15, r=6)",
        [
            ("total gates", f"{PAPER_GATES:,}", f"{total:,}"),
            ("qubits", PAPER_QUBITS, qubits),
            ("stored gates (representation)", "n/a", f"{stored:,}"),
            ("compression (inlined/stored)", "n/a", f"{total // stored:,}x"),
            ("wall time", "< 2 min", f"{elapsed:.1f} s"),
        ],
    )
