"""T2: the Section 5.4 oracle-only count.

Paper: ``./tf -f gatecount -O -o orthodox -l 31 -n 15 -r 9`` ->
2,051,926 total gates and 1462 qubits.
"""

from repro import TOFFOLI, aggregate_gate_count, decompose_generic, total_gates
from repro.algorithms.tf.main import build_part
from conftest import report

PAPER_GATES = 2_051_926
PAPER_QUBITS = 1462


def _measure():
    bc = build_part("oracle", 31, 15, 9, "orthodox")
    bc = decompose_generic(TOFFOLI, bc)
    counts = aggregate_gate_count(bc)
    return total_gates(counts), bc.check()


def test_t2_oracle_count(benchmark):
    total, qubits = benchmark(_measure)
    # same order of magnitude as the paper's 2.05M / 1462
    assert 500_000 <= total <= 50_000_000
    assert 500 <= qubits <= 5_000
    report(
        "T2 oracle-only gate count (l=31, n=15, r=9)",
        [
            ("total gates", f"{PAPER_GATES:,}", f"{total:,}"),
            ("qubits", PAPER_QUBITS, qubits),
            ("ratio vs paper", 1.0, f"{total / PAPER_GATES:.2f}x"),
        ],
    )


def test_t2_oracle_count_scales_with_l(benchmark):
    def run():
        return [
            total_gates(
                aggregate_gate_count(
                    build_part("oracle", l, 7, 4, "orthodox")
                )
            )
            for l in (8, 16, 31)
        ]

    totals = benchmark(run)
    assert totals[0] < totals[1] < totals[2]
    # the multiplier ladder is ~quadratic in l
    assert totals[2] > 2.5 * totals[1]
