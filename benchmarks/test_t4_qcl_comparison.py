"""T4: the Section 6 table -- QCL vs Quipper on the BWT circuit.

Paper (same parameters for all three implementations)::

              QCL "direct"   Quipper "orthodox"   Quipper "template"
    Init          58               313                  777
    Not          746                 8                    0
    CNot1       9012               472                  344
    CNot2       7548               768                 1760
    e^-itZ         4                 4                    4
    W             48                48                   48
    Term           0               307                  771
    Meas           0                 6                    6
    Total      17358              1300                 2156
    Qubits        58                26                  108

Shape claims asserted: QCL emits an order of magnitude more logical gates
than orthodox Quipper; the template oracle sits between them in gates but
uses the most qubits; the algorithm-level rows (e^-itZ, W, Meas) are
invariant across implementations; QCL never terminates or measures.
"""

import pytest

from repro import TOFFOLI, aggregate_gate_count, decompose_generic
from repro import total_logical_gates
from repro.algorithms.bwt import bwt_circuit
from repro.baselines import qcl_bwt_circuit
from conftest import report

PAPER = {
    "qcl": dict(init=58, not0=746, cnot1=9012, cnot2=7548, e=4, w=48,
                term=0, meas=0, total=17358, qubits=58),
    "orthodox": dict(init=313, not0=8, cnot1=472, cnot2=768, e=4, w=48,
                     term=307, meas=6, total=1300, qubits=26),
    "template": dict(init=777, not0=0, cnot1=344, cnot2=1760, e=4, w=48,
                     term=771, meas=6, total=2156, qubits=108),
}

N, S, T = 4, 1, 0.1


def _row(bc):
    bc = decompose_generic(TOFFOLI, bc)
    counts = aggregate_gate_count(bc)

    def total_for(predicate):
        return sum(v for key, v in counts.items() if predicate(key))

    return {
        "init": total_for(lambda k: k[0].startswith("Init")),
        "not0": total_for(lambda k: k[0] == "Not" and k[1] + k[2] == 0),
        "cnot1": total_for(lambda k: k[0] == "Not" and k[1] + k[2] == 1),
        "cnot2": total_for(lambda k: k[0] == "Not" and k[1] + k[2] == 2),
        "e": total_for(lambda k: k[0].startswith("exp")),
        "w": total_for(lambda k: k[0] == "W"),
        "term": total_for(lambda k: k[0].startswith("Term")),
        "meas": total_for(lambda k: k[0] == "Meas"),
        "total": total_logical_gates(counts),
        "qubits": bc.check(),
    }


@pytest.fixture(scope="module")
def table():
    return {
        "qcl": _row(qcl_bwt_circuit(N, S, T)),
        "orthodox": _row(bwt_circuit(N, S, T, "orthodox")),
        "template": _row(bwt_circuit(N, S, T, "template")),
    }


def test_t4_comparison_table(benchmark, table):
    benchmark.pedantic(
        lambda: _row(qcl_bwt_circuit(N, S, T)), rounds=1, iterations=1
    )
    qcl, orth, tmpl = table["qcl"], table["orthodox"], table["template"]

    # -- the paper's headline conclusions ---------------------------------
    # "the QCL code produces far more gates than its Quipper counterpart"
    assert qcl["total"] > 5 * orth["total"]
    # "even when the hand-coded oracle in QCL is compared to the
    # automatically generated oracle in Quipper"
    assert qcl["total"] > tmpl["total"]
    # "the Quipper implementation with automatically generated oracle uses
    # more ancillas than QCL, but does so with fewer gates"
    assert tmpl["qubits"] > qcl["qubits"]
    assert tmpl["total"] < qcl["total"]
    # "the QCL circuit uses twice as many qubits as the Quipper version"
    assert qcl["qubits"] > 1.3 * orth["qubits"]
    # algorithm-level rows invariant across implementations
    assert qcl["e"] == orth["e"] == tmpl["e"] == 4
    assert qcl["w"] == orth["w"] == tmpl["w"] == 48
    # QCL does not track ancilla scope and never measures
    assert qcl["term"] == 0 and qcl["meas"] == 0
    assert orth["meas"] == tmpl["meas"] == 6
    # Quipper's explicit scoping: Init - Term = the measured register
    assert orth["init"] - orth["term"] == 6
    assert tmpl["init"] - tmpl["term"] == 6

    rows = []
    for metric in ("init", "not0", "cnot1", "cnot2", "e", "w", "term",
                   "meas", "total", "qubits"):
        rows.append((
            metric,
            f"{PAPER['qcl'][metric]}/{PAPER['orthodox'][metric]}"
            f"/{PAPER['template'][metric]}",
            f"{qcl[metric]}/{orth[metric]}/{tmpl[metric]}",
        ))
    report("T4 QCL vs Quipper (Section 6; QCL/orthodox/template)", rows)


def test_t4_ratio_regime(benchmark, table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratio = table["qcl"]["total"] / table["orthodox"]["total"]
    paper_ratio = PAPER["qcl"]["total"] / PAPER["orthodox"]["total"]  # 13.4
    # same regime: an order of magnitude, within ~3x of the paper's ratio
    assert paper_ratio / 3 <= ratio <= paper_ratio * 3
