"""D3: the Section 4.6.1 parity example, both figures.

The paper lifts the parity function and shows (a) the raw template circuit
on 4 qubits -- "the top four qubits are the inputs, the bottom qubit is
the output, and the remaining two qubits are scratch space" -- and (b) its
``classical_to_reversible`` form, where "all intermediate ancillas have
been uncomputed".
"""

from repro import build, qubit
from repro.core.gates import Init, NamedGate, Term
from repro.lifting import bool_xor, build_circuit, classical_to_reversible, unpack
from conftest import report


@build_circuit
def parity(bits):
    result = False
    for b in bits:
        result = bool_xor(b, result)
    return result


def test_d3_raw_template_figure(benchmark):
    def run():
        def circ(qc, qs):
            out = unpack(parity)(qc, qs)
            return qs, out

        return build(circ, [qubit] * 4)[0]

    bc = benchmark(run)
    inits = sum(isinstance(g, Init) for g in bc.circuit.gates)
    terms = sum(isinstance(g, Term) for g in bc.circuit.gates)
    cnots = sum(
        isinstance(g, NamedGate) and len(g.controls) == 1
        for g in bc.circuit.gates
    )
    assert bc.circuit.in_arity == 4
    assert inits == 3 and terms == 0       # 2 scratch + 1 output, kept live
    assert cnots == 6                      # two CNOTs per XOR node
    report(
        "D3a raw lifted parity (4 qubits)",
        [
            ("inputs", 4, bc.circuit.in_arity),
            ("scratch + output qubits", 3, inits),
            ("CNOT gates", 6, cnots),
        ],
    )


def test_d3_reversible_figure(benchmark):
    def run():
        rev = classical_to_reversible(unpack(parity))

        def circ(qc, qs, target):
            return rev(qc, qs, target)

        return build(circ, [qubit] * 4, qubit)[0]

    bc = benchmark(run)
    inits = sum(isinstance(g, Init) for g in bc.circuit.gates)
    terms = sum(isinstance(g, Term) for g in bc.circuit.gates)
    assert inits == terms == 3            # every ancilla uncomputed
    assert bc.circuit.in_arity == 5       # 4 inputs + the target
    assert bc.circuit.out_arity == 5
    report(
        "D3b classical_to_reversible parity",
        [
            ("ancillas uncomputed", "all", f"{terms}/{inits}"),
            ("in/out arity", "5/5",
             f"{bc.circuit.in_arity}/{bc.circuit.out_arity}"),
        ],
    )
