"""Peephole-optimizer payoff on the paper's flagship circuits.

The acceptance claim of the optimizer subsystem: on the Binary Welded
Tree walk and the Triangle Finding oracle, decomposing to a gate base
and then peephole-optimizing shrinks the total gate count by >= 10%, in
both the materialized (``Program.optimize``) and streamed
(``GateStream.optimize``) modes, with the optimized circuit verified
statevector-equivalent to the unoptimized one (up to global phase) on
instances small enough to simulate, and bit-exact on the classical
boolean backend for the reversible TF oracle.

The measured reductions and optimizer throughput are recorded once to
``benchmarks/baselines/optimize.json`` (written only if absent); later
runs report themselves against the recorded numbers.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Program, qubit
from repro.algorithms.bwt.graph import register_size
from repro.algorithms.bwt.main import bwt_program, timestep
from repro.algorithms.bwt.orthodox import bwt_oracle
from repro.algorithms.tf.main import part_program
from repro.optimize import PeepholeOptimizer
from repro.transform.count import total_gates

from conftest import quick_mode, record_benchmark, report

#: Sections accumulated by the tests below and recorded as one
#: ``baselines/optimize.json`` by test_record_baseline (last in file).
_RESULTS: dict = {}

#: Instance sizes: full size matches the committed baseline, quick mode
#: (CI smoke) shrinks generation time but keeps every assertion -- the
#: reduction claims are deterministic, not timings.
BWT_N = 4 if quick_mode() else 5
TF_L = 3 if quick_mode() else 4
THROUGHPUT_GATES = 20_000 if quick_mode() else 200_000


def _reduction(program: Program) -> tuple[int, int, int, float]:
    """(before, after, streamed-after, materialized reduction fraction)."""
    before = program.total_gates()
    after = program.optimize().total_gates()
    streamed = total_gates(program.stream().optimize().count())
    return before, after, streamed, 1.0 - after / before


def _fidelity(first, second) -> float:
    assert set(first.statevector_wires) == set(second.statevector_wires)
    a, b = first.statevector, second.statevector
    if first.statevector_wires != second.statevector_wires:
        axes = [
            second.statevector_wires.index(w)
            for w in first.statevector_wires
        ]
        n = len(axes)
        b = np.moveaxis(b.reshape((2,) * n), axes, range(n))
    return float(abs(np.vdot(a.reshape(-1), b.reshape(-1))))


def _bwt_core_program() -> Program:
    """One oracle + diffusion + uncompute block at n=2: measurement-free,
    small enough for exact statevector verification at every gate base."""

    def core(qc, a):
        n = 2
        with qc.ancilla_list(register_size(n)) as b:
            with qc.ancilla() as r:
                def compute():
                    bwt_oracle(qc, a, b, r, 0, n)

                def act(_):
                    timestep(qc, a, b, r, 0.3)

                qc.with_computed(compute, act)
        return a

    return Program.capture(core, [qubit] * register_size(2), name="bwt-core")


def test_bwt_reduction_and_equivalence(profile):
    walk = bwt_program(BWT_N, 1, 0.1).transform("binary")
    before, after, streamed, reduction = _reduction(walk)
    assert reduction >= 0.10, (before, after)
    assert streamed == after  # streamed mode reaches the same count

    # Exact semantic verification on the simulable core instance.
    fidelities = {}
    for base in ("toffoli", "binary"):
        core = _bwt_core_program().transform(base)
        fidelities[base] = _fidelity(core.run(), core.optimize().run())
        assert abs(fidelities[base] - 1.0) < 1e-9, fidelities

    record = {
        "n": BWT_N,
        "gate_base": "binary",
        "gates_before": before,
        "gates_after": after,
        "gates_after_streamed": streamed,
        "reduction": round(reduction, 4),
        "core_fidelity": {k: round(v, 12) for k, v in fidelities.items()},
    }
    _RESULTS["bwt"] = record
    report(
        "peephole optimizer on BWT (binary base)",
        [
            ("gates before", "-", before),
            ("gates after", "-", after),
            ("reduction", ">= 10%", f"{reduction:.1%}"),
            ("streamed == materialized", "yes", streamed == after),
        ],
    )


def test_tf_oracle_reduction_and_equivalence():
    oracle = part_program("pow17", TF_L, 3, 2, "orthodox")
    binary = oracle.transform("binary")
    before, after, streamed, reduction = _reduction(binary)
    assert reduction >= 0.10, (before, after)
    assert streamed == after

    # The Toffoli-base oracle is classical-reversible: verify the
    # optimized circuit bit-exactly on every basis input via the boolean
    # backend (quick mode samples a subset of inputs).
    toffoli = oracle.transform("toffoli")
    optimized = toffoli.optimize()
    toffoli_reduction = 1.0 - optimized.total_gates() / toffoli.total_gates()
    in_wires = [w for w, _ in toffoli.bcircuit.circuit.inputs]
    cases = 4 if quick_mode() else 16
    for pattern in range(cases):
        in_values = {
            w: bool((pattern >> k) & 1) for k, w in enumerate(in_wires)
        }
        expected = toffoli.run("classical", in_values=in_values)
        got = optimized.run("classical", in_values=in_values)
        assert got.bits == expected.bits, pattern

    # Statevector verification on the simulable o8_MUL oracle.
    mul = part_program("mul", 2, 3, 2, "orthodox").transform("binary")
    fidelity = _fidelity(mul.run(), mul.optimize().run())
    assert abs(fidelity - 1.0) < 1e-9, fidelity

    record = {
        "l": TF_L,
        "gate_base": "binary",
        "gates_before": before,
        "gates_after": after,
        "gates_after_streamed": streamed,
        "reduction": round(reduction, 4),
        "toffoli_reduction": round(toffoli_reduction, 4),
        "mul_fidelity": round(fidelity, 12),
    }
    _RESULTS["tf_oracle"] = record
    report(
        "peephole optimizer on the TF pow17 oracle",
        [
            ("gates before (binary)", "-", before),
            ("gates after (binary)", "-", after),
            ("reduction (binary)", ">= 10%", f"{reduction:.1%}"),
            ("reduction (toffoli)", "-", f"{toffoli_reduction:.1%}"),
            ("classical bit-exact", "yes", "yes"),
        ],
    )


def test_optimizer_throughput():
    """Raw window throughput: gates/second through the peephole core."""
    from repro.core.gates import Control, NamedGate

    gates = []
    for k in range(THROUGHPUT_GATES // 4):
        q = k % 24
        gates.append(NamedGate("H", (q,)))
        gates.append(NamedGate("T", ((q + 1) % 24,)))
        gates.append(
            NamedGate("not", ((q + 2) % 24,), (Control(q, k % 3 != 0),))
        )
        gates.append(NamedGate("Rz", ((q + 3) % 24,), param=0.1))

    sunk = 0

    def sink(gate):
        nonlocal sunk
        sunk += 1

    optimizer = PeepholeOptimizer(sink=sink)
    start = time.perf_counter()
    for gate in gates:
        optimizer.feed(gate)
    optimizer.flush()
    elapsed = time.perf_counter() - start
    throughput = len(gates) / elapsed

    record = {
        "fed_gates": len(gates),
        "emitted_gates": sunk,
        "seconds": round(elapsed, 6),
        "gates_per_s": round(throughput),
    }
    _RESULTS["throughput"] = record
    report(
        "peephole optimizer throughput",
        [
            ("gates fed", "-", len(gates)),
            ("gates emitted", "-", sunk),
            ("throughput (gates/s)", "-", f"{throughput:,.0f}"),
        ],
    )
    if not quick_mode():
        assert throughput > 10_000, record


def test_record_baseline():
    """Record every section into baselines/optimize.json (one file)."""
    import pytest

    if set(_RESULTS) != {"bwt", "tf_oracle", "throughput"}:
        pytest.skip("earlier optimizer benchmarks did not run")
    baseline = record_benchmark("optimize", _RESULTS)
    report(
        "optimize.json sections",
        [
            ("bwt reduction", ">= 10%",
             f"{_RESULTS['bwt']['reduction']:.1%}"),
            ("tf reduction", ">= 10%",
             f"{_RESULTS['tf_oracle']['reduction']:.1%}"),
            ("throughput (gates/s)", "-",
             f"{_RESULTS['throughput']['gates_per_s']:,}"),
            ("baseline", "-",
             "present" if baseline else "recorded now"),
        ],
    )
