#!/usr/bin/env python
"""Print current benchmark results against the committed baseline JSONs.

Each benchmark under ``benchmarks/`` records its committed numbers once in
``benchmarks/baselines/<name>.json`` and drops the numbers of every fresh
run in ``benchmarks/.latest/<name>.json`` (gitignored).  This script lines
the two up::

    PYTHONPATH=src python -m pytest benchmarks -q     # produce .latest/
    python benchmarks/compare_baselines.py            # diff vs baselines/

With no fresh run available it still prints the recorded baselines, so it
always answers "what speedups does this tree claim?".  Exits non-zero if
a fresh run regressed more than 20% below its recorded baseline speedup.
"""

from __future__ import annotations

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
BASELINES = HERE / "baselines"
LATEST = HERE / ".latest"

#: Fractional slack before a lower-than-baseline speedup counts as a
#: regression (benchmark machines are noisy).
SLACK = 0.20


def _load(path: pathlib.Path) -> dict:
    return json.loads(path.read_text())


def main() -> int:
    baselines = sorted(BASELINES.glob("*.json"))
    if not baselines:
        print("no committed baselines found under", BASELINES)
        return 1
    width = max(len(p.stem) for p in baselines)
    print(f"{'benchmark':<{width}} {'baseline':>10} {'latest':>10} "
          f"{'ratio':>8}  detail")
    regressed = []
    for path in baselines:
        baseline = _load(path)
        base_speed = baseline.get("speedup")
        latest_path = LATEST / path.name
        latest = _load(latest_path) if latest_path.exists() else None
        late_speed = latest.get("speedup") if latest else None
        if base_speed and late_speed:
            ratio = late_speed / base_speed
            if ratio < 1.0 - SLACK:
                regressed.append(path.stem)
            ratio_text = f"{ratio:.2f}"
        else:
            ratio_text = "-"
        detail = ", ".join(
            f"{k}={v}" for k, v in baseline.items() if k != "speedup"
        )
        print(
            f"{path.stem:<{width}} "
            f"{base_speed if base_speed is not None else '-':>10} "
            f"{late_speed if late_speed is not None else '-':>10} "
            f"{ratio_text:>8}  {detail}"
        )
    if not LATEST.exists():
        print("\n(no fresh run found -- run "
              "`PYTHONPATH=src python -m pytest benchmarks -q` first to "
              "compare against the baselines)")
    if regressed:
        print(f"\nREGRESSED >{SLACK:.0%} below baseline: "
              f"{', '.join(regressed)}")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
