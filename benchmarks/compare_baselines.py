#!/usr/bin/env python
"""Diff current benchmark results against the committed baseline JSONs.

Each benchmark under ``benchmarks/`` records its committed numbers once in
``benchmarks/baselines/<name>.json`` and drops the numbers of every fresh
run in ``benchmarks/.latest/<name>.json`` (gitignored).  This script lines
the two up::

    PYTHONPATH=src python -m pytest benchmarks -q     # produce .latest/
    python benchmarks/compare_baselines.py            # diff vs baselines/

Quick-mode runs (``REPRO_BENCH_QUICK=1``) record to the parallel
``quick/`` subtrees at reduced sizes; compare those with ``--quick``
(what CI's PR bench-regression job does).

With no fresh run available it still prints the recorded baselines, so it
always answers "what speedups does this tree claim?".  Exits non-zero if
a fresh run regressed more than ``--slack`` (default 20%) below its
recorded baseline speedup (exit 2); CI passes ``--slack 0.30``.  A fresh
result whose baseline file is missing entirely exits 3, naming the
benchmark and its metrics.  ``--summary`` appends a Markdown table to
the given file (``$GITHUB_STEP_SUMMARY``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
BASELINES = HERE / "baselines"
LATEST = HERE / ".latest"

#: Default fractional slack before a lower-than-baseline speedup counts
#: as a regression (benchmark machines are noisy).
SLACK = 0.20


def _load(path: pathlib.Path) -> dict:
    return json.loads(path.read_text())


def compare(slack: float = SLACK, quick: bool = False,
            summary_path: str | None = None) -> int:
    baselines_dir = BASELINES / "quick" if quick else BASELINES
    latest_dir = LATEST / "quick" if quick else LATEST
    baselines = sorted(baselines_dir.glob("*.json"))
    if not baselines:
        print("no committed baselines found under", baselines_dir)
        return 1
    width = max(len(p.stem) for p in baselines)
    print(f"{'benchmark':<{width}} {'baseline':>10} {'latest':>10} "
          f"{'ratio':>8}  detail")
    regressed = []
    rows = []
    for path in baselines:
        baseline = _load(path)
        base_speed = baseline.get("speedup")
        latest_path = latest_dir / path.name
        latest = _load(latest_path) if latest_path.exists() else None
        late_speed = latest.get("speedup") if latest else None
        if base_speed and late_speed:
            ratio = late_speed / base_speed
            if ratio < 1.0 - slack:
                regressed.append(path.stem)
            ratio_text = f"{ratio:.2f}"
        else:
            ratio_text = "-"
        detail = ", ".join(
            f"{k}={v}" for k, v in baseline.items()
            if k not in ("speedup", "quick")
        )
        rows.append((path.stem, base_speed, late_speed, ratio_text, detail))
        print(
            f"{path.stem:<{width}} "
            f"{base_speed if base_speed is not None else '-':>10} "
            f"{late_speed if late_speed is not None else '-':>10} "
            f"{ratio_text:>8}  {detail}"
        )
    if not latest_dir.exists():
        print("\n(no fresh run found -- run "
              "`PYTHONPATH=src python -m pytest benchmarks -q` first to "
              "compare against the baselines)")
    # A fresh result with no committed counterpart is an error, not a
    # silent skip: it means a new benchmark landed without recording its
    # baseline (or a baseline file was deleted), so regressions in it
    # would never be caught.  Name the file and every metric it carries.
    missing = [
        path for path in sorted(latest_dir.glob("*.json"))
        if not (baselines_dir / path.name).exists()
    ] if latest_dir.exists() else []
    for path in missing:
        metrics = ", ".join(
            f"{k}={v}" for k, v in _load(path).items() if k != "quick"
        )
        print(f"\nMISSING BASELINE: {path.stem} ({metrics})")
        print(f"  commit {baselines_dir / path.name} to record it")
    if summary_path:
        _write_summary(summary_path, rows, regressed, slack, quick)
    if regressed:
        print(f"\nREGRESSED >{slack:.0%} below baseline: "
              f"{', '.join(regressed)}")
        return 2
    if missing:
        return 3
    return 0


def _write_summary(path: str, rows, regressed, slack: float,
                   quick: bool) -> None:
    mode = "quick (CI smoke)" if quick else "full-size"
    lines = [
        f"### Benchmark speedups vs recorded baselines ({mode})",
        "",
        "| benchmark | baseline | latest | ratio | detail |",
        "|---|---:|---:|---:|---|",
    ]
    for stem, base, late, ratio, detail in rows:
        lines.append(
            f"| {stem} | {base if base is not None else '-'} "
            f"| {late if late is not None else '-'} | {ratio} "
            f"| {detail} |"
        )
    lines.append("")
    if regressed:
        lines.append(
            f"**REGRESSED** more than {slack:.0%} below baseline: "
            + ", ".join(regressed)
        )
    else:
        lines.append(f"No regression beyond the {slack:.0%} tolerance band.")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--slack", type=float, default=SLACK,
        help="fractional tolerance band before a lower speedup fails "
             f"(default {SLACK})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="compare the quick-mode (reduced-size) baseline tree",
    )
    parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="append a Markdown summary table to PATH "
             "(e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)
    return compare(
        slack=args.slack, quick=args.quick, summary_path=args.summary
    )


if __name__ == "__main__":
    sys.exit(main())
