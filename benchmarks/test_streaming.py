"""Streaming symbolic resource counting vs. flat re-streaming.

The paper's headline scalability claim: circuits are *represented*, never
materialized, so counting 30 trillion gates takes minutes.  The streaming
engine reproduces the mechanism -- a repeated boxed subroutine flows
through ``Program.stream().count()`` as ONE BoxCall gate whose body is
counted once and multiplied by the repetition factor, where enumerating
the inlined stream (what any consumer without subroutine caching must do)
costs time linear in the logical gate count.

Two measurements are recorded to ``benchmarks/baselines/
streaming_count.json`` (written once, then compared against):

* the **speedup** of the symbolic streamed count over flat enumeration of
  the same circuit, at a size where enumeration is still feasible;
* the wall time and peak traced allocation of a streamed count of a
  >10M-logical-gate circuit -- the acceptance scenario: big-O(body)
  memory however many gates the hierarchy expands to.
"""

from __future__ import annotations

import statistics
import time
import tracemalloc
from collections import Counter

from repro import Program, qubit
from repro.transform.count import classify
from repro.transform.inline import iter_flat_gates
from repro.core.gates import Comment

from conftest import quick_mode, record_benchmark, report

#: Iterations of the boxed body (8 stored gates) for the two circuits.
BIG_REPS = 60 if quick_mode() else 2_000_000  # symbolic-count headline
FLAT_REPS = 20 if quick_mode() else 120_000  # flat enumeration feasible
REPEATS = 1 if quick_mode() else 3


def _repeated_program(repetitions: int) -> Program:
    def body(qc, qs):
        with qc.ancilla() as a:
            for q in qs:
                qc.qnot(a, controls=q)
        qc.hadamard(qs[0])
        qc.gate_T(qs[1])
        return qs

    def circ(qc, qs):
        qc.nbox("step", repetitions, body, qs)
        return qs

    return Program.capture(circ, [qubit] * 3, name=f"rep{repetitions}")


def _time(fn) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _flat_count(program: Program) -> Counter:
    counts: Counter = Counter()
    for gate in iter_flat_gates(program.bcircuit):
        if not isinstance(gate, Comment):
            counts[classify(gate)] += 1
    return counts


def test_streamed_symbolic_count_beats_flat_enumeration():
    flat_program = _repeated_program(FLAT_REPS)
    flat_program.bcircuit  # build once so enumeration timing is pure

    flat_time = _time(lambda: _flat_count(flat_program))

    # A single symbolic count is sub-millisecond -- far too jittery to
    # gate a regression on.  Time a batch and divide, so the recorded
    # speedup has a stable denominator.
    batch = 5 if quick_mode() else 200

    def streamed_batch():
        for _ in range(batch):
            _repeated_program(FLAT_REPS).stream().count()

    streamed_time = _time(streamed_batch) / batch
    # Same Counter either way -- the speedup is not an approximation.
    assert _repeated_program(FLAT_REPS).stream().count() == _flat_count(
        flat_program
    )

    big = _repeated_program(BIG_REPS)
    tracemalloc.start()
    big_start = time.perf_counter()
    counts = big.stream().count()
    big_time = time.perf_counter() - big_start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    total = sum(counts.values())
    if not quick_mode():
        assert total > 10_000_000
        assert peak < 16 * 1024 * 1024

    speedup = flat_time / streamed_time
    record = {
        "flat_reps": FLAT_REPS,
        "big_reps": BIG_REPS,
        "big_total_gates": total,
        "flat_s": round(flat_time, 6),
        "streamed_s": round(streamed_time, 6),
        "big_streamed_s": round(big_time, 6),
        "big_peak_kib": peak // 1024,
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("streaming_count", record)
    report(
        "streaming symbolic count (streamed vs flat enumeration)",
        [
            ("logical gates (big circuit)", "trillions (paper)", total),
            ("flat enumeration [s]", "-", round(flat_time, 4)),
            ("streamed symbolic [s]", "-", round(streamed_time, 4)),
            ("speedup", "-", round(speedup, 1)),
            ("big streamed count [s]", "minutes (paper)", round(big_time, 4)),
            ("peak traced KiB", "O(body)", peak // 1024),
            (
                "recorded baseline speedup",
                "-",
                baseline["speedup"] if baseline else "(recorded now)",
            ),
        ],
    )
    if not quick_mode():
        # The symbolic count skips the linear walk entirely; anything
        # short of an order of magnitude would mean the caching broke.
        assert speedup > 10
