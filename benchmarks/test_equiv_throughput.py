"""Equivalence-checker throughput: the escalation order pays for itself.

The ``equiv`` backend tries the Clifford tableau decider before
statevector basis enumeration (see :mod:`repro.backends.equiv`).  This
benchmark measures both deciders on the *same* Clifford pair -- a GHZ
ladder wide enough that exhaustive simulation is doing real exponential
work -- and records their ratio as the ``speedup``: how much the cheap
decider saves every time it applies.  It also times one end-to-end
round-trip proof (export to QASM, re-import, prove equivalent) for an
algorithm-sized circuit, the workflow the CI ``equiv`` job runs per
algorithm family.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke mode (narrower ladder,
fewer repetitions; records land in the ``quick/`` trees).
"""

from __future__ import annotations

import time

from repro.backends.equiv import decide_equivalence
from repro.core.circuit import BCircuit, Circuit
from repro.core.gates import Control, NamedGate
from repro.core.wires import QUANTUM
from repro.program import Program

from conftest import quick_mode, record_benchmark, report

LADDER = 6 if quick_mode() else 10
REPS = 3 if quick_mode() else 10


def _ghz_ladder(n: int) -> BCircuit:
    gates = [NamedGate("H", (0,))]
    gates += [
        NamedGate("not", (w + 1,), (Control(w),)) for w in range(n - 1)
    ]
    inputs = tuple((w, QUANTUM) for w in range(n))
    return BCircuit(Circuit(inputs, tuple(gates), inputs))


def _checks_per_s(a: BCircuit, b: BCircuit, *, max_width: int,
                  expect_decider: str) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        verdict = decide_equivalence(a, b, max_width=max_width)
        best = min(best, time.perf_counter() - start)
        assert verdict.verdict == "equivalent", verdict.reason
        assert verdict.decider == expect_decider, verdict.decider
    return 1.0 / best


def test_equiv_throughput():
    ladder = _ghz_ladder(LADDER)
    # Tableau decider: cap at 0 so statevector can never be consulted.
    clifford_rate = _checks_per_s(
        ladder, ladder, max_width=0, expect_decider="clifford"
    )
    # Same pair, tableau bypassed by a non-Clifford no-op pad (T then
    # T* cancels, but breaks the NamedGate-Clifford screen): the
    # statevector decider enumerates all 2**n basis inputs.
    pad = (
        NamedGate("T", (0,)),
        NamedGate("T", (0,), inverted=True),
    )
    padded = BCircuit(
        Circuit(
            ladder.circuit.inputs,
            ladder.circuit.gates + pad,
            ladder.circuit.outputs,
        )
    )
    sv_rate = _checks_per_s(
        padded, padded, max_width=LADDER, expect_decider="statevector"
    )
    speedup = clifford_rate / sv_rate

    # One end-to-end round-trip proof at algorithm scale.
    from repro.algorithms.gse.main import gse_program

    program = gse_program(2, 1.0, 1).transform("binary")
    start = time.perf_counter()
    verdict = program.equivalent_to(
        Program.loads_qasm(program.qasm()), max_width=20
    )
    roundtrip_s = time.perf_counter() - start
    assert verdict.is_equivalent, verdict.reason

    record = {
        "ladder_qubits": LADDER,
        "clifford_checks_per_s": round(clifford_rate, 1),
        "statevector_checks_per_s": round(sv_rate, 1),
        "gse_roundtrip_proof_s": round(roundtrip_s, 4),
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("equiv", record)
    report(
        f"equivalence deciders on a {LADDER}-qubit GHZ ladder",
        [
            ("clifford (checks/s)", "-", record["clifford_checks_per_s"]),
            ("statevector (checks/s)", "-",
             record["statevector_checks_per_s"]),
            ("clifford vs statevector", "> 1", f"{speedup:.2f}x"),
            ("gse round-trip proof (s)", "-",
             record["gse_roundtrip_proof_s"]),
            (
                "recorded baseline speedup",
                "-",
                baseline["speedup"] if baseline else "recorded now",
            ),
        ],
    )
    assert speedup > 1.0, record
