"""Telemetry overhead guard: instrumentation must be ~free.

The obs layer instruments the hottest seam in the tree -- per-gate kernel
dispatch in ``repro.sim.kernels`` -- so it carries an explicit cost
budget:

* **Disabled** (the default), every instrumented site reduces to a single
  module-attribute check (``if _obs.ENABLED:``).  The committed
  ``kernel_throughput`` baseline already polices this path against the
  pre-telemetry numbers via ``compare_baselines.py``.
* **Enabled** (a capture session is active), counters and histogram
  updates may not add more than **2%** to the kernel-throughput gate mix.

This benchmark measures the enabled/disabled ratio directly, reusing the
kernel-throughput mix at the same register width.  Rounds interleave the
two modes so drift (thermal, page cache) hits both equally, and the
minimum per mode is compared -- minima are the standard noise-robust
statistic for cost floors.
"""

from __future__ import annotations

import gc
import time

from repro import obs

from conftest import quick_mode, record_benchmark, report
from test_kernel_throughput import QUBITS, _gate_mix, _prepared

from repro.sim.state import StateVector

#: Fractional telemetry overhead allowed on the per-gate hot path.
OVERHEAD_BUDGET = 0.02

# Quick-mode rounds stay high: at the reduced width a round is ~10ms, so
# minima need more samples to stabilize (the quick tree never asserts the
# budget, but its recorded ratio feeds the CI bench-regression diff).
ROUNDS = 8 if quick_mode() else 12


def _one_round(sim, gates) -> float:
    start = time.perf_counter()
    for gate in gates:
        sim.execute(gate)
    return time.perf_counter() - start


def test_enabled_telemetry_overhead_under_budget():
    gates = _gate_mix(QUBITS) * 4
    # One simulator serves both modes: the mix is mode-independent, and
    # sharing the state array removes allocation-placement bias (two
    # separate 2^20 statevectors can differ by more than the budget from
    # page alignment alone).
    sim = _prepared(StateVector, QUBITS)
    _one_round(sim, gates)  # warm matrix/kernel LRUs and the page cache
    with obs.capture():
        _one_round(sim, gates)

    # Cyclic-GC pauses are the dominant noise source when this runs after
    # other tests (their surviving objects make gen-2 collections cost
    # more than the 2% budget); collect once, then keep the collector out
    # of the timed rounds so the ratio measures instrumentation only.
    gc.collect()
    gc.disable()
    try:
        disabled_times, enabled_times = [], []
        for _ in range(ROUNDS):
            disabled_times.append(_one_round(sim, gates))
            with obs.capture() as rec:
                enabled_times.append(_one_round(sim, gates))
    finally:
        gc.enable()
    # The enabled rounds really did record: every gate classified.
    kernel_counts = sum(
        count for name, count in rec.counters.items()
        if name.startswith("sim.kernel.") and name != "sim.kernel.controlled"
    )
    assert kernel_counts == len(gates)

    disabled = min(disabled_times)
    enabled = min(enabled_times)
    overhead = enabled / disabled - 1.0
    record = {
        "qubits": QUBITS,
        "mix_gates": len(gates),
        "rounds": ROUNDS,
        "disabled_s_per_round": round(disabled, 6),
        "enabled_s_per_round": round(enabled, 6),
        "overhead_pct": round(overhead * 100, 3),
        "speedup": round(disabled / enabled, 3),
    }
    baseline = record_benchmark("obs_overhead", record)
    report(
        f"telemetry overhead on the kernel gate mix ({QUBITS} qubits)",
        [
            ("gate mix size", "-", len(gates)),
            ("disabled round (s)", "-", f"{disabled:.4f}"),
            ("enabled round (s)", "-", f"{enabled:.4f}"),
            ("overhead", f"< {OVERHEAD_BUDGET:.0%}", f"{overhead:.2%}"),
            (
                "recorded baseline ratio",
                "-",
                baseline["speedup"] if baseline else "recorded now",
            ),
        ],
    )
    if not quick_mode():
        assert overhead < OVERHEAD_BUDGET, record


def test_disabled_capture_records_nothing():
    """Outside a capture session the counters genuinely go nowhere."""
    sim = _prepared(StateVector, QUBITS if quick_mode() else 12)
    gates = _gate_mix(8)
    for gate in gates:
        sim.execute(gate)
    with obs.capture() as rec:
        pass
    assert rec.counters == {}
    assert rec.spans == []
