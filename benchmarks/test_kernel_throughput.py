"""Flat kernel engine vs the legacy moveaxis path: the tentpole numbers.

Two claims are recorded against committed baselines:

* **Gate throughput** at 20 qubits: a representative gate mix (Hadamard,
  T, X, CNOT, Z, S, Rz, Toffoli-via-controls) applied through the flat
  in-place kernels must run >= 3x faster than the legacy ``(2,)*n``
  moveaxis + reshape + matmul engine.
* **Shot-fork sampling**: a mid-circuit-measurement circuit sampled
  through the backend (deterministic prefix simulated once, state forked
  per shot) must beat the PR-1 behaviour -- a full per-shot replay on the
  legacy engine -- by >= 5x.

Baselines are written once to ``benchmarks/baselines/*.json`` (never
overwritten); each run also drops its fresh numbers in
``benchmarks/.latest/`` for ``compare_baselines.py``.  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke mode: one round at a smaller
width, error-checking only (no perf assertions, nothing persisted).
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro import build, get_backend, qubit
from repro.backends.base import outcome_key
from repro.core.gates import Control, NamedGate
from repro.core.wires import QUANTUM
from repro.sim.state import LegacyStateVector, StateVector
from repro.transform.inline import compile_flat

from conftest import quick_mode, record_benchmark, report

QUBITS = 16 if quick_mode() else 20
ROUNDS = 1 if quick_mode() else 3
SHOTS = 8 if quick_mode() else 64


def _gate_mix(n: int) -> list[NamedGate]:
    """One round of the benchmark mix, targets spread across the register."""
    w = lambda k: k % n  # noqa: E731
    return [
        NamedGate("H", (w(0),)),
        NamedGate("T", (w(1),)),
        NamedGate("X", (w(2),)),
        NamedGate("X", (w(4),), (Control(w(3)),)),          # CNOT
        NamedGate("Z", (w(5),)),
        NamedGate("S", (w(6),), inverted=True),
        NamedGate("Rz", (w(7),), param=0.37),
        NamedGate("X", (w(10),), (Control(w(8)), Control(w(9)))),  # Toffoli
    ]


def _prepared(engine_cls, n: int):
    sim = engine_cls(rng=np.random.default_rng(0))
    for wire in range(n):
        sim.add_qubit(wire, False)
    for wire in range(n):
        sim.execute(NamedGate("H", (wire,)))
    return sim


def _time_gates(sim, gates, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for gate in gates:
            sim.execute(gate)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_gate_throughput_speedup():
    gates = _gate_mix(QUBITS)
    legacy = _prepared(LegacyStateVector, QUBITS)
    flat = _prepared(StateVector, QUBITS)
    # Warm caches (matrix + kernel LRUs) and the page cache symmetrically.
    for gate in gates:
        legacy.execute(gate)
        flat.execute(gate)

    legacy_time = _time_gates(legacy, gates, ROUNDS + 2)
    flat_time = _time_gates(flat, gates, ROUNDS + 2)
    # The mix is unitary-only, so both engines still hold valid states.
    np.testing.assert_allclose(
        float(np.sum(np.abs(flat.data) ** 2)), 1.0, atol=1e-6
    )

    speedup = legacy_time / flat_time
    per_gate_flat = flat_time / len(gates)
    record = {
        "qubits": QUBITS,
        "mix_gates": len(gates),
        "legacy_s_per_round": round(legacy_time, 6),
        "flat_s_per_round": round(flat_time, 6),
        "flat_gates_per_s": round(len(gates) / flat_time, 1),
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("kernel_throughput", record)
    report(
        f"flat kernel engine vs legacy moveaxis path ({QUBITS} qubits)",
        [
            ("gate mix size", "-", len(gates)),
            ("legacy round (s)", "-", f"{legacy_time:.4f}"),
            ("flat round (s)", "-", f"{flat_time:.4f}"),
            ("flat per-gate (ms)", "-", f"{per_gate_flat * 1e3:.2f}"),
            ("speedup", ">= 3", f"{speedup:.2f}x"),
            (
                "recorded baseline speedup",
                "-",
                baseline["speedup"] if baseline else "recorded now",
            ),
        ],
    )
    if not quick_mode():
        assert speedup >= 3.0, record


# -- shot sampling with a mid-circuit measurement ---------------------------


def _stochastic_circuit(qc, *qs):
    """A deep deterministic prefix, one mid-circuit measurement, short tail."""
    for q in qs:
        qc.hadamard(q)
    for layer in range(3):
        for i, q in enumerate(qs):
            qc.gate_T(q)
            qc.qnot(qs[(i + 1) % len(qs)], controls=q)
            qc.rotZ(0.1 * (layer + 1), q)
    m = qc.measure(qs[0])
    rest = qs[1:]
    qc.qnot(rest[0], controls=m)
    qc.hadamard(rest[1])
    return (m,) + tuple(rest)


def _legacy_sample_repeated(bc, shots: int, seed: int) -> dict[str, int]:
    """The PR-1 sampler: every shot replays the whole flat gate list."""
    rng = np.random.default_rng(seed)
    gates = compile_flat(bc).gates
    outputs = bc.circuit.outputs
    counts: dict[str, int] = {}
    for _ in range(shots):
        sim = LegacyStateVector(rng=rng)
        for wire, wtype in bc.circuit.inputs:
            if wtype == QUANTUM:
                sim.add_qubit(wire, False)
            else:
                sim.bits[wire] = False
        for gate in gates:
            sim.execute(gate)
        key = outcome_key(
            [
                sim.measure_qubit(w) if t == QUANTUM else sim.bits[w]
                for w, t in outputs
            ]
        )
        counts[key] = counts.get(key, 0) + 1
    return counts


def test_shot_fork_speedup():
    n = 8 if quick_mode() else 12
    bc, _ = build(_stochastic_circuit, *([qubit] * n))
    backend = get_backend("statevector")
    compiled = compile_flat(bc)
    assert compiled.prefix_len < len(compiled.gates)

    start = time.perf_counter()
    legacy_counts = _legacy_sample_repeated(bc, SHOTS, seed=7)
    legacy_time = time.perf_counter() - start

    start = time.perf_counter()
    result = backend.run(bc, shots=SHOTS, seed=7)
    forked_time = time.perf_counter() - start

    # Same rng consumption order => identical seeded counts.
    assert not result.metadata["batched"]
    assert result.counts == legacy_counts

    speedup = legacy_time / forked_time
    record = {
        "qubits": n,
        "shots": SHOTS,
        "prefix_gates": compiled.prefix_len,
        "suffix_gates": len(compiled.gates) - compiled.prefix_len,
        "replay_s": round(legacy_time, 6),
        "forked_s": round(forked_time, 6),
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("shot_fork", record)
    report(
        f"prefix-forked vs full-replay shot sampling ({n} qubits, "
        f"{SHOTS} shots)",
        [
            ("prefix gates (run once)", "-", record["prefix_gates"]),
            ("suffix gates (per shot)", "-", record["suffix_gates"]),
            ("full replay (s)", "-", f"{legacy_time:.4f}"),
            ("prefix-forked (s)", "-", f"{forked_time:.4f}"),
            ("speedup", ">= 5", f"{speedup:.2f}x"),
            (
                "recorded baseline speedup",
                "-",
                baseline["speedup"] if baseline else "recorded now",
            ),
        ],
    )
    if not quick_mode():
        assert speedup >= 5.0, record
