"""Supervision overhead: what fault tolerance costs when nothing fails.

The fault-tolerance layer (heartbeats, generation-guarded respawn
bookkeeping, per-attempt retry accounting, the disk-cache checksum
header) rides on **every** request, so its disabled-fault cost must be
noise.  This benchmark boots two servers in one process and interleaves
identical seeded run jobs between them, round-robin, so machine drift
hits both arms equally:

* **plain** -- heartbeat supervision off (``heartbeat=0``), the closest
  thing to the pre-supervision service;
* **supervised** -- an aggressive 50 ms heartbeat pinging the worker
  throughout the measurement (two orders of magnitude hotter than the
  5 s production default), plus an armed-but-inert fault plan so every
  injection point's schedule draw executes.

The recorded ``speedup`` (plain / supervised median latency) lands in
``benchmarks/baselines/service_resilience.json``; at ~1.0 it proves
supervision is free on the happy path, and the regression gate keeps
it that way.
"""

from __future__ import annotations

import asyncio
import statistics
import time

from repro.service.client import ServiceClient
from repro.service.faults import FaultPlan
from repro.service.server import ServiceServer

from conftest import quick_mode, record_benchmark, report

ROUNDS = 10 if quick_mode() else 40
SHOTS = 16 if quick_mode() else 32

RUN_SPEC = {
    "program": "bwt", "params": {"n": 3}, "action": "run",
    "run": {"backend": "statevector", "shots": SHOTS, "seed": 7},
}

#: A rule that can never fire (rate 0): the schedule hash is drawn at
#: every worker_exec arrival, so the armed-plan code path is measured.
INERT_PLAN = "worker_exec:crash@0"


def _measure(plain: ServiceServer, supervised: ServiceServer) -> dict:
    with ServiceClient("127.0.0.1", plain.port, timeout=300) as svc_a, \
            ServiceClient("127.0.0.1", supervised.port,
                          timeout=300) as svc_b:
        # Warm both shards (spawn + text ship + compiled stream).
        first_a = svc_a.query(**RUN_SPEC)
        first_b = svc_b.query(**RUN_SPEC)
        assert first_a == first_b, "servers disagree on a seeded run"

        plain_ms, supervised_ms = [], []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            svc_a.query(**RUN_SPEC)
            plain_ms.append((time.perf_counter() - start) * 1e3)
            start = time.perf_counter()
            svc_b.query(**RUN_SPEC)
            supervised_ms.append((time.perf_counter() - start) * 1e3)
        stats_b = svc_b.stats()
    return {
        "plain_ms": statistics.median(plain_ms),
        "supervised_ms": statistics.median(supervised_ms),
        "stats": stats_b,
    }


def test_supervision_overhead():
    async def scenario():
        plain = ServiceServer(port=0, shards=1, heartbeat=0)
        supervised = ServiceServer(
            port=0, shards=1, heartbeat=0.05,
            faults=FaultPlan.parse(INERT_PLAN, seed=7),
        )
        await plain.start()
        await supervised.start()
        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, _measure, plain, supervised
            )
        finally:
            await supervised.stop()
            await plain.stop()

    measured = asyncio.run(scenario())
    counters = measured["stats"]["service"]["counters"]

    # The supervised arm really was supervised: the heartbeat pinged
    # its worker during the measurement, respawned nothing, failed
    # nothing, and the inert fault plan fired nothing.
    assert counters["worker.heartbeats"] >= 1
    assert counters.get("worker.respawns", 0) == 0
    assert counters.get("jobs.failed", 0) == 0
    assert measured["stats"]["faults"]["fired"] == {}

    speedup = measured["plain_ms"] / measured["supervised_ms"]
    overhead = measured["supervised_ms"] / measured["plain_ms"] - 1.0
    record = {
        "rounds": ROUNDS,
        "shots": SHOTS,
        "plain_ms": round(measured["plain_ms"], 3),
        "supervised_ms": round(measured["supervised_ms"], 3),
        "heartbeats": counters["worker.heartbeats"],
        "overhead_pct": round(overhead * 100, 2),
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("service_resilience", record)

    report("fault-tolerance overhead on the happy path", [
        ("plain run median (ms)", "-", record["plain_ms"]),
        ("supervised run median (ms)", "-", record["supervised_ms"]),
        ("overhead (%)", "~0", record["overhead_pct"]),
        ("heartbeats during run", ">= 1", record["heartbeats"]),
        ("baseline speedup", "-",
         baseline.get("speedup") if baseline else "(recorded)"),
    ])

    if not quick_mode():
        # Supervision must stay in the noise band of the service
        # baseline: a 50 ms heartbeat may not cost half the latency.
        assert measured["supervised_ms"] <= measured["plain_ms"] * 1.5, (
            f"supervision overhead {overhead:.0%} exceeds the band"
        )
