"""Batched shot sampling: the shots-vs-throughput curve behind PR 9.

The statevector engine carries its amplitudes as ``(B, 2**n)`` and runs
every structure-classified kernel across the whole batch axis in one
dispatch.  For sampling, the backend forks the deterministic prefix into
a batched state and replays only the stochastic suffix, so the per-shot
Python dispatch cost (gate classification, kernel lookup, axis
bookkeeping) is amortized over ``B`` shots.

Where that wins -- and where it cannot -- is a memory-bandwidth story:

* A full-width 16-qubit suffix is memory-bound (each dense op streams
  the whole ``B * 2**16`` complex buffer), so batching buys little and
  can even lose.  The engine's auto batch sizing therefore keys on the
  *live* suffix width, not the circuit width.
* The representative win is a wide circuit that uncomputes its ancillas
  before measuring: the fork-point live state is small, the suffix is
  dispatch-overhead-dominated, and one batched dispatch replaces ``B``
  scalar ones.

This benchmark measures that representative shape: a 16-qubit circuit
(4 data qubits + 12 ancillas entangled by a deep compute/uncompute
prefix, Term'd before the first measurement) whose stochastic suffix
acts on the 4-qubit core.  The recorded claim is the acceptance bar of
PR 9: >= 5x shots/sec at B=64 over B=1.  Batched and scalar sampling
consume the same rng stream, so every point on the curve must also
produce bit-identical seeded counts.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke mode (smaller width, fewer
shots, no perf assertion; records land in the ``quick/`` trees).
"""

from __future__ import annotations

import time

from repro import build, get_backend, qubit
from repro.transform.inline import compile_flat

from conftest import quick_mode, record_benchmark, report

CORE = 3 if quick_mode() else 4
ANCILLAS = 5 if quick_mode() else 12
SHOTS = 64 if quick_mode() else 1024
BATCH_SIZES = (1, 8) if quick_mode() else (1, 4, 16, 64)


def _sampled_core(qc, *core):
    """Wide compute/uncompute prefix, stochastic suffix on a small core.

    All ancillas are entangled with the data qubits by a CNOT+T ladder,
    then uncomputed and Term'd, so the fork-point live state holds only
    the ``len(core)``-qubit core.  The suffix is a mid-circuit
    measurement followed by rounds of classically-controlled
    corrections -- the shape dynamic-lifting circuits (BWT, GSE walks)
    leave for the sampler.
    """
    anc = [qc.qinit(False) for _ in range(ANCILLAS)]
    for q in core:
        qc.hadamard(q)
    steps = []
    for _layer in range(2):
        for i, a in enumerate(anc):
            steps.append((a, core[i % len(core)]))
    for a, c in steps:
        qc.qnot(a, controls=c)
        qc.gate_T(a)
    for a, c in reversed(steps):
        qc.gate_T(a, inverted=True)
        qc.qnot(a, controls=c)
    for a in anc:
        qc.qterm(a)
    m = qc.measure(core[0])
    rest = list(core[1:])
    for _round in range(3):
        qc.qnot(rest[0], controls=m)
        qc.gate_S(rest[1], controls=m)
        qc.hadamard(rest[-1])
        qc.gate_T(rest[0])
        qc.qnot(rest[-1], controls=rest[0])
    return (m,) + tuple(rest)


def _throughput(bc, batch: int) -> tuple[float, dict[str, int]]:
    """Median-free single timing is enough: SHOTS amortizes the noise."""
    backend = get_backend("statevector", batch=batch)
    backend.run(bc, shots=8, seed=0)  # warm matrix/kernel LRUs
    start = time.perf_counter()
    result = backend.run(bc, shots=SHOTS, seed=42)
    elapsed = time.perf_counter() - start
    assert result.metadata["batch"] == batch
    return SHOTS / elapsed, result.counts


def test_batched_sampling_speedup():
    width = CORE + ANCILLAS
    bc, _ = build(_sampled_core, *([qubit] * CORE))
    assert bc.check() == width
    compiled = compile_flat(bc)
    assert compiled.prefix_len < len(compiled.gates)

    curve: dict[str, float] = {}
    reference_counts: dict[str, int] | None = None
    for batch in BATCH_SIZES:
        shots_per_s, counts = _throughput(bc, batch)
        curve[str(batch)] = round(shots_per_s, 1)
        # Same seeded rng stream regardless of batch size => the counts
        # must be bit-identical at every point on the curve.
        if reference_counts is None:
            reference_counts = counts
        else:
            assert counts == reference_counts, (batch, counts)

    speedup = curve[str(BATCH_SIZES[-1])] / curve["1"]
    record = {
        "qubits": width,
        "core_qubits": CORE,
        "shots": SHOTS,
        "suffix_gates": len(compiled.gates) - compiled.prefix_len,
        "shots_per_s": curve,
        "speedup": round(speedup, 3),
    }
    baseline = record_benchmark("batched_sim", record)
    report(
        f"batched vs scalar shot sampling ({width} qubits, "
        f"{CORE}-qubit live core, {SHOTS} shots)",
        [
            ("suffix gates (per shot)", "-", record["suffix_gates"]),
            *[
                (f"B={batch} (shots/s)", "-", curve[str(batch)])
                for batch in BATCH_SIZES
            ],
            (f"speedup B={BATCH_SIZES[-1]} vs B=1", ">= 5", f"{speedup:.2f}x"),
            (
                "recorded baseline speedup",
                "-",
                baseline["speedup"] if baseline else "recorded now",
            ),
        ],
    )
    if not quick_mode():
        assert speedup >= 5.0, record
