"""Ablations for the design choices DESIGN.md calls out.

Not a paper table; these quantify the mechanisms behind the reproduction:
(a) ripple-carry vs QFT adder (the TF ``Alternatives`` module),
(b) hash-consed vs Template-Haskell-style unshared lifting,
(c) boxed vs inlined representation size.
"""

from repro import aggregate_gate_count, build, inline, qubit, total_gates
from repro.arith import add_in_place, qft_add_in_place
from repro.datatypes import qdint_shape
from repro.algorithms.bf import hex_oracle_gatecount
from conftest import report

L = 16


def test_ablation_adder_styles(benchmark):
    def run():
        def ripple(qc, x, y):
            add_in_place(qc, x, y)
            return x, y

        def draper(qc, x, y):
            qft_add_in_place(qc, x, y)
            return x, y

        shapes = (qdint_shape(L), qdint_shape(L))
        ripple_bc, _ = build(ripple, *shapes)
        draper_bc, _ = build(draper, *shapes)
        return (
            total_gates(aggregate_gate_count(ripple_bc)),
            ripple_bc.check(),
            total_gates(aggregate_gate_count(draper_bc)),
            draper_bc.check(),
        )

    ripple_gates, ripple_width, draper_gates, draper_width = benchmark(run)
    # The trade the Alternatives module exists to explore: the QFT adder
    # needs no ancillas at all, the ripple adder needs l of them.
    assert draper_width == 2 * L
    assert ripple_width == 3 * L
    assert draper_gates > 0 and ripple_gates > 0
    report(
        "Ablation: ripple-carry vs Draper (QFT) adder at l=16",
        [
            ("ripple gates / width", "-", f"{ripple_gates} / {ripple_width}"),
            ("draper gates / width", "-", f"{draper_gates} / {draper_width}"),
        ],
    )


def test_ablation_sharing(benchmark):
    def run():
        return (
            hex_oracle_gatecount(3, 3, share=True),
            hex_oracle_gatecount(3, 3, share=False),
        )

    shared, unshared = benchmark(run)
    assert shared <= unshared
    report(
        "Ablation: hash-consed vs unshared lifting (3x3 Hex oracle)",
        [
            ("share=True gates", "-", shared),
            ("share=False gates (Quipper-like)", "-", unshared),
        ],
    )


def test_ablation_boxed_vs_inlined(benchmark):
    def run():
        def body(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            qc.gate_T(b)
            return a, b

        def circ(qc, a, b):
            return qc.nbox("step", 2000, body, a, b)

        bc, _ = build(circ, qubit, qubit)
        flat = inline(bc)
        return len(bc), len(flat), total_gates(aggregate_gate_count(bc))

    stored, inlined, counted = benchmark(run)
    assert counted == 6000
    assert inlined == 6000
    assert stored < 10  # one box call + 3 body gates
    report(
        "Ablation: boxed vs inlined representation (2000 iterations)",
        [
            ("stored gates (boxed)", "-", stored),
            ("inlined gates", "-", inlined),
            ("counted gates", "-", counted),
        ],
    )
