"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), asserts the *shape* claims that should
hold regardless of implementation details, and prints a paper-vs-measured
comparison for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

_HERE = pathlib.Path(__file__).parent
BASELINES = _HERE / "baselines"
LATEST = _HERE / ".latest"


def quick_mode() -> bool:
    """Whether benchmarks run in CI smoke mode (1 round, no perf asserts)."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def record_benchmark(name: str, record: dict) -> dict | None:
    """Persist one benchmark record; return the committed baseline if any.

    The baseline JSON under ``baselines/`` is written only if absent, so
    runs never dirty the committed numbers.  The fresh record always lands
    in ``.latest/`` (gitignored) for ``compare_baselines.py`` to diff
    against the baseline.

    Quick-mode (CI smoke) runs measure reduced sizes, so their numbers
    are not comparable to the full baselines; they get their own parallel
    trees -- ``baselines/quick/`` (committed, apples-to-apples reference
    for the PR bench-regression job) and ``.latest/quick/`` (uploaded as
    a CI artifact) -- with a ``"quick": true`` marker in every record.
    """
    if quick_mode():
        record = dict(record, quick=True)
        latest_dir, baselines_dir = LATEST / "quick", BASELINES / "quick"
    else:
        latest_dir, baselines_dir = LATEST, BASELINES
    latest_dir.mkdir(parents=True, exist_ok=True)
    (latest_dir / f"{name}.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    baseline_path = baselines_dir / f"{name}.json"
    if baseline_path.exists():
        return json.loads(baseline_path.read_text())
    baselines_dir.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps(record, indent=2) + "\n")
    return None


@pytest.fixture()
def profile(request):
    """Record a per-stage telemetry breakdown for one benchmark.

    Opt-in: benchmarks that accept this fixture run under an
    :func:`repro.obs.capture` session, and on teardown the recorder's
    span totals, counters, and histograms are written to
    ``.latest[/quick]/profiles/<testname>.json`` (gitignored, uploaded as
    a CI artifact alongside the benchmark records).  The yielded object
    is the live :class:`repro.obs.Recorder`, so a benchmark can also
    assert on stage structure directly.
    """
    from repro import obs

    with obs.capture() as rec:
        yield rec
    profiles_dir = (LATEST / "quick" if quick_mode() else LATEST) / "profiles"
    profiles_dir.mkdir(parents=True, exist_ok=True)
    hit_rate = rec.cache_hit_rate()
    breakdown = {
        "test": request.node.name,
        "quick": quick_mode(),
        "wall_s": round(rec.wall_time, 6),
        "stages": {
            path: {
                "calls": calls,
                "total_us": round(total_us, 1),
                "rss_kb": rss_kb,
            }
            for path, (calls, total_us, rss_kb) in rec.span_totals().items()
        },
        "counters": rec.counters,
        "histograms": {
            name: hist.as_dict() for name, hist in rec.histograms.items()
        },
        "cache_hit_rate": round(hit_rate, 4) if hit_rate is not None else None,
    }
    (profiles_dir / f"{request.node.name}.json").write_text(
        json.dumps(breakdown, indent=2) + "\n"
    )


def report(title: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table to the benchmark log."""
    print(f"\n=== {title} ===")
    print(f"{'metric':<38} {'paper':>20} {'measured':>20}")
    for metric, paper, measured in rows:
        print(f"{metric:<38} {str(paper):>20} {str(measured):>20}")
