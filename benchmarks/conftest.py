"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), asserts the *shape* claims that should
hold regardless of implementation details, and prints a paper-vs-measured
comparison for EXPERIMENTS.md.
"""

from __future__ import annotations


def report(title: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table to the benchmark log."""
    print(f"\n=== {title} ===")
    print(f"{'metric':<38} {'paper':>20} {'measured':>20}")
    for metric, paper, measured in rows:
        print(f"{metric:<38} {str(paper):>20} {str(measured):>20}")
