"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index), asserts the *shape* claims that should
hold regardless of implementation details, and prints a paper-vs-measured
comparison for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import pathlib

_HERE = pathlib.Path(__file__).parent
BASELINES = _HERE / "baselines"
LATEST = _HERE / ".latest"


def quick_mode() -> bool:
    """Whether benchmarks run in CI smoke mode (1 round, no perf asserts)."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def record_benchmark(name: str, record: dict) -> dict | None:
    """Persist one benchmark record; return the committed baseline if any.

    The baseline JSON under ``baselines/`` is written only if absent, so
    runs never dirty the committed numbers.  The fresh record always lands
    in ``.latest/`` (gitignored) for ``compare_baselines.py`` to diff
    against the baseline.

    Quick-mode (CI smoke) runs measure reduced sizes, so their numbers
    are not comparable to the full baselines; they get their own parallel
    trees -- ``baselines/quick/`` (committed, apples-to-apples reference
    for the PR bench-regression job) and ``.latest/quick/`` (uploaded as
    a CI artifact) -- with a ``"quick": true`` marker in every record.
    """
    if quick_mode():
        record = dict(record, quick=True)
        latest_dir, baselines_dir = LATEST / "quick", BASELINES / "quick"
    else:
        latest_dir, baselines_dir = LATEST, BASELINES
    latest_dir.mkdir(parents=True, exist_ok=True)
    (latest_dir / f"{name}.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    baseline_path = baselines_dir / f"{name}.json"
    if baseline_path.exists():
        return json.loads(baseline_path.read_text())
    baselines_dir.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps(record, indent=2) + "\n")
    return None


def report(title: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table to the benchmark log."""
    print(f"\n=== {title} ===")
    print(f"{'metric':<38} {'paper':>20} {'measured':>20}")
    for metric, paper, measured in rows:
        print(f"{metric:<38} {str(paper):>20} {str(measured):>20}")
