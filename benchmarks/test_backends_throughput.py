"""B1: sampling throughput of the execution backends.

Fixes a 12-qubit Clifford circuit (so the dense and stabilizer engines
run the *same* workload) and measures shots/sec through the registry.
This is the baseline future performance PRs compare against: the
statevector backend should be shot-batched (one simulation, one
multinomial draw regardless of the shot count), while the Clifford
backend pays per shot.
"""

from __future__ import annotations

from repro import build, get_backend, qubit
from conftest import report

N_QUBITS = 12
SHOTS = 256


def _fixed_circuit(qc, *qs):
    """A 12-qubit GHZ-with-texture Clifford circuit."""
    qs = list(qs)
    for q in qs:
        qc.hadamard(q)
    for a, b in zip(qs, qs[1:]):
        qc.qnot(b, controls=a)
    for q in qs[::2]:
        qc.gate_S(q)
    for a, b in zip(qs, qs[1:]):
        qc.qnot(b, controls=a)
    for q in qs:
        qc.hadamard(q)
    return tuple(qs)


def _bc():
    return build(_fixed_circuit, *([qubit] * N_QUBITS))[0]


def test_statevector_throughput(benchmark):
    bc = _bc()
    backend = get_backend("statevector")

    result = benchmark(lambda: backend.run(bc, shots=SHOTS, seed=7))
    assert sum(result.counts.values()) == SHOTS
    assert result.metadata["batched"]  # measurement-free -> fast path
    shots_per_sec = SHOTS / benchmark.stats.stats.mean
    report(
        "B1 statevector sampling throughput",
        [
            ("circuit width (qubits)", N_QUBITS, N_QUBITS),
            ("shots per run", "-", SHOTS),
            ("shots/sec", "(baseline)", f"{shots_per_sec:,.0f}"),
        ],
    )


def test_clifford_throughput(benchmark):
    bc = _bc()
    backend = get_backend("clifford")

    result = benchmark(lambda: backend.run(bc, shots=SHOTS, seed=7))
    assert sum(result.counts.values()) == SHOTS
    shots_per_sec = SHOTS / benchmark.stats.stats.mean
    report(
        "B1 clifford sampling throughput",
        [
            ("circuit width (qubits)", N_QUBITS, N_QUBITS),
            ("shots per run", "-", SHOTS),
            ("shots/sec", "(baseline)", f"{shots_per_sec:,.0f}"),
        ],
    )


def test_backends_agree_on_fixed_circuit():
    """The two engines sample the same distribution (sanity, not perf)."""
    bc = _bc()
    sv = get_backend("statevector").run(bc, shots=512, seed=3).counts
    cl = get_backend("clifford").run(bc, shots=512, seed=3).counts
    sv_support = {k for k, v in sv.items() if v / 512 > 0.05}
    cl_support = {k for k, v in cl.items() if v / 512 > 0.05}
    assert sv_support == cl_support
