"""D2: the Section 4.6.1 sin(x) datapoint.

Paper: "The circuit created for sin(x), over a 32+32 qubit fixed-point
argument, uses 3273010 gates."  The lifted Taylor-series sine over CFix
arithmetic reproduces the scale: fixed-point multiplies at doubled width
dominate, giving millions of gates at 32+32 bits.
"""

import time

from repro.algorithms.qls import sin_oracle_gatecount
from conftest import report

PAPER_GATES = 3_273_010


def test_d2_sin_32_32(benchmark):
    start = time.time()
    total = benchmark.pedantic(
        sin_oracle_gatecount, args=(32, 32), kwargs={"terms": 7},
        rounds=1, iterations=1,
    )
    elapsed = time.time() - start
    # the 10^5-10^6 regime the paper's 3.27M datapoint lives in; our
    # CFix multiplier folds more constants than Quipper's, so the
    # absolute count is ~3x smaller at equal precision
    assert total >= 500_000
    assert elapsed < 600
    report(
        "D2 lifted sin(x) oracle at 32+32 bits",
        [
            ("total gates", f"{PAPER_GATES:,}", f"{total:,}"),
            ("ratio vs paper", 1.0, f"{total / PAPER_GATES:.2f}x"),
            ("generation time", "n/a", f"{elapsed:.1f} s"),
        ],
    )


def test_d2_scaling_in_precision(benchmark):
    def run():
        return [
            sin_oracle_gatecount(b, b, terms=5) for b in (4, 8, 16)
        ]

    totals = benchmark(run)
    # multiplier-dominated: ~quadratic in the word size
    assert totals[1] > 2.5 * totals[0]
    assert totals[2] > 2.5 * totals[1]
