"""F2: Figure 2 -- the circuit for o4_POW17 at l=4, n=3, r=2.

The paper's command line: ``./tf -s pow17 -l 4 -n 3 -r 2``.  The figure
shows the ENTER/EXIT comments, four squarings as boxed o8 invocations, the
final multiply, and the four mirrored (starred) squarings.
"""

from repro.core.gates import BoxCall, Comment
from repro.algorithms.tf.main import build_part
from conftest import report


def test_figure2_structure(benchmark):
    bc = benchmark(build_part, "pow17", 4, 3, 2, "orthodox")
    o4 = bc.namespace["o4"].circuit
    comments = [g.text for g in o4.gates if isinstance(g, Comment)]
    assert "ENTER: o4_POW17" in comments
    assert "EXIT: o4_POW17" in comments
    o8_calls = [
        g for g in o4.gates if isinstance(g, BoxCall) and g.name == "o8"
    ]
    forward = [c for c in o8_calls if not c.inverted]
    mirrored = [c for c in o8_calls if c.inverted]
    # 4 squarings + 1 multiply forward; 4 squarings uncomputed
    assert len(forward) == 5
    assert len(mirrored) == 4
    assert bc.circuit.in_arity == 4
    assert bc.circuit.out_arity == 8
    report(
        "F2 o4_POW17 circuit (Figure 2)",
        [
            ("boxed o8 invocations", "9 (5 fwd + 4 mirrored)",
             f"{len(forward)} fwd + {len(mirrored)} mirrored"),
            ("inputs", 4, bc.circuit.in_arity),
            ("outputs", 8, bc.circuit.out_arity),
            ("ENTER/EXIT comments", "present", "present"),
        ],
    )


def test_pow17_is_correct(benchmark):
    """The Figure 2 circuit computes x^17 mod 2^l - 1 (oracle test suite)."""
    from repro.algorithms.tf.simulate import check_pow17

    assert benchmark(check_pow17, 4, 5)
