"""S4: the paper's Section 4.4 inline circuits, regenerated exactly.

``mycirc``, ``mycirc2`` (block controls), ``mycirc3`` (ancilla),
``timestep`` (mid-circuit reversal) and ``timestep2`` (Binary
decomposition with V / V*) -- the five worked examples whose circuits the
paper draws next to the code.
"""

from repro import BINARY, build, decompose_generic, qubit
from repro.core.gates import Init, NamedGate, Term
from conftest import report


def mycirc(qc, a, b):
    qc.hadamard(a)
    qc.hadamard(b)
    qc.controlled_not(a, b)
    return a, b


def mycirc2(qc, a, b, c):
    mycirc(qc, a, b)
    with qc.controls(c):
        mycirc(qc, a, b)
        mycirc(qc, b, a)
    mycirc(qc, a, c)
    return a, b, c


def mycirc3(qc, a, b, c):
    with qc.ancilla() as x:
        qc.qnot(x, controls=(a, b))
        qc.hadamard(c, controls=x)
        qc.qnot(x, controls=(a, b))
    return a, b, c


def timestep(qc, a, b, c):
    mycirc(qc, a, b)
    qc.qnot(c, controls=(a, b))
    qc.reverse_endo(mycirc, a, b)
    return a, b, c


def test_mycirc_figure(benchmark):
    bc, _ = benchmark(build, mycirc, qubit, qubit)
    names = [g.name for g in bc.circuit.gates]
    assert names == ["H", "H", "not"]
    assert bc.circuit.gates[2].controls[0].wire == 1


def test_mycirc2_block_controls(benchmark):
    bc, _ = benchmark(build, mycirc2, qubit, qubit, qubit)
    gates = bc.circuit.gates
    assert len(gates) == 12
    # the six middle gates all carry the block control on wire 2
    assert all(
        any(ctl.wire == 2 for ctl in g.controls) for g in gates[3:9]
    )
    # the trailing mycirc on (a, c) is uncontrolled
    assert gates[9].controls == ()


def test_mycirc3_ancilla_scope(benchmark):
    bc, _ = benchmark(build, mycirc3, qubit, qubit, qubit)
    gates = bc.circuit.gates
    assert isinstance(gates[0], Init)
    assert isinstance(gates[-1], Term)
    assert bc.check() == 4  # three inputs + the scoped ancilla


def test_timestep_reversal(benchmark):
    bc, _ = benchmark(build, timestep, qubit, qubit, qubit)
    names = [g.name for g in bc.circuit.gates]
    # H H CNOT | CCNOT | CNOT H H  (the mirrored mycirc)
    assert names == ["H", "H", "not", "not", "not", "H", "H"]
    assert len(bc.circuit.gates[3].controls) == 2


def test_timestep2_binary_decomposition(benchmark):
    def run():
        bc, _ = build(timestep, qubit, qubit, qubit)
        return decompose_generic(BINARY, bc)

    decomposed = benchmark(run)
    names = [
        g.display_name()
        for g in decomposed.circuit.gates
        if isinstance(g, NamedGate)
    ]
    # the paper's figure: H H CNOT | V CNOT V* CNOT V | CNOT H H
    assert names == [
        "H", "H", "not", "V", "not", "V*", "not", "V", "not", "H", "H"
    ]
    report(
        "S4 timestep2 (paper Section 4.4.3 figure)",
        [
            ("gate sequence", "V-CNOT-V*-CNOT-V core", "identical"),
            ("total gates", 11, len(names)),
        ],
    )
