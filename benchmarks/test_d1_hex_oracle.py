"""D1: the Section 4.6.1 Hex-oracle datapoint.

Paper: "our implementation of the Boolean Formula algorithm uses an oracle
that determines the winner for a given final position in the game of Hex
... The resulting oracle consists of 2.8 million gates."  The QCS spec's
board is 9x7.

Our flood fill is leaner than the authors' (the functional program itself
is smaller), so the absolute count differs; the shape claims are that the
oracle is generated *automatically* from classical code in seconds, grows
superlinearly with the board, and lands at the 10^5-10^6 gate scale at the
spec size.
"""

import time

from repro import aggregate_gate_count, total_gates
from repro.algorithms.bf import hex_oracle_circuit
from conftest import report

PAPER_GATES = 2_800_000


def test_d1_spec_size_board(benchmark):
    start = time.time()

    def run():
        bc = hex_oracle_circuit(9, 7, share=False)
        return total_gates(aggregate_gate_count(bc)), bc.check()

    total, qubits = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.time() - start
    # tens of thousands of gates from a dozen lines of classical
    # code; the authors' spec implementation is ~45x bigger (see
    # EXPERIMENTS.md for the accounting of the difference)
    assert total >= 30_000
    assert elapsed < 300             # generated automatically, fast
    report(
        "D1 Hex flood-fill oracle (9x7 board)",
        [
            ("total gates", f"{PAPER_GATES:,}", f"{total:,}"),
            ("qubits", "n/a", qubits),
            ("generation time", "n/a", f"{elapsed:.1f} s"),
        ],
    )


def test_d1_growth_with_board(benchmark):
    def run():
        return [
            total_gates(
                aggregate_gate_count(hex_oracle_circuit(k, k, share=False))
            )
            for k in (2, 3, 4)
        ]

    totals = benchmark(run)
    # ~quadratic-in-cells growth (cells x iterations)
    assert totals[1] > 3 * totals[0]
    assert totals[2] > 3 * totals[1]
